"""Repository tooling: static analysis and CI guards (not shipped in the wheel)."""
