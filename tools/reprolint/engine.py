"""Checker engine: file loading, suppression handling, and the run loop.

The engine is rule-agnostic.  It walks the target paths, parses every
Python file once, hands each :class:`ModuleFile` to the per-file rules and
the whole :class:`Project` to the project-level rules, then filters the
collected findings through the suppression comments.  Rules never need to
reimplement path walking, parsing, or suppression logic.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from collections.abc import Iterable, Sequence
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (rules import engine)
    from .rules import Rule

__all__ = [
    "Finding",
    "ModuleFile",
    "Project",
    "iter_python_files",
    "run_checks",
]

#: ``# reprolint: disable=RL001`` (same line as the finding) or
#: ``# reprolint: disable-file=RL001`` (anywhere in the file).  Multiple
#: codes are comma-separated; anything after ``--`` is the justification.
_SUPPRESSION_RE = re.compile(
    r"#\s*reprolint:\s*(?P<kind>disable|disable-file)\s*=\s*(?P<codes>RL\d+(?:\s*,\s*RL\d+)*)"
)

#: Directories never scanned (caches, VCS internals, virtualenvs).
_SKIPPED_DIRS = frozenset(
    [".git", "__pycache__", ".mypy_cache", ".ruff_cache", ".pytest_cache", ".venv", "venv"]
)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def text(self) -> str:
        return "%s:%d:%d: %s %s" % (self.path, self.line, self.col, self.code, self.message)

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }


class ModuleFile:
    """One parsed Python source file plus its suppression comments."""

    def __init__(self, path: Path, display_path: str, source: str) -> None:
        self.path = path
        #: Path as reported in findings (relative to the invocation, POSIX).
        self.display_path = display_path
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=display_path)
        #: line number -> codes disabled on that line.
        self.line_suppressions: dict[int, frozenset[str]] = {}
        #: codes disabled for the whole file.
        self.file_suppressions: frozenset[str] = frozenset()
        self._collect_suppressions()

    @classmethod
    def load(cls, path: Path, display_path: str | None = None) -> ModuleFile:
        display = display_path if display_path is not None else path.as_posix()
        return cls(path, display, path.read_text(encoding="utf-8"))

    def _collect_suppressions(self) -> None:
        file_wide: set[str] = set()
        for number, line in enumerate(self.lines, start=1):
            if "reprolint" not in line:
                continue
            match = _SUPPRESSION_RE.search(line)
            if match is None:
                continue
            codes = frozenset(code.strip() for code in match.group("codes").split(","))
            if match.group("kind") == "disable-file":
                file_wide.update(codes)
            else:
                self.line_suppressions[number] = codes
        self.file_suppressions = frozenset(file_wide)

    def suppressed(self, finding: Finding) -> bool:
        if finding.code in self.file_suppressions:
            return True
        return finding.code in self.line_suppressions.get(finding.line, frozenset())

    # Convenience for rules -------------------------------------------------
    def finding(self, node: ast.AST, code: str, message: str) -> Finding:
        return Finding(
            path=self.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=code,
            message=message,
        )

    @property
    def parts(self) -> tuple[str, ...]:
        """Path segments of the display path (used for directory scoping)."""
        return tuple(self.display_path.split("/"))


class Project:
    """The scanned file set plus the repository root it belongs to.

    Project-level rules (registry exhaustiveness) need to read files by
    their repository-relative role — ``src/repro/service/errors.py``,
    ``docs/api.md`` — independent of which subtree was scanned.  The root is
    the nearest ancestor of the first scan target containing
    ``pyproject.toml`` (falling back to the target itself), so
    ``python -m tools.reprolint src`` from the repo root sees the registry
    files even though ``docs/`` was not scanned.
    """

    def __init__(self, root: Path, modules: Sequence[ModuleFile]) -> None:
        self.root = root
        self.modules = list(modules)
        self._by_role: dict[str, ModuleFile | None] = {}

    @classmethod
    def find_root(cls, target: Path) -> Path:
        start = target if target.is_dir() else target.parent
        for candidate in [start, *start.resolve().parents]:
            if (candidate / "pyproject.toml").is_file():
                return candidate
        return start

    def module_for_role(self, relative: str) -> ModuleFile | None:
        """A parsed module by repo-relative path, scanned or not.

        Prefers the scanned instance (so its display path matches the other
        findings); loads from the root otherwise.  Returns ``None`` when the
        file does not exist — project rules treat that as "not this repo"
        and stay silent.
        """
        if relative in self._by_role:
            return self._by_role[relative]
        suffix = tuple(relative.split("/"))
        found: ModuleFile | None = None
        for module in self.modules:
            if module.parts[-len(suffix):] == suffix:
                found = module
                break
        if found is None:
            candidate = self.root / relative
            if candidate.is_file():
                found = ModuleFile.load(candidate, display_path=relative)
        self._by_role[relative] = found
        return found

    def read_text(self, relative: str) -> str | None:
        candidate = self.root / relative
        if not candidate.is_file():
            return None
        return candidate.read_text(encoding="utf-8")


def iter_python_files(targets: Sequence[Path]) -> Iterable[tuple[Path, str]]:
    """Yield ``(path, display_path)`` for every Python file under the targets."""
    for target in targets:
        if target.is_file():
            yield target, target.as_posix()
            continue
        for path in sorted(target.rglob("*.py")):
            if any(part in _SKIPPED_DIRS for part in path.parts):
                continue
            yield path, path.as_posix()


def run_checks(
    targets: Sequence[Path],
    rules: Sequence[Rule],
    root: Path | None = None,
) -> tuple[list[Finding], list[str]]:
    """Run ``rules`` over ``targets``; returns (findings, parse errors).

    Findings are suppression-filtered and sorted by location.  Files that do
    not parse are reported as errors rather than silently skipped — an
    invariant checker that skips unparseable files would go quiet exactly
    when the tree is at its worst.
    """
    modules: list[ModuleFile] = []
    errors: list[str] = []
    for path, display in iter_python_files(targets):
        try:
            modules.append(ModuleFile.load(path, display_path=display))
        except (SyntaxError, UnicodeDecodeError) as exc:
            errors.append("%s: cannot parse: %s" % (display, exc))
    project_root = root if root is not None else Project.find_root(targets[0])
    project = Project(project_root, modules)

    raw: list[Finding] = []
    modules_by_display = {module.display_path: module for module in modules}
    for rule in rules:
        if rule.project_level:
            raw.extend(rule.check_project(project))
        else:
            for module in modules:
                if rule.applies_to(module):
                    raw.extend(rule.check_module(module))

    # Project rules may have loaded registry files that were outside the
    # scanned targets; their suppression comments must still apply.
    for loaded in project._by_role.values():
        if loaded is not None:
            modules_by_display.setdefault(loaded.display_path, loaded)

    findings = []
    for finding in sorted(set(raw)):
        module = modules_by_display.get(finding.path)
        if module is not None and module.suppressed(finding):
            continue
        findings.append(finding)
    return findings, errors
