"""Argument parsing and reporting for the reprolint command line."""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from collections.abc import Callable, Sequence

from .engine import Finding, Project, run_checks
from .rules import RULES, all_rules

__all__ = ["build_parser", "main", "render_json", "render_text"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.reprolint",
        description="AST-based invariant checker for the sketch-service repo "
        "(salted hashes, event-loop blocking, lock discipline, registry "
        "exhaustiveness, determinism).",
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to check (default: src)")
    parser.add_argument("--format", choices=["text", "json"], default="text",
                        help="report format (default: text)")
    parser.add_argument("--rules", type=str, default=None, metavar="RL001,RL002",
                        help="comma-separated subset of rule codes to run")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    parser.add_argument("--root", type=str, default=None,
                        help="repository root for cross-file registry checks "
                             "(default: nearest ancestor with pyproject.toml)")
    return parser


def render_text(findings: Sequence[Finding], errors: Sequence[str]) -> str:
    lines = [finding.text() for finding in findings]
    lines.extend("error: %s" % (error,) for error in errors)
    if not lines:
        return "reprolint: clean"
    lines.append(
        "reprolint: %d finding(s)%s"
        % (len(findings), ", %d parse error(s)" % len(errors) if errors else "")
    )
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], errors: Sequence[str]) -> str:
    payload = {
        "findings": [finding.to_dict() for finding in findings],
        "errors": list(errors),
        "count": len(findings),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _rule_catalog() -> str:
    lines = []
    for code in sorted(RULES):
        rule = RULES[code]
        lines.append("%s %s" % (code, rule.name))
        lines.append("    %s" % (rule.rationale,))
    return "\n".join(lines)


def main(
    argv: Sequence[str] | None = None, out: Callable[[str], None] = print
) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        out(_rule_catalog())
        return 0
    try:
        rules = all_rules(
            [code.strip() for code in args.rules.split(",")] if args.rules else None
        )
    except KeyError as exc:
        out("error: %s" % (exc.args[0],))
        return 2
    targets = [Path(path) for path in args.paths]
    missing = [path for path in targets if not path.exists()]
    if missing:
        out("error: no such path: %s" % ", ".join(str(path) for path in missing))
        return 2
    root = Path(args.root) if args.root is not None else None
    findings, errors = run_checks(targets, rules, root=root)
    if args.format == "json":
        out(render_json(findings, errors))
    else:
        out(render_text(findings, errors))
    if errors:
        return 2
    return 1 if findings else 0
