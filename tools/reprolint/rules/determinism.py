"""Determinism rules: RL001 (no salted hash) and RL005 (no nondeterminism).

Both guard the same contract from different directions: sketch state must be
byte-identically reproducible across processes and restarts.  PR 6 made the
shard partition survive restarts by banning the per-process-salted builtin
``hash()`` in favour of the pinned ``crc32v1`` scheme; PR 1-4 made replay
byte-identical by seeding every random draw and driving every expiry off
stream clocks instead of wall clocks.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..engine import Finding, ModuleFile
from . import Rule, dotted_name, register

#: Directories whose partition/merge paths must never see builtin ``hash()``.
_HASH_BANNED_DIRS = frozenset(["service", "distributed", "windows"])

#: Sketch-state directories where byte-identical replay is contractual.
_DETERMINISTIC_DIRS = frozenset(["core", "windows", "queries", "streams", "distributed"])

#: Wall-clock reads that leak host time into sketch state.  Monotonic
#: counters (``perf_counter``/``monotonic``) are deliberately not listed:
#: the runner uses them for throughput *reporting*, which never touches
#: sketch state — it is absolute wall time flowing into clocks that breaks
#: replay.
_WALL_CLOCK_CALLS = frozenset(
    ["time.time", "time.time_ns", "datetime.now", "datetime.utcnow",
     "datetime.datetime.now", "datetime.datetime.utcnow"]
)

#: Seeded constructors: allowed when called with an explicit seed argument.
_SEEDED_CONSTRUCTORS = frozenset(
    ["random.Random", "np.random.default_rng", "numpy.random.default_rng",
     "np.random.SeedSequence", "numpy.random.SeedSequence",
     "np.random.Generator", "numpy.random.Generator"]
)


def _in_scoped_dirs(module: ModuleFile, dirs: frozenset) -> bool:
    return any(part in dirs for part in module.parts[:-1])


@register
class NoSaltedHashRule(Rule):
    """RL001: builtin ``hash()`` is banned in partition/merge paths.

    Python salts string hashing per process (PYTHONHASHSEED), so a shard
    assignment computed with ``hash()`` changes across restarts and differs
    between the router, replay clients and reference tests.  PR 6 pinned the
    ``crc32v1`` scheme (``service/router.py::shard_of``) for exactly this
    reason; hashing for sketch dimensions goes through ``HashFamily``
    (``core/hashing.py``), which is seeded and pinned by tests.
    """

    code = "RL001"
    name = "no-salted-hash"
    rationale = (
        "shard partitioning must survive restarts: use crc32v1 (shard_of) or "
        "HashFamily, never the per-process-salted builtin hash() [PR 6]"
    )

    def applies_to(self, module: ModuleFile) -> bool:
        return _in_scoped_dirs(module, _HASH_BANNED_DIRS)

    def check_module(self, module: ModuleFile) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "hash"
            ):
                yield module.finding(
                    node,
                    self.code,
                    "builtin hash() is salted per process; use crc32v1 "
                    "(service.router.shard_of) or core.hashing.HashFamily for "
                    "anything that partitions or merges state",
                )


@register
class NoNondeterminismRule(Rule):
    """RL005: no unseeded randomness or wall-clock reads in sketch state.

    The serialization round-trip, snapshot/restore, and the sharded tier all
    rely on byte-identical replay: the same stream through the same
    configuration must rebuild the same buckets.  An unseeded ``random.*``
    draw or a ``time.time()`` read inside core/windows/queries/streams/
    distributed breaks that silently — the tests that would catch it compare
    two in-process runs, which share the leaked entropy.
    """

    code = "RL005"
    name = "no-nondeterminism"
    rationale = (
        "sketch-state modules promise byte-identical replay: randomness must "
        "be seeded, clocks must come from the stream, not the host [PR 1-5]"
    )

    def applies_to(self, module: ModuleFile) -> bool:
        return _in_scoped_dirs(module, _DETERMINISTIC_DIRS)

    def check_module(self, module: ModuleFile) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            if name in _WALL_CLOCK_CALLS:
                yield module.finding(
                    node,
                    self.code,
                    "%s() reads the host clock inside a sketch-state module; "
                    "derive time from stream clocks so replay stays "
                    "byte-identical" % (name,),
                )
            elif name in _SEEDED_CONSTRUCTORS:
                if not node.args and not node.keywords:
                    yield module.finding(
                        node,
                        self.code,
                        "%s() without an explicit seed is nondeterministic; "
                        "pass the configured seed" % (name,),
                    )
            elif name.startswith(("random.", "np.random.", "numpy.random.")):
                yield module.finding(
                    node,
                    self.code,
                    "%s() draws from global, unseeded RNG state; use a seeded "
                    "random.Random/np.random.default_rng instance" % (name,),
                )
