"""Event-loop safety rules: RL002 (no blocking in async), RL003
(no slow awaits under a mutating lock) and RL006 (no unbounded RPC awaits).

The whole serving tier hangs off one asyncio loop (PR 5): the ingest
consumer, every connection handler, the snapshot and sweep timers.  A
synchronous ``time.sleep``/file/socket/sqlite call inside an ``async def``
stalls all of them at once — ingest backpressure, query latency, heartbeats.
And holding a tenant/service lock across a network round-trip while the
body also mutates shared maps is the evict/restore race shape PR 7 fixed by
hand.  PR 9 adds the third leg: every awaited client/channel round-trip in
the serving tier must carry a deadline, because a crashed peer that never
answers would otherwise park the awaiting coroutine forever — exactly the
hang the supervised-recovery work exists to rule out.  These rules make all
three regressions visible at review time.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..engine import Finding, ModuleFile
from . import Rule, dotted_name, register

#: Exact dotted calls that block the loop.
_BLOCKING_CALLS = frozenset(
    ["time.sleep", "open", "io.open", "os.fsync", "os.replace", "sqlite3.connect",
     "socket.create_connection", "socket.getaddrinfo", "shutil.copy", "shutil.copytree",
     "shutil.rmtree", "urllib.request.urlopen"]
)

#: Dotted prefixes that block the loop whatever the member.
_BLOCKING_PREFIXES = ("sqlite3.", "subprocess.", "requests.")

#: Awaited calls that park the coroutine on the network or a timer; holding
#: a lock across one of these while mutating shared state is the RL003 race
#: shape.  ``connect``/``request``/``submit`` are this repo's client and
#: shard-channel round-trips.
_SLOW_AWAIT_NAMES = frozenset(["request", "connect", "submit", "open_connection"])
_SLOW_AWAIT_CALLS = frozenset(
    ["asyncio.sleep", "asyncio.wait", "asyncio.wait_for", "asyncio.gather", "asyncio.shield",
     "asyncio.open_connection", "asyncio.start_server", "asyncio.to_thread"]
)

#: Awaited RPC entry points that must carry an explicit bound (RL006).
#: ``call`` is deliberately absent: it is this repo's retry wrapper, the
#: layer that *applies* the policy deadline.  ``self.<name>`` receivers are
#: exempt for the same reason — that is the transport implementing itself,
#: and the bound lives one frame up in its caller.
_RPC_AWAIT_NAMES = frozenset(["request", "submit", "connect", "open_connection"])

#: Keyword arguments that satisfy RL006: the call carries its own bound.
_BOUNDING_KEYWORDS = frozenset(["deadline", "timeout"])


def _is_blocking_name(name: str) -> bool:
    if name in _BLOCKING_CALLS:
        return True
    return name.startswith(_BLOCKING_PREFIXES)


class _ClassModel:
    """What RL002 knows about one class defined in the scanned module."""

    def __init__(self) -> None:
        #: Attributes assigned from a blocking resource (``self._connection
        #: = sqlite3.connect(...)``) in any method.
        self.blocking_attrs: set[str] = set()
        #: Attributes assigned from another class in this module
        #: (``self.catalog = TenantCatalog(...)``) — attr -> class name.
        self.typed_attrs: dict[str, str] = {}
        #: Methods whose bodies make a blocking call (directly or on a
        #: blocking attribute).
        self.blocking_methods: set[str] = set()


def _build_class_models(tree: ast.Module) -> dict[str, _ClassModel]:
    """Two-pass intra-module analysis: which methods block the loop?

    Pass 1 binds ``self.<attr>`` assignments to blocking resources or to
    classes defined in the same module; pass 2 marks methods blocking when
    they call a blocking API directly or call through a blocking attribute.
    A final propagation marks methods blocking when they call a blocking
    method of a same-module class held in a typed attribute — that is how a
    synchronous ``self.catalog.touch()`` (a SQLite write) surfaces inside an
    ``async def`` even though ``sqlite3`` never appears in the async body.
    """
    class_names = {
        node.name for node in tree.body if isinstance(node, ast.ClassDef)
    }
    models: dict[str, _ClassModel] = {}
    for node in tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        model = models[node.name] = _ClassModel()
        methods = [
            child for child in node.body
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for method in methods:
            for statement in ast.walk(method):
                if not isinstance(statement, ast.Assign):
                    continue
                if not isinstance(statement.value, ast.Call):
                    continue
                called = dotted_name(statement.value.func)
                if called is None:
                    continue
                for target in statement.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        if _is_blocking_name(called):
                            model.blocking_attrs.add(target.attr)
                        elif called in class_names:
                            model.typed_attrs[target.attr] = called
        model.sync_methods = {
            method.name: method
            for method in methods
            if isinstance(method, ast.FunctionDef)
            # async methods are RL002's *subjects*, not sources
        }
        for name, method in model.sync_methods.items():
            for call in ast.walk(method):
                if not isinstance(call, ast.Call):
                    continue
                called = dotted_name(call.func)
                if called is None:
                    continue
                if _is_blocking_name(called):
                    model.blocking_methods.add(name)
                    break
                parts = called.split(".")
                if len(parts) == 3 and parts[0] == "self" and parts[1] in model.blocking_attrs:
                    model.blocking_methods.add(name)
                    break
    # Fixpoint propagation: a sync method that calls a blocking method —
    # its own class's (``self._touch()``) or a typed attribute's
    # (``self.catalog.touch()``) — blocks too.  This is how a catalog write
    # two hops away still surfaces inside an ``async def``.
    changed = True
    while changed:
        changed = False
        for model in models.values():
            for name, method in model.sync_methods.items():
                if name in model.blocking_methods:
                    continue
                if _calls_blocking(method, model, models):
                    model.blocking_methods.add(name)
                    changed = True
    return models


def _calls_blocking(
    method: ast.FunctionDef, model: _ClassModel, models: dict[str, _ClassModel]
) -> bool:
    for call in ast.walk(method):
        if not isinstance(call, ast.Call):
            continue
        called = dotted_name(call.func)
        if called is None:
            continue
        parts = called.split(".")
        if len(parts) == 2 and parts[0] == "self" and parts[1] in model.blocking_methods:
            return True
        if len(parts) == 3 and parts[0] == "self":
            attr_class = models.get(model.typed_attrs.get(parts[1], ""))
            if attr_class is not None and parts[2] in attr_class.blocking_methods:
                return True
    return False


def _sync_descendants(func: ast.AsyncFunctionDef) -> Iterator[ast.AST]:
    """Walk an async body without descending into nested function defs.

    A nested ``def`` is a value, not loop-time execution — it typically ends
    up inside ``run_in_executor``, which is exactly the sanctioned escape.
    """
    stack: list[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


@register
class NoBlockingInAsyncRule(Rule):
    """RL002: no synchronous blocking calls inside ``async def``.

    The serving tier is single-loop by design (PR 5): one stalled coroutine
    stalls ingest, queries and heartbeats together.  Blocking work belongs
    in ``loop.run_in_executor`` (see ``SketchService.snapshot_async`` for
    the repo pattern) or behind an explicit, justified suppression.
    """

    code = "RL002"
    name = "no-blocking-in-async"
    rationale = (
        "one asyncio loop serves ingest, queries and timers; a synchronous "
        "sleep/file/socket/sqlite call stalls them all [PR 5/7] — route it "
        "through loop.run_in_executor"
    )

    def check_module(self, module: ModuleFile) -> Iterator[Finding]:
        models = _build_class_models(module.tree)
        # Map every async method to its enclosing class (for self.* binding).
        owners: dict[ast.AsyncFunctionDef, str] = {}
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef):
                for child in node.body:
                    if isinstance(child, ast.AsyncFunctionDef):
                        owners[child] = node.name
        for func in [n for n in ast.walk(module.tree) if isinstance(n, ast.AsyncFunctionDef)]:
            owner = models.get(owners.get(func, ""))
            for node in _sync_descendants(func):
                if not isinstance(node, ast.Call):
                    continue
                called = dotted_name(node.func)
                if called is None:
                    continue
                if _is_blocking_name(called):
                    yield module.finding(
                        node,
                        self.code,
                        "%s() blocks the event loop inside 'async def %s'; "
                        "run it in an executor (loop.run_in_executor)"
                        % (called, func.name),
                    )
                    continue
                if owner is None:
                    continue
                parts = called.split(".")
                if len(parts) == 2 and parts[0] == "self" and parts[1] in owner.blocking_methods:
                    yield module.finding(
                        node,
                        self.code,
                        "%s() is a synchronous method that blocks (directly or "
                        "through a blocking attribute); inside 'async def %s' "
                        "it stalls the event loop" % (called, func.name),
                    )
                    continue
                if len(parts) != 3 or parts[0] != "self":
                    continue
                attr, method_name = parts[1], parts[2]
                if attr in owner.blocking_attrs:
                    yield module.finding(
                        node,
                        self.code,
                        "self.%s is a blocking resource; %s() inside "
                        "'async def %s' stalls the event loop" % (attr, called, func.name),
                    )
                    continue
                attr_class = models.get(owner.typed_attrs.get(attr, ""))
                if attr_class is not None and method_name in attr_class.blocking_methods:
                    yield module.finding(
                        node,
                        self.code,
                        "%s() is synchronous blocking I/O (%s.%s blocks); "
                        "inside 'async def %s' it stalls the event loop — "
                        "run it in an executor"
                        % (called, owner.typed_attrs[attr], method_name, func.name),
                    )


def _is_lock_like(node: ast.expr) -> bool:
    """Heuristic: does this ``async with`` context expression name a lock?"""
    target = node
    if isinstance(target, ast.Call):
        name = dotted_name(target.func)
        if name is not None and "lock" in name.lower():
            return True
        target = target.func
    name = dotted_name(target)
    return name is not None and "lock" in name.lower()


def _mutates_shared_state(body: list[ast.stmt]) -> bool:
    """Does the lock body write ``self.<attr>`` (or ``self.<attr>[...]``)?"""
    for statement in body:
        for node in ast.walk(statement):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = list(node.targets)
            for target in targets:
                base: ast.expr = target
                while isinstance(base, (ast.Subscript, ast.Attribute)):
                    if (
                        isinstance(base, ast.Attribute)
                        and isinstance(base.value, ast.Name)
                        and base.value.id == "self"
                    ):
                        return True
                    base = base.value
    return False


@register
class AwaitUnderLockRule(Rule):
    """RL003: no slow awaits inside a mutating ``async with <lock>`` body.

    The race class PR 7 fixed by hand: hold a tenant/service lock, await a
    network round-trip or timer, and mutate shared maps in the same block —
    every other task serializes behind the round-trip, and a cancellation
    mid-await leaves the mutation half-applied.  Awaiting *local* work under
    a lock (drain, restore, snapshot of the guarded object) is the intended
    pattern and stays silent; it is the known slow awaits
    (``asyncio.sleep``, client ``request``/``connect``, channel ``submit``)
    that get flagged.
    """

    code = "RL003"
    name = "await-under-lock"
    rationale = (
        "awaiting a network round-trip or timer while holding a lock whose "
        "body mutates shared service state serializes every peer behind it "
        "and reopens the evict/restore race class [PR 7]"
    )

    def check_module(self, module: ModuleFile) -> Iterator[Finding]:
        for func in [n for n in ast.walk(module.tree) if isinstance(n, ast.AsyncFunctionDef)]:
            for node in ast.walk(func):
                if not isinstance(node, ast.AsyncWith):
                    continue
                if not any(_is_lock_like(item.context_expr) for item in node.items):
                    continue
                if not _mutates_shared_state(node.body):
                    continue
                for statement in node.body:
                    for child in ast.walk(statement):
                        if not isinstance(child, ast.Await):
                            continue
                        value = child.value
                        if not isinstance(value, ast.Call):
                            continue
                        called = dotted_name(value.func)
                        if called is None:
                            continue
                        slow = called in _SLOW_AWAIT_CALLS or (
                            called.split(".")[-1] in _SLOW_AWAIT_NAMES
                        )
                        if slow:
                            yield module.finding(
                                child,
                                self.code,
                                "await %s(...) inside a lock whose body mutates "
                                "shared state: peers serialize behind the "
                                "round-trip and a mid-await cancellation leaves "
                                "the mutation half-applied" % (called,),
                            )


@register
class NoUnboundedRpcAwaitRule(Rule):
    """RL006: awaited RPCs in the serving tier must carry a deadline.

    A crashed shard worker or a half-open TCP connection never answers; an
    ``await client.request(...)`` with no bound then parks the coroutine
    forever, and with it whatever drain barrier, gateway request or router
    fan-out was waiting on the answer.  PR 9 gave every client/channel
    round-trip a deadline (``RetryPolicy``; ``request(..., deadline=)``);
    this rule keeps new call sites honest.  Satisfying forms: a
    ``deadline=``/``timeout=`` keyword on the call, wrapping the await in
    ``asyncio.wait_for`` (the awaited call is then ``wait_for``, which is
    not an RPC name), or routing through the bounded retry wrapper
    (``call``).  ``self.<name>(...)`` receivers stay silent — that is the
    transport layer implementing itself, where the bound lives one frame up.
    """

    code = "RL006"
    name = "no-unbounded-rpc-await"
    rationale = (
        "an awaited RPC without a deadline parks its coroutine forever on a "
        "dead peer; pass deadline=/timeout=, wrap in asyncio.wait_for, or go "
        "through the bounded retry wrapper [PR 9]"
    )

    def applies_to(self, module: ModuleFile) -> bool:
        return "service" in module.parts[:-1]

    def check_module(self, module: ModuleFile) -> Iterator[Finding]:
        for func in [n for n in ast.walk(module.tree) if isinstance(n, ast.AsyncFunctionDef)]:
            for node in ast.walk(func):
                if not isinstance(node, ast.Await) or not isinstance(node.value, ast.Call):
                    continue
                call = node.value
                called = dotted_name(call.func)
                if called is None:
                    continue
                parts = called.split(".")
                if parts[-1] not in _RPC_AWAIT_NAMES:
                    continue
                if len(parts) == 2 and parts[0] == "self":
                    continue
                if any(keyword.arg in _BOUNDING_KEYWORDS for keyword in call.keywords):
                    continue
                yield module.finding(
                    node,
                    self.code,
                    "await %s(...) carries no deadline and would hang forever "
                    "on a dead peer; pass deadline=/timeout= or wrap the await "
                    "in asyncio.wait_for" % (called,),
                )
