"""Backend-encapsulation rule: RL007 (stores are built by the registry).

PR 10 replaced the hardcoded backend string checks with a capability-
negotiated registry (``repro.core.counter_store.register_backend``): every
counter store is built by its registered factory after ``supports()``
accepted the configuration.  A direct ``ColumnarEHStore(...)`` call outside
the backend implementations bypasses that negotiation — it can construct a
store the configuration is not eligible for (wave counters, kernels without
numba) and silently skips third-party registrations.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..engine import Finding, ModuleFile
from . import Rule, dotted_name, register

#: Counter-store classes whose construction is reserved to the registry.
_STORE_CLASSES = frozenset(["ColumnarEHStore", "KernelEHStore", "ObjectCounterStore"])

#: Modules allowed to construct stores directly: the backend implementations
#: themselves (everything under ``windows/``) and the registry module that
#: hosts the object backend's factory.
_ALLOWED_DIR = "windows"
_ALLOWED_FILES = frozenset(["counter_store.py"])


@register
class RegistryBuildsBackendsRule(Rule):
    """RL007: counter stores are constructed through the backend registry.

    ``ECMSketch`` resolves its store with ``resolve_backend(config)`` and
    calls the winning registration's factory; no other code path should
    instantiate a store class by name.  The backend modules under
    ``windows/`` and the registry module (``core/counter_store.py``, which
    hosts the object backend's factory) are the only legitimate
    construction sites.
    """

    code = "RL007"
    name = "registry-builds-backends"
    rationale = (
        "counter stores must be built by their registered factory after "
        "capability negotiation; direct construction bypasses supports() "
        "and third-party registrations [PR 10]"
    )

    def applies_to(self, module: ModuleFile) -> bool:
        if module.parts[-1] in _ALLOWED_FILES:
            return False
        return _ALLOWED_DIR not in module.parts[:-1]

    def check_module(self, module: ModuleFile) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            leaf = name.rsplit(".", 1)[-1]
            if leaf in _STORE_CLASSES:
                yield module.finding(
                    node,
                    self.code,
                    "direct %s(...) construction bypasses the backend registry; "
                    "resolve the store with repro.core.resolve_backend(config) "
                    "(or register a backend) instead" % (leaf,),
                )
