"""Rule registry: every rule is a class registered under its ``RL`` code.

Adding a rule is three steps (see docs/development.md for the worked
example): subclass :class:`Rule`, decorate it with :func:`register`, and add
a must-flag + must-pass fixture pair to ``tests/tools/test_reprolint.py``.
The module import below is what populates the registry — a rule module that
is not imported here does not exist as far as the checker is concerned.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator
from typing import TYPE_CHECKING

from ..engine import Finding, ModuleFile, Project

if TYPE_CHECKING:  # pragma: no cover
    pass

__all__ = ["Rule", "RULES", "register", "all_rules", "dotted_name"]


class Rule:
    """Base class of every reprolint rule.

    Class attributes:
        code: Stable machine code (``RL001`` ...), unique in the registry.
        name: Short kebab-case rule name for the catalog.
        rationale: One-line why — which repo invariant the rule guards.
        project_level: ``True`` for rules that check cross-file registries
            (they get the whole :class:`Project` once) instead of one
            module at a time.
    """

    code: str = ""
    name: str = ""
    rationale: str = ""
    project_level: bool = False

    def applies_to(self, module: ModuleFile) -> bool:
        """Whether this (per-file) rule scans ``module`` at all."""
        return True

    def check_module(self, module: ModuleFile) -> Iterator[Finding]:
        raise NotImplementedError  # pragma: no cover - abstract

    def check_project(self, project: Project) -> Iterator[Finding]:
        raise NotImplementedError  # pragma: no cover - abstract


#: The registry: code -> rule class.
RULES: dict[str, type[Rule]] = {}


def register(rule_class: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the registry (import-time plugin)."""
    if not rule_class.code or not rule_class.code.startswith("RL"):
        raise ValueError("rule %r needs an RLxxx code" % (rule_class.__name__,))
    if rule_class.code in RULES:
        raise ValueError("duplicate rule code %s" % (rule_class.code,))
    RULES[rule_class.code] = rule_class
    return rule_class


def all_rules(only: Iterable[str] | None = None) -> list[Rule]:
    """Instantiate the registered rules (optionally a code subset)."""
    if only is None:
        codes = sorted(RULES)
    else:
        codes = []
        for code in only:
            if code not in RULES:
                raise KeyError("unknown rule code %r (known: %s)" % (code, ", ".join(sorted(RULES))))
            codes.append(code)
    return [RULES[code]() for code in codes]


def dotted_name(node: ast.AST) -> str | None:
    """Dotted name of a Name/Attribute chain (``self.catalog.touch``), else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


# Import-time registration of the built-in rules (the plugin entry point).
from . import async_rules as _async_rules  # noqa: E402,F401
from . import backends as _backends  # noqa: E402,F401
from . import determinism as _determinism  # noqa: E402,F401
from . import registries as _registries  # noqa: E402,F401
