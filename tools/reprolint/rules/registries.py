"""RL004: the protocol registries must stay mutually exhaustive.

PR 7 split the error surface into three coupled registries: the exception
registry (``service/errors.py::ERROR_CODES``), the gateway's HTTP status
table (``service/gateway.py::STATUS_FOR_CODE``) and the documented table in
``docs/api.md``.  The query-op surface is coupled the same way: the TCP
server's dispatch set (``server.py::_QUERY_OPS``), the in-process handlers
(``core.py::_QUERY_HANDLERS``), the router's merge handlers
(``router.py::_ROUTER_QUERY_HANDLERS``) and the op tables in ``docs/api.md``.
Today only runtime tests notice a hole; this rule makes the cross-check a
static, named invariant: add a code or an op in one place and the checker
names every other place it must appear.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator

from ..engine import Finding, ModuleFile, Project
from . import Rule, register

_ERRORS_MODULE = "src/repro/service/errors.py"
_GATEWAY_MODULE = "src/repro/service/gateway.py"
_SERVER_MODULE = "src/repro/service/server.py"
_CORE_MODULE = "src/repro/service/core.py"
_ROUTER_MODULE = "src/repro/service/router.py"
_API_DOC = "docs/api.md"


def _module_assignment(module: ModuleFile, name: str) -> ast.expr | None:
    """Value expression of the module-level assignment binding ``name``."""
    for node in module.tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return node.value
        elif (
            isinstance(node, ast.AnnAssign)
            and isinstance(node.target, ast.Name)
            and node.target.id == name
        ):
            return node.value
    return None


def _string_keys(value: ast.expr | None) -> dict[str, ast.expr] | None:
    """String keys of a dict/frozenset/set literal -> their AST nodes."""
    if value is None:
        return None
    keys: dict[str, ast.expr] = {}
    if isinstance(value, ast.Dict):
        for key in value.keys:
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                keys[key.value] = key
        return keys
    if isinstance(value, ast.Call) and len(value.args) == 1:
        return _string_keys(value.args[0])
    if isinstance(value, (ast.List, ast.Tuple, ast.Set)):
        for element in value.elts:
            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                keys[element.value] = element
        return keys
    return None


def _documented_codes(text: str) -> set[str]:
    """First backticked token of every markdown table row (``| `X` | ...``)."""
    return set(re.findall(r"^\|\s*`([^`]+)`\s*\|", text, flags=re.MULTILINE))


@register
class RegistryExhaustivenessRule(Rule):
    """RL004: error codes and protocol ops must be registered everywhere.

    Inert outside this repository (the rule stays silent when the service
    registry modules are absent), so scanning a fixture tree or a vendored
    subdirectory does not produce noise.
    """

    code = "RL004"
    name = "registry-exhaustiveness"
    rationale = (
        "ERROR_CODES, STATUS_FOR_CODE, the op dispatch tables and docs/api.md "
        "describe one protocol; a code or op present in some of them is a "
        "client-visible hole [PR 7]"
    )
    project_level = True

    def check_project(self, project: Project) -> Iterator[Finding]:
        errors_module = project.module_for_role(_ERRORS_MODULE)
        if errors_module is None:
            return
        doc_text = project.read_text(_API_DOC)
        documented = _documented_codes(doc_text) if doc_text is not None else None
        yield from self._check_error_codes(project, errors_module, documented)
        yield from self._check_query_ops(project, documented)

    # ----------------------------------------------------------- error codes
    def _check_error_codes(
        self,
        project: Project,
        errors_module: ModuleFile,
        documented: set[str] | None,
    ) -> Iterator[Finding]:
        error_codes = _string_keys(_module_assignment(errors_module, "ERROR_CODES"))
        if error_codes is None:
            yield errors_module.finding(
                errors_module.tree,
                self.code,
                "ERROR_CODES registry not found as a module-level dict literal",
            )
            return
        gateway = project.module_for_role(_GATEWAY_MODULE)
        statuses = (
            _string_keys(_module_assignment(gateway, "STATUS_FOR_CODE"))
            if gateway is not None
            else None
        )
        if statuses is not None:
            for code_name, node in error_codes.items():
                if code_name not in statuses:
                    yield errors_module.finding(
                        node,
                        self.code,
                        "error code %r has no HTTP status in "
                        "gateway.STATUS_FOR_CODE; the gateway would answer "
                        "500 for a registered, typed error" % (code_name,),
                    )
        if documented is not None:
            for code_name, node in error_codes.items():
                if code_name not in documented:
                    yield errors_module.finding(
                        node,
                        self.code,
                        "error code %r is not documented in docs/api.md "
                        "(no `| `%s` |` table row)" % (code_name, code_name),
                    )

    # ------------------------------------------------------------- query ops
    def _check_query_ops(
        self, project: Project, documented: set[str] | None
    ) -> Iterator[Finding]:
        server = project.module_for_role(_SERVER_MODULE)
        if server is None:
            return
        query_ops = _string_keys(_module_assignment(server, "_QUERY_OPS"))
        tenant_ops = _string_keys(_module_assignment(server, "_TENANT_OPS"))
        if query_ops is None:
            yield server.finding(
                server.tree, self.code, "server._QUERY_OPS dispatch set not found"
            )
            return
        tables = []
        core = project.module_for_role(_CORE_MODULE)
        if core is not None:
            tables.append(
                ("core.py _QUERY_HANDLERS", core,
                 _string_keys(_module_assignment(core, "_QUERY_HANDLERS")))
            )
        router = project.module_for_role(_ROUTER_MODULE)
        if router is not None:
            tables.append(
                ("router.py _ROUTER_QUERY_HANDLERS", router,
                 _string_keys(_module_assignment(router, "_ROUTER_QUERY_HANDLERS")))
            )
        for label, module, handlers in tables:
            if handlers is None:
                yield module.finding(
                    module.tree, self.code, "%s dispatch table not found" % (label,)
                )
                continue
            for op, node in query_ops.items():
                if op not in handlers:
                    yield server.finding(
                        node,
                        self.code,
                        "query op %r is served by the TCP server but missing "
                        "from %s — a %s request would fail on that tier"
                        % (op, label, op),
                    )
            for op, node in handlers.items():
                if op not in query_ops:
                    yield module.finding(
                        node,
                        self.code,
                        "query op %r has a handler in %s but is not in "
                        "server._QUERY_OPS — unreachable over the protocol"
                        % (op, label),
                    )
        if documented is not None:
            for ops in (query_ops, tenant_ops or {}):
                for op, node in ops.items():
                    if op not in documented:
                        yield server.finding(
                            node,
                            self.code,
                            "protocol op %r is not documented in docs/api.md "
                            "(no `| `%s` |` table row)" % (op, op),
                        )
