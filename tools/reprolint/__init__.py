"""repro-lint: an AST-based invariant checker for this repository.

The sketch service encodes correctness contracts that ordinary linters do
not know about: shard partitioning must never use the per-process salted
builtin ``hash()`` (PR 6), nothing may block the single asyncio ingest loop
(PR 5/7), the error/op registries must stay mutually exhaustive with the
gateway status table and ``docs/api.md`` (PR 7), and sketch-state modules
must stay deterministic so byte-identical replay keeps holding (PR 1-4).
Until now those invariants survived on reviewer memory plus a handful of
runtime tests; ``reprolint`` turns each one into a named static rule.

Usage::

    python -m tools.reprolint src               # check a tree (or files)
    python -m tools.reprolint --list-rules      # rule catalog
    python -m tools.reprolint --format json src # machine-readable findings

Findings can be suppressed per line with a justifying comment::

    mark = hash(key)  # reprolint: disable=RL001 -- hashability probe only

or per file with ``# reprolint: disable-file=RL002`` on its own line.

The rule registry is plugin-style: a rule is a class decorated with
:func:`tools.reprolint.rules.register`; see ``docs/development.md`` for the
how-to-add-a-rule walkthrough.
"""

from __future__ import annotations

from .engine import Finding, ModuleFile, Project, run_checks
from .rules import RULES, all_rules

__all__ = ["Finding", "ModuleFile", "Project", "RULES", "all_rules", "run_checks"]
