"""``python -m tools.reprolint`` — run the invariant checker.

Exit codes: 0 clean, 1 findings, 2 usage or parse errors.  ``repro lint``
delegates here, so contributors get the same behaviour either way.
"""

from __future__ import annotations

import sys
from collections.abc import Sequence

from .cli import main

if __name__ == "__main__":  # pragma: no cover - thin module entry
    argv: Sequence[str] = sys.argv[1:]
    sys.exit(main(argv))
