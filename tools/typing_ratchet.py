"""Typing ratchet: per-module mypy strictness can go up, never down.

The repo's typing posture lives in two places: ``pyproject.toml`` (what
mypy actually enforces in CI) and ``tools/typing_manifest.json`` (the
committed floor).  Each module has a strictness *level*:

    0  default            (bodies of untyped defs unchecked)
    1  check_untyped_defs (every body type-checked)
    2  disallow_untyped_defs (every def fully annotated)

``python -m tools.typing_ratchet`` (the CI check) fails when:

* the global ``check_untyped_defs`` flag is off — level 1 is the repo floor;
* a module under ``src/repro`` is missing from the manifest (new modules
  must be registered at their level via ``--update``);
* a module's effective level in ``pyproject.toml`` dropped below its
  manifest level (the ratchet: loosening an override is a regression);
* a level-2 module contains a def that mypy's ``disallow_untyped_defs``
  would reject — verified locally with ``ast`` so the ratchet catches the
  regression even where mypy is not installed.

``--update`` regenerates the manifest from the current pyproject + tree,
keeping each module's level at ``max(manifest, effective)`` unless
``--allow-lower`` is given.  ``--self-test`` feeds the checker synthetic
regressions and fails unless every one is detected.
"""

from __future__ import annotations

import argparse
import ast
import fnmatch
import json
import re
import sys
from pathlib import Path
from collections.abc import Callable, Sequence
from typing import Any

LEVEL_NAMES = {0: "default", 1: "check_untyped_defs", 2: "disallow_untyped_defs"}

_REPO_ROOT = Path(__file__).resolve().parent.parent
_DEFAULT_PYPROJECT = _REPO_ROOT / "pyproject.toml"
_DEFAULT_MANIFEST = _REPO_ROOT / "tools" / "typing_manifest.json"
_DEFAULT_SRC = _REPO_ROOT / "src" / "repro"


class MypyConfig:
    """The slice of ``[tool.mypy]`` the ratchet cares about."""

    def __init__(
        self,
        check_untyped_defs: bool,
        overrides: Sequence[tuple[tuple[str, ...], dict[str, bool]]],
    ) -> None:
        self.check_untyped_defs = check_untyped_defs
        #: Each entry: (module patterns, {flag: value}) in file order.
        self.overrides = list(overrides)

    def effective_level(self, module: str) -> int:
        level = 1 if self.check_untyped_defs else 0
        for patterns, flags in self.overrides:
            if not any(fnmatch.fnmatchcase(module, pattern) for pattern in patterns):
                continue
            if flags.get("disallow_untyped_defs"):
                level = max(level, 2)
            elif flags.get("check_untyped_defs"):
                level = max(level, 1)
        return level


def _parse_pyproject(text: str) -> MypyConfig:
    try:
        import tomllib

        data = tomllib.loads(text)
    except ModuleNotFoundError:  # Python 3.10: no tomllib; minimal fallback
        data = _parse_toml_fallback(text)
    mypy_cfg: dict[str, Any] = data.get("tool", {}).get("mypy", {})
    overrides = []
    for entry in mypy_cfg.get("overrides", []):
        modules = entry.get("module", [])
        if isinstance(modules, str):
            modules = [modules]
        flags = {
            key: bool(value)
            for key, value in entry.items()
            if key in ("check_untyped_defs", "disallow_untyped_defs")
        }
        overrides.append((tuple(modules), flags))
    return MypyConfig(bool(mypy_cfg.get("check_untyped_defs", False)), overrides)


def _parse_toml_fallback(text: str) -> dict[str, Any]:
    """Just enough TOML for this repo's ``[tool.mypy]`` tables.

    Handles ``key = true/false``, ``key = "str"``, and (possibly multiline)
    ``key = [ "a", "b" ]`` inside ``[tool.mypy]`` and
    ``[[tool.mypy.overrides]]``.  Anything else is ignored.
    """
    mypy: dict[str, Any] = {}
    overrides: list[dict[str, Any]] = []
    current: dict[str, Any] | None = None
    pending_key: str | None = None
    pending_items: list[str] = []
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip() if not raw.strip().startswith("#") else ""
        if not line:
            continue
        if pending_key is not None:
            pending_items.extend(re.findall(r'"([^"]*)"', line))
            if "]" in line:
                assert current is not None
                current[pending_key] = pending_items
                pending_key, pending_items = None, []
            continue
        if line.startswith("[["):
            name = line.strip("[]").strip()
            if name == "tool.mypy.overrides":
                current = {}
                overrides.append(current)
            else:
                current = None
            continue
        if line.startswith("["):
            name = line.strip("[]").strip()
            current = mypy if name == "tool.mypy" else None
            continue
        if current is None or "=" not in line:
            continue
        key, _, value = line.partition("=")
        key, value = key.strip(), value.strip()
        if value.startswith("[") and "]" not in value:
            pending_key = key
            pending_items = re.findall(r'"([^"]*)"', value)
            continue
        if value.startswith("["):
            current[key] = re.findall(r'"([^"]*)"', value)
        elif value in ("true", "false"):
            current[key] = value == "true"
        else:
            current[key] = value.strip('"')
    if overrides:
        mypy["overrides"] = overrides
    return {"tool": {"mypy": mypy}}


def iter_modules(src: Path) -> dict[str, Path]:
    """Dotted module name -> path for every Python file under ``src``."""
    package_root = src.parent
    modules: dict[str, Path] = {}
    for path in sorted(src.rglob("*.py")):
        relative = path.relative_to(package_root).with_suffix("")
        parts = list(relative.parts)
        if parts[-1] == "__init__":
            parts = parts[:-1]
        modules[".".join(parts)] = path
    return modules


def annotation_violations(tree: ast.AST) -> list[tuple[int, str, str]]:
    """Defs that mypy's ``disallow_untyped_defs`` would reject.

    Mirrors mypy's rule: every parameter annotated and a return annotation
    present; ``__init__`` may omit the return annotation only when at least
    one of its parameters is annotated.
    """
    problems: list[tuple[int, str, str]] = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        args = node.args
        params = args.posonlyargs + args.args + args.kwonlyargs
        if params and params[0].arg in ("self", "cls"):
            params = params[1:]
        params = params + [extra for extra in (args.vararg, args.kwarg) if extra]
        missing = [param.arg for param in params if param.annotation is None]
        if missing:
            problems.append(
                (node.lineno, node.name, "unannotated parameter(s): %s" % ", ".join(missing))
            )
            continue
        if node.returns is None:
            annotated_any = any(param.annotation is not None for param in params)
            if node.name == "__init__" and annotated_any:
                continue
            problems.append((node.lineno, node.name, "missing return annotation"))
    return problems


def load_manifest(path: Path) -> dict[str, Any]:
    return json.loads(path.read_text(encoding="utf-8"))


def run_check(
    config: MypyConfig,
    manifest: dict[str, Any],
    modules: dict[str, Path],
    read_source: Callable[[Path], str] | None = None,
) -> list[str]:
    """All ratchet violations (empty list == pass)."""
    read = read_source if read_source is not None else (
        lambda path: path.read_text(encoding="utf-8")
    )
    problems: list[str] = []
    if manifest.get("global", {}).get("check_untyped_defs") and not config.check_untyped_defs:
        problems.append(
            "pyproject.toml: [tool.mypy] check_untyped_defs is off but the "
            "manifest requires it repo-wide — that is a ratchet regression"
        )
    recorded: dict[str, int] = {
        name: int(level) for name, level in manifest.get("modules", {}).items()
    }
    for name in sorted(modules):
        if name not in recorded:
            problems.append(
                "%s: not in tools/typing_manifest.json — register new modules "
                "with `python -m tools.typing_ratchet --update`" % (name,)
            )
    for name, floor in sorted(recorded.items()):
        if name not in modules:
            continue  # deleted modules drop out at the next --update
        effective = config.effective_level(name)
        if effective < floor:
            problems.append(
                "%s: effective mypy level %d (%s) is below the manifest floor "
                "%d (%s) — strictness only ratchets up"
                % (name, effective, LEVEL_NAMES[effective], floor, LEVEL_NAMES[floor])
            )
        if floor >= 2:
            tree = ast.parse(read(modules[name]))
            for line, func, why in annotation_violations(tree):
                problems.append(
                    "%s:%d: def %s: %s (module is at disallow_untyped_defs "
                    "in the manifest)" % (modules[name], line, func, why)
                )
    return problems


def run_update(
    config: MypyConfig,
    manifest: dict[str, Any],
    modules: dict[str, Path],
    allow_lower: bool,
) -> dict[str, Any]:
    recorded = {name: int(level) for name, level in manifest.get("modules", {}).items()}
    updated: dict[str, int] = {}
    for name in sorted(modules):
        effective = config.effective_level(name)
        floor = recorded.get(name, 0)
        updated[name] = effective if allow_lower else max(effective, floor)
    return {
        "_comment": (
            "Per-module mypy strictness floor; see tools/typing_ratchet.py. "
            "Levels: 0 default, 1 check_untyped_defs, 2 disallow_untyped_defs. "
            "Regenerate with `python -m tools.typing_ratchet --update`."
        ),
        "global": {"check_untyped_defs": config.check_untyped_defs},
        "modules": updated,
    }


def run_self_test(
    config: MypyConfig, manifest: dict[str, Any], modules: dict[str, Path]
) -> list[str]:
    """Feed the checker synthetic regressions; report any it misses."""
    missed: list[str] = []
    if run_check(config, manifest, modules):
        return ["baseline check is not clean; fix that before --self-test"]
    # 1. Global flag flipped off.
    loosened = MypyConfig(False, config.overrides)
    if not run_check(loosened, manifest, modules):
        missed.append("undetected: check_untyped_defs flipped off globally")
    # 2. A module's overrides dropped below a level-2 floor.
    strict = [name for name, level in manifest.get("modules", {}).items() if int(level) >= 2]
    if strict:
        victim = strict[0]
        no_overrides = MypyConfig(config.check_untyped_defs, [])
        if config.effective_level(victim) >= 2 and not run_check(
            no_overrides, manifest, modules
        ):
            missed.append("undetected: disallow_untyped_defs override removed")
    # 3. A module missing from the manifest.
    pruned = dict(manifest, modules=dict(manifest.get("modules", {})))
    if pruned["modules"]:
        pruned["modules"].pop(sorted(pruned["modules"])[0])
        if not run_check(config, pruned, modules):
            missed.append("undetected: module deleted from the manifest")
    # 4. An untyped def sneaked into a level-2 module.
    if strict and strict[0] in modules:
        def untyped_source(path: Path) -> str:
            return "def regression(x):\n    return x\n"

        if not run_check(config, manifest, {strict[0]: modules[strict[0]]}, untyped_source):
            missed.append("undetected: untyped def in a disallow_untyped_defs module")
    return missed


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.typing_ratchet",
        description="Check (default) or update the per-module mypy strictness floor.",
    )
    parser.add_argument("--update", action="store_true",
                        help="regenerate tools/typing_manifest.json from pyproject + tree")
    parser.add_argument("--allow-lower", action="store_true",
                        help="with --update: record levels even when lower than the floor")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the checker detects synthetic regressions")
    parser.add_argument("--pyproject", type=Path, default=_DEFAULT_PYPROJECT)
    parser.add_argument("--manifest", type=Path, default=_DEFAULT_MANIFEST)
    parser.add_argument("--src", type=Path, default=_DEFAULT_SRC)
    args = parser.parse_args(argv)

    config = _parse_pyproject(args.pyproject.read_text(encoding="utf-8"))
    modules = iter_modules(args.src)
    if args.update:
        manifest = load_manifest(args.manifest) if args.manifest.exists() else {}
        updated = run_update(config, manifest, modules, allow_lower=args.allow_lower)
        args.manifest.write_text(json.dumps(updated, indent=2) + "\n", encoding="utf-8")
        print("typing-ratchet: wrote %s (%d modules)" % (args.manifest, len(updated["modules"])))
        return 0
    manifest = load_manifest(args.manifest)
    if args.self_test:
        missed = run_self_test(config, manifest, modules)
        for problem in missed:
            print("typing-ratchet: self-test FAILED: %s" % (problem,))
        if not missed:
            print("typing-ratchet: self-test passed (all synthetic regressions detected)")
        return 1 if missed else 0
    problems = run_check(config, manifest, modules)
    for problem in problems:
        print("typing-ratchet: %s" % (problem,))
    if problems:
        print("typing-ratchet: %d problem(s)" % (len(problems),))
        return 1
    print("typing-ratchet: clean (%d modules at their floor)" % (len(modules),))
    return 0


if __name__ == "__main__":
    sys.exit(main())
