"""Setuptools shim.

The offline execution environment has no ``wheel`` package, so PEP 517/660
editable installs (which require building a wheel) fail.  Keeping a classic
``setup.py`` lets ``pip install -e .`` fall back to the legacy
``setup.py develop`` path, which works without network access.  All project
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
