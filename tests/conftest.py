"""Shared fixtures for the test suite.

The fixtures keep trace sizes small (a few thousand records) so the whole
suite runs in well under a minute while still exercising every code path with
realistic, skewed workloads.
"""

from __future__ import annotations

import random

import pytest

from repro.baselines import ExactStreamSummary
from repro.core import CounterType, ECMConfig
from repro.streams import SnmpSyntheticTrace, UniformTrace, WorldCupSyntheticTrace


WINDOW = 100_000.0


@pytest.fixture(scope="session")
def window() -> float:
    """Sliding-window length shared by most fixtures."""
    return WINDOW


@pytest.fixture(scope="session")
def wc98_trace():
    """A small synthetic WorldCup'98-like trace (session-scoped: generated once)."""
    return WorldCupSyntheticTrace(
        num_records=4_000, num_nodes=8, domain_size=300, duration=WINDOW, seed=5
    ).generate()


@pytest.fixture(scope="session")
def snmp_trace():
    """A small synthetic SNMP-like trace."""
    return SnmpSyntheticTrace(
        num_records=3_000, num_nodes=16, domain_size=200, duration=WINDOW, seed=9
    ).generate()


@pytest.fixture(scope="session")
def uniform_trace():
    """A small uniform-popularity trace."""
    return UniformTrace(num_records=2_000, num_nodes=4, domain_size=64, duration=WINDOW, seed=3).generate()


@pytest.fixture(scope="session")
def wc98_exact(wc98_trace):
    """Exact summary of the wc98 fixture trace."""
    return ExactStreamSummary.from_stream(wc98_trace, window=WINDOW)


@pytest.fixture(scope="session")
def snmp_exact(snmp_trace):
    """Exact summary of the snmp fixture trace."""
    return ExactStreamSummary.from_stream(snmp_trace, window=WINDOW)


@pytest.fixture
def rng():
    """A deterministic random generator for per-test synthetic arrivals."""
    return random.Random(1234)


@pytest.fixture
def point_config(window) -> ECMConfig:
    """ECM-EH configuration sized for point queries at epsilon = 0.1."""
    return ECMConfig.for_point_queries(epsilon=0.1, delta=0.1, window=window)


@pytest.fixture
def rw_config(window) -> ECMConfig:
    """ECM-RW configuration sized for point queries at epsilon = 0.2."""
    return ECMConfig.for_point_queries(
        epsilon=0.2,
        delta=0.2,
        window=window,
        counter_type=CounterType.RANDOMIZED_WAVE,
        max_arrivals=20_000,
    )


def make_arrivals(rng: random.Random, count: int, mean_gap: float = 5.0):
    """Generate ``count`` monotonically increasing arrival timestamps."""
    clock = 0.0
    arrivals = []
    for _ in range(count):
        clock += rng.random() * mean_gap * 2.0
        arrivals.append(clock)
    return arrivals
