"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import EXPERIMENTS, build_parser, main
from repro.core.errors import ConfigurationError


def run_cli(argv):
    """Invoke the CLI capturing its output lines; returns (exit_code, lines)."""
    lines = []
    code = main(argv, out=lines.append)
    return code, lines


class TestParser:
    def test_no_command_shows_help(self, capsys):
        code, _lines = run_cli([])
        assert code == 2
        assert "usage" in capsys.readouterr().out.lower()

    def test_run_requires_known_experiment(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "figure99"])

    def test_defaults(self):
        args = build_parser().parse_args(["run", "figure4"])
        assert args.dataset == "wc98"
        assert args.records == 8_000
        assert args.epsilons == [0.05, 0.10, 0.25]

    def test_experiment_registry_covers_all_paper_artifacts(self):
        assert set(EXPERIMENTS) == {
            "table2", "figure4", "table3", "figure5", "table4", "figure6", "ablations",
        }


class TestCommands:
    def test_list(self):
        code, lines = run_cli(["list"])
        assert code == 0
        joined = "\n".join(lines)
        for name in EXPERIMENTS:
            assert name in joined

    def test_demo_small(self):
        code, lines = run_cli(["demo", "--records", "1500", "--epsilon", "0.1"])
        assert code == 0
        assert any("PASSED" in line for line in lines)

    def test_run_table3_small(self):
        code, lines = run_cli(["run", "table3", "--records", "1500"])
        assert code == 0
        joined = "\n".join(lines)
        assert "updates/sec" in joined
        assert "ECM-EH" in joined and "ECM-RW" in joined

    def test_heavy_hitters_command(self, tmp_path):
        output = tmp_path / "hh.json"
        code, lines = run_cli([
            "heavy-hitters", "--records", "2000", "--domain", "500",
            "--phis", "0.02", "0.05", "--output", str(output),
        ])
        assert code == 0
        joined = "\n".join(lines)
        assert "recall" in joined
        assert "0.0200" in joined and "0.0500" in joined
        assert output.exists()

    def test_heavy_hitters_rejects_domain_over_universe(self):
        with pytest.raises(ConfigurationError):
            run_cli(["heavy-hitters", "--records", "100", "--domain", "100",
                     "--universe-bits", "4"])

    def test_run_figure4_small(self):
        code, lines = run_cli([
            "run", "figure4", "--records", "1500", "--epsilons", "0.2", "--max-keys", "20",
        ])
        assert code == 0
        joined = "\n".join(lines)
        assert "avg err" in joined
        assert "wc98" in joined

    def test_run_figure6_small(self):
        code, lines = run_cli([
            "run", "figure6", "--records", "1200", "--network-sizes", "1", "4", "--max-keys", "20",
        ])
        assert code == 0
        joined = "\n".join(lines)
        assert "levels" in joined

    def test_run_ablations(self):
        code, lines = run_cli(["run", "ablations", "--records", "1000"])
        assert code == 0
        joined = "\n".join(lines)
        assert "policy" in joined and "strategy" in joined

    def test_run_on_snmp_dataset(self):
        code, lines = run_cli([
            "run", "table3", "--dataset", "snmp", "--records", "1200",
        ])
        assert code == 0
        assert any("snmp" in line for line in lines)

    def test_run_with_json_output(self, tmp_path):
        output = tmp_path / "table3.json"
        code, lines = run_cli([
            "run", "table3", "--records", "1200", "--output", str(output),
        ])
        assert code == 0
        assert output.exists()
        import json

        payload = json.loads(output.read_text())
        assert {entry["variant"] for entry in payload} == {"ECM-EH", "ECM-DW", "ECM-RW"}
        assert any(str(output) in line for line in lines)

    def test_run_with_csv_output(self, tmp_path):
        output = tmp_path / "ablations.csv"
        code, _lines = run_cli([
            "run", "ablations", "--records", "1000", "--output", str(output),
        ])
        assert code == 0
        assert output.exists()
        header = output.read_text().splitlines()[0]
        assert "policy" in header


class TestServeReplayParsers:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 7600
        assert args.mode == "flat"
        assert args.backend == "auto"
        assert args.batch_size == 1024
        assert args.restore is None

    def test_serve_full_flag_surface(self):
        args = build_parser().parse_args([
            "serve", "--mode", "multisite", "--sites", "8", "--period", "500",
            "--backend", "object", "--window-model", "count",
            "--snapshot-every", "2.5", "--snapshot-path", "snap.json",
            "--restore", "old.json", "--queue-chunks", "16",
        ])
        assert args.mode == "multisite"
        assert args.sites == 8
        assert args.window_model == "count"
        assert args.snapshot_every == 2.5
        assert args.restore == "old.json"

    def test_serve_rejects_bad_mode_and_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--mode", "turbo"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--backend", "ram"])

    def test_serve_rejects_snapshot_period_without_path(self):
        code, lines = run_cli(["serve", "--snapshot-every", "5"])
        assert code == 2
        assert any("snapshot_path" in line for line in lines)

    def test_replay_defaults(self):
        args = build_parser().parse_args(["replay"])
        assert args.records == 50_000
        assert args.batch_size == 1024
        assert args.rate is None
        assert args.query_every == 8

    def test_replay_reports_unreachable_server(self):
        # Port 1 on localhost is never listening: replay must fail politely.
        code, lines = run_cli(["replay", "--port", "1", "--records", "100"])
        assert code == 1
        assert any("could not reach" in line for line in lines)


class TestLint:
    """``repro lint`` delegates to tools/reprolint (the checkout's checker)."""

    def test_lint_smoke_on_a_clean_file(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n", encoding="utf-8")
        code, lines = run_cli(["lint", str(clean)])
        assert code == 0
        assert lines[-1] == "reprolint: clean"

    def test_lint_flags_and_reports_findings(self, tmp_path):
        dirty = tmp_path / "src" / "repro" / "service" / "bad.py"
        dirty.parent.mkdir(parents=True)
        dirty.write_text("x = hash('a')\n", encoding="utf-8")
        code, lines = run_cli(["lint", str(dirty), "--rules", "RL001"])
        assert code == 1
        assert any("RL001" in line for line in lines)

    def test_lint_list_rules(self):
        code, lines = run_cli(["lint", "--list-rules"])
        assert code == 0
        joined = "\n".join(lines)
        for rule_code in ["RL001", "RL002", "RL003", "RL004", "RL005", "RL006"]:
            assert rule_code in joined
