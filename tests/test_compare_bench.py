"""Unit tests of the bench-regression guard (benchmarks/compare_bench.py)."""

from __future__ import annotations

import importlib.util
import json
import os

_SPEC = importlib.util.spec_from_file_location(
    "compare_bench",
    os.path.join(os.path.dirname(__file__), "..", "benchmarks", "compare_bench.py"),
)
assert _SPEC is not None and _SPEC.loader is not None
compare_bench = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(compare_bench)


class TestRatioDiscovery:
    def test_finds_speedups_in_nested_trees_and_lists(self):
        tree = {
            "ingest": {"speedup": 2.5, "records": 100},
            "stages": [{"speedup": 1.5}, {"other": {"speedup": 3.0}}],
            "speedup": 4.0,
        }
        leaves = dict(compare_bench.iter_ratio_leaves(tree))
        assert leaves == {
            "ingest.speedup": (2.5, None),
            "stages[0].speedup": (1.5, None),
            "stages[1].other.speedup": (3.0, None),
            "speedup": (4.0, None),
        }

    def test_ignores_non_numeric_and_non_ratio_keys(self):
        leaves = dict(compare_bench.iter_ratio_leaves(
            {"speedup": "fast", "records_per_second": 99.0, "flag": True}
        ))
        assert leaves == {}

    def test_backend_labels_are_inherited_from_enclosing_dicts(self):
        tree = {
            "backend": "kernels",
            "ingest": {"speedup": 2.5},
            "stages": [{"backend": "columnar", "speedup": 1.5}],
        }
        leaves = dict(compare_bench.iter_ratio_leaves(tree))
        assert leaves == {
            "ingest.speedup": (2.5, "kernels"),
            "stages[0].speedup": (1.5, "columnar"),
        }


class TestComparison:
    def test_within_tolerance_passes(self):
        baseline = {"a": {"speedup": 2.0}}
        fresh = {"a": {"speedup": 1.6}}  # -20%, inside the 25% tolerance
        _report, regressions = compare_bench.compare_trees(baseline, fresh, 0.25)
        assert regressions == []

    def test_thirty_percent_slowdown_fails(self):
        baseline = {"a": {"speedup": 2.0}}
        fresh = {"a": {"speedup": 1.4}}  # -30%
        _report, regressions = compare_bench.compare_trees(baseline, fresh, 0.25)
        assert len(regressions) == 1
        assert "a.speedup" in regressions[0]

    def test_missing_ratio_fails(self):
        _report, regressions = compare_bench.compare_trees(
            {"a": {"speedup": 2.0}}, {}, 0.25
        )
        assert len(regressions) == 1

    def test_backend_switch_is_skipped_not_flagged(self):
        baseline = {"a": {"backend": "kernels", "speedup": 8.0}}
        fresh = {"a": {"backend": "columnar", "speedup": 2.0}}  # would be -75%
        report, regressions = compare_bench.compare_trees(baseline, fresh, 0.25)
        assert regressions == []
        assert any("backend changed: kernels -> columnar" in line for line in report)

    def test_new_ratio_in_fresh_run_is_not_a_failure(self):
        report, regressions = compare_bench.compare_trees(
            {}, {"a": {"speedup": 2.0}}, 0.25
        )
        assert regressions == []
        assert any("no baseline yet" in line for line in report)


class TestCli:
    def test_self_test_passes(self, capsys):
        assert compare_bench.main(["--self-test"]) == 0
        assert "self-test passed" in capsys.readouterr().out

    def test_file_pair_flow(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        fresh = tmp_path / "fresh.json"
        baseline.write_text(json.dumps({"x": {"speedup": 3.0}}))
        fresh.write_text(json.dumps({"x": {"speedup": 2.9}}))
        assert compare_bench.main(["--pair", str(baseline), str(fresh)]) == 0
        fresh.write_text(json.dumps({"x": {"speedup": 2.0}}))
        assert compare_bench.main(["--pair", str(baseline), str(fresh)]) == 1
        assert "FAILED" in capsys.readouterr().out

    def test_rejects_bad_tolerance(self):
        import pytest

        with pytest.raises(SystemExit):
            compare_bench.main(["--self-test", "--tolerance", "1.5"])


class TestFloorClamp:
    def test_large_baseline_floors_are_clamped(self):
        baseline = {"sweep": {"speedup": 33.0}}
        # 5x would fail the raw 25% tolerance (floor 24.75) but clears the clamp.
        _report, regressions = compare_bench.compare_trees(
            baseline, {"sweep": {"speedup": 5.0}}, 0.25
        )
        assert regressions == []
        # A genuine collapse below the clamp still fails.
        _report, regressions = compare_bench.compare_trees(
            baseline, {"sweep": {"speedup": 3.0}}, 0.25
        )
        assert len(regressions) == 1

    def test_small_baselines_keep_the_tolerance_floor(self):
        baseline = {"ingest": {"speedup": 2.0}}
        _report, regressions = compare_bench.compare_trees(
            baseline, {"ingest": {"speedup": 1.4}}, 0.25
        )
        assert len(regressions) == 1
