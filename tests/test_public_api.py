"""Tests of the top-level public API surface."""

from __future__ import annotations

import importlib

import pytest

import repro


class TestTopLevelExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), "repro.__all__ lists %r but it is missing" % name

    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.core",
            "repro.windows",
            "repro.queries",
            "repro.distributed",
            "repro.streams",
            "repro.baselines",
            "repro.analysis",
            "repro.experiments",
            "repro.serialization",
            "repro.cli",
        ],
    )
    def test_subpackages_importable_and_all_resolves(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), "%s.__all__ lists %r but it is missing" % (module_name, name)

    def test_readme_quickstart_snippet_runs(self):
        """The exact code shown in the README must keep working."""
        from repro import ECMSketch

        sketch = ECMSketch.for_point_queries(epsilon=0.05, delta=0.05, window=3600.0)
        sketch.add("10.1.2.3", clock=12.0)
        sketch.add("10.1.2.3", clock=57.0)
        sketch.add("10.9.9.9", clock=60.0)
        estimate = sketch.point_query("10.1.2.3", range_length=600.0, now=60.0)
        f2 = sketch.self_join(now=60.0)
        assert estimate >= 2.0
        assert f2 >= 5.0

    def test_readme_distributed_snippet_runs(self):
        from repro.core import ECMConfig, ECMSketch

        config = ECMConfig.for_point_queries(epsilon=0.05, delta=0.05, window=3600.0)
        locals_ = [ECMSketch(config, stream_tag=i) for i in range(4)]
        for index, sketch in enumerate(locals_):
            sketch.add("item-%d" % index, clock=float(index))
        union_sketch = ECMSketch.aggregate(locals_)
        assert union_sketch.total_arrivals() == 4

    def test_docstrings_present_on_public_classes(self):
        from repro import (
            CountMinSketch,
            DeterministicWave,
            ECMSketch,
            ExponentialHistogram,
            RandomizedWave,
        )

        for cls in (ECMSketch, CountMinSketch, ExponentialHistogram, DeterministicWave, RandomizedWave):
            assert cls.__doc__ and len(cls.__doc__.strip()) > 40
            for attribute_name in dir(cls):
                if attribute_name.startswith("_"):
                    continue
                attribute = getattr(cls, attribute_name)
                if callable(attribute):
                    assert attribute.__doc__, "%s.%s lacks a docstring" % (cls.__name__, attribute_name)
