"""The serving tier's chaos acceptance test: kill every shard, lose nothing.

A supervised, journaled sharded server is fed a replay through a retrying
client while a ``server.ingest=kill`` failpoint SIGKILLs **each** worker
once, mid-stream, at staggered points.  The contract under test is the
whole PR-9 stack at once:

* the supervisor respawns every victim automatically — the test never
  calls ``restart_shard``;
* no acked record is lost (worker journals replay the acked tail on
  respawn) and none is double-applied (``(client, seq)`` dedup across the
  client's retries);
* point, heavy-hitter and quantile answers are byte-identical to a clean,
  identically-configured sharded run over the same trace.

Kills are armed through the ``failpoint`` protocol op with ``shard``
targeting, so the faults travel exactly the path production chaos drills
would take, and respawned workers boot with a clean registry instead of
re-arming themselves into a crash loop.
"""

from __future__ import annotations

import asyncio
from dataclasses import replace
from typing import Any

import pytest

from repro.service import ServiceConfig, ShardRouter
from repro.service.client import RetryPolicy, ServiceClient
from repro.service.server import SketchServer

pytestmark = pytest.mark.integration

SHARDS = 3
RECORDS = 600
CHUNK = 40
PHI = 0.05
FRACTIONS = [0.25, 0.5, 0.75]

#: Retry posture of the chaos client: patient enough to ride out a worker
#: respawn (spawn boots a fresh interpreter; seconds on loaded CI), with an
#: overall deadline so a recovery that never happens still fails the test.
_CHAOS_RETRY = RetryPolicy(attempts=60, base_delay=0.25, max_delay=2.0, deadline=240.0)

_STEP_TIMEOUT = 120.0


def _config(tmp_path) -> ServiceConfig:
    return ServiceConfig(
        mode="hierarchical",
        universe_bits=8,
        epsilon=0.1,
        window=1_000_000.0,
        shards=SHARDS,
        batch_size=64,
        expire_every=None,
        seed=5,
        snapshot_path=str(tmp_path / "chaos-manifest.json"),
        journal_dir=str(tmp_path / "wal"),
        supervise=True,
    )


def _trace(records: int) -> tuple[list[int], list[float]]:
    """Deterministic skewed trace: 5 hot keys over a spread tail, so the
    heavy-hitter and quantile comparisons exercise non-trivial answers."""
    keys = []
    for index in range(records):
        if index % 2 == 0:
            keys.append((index // 2) % 5)
        else:
            keys.append(5 + (index * 37) % 200)
    clocks = [1.0 + index for index in range(records)]
    return keys, clocks


async def _bounded(awaitable, timeout: float = _STEP_TIMEOUT):
    """Every step of a chaos test must finish or fail — never hang."""
    return await asyncio.wait_for(awaitable, timeout)


async def _reference_answers(
    config: ServiceConfig, keys: list[int], clocks: list[float]
) -> dict[str, Any]:
    """A clean, identically-parameterised sharded run over the full trace."""
    clean = replace(config, journal_dir=None, supervise=False, snapshot_path=None)
    router = ShardRouter(clean)
    await _bounded(router.start())
    try:
        await _bounded(router.ingest(keys, clocks))
        await _bounded(router.drain())
        answers: dict[str, Any] = {
            "points": {
                key: float(await router.query("point", {"op": "point", "key": key}))
                for key in sorted(set(keys))
            },
            "heavy_hitters": [
                (int(key), float(estimate))
                for key, estimate in await router.query(
                    "heavy_hitters", {"op": "heavy_hitters", "phi": PHI}
                )
            ],
            "quantiles": [
                int(
                    await router.query(
                        "quantile", {"op": "quantile", "fraction": fraction}
                    )
                )
                for fraction in FRACTIONS
            ],
        }
    finally:
        await router.stop(drain=False)
    return answers


class TestChaos:
    def test_sigkill_every_shard_mid_replay_recovers_without_loss(self, tmp_path):
        config = _config(tmp_path)
        keys, clocks = _trace(RECORDS)

        async def body():
            server = SketchServer(ShardRouter(config))
            await _bounded(server.start())
            client = None
            try:
                client = await _bounded(
                    ServiceClient.connect("127.0.0.1", server.port, retry=_CHAOS_RETRY)
                )
                # Arm one SIGKILL per worker at staggered ingest hits, so the
                # kills land at different points of the replay (and sometimes
                # overlap: two shards down at once is a supported state).
                for shard in range(SHARDS):
                    armed = await _bounded(
                        client.failpoint(
                            spec="server.ingest=kill@%d" % (3 + 4 * shard), shard=shard
                        )
                    )
                    assert "server.ingest" in armed["armed"]

                # Replay in chunks through the retrying client.  Every chunk
                # must ack in full: a chunk whose fan-out died mid-flight is
                # retried under the same (client, seq) until the supervisor
                # has respawned the victim — never re-sent as new data.
                for start in range(0, RECORDS, CHUNK):
                    accepted = await _bounded(
                        client.ingest(keys[start : start + CHUNK], clocks[start : start + CHUNK]),
                        240.0,
                    )
                    assert accepted == len(keys[start : start + CHUNK])
                assert client.retries > 0  # the kills really did land mid-replay

                # Recovery was *automatic*: this test never calls
                # restart_shard; the supervisor's counters prove the respawns.
                stats = await _bounded(self._settled_stats(client))
                assert stats["degraded"] == []
                assert stats["shard_states"] == ["healthy"] * SHARDS
                assert all(count >= 1 for count in stats["restarts"])

                # No acked record lost, none double-applied.
                await _bounded(client.drain(), 240.0)
                stats = (await _bounded(client.get_stats())).raw
                assert stats["records_ingested"] == RECORDS

                reference = await _reference_answers(config, keys, clocks)
                for key, expected in reference["points"].items():
                    assert await _bounded(client.point(key)) == expected, key
                served_hitters = [
                    (row.key, row.estimate)
                    for row in await _bounded(client.heavy_hitters(PHI))
                ]
                assert served_hitters == reference["heavy_hitters"]
                served_quantiles = [
                    await _bounded(client.quantile(fraction)) for fraction in FRACTIONS
                ]
                assert served_quantiles == reference["quantiles"]
            finally:
                if client is not None:
                    await client.close()
                await server.shutdown()
                await _bounded(server.serve_until_shutdown())

        asyncio.run(body())

    @staticmethod
    async def _settled_stats(client: ServiceClient) -> dict[str, Any]:
        """Poll stats until every shard is healthy (or the bound expires)."""
        while True:
            stats = (await client.get_stats()).raw
            if stats.get("degraded") == [] and set(stats.get("shard_states", [])) == {
                "healthy"
            }:
                return stats
            await asyncio.sleep(0.25)
