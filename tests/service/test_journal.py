"""Write-ahead journal recovery: torn tails, corruption, crash windows.

The journal's contract is *no acked record lost, no record double-applied*:
a chunk is journaled before it is acked, recovery is snapshot + journal
tail, and damage truncates the tail rather than killing the worker.  These
tests drive the edges of that contract — a torn final line, a CRC-corrupt
record mid-file, a crash landing between the snapshot write and the journal
rotation, and retry dedup once the per-client window has evicted a client.
"""

from __future__ import annotations

import asyncio
import json
import zlib

from repro.serialization import dumps
from repro.service import ServiceConfig, SketchService
from repro.service.journal import IngestJournal
from repro.service.snapshot import snapshot_payload, write_snapshot


def run(coroutine):
    return asyncio.run(coroutine)


def _service_config(tmp_path, **overrides) -> ServiceConfig:
    payload = dict(
        mode="flat",
        epsilon=0.1,
        window=1_000.0,
        batch_size=64,
        journal_dir=str(tmp_path / "wal"),
        snapshot_path=str(tmp_path / "snap.json"),
    )
    payload.update(overrides)
    return ServiceConfig(**payload)


def _chunks(count: int, size: int = 8):
    """Deterministic (keys, clocks) chunks with strictly increasing clocks."""
    out = []
    clock = 0
    for index in range(count):
        keys = [(index * size + offset) % 50 for offset in range(size)]
        clocks = [clock + offset + 1 for offset in range(size)]
        clock += size
        out.append((keys, clocks))
    return out


def _append_chunks(journal: IngestJournal, chunks, client_id=None, start_seq=1):
    journal.open_for_append()
    for offset, (keys, clocks) in enumerate(chunks):
        journal.append(
            0, keys, clocks, None, client_id, start_seq + offset if client_id else None
        )
    journal.close()


class TestTornTail:
    def test_partial_last_line_is_truncated_not_fatal(self, tmp_path):
        journal = IngestJournal(tmp_path)
        _append_chunks(journal, _chunks(3))
        path = tmp_path / "wal.0.ndjson"
        intact = path.read_bytes()
        # A crash mid-append leaves a prefix of the record and no newline.
        path.write_bytes(intact + b'{"c":123,"r":{"kind":"ing')

        recovered = IngestJournal(tmp_path)
        records = recovered.recover()
        assert [record.jseq for record in records] == [1, 2, 3]
        assert recovered.truncations == 1
        # The file was healed in place: the torn bytes are gone and the next
        # append continues the sequence on a clean tail.
        assert path.read_bytes() == intact
        assert recovered.next_jseq == 4
        recovered.open_for_append()
        assert recovered.append(0, [1], [100], None, None, None) == 4
        recovered.close()
        assert [r.jseq for r in IngestJournal(tmp_path).recover()] == [1, 2, 3, 4]

    def test_torn_newline_only_tail_is_truncated(self, tmp_path):
        journal = IngestJournal(tmp_path)
        _append_chunks(journal, _chunks(2))
        path = tmp_path / "wal.0.ndjson"
        path.write_bytes(path.read_bytes() + b"garbage that is not json\n")
        records = IngestJournal(tmp_path).recover()
        assert [record.jseq for record in records] == [1, 2]


class TestCorruptRecord:
    def _flip_record(self, path, jseq: int) -> None:
        """Bit-flip a key inside the record with the given jseq, keeping
        the line well-formed JSON so only the CRC can catch it."""
        lines = path.read_bytes().splitlines(keepends=True)
        out = []
        for line in lines:
            wrapper = json.loads(line)
            if wrapper["r"].get("jseq") == jseq:
                wrapper["r"]["keys"][0] = 999_999
                line = (json.dumps(wrapper, separators=(",", ":")) + "\n").encode()
            out.append(line)
        path.write_bytes(b"".join(out))

    def test_crc_mismatch_truncates_from_the_bad_record(self, tmp_path):
        journal = IngestJournal(tmp_path)
        _append_chunks(journal, _chunks(4))
        self._flip_record(tmp_path / "wal.0.ndjson", jseq=3)

        recovered = IngestJournal(tmp_path)
        records = recovered.recover()
        # Records 3 and 4 are gone — 3 is corrupt, 4 is after the damage.
        assert [record.jseq for record in records] == [1, 2]
        assert recovered.truncations == 1
        assert recovered.next_jseq == 3

    def test_corruption_in_an_old_epoch_drops_later_epochs(self, tmp_path):
        journal = IngestJournal(tmp_path)
        journal.open_for_append()
        for keys, clocks in _chunks(2):
            journal.append(0, keys, clocks, None, None, None)
        journal.rotate()
        for keys, clocks in _chunks(2, size=4):
            journal.append(0, keys, clocks, None, None, None)
        journal.close()
        self._flip_record(tmp_path / "wal.0.ndjson", jseq=2)

        recovered = IngestJournal(tmp_path)
        records = recovered.recover()
        # Epoch 1 cannot be trusted to be contiguous past the damage point.
        assert [record.jseq for record in records] == [1]
        assert not (tmp_path / "wal.1.ndjson").exists()

    def test_crc_catches_what_json_framing_cannot(self, tmp_path):
        # The flipped record is perfectly valid JSON; only the CRC differs.
        journal = IngestJournal(tmp_path)
        _append_chunks(journal, _chunks(1))
        path = tmp_path / "wal.0.ndjson"
        lines = path.read_bytes().splitlines()
        wrapper = json.loads(lines[-1])
        body = json.dumps(wrapper["r"], separators=(",", ":"), sort_keys=True)
        assert wrapper["c"] == zlib.crc32(body.encode())
        self._flip_record(path, jseq=1)
        assert IngestJournal(tmp_path).recover() == []


class TestSnapshotRotationCrashWindow:
    def test_crash_between_snapshot_write_and_rotation_is_exactly_once(self, tmp_path):
        """A snapshot that lands without its journal rotation must not
        double-apply the records the snapshot already contains."""
        config = _service_config(tmp_path)
        chunks = _chunks(6)

        async def crashed():
            service = SketchService(config)
            await service.start()
            for keys, clocks in chunks[:4]:
                await service.ingest(keys, clocks, client_id="c", seq=clocks[-1])
            await service.drain()
            # Write the snapshot exactly as snapshot_now does, then "crash"
            # before the rotation: the journal still holds epochs covering
            # records the snapshot already contains.
            write_snapshot(config.snapshot_path, snapshot_payload(service))
            await service.stop(drain=False)

        async def recovered_run():
            service = SketchService.from_snapshot(config.snapshot_path)
            async with service:
                await service.drain()
                for keys, clocks in chunks[4:]:
                    await service.ingest(keys, clocks, client_id="c", seq=clocks[-1])
                await service.drain()
                return dumps(service.state), service.records_ingested

        async def reference_run():
            reference = ServiceConfig(mode="flat", epsilon=0.1, window=1_000.0, batch_size=64)
            async with SketchService(reference) as service:
                for keys, clocks in chunks:
                    await service.ingest(keys, clocks)
                await service.drain()
                return dumps(service.state), service.records_ingested

        run(crashed())
        restored_bytes, restored_count = run(recovered_run())
        reference_bytes, reference_count = run(reference_run())
        assert restored_bytes == reference_bytes
        assert restored_count == reference_count

    def test_crash_after_rotation_replays_only_the_fresh_epoch(self, tmp_path):
        config = _service_config(tmp_path)
        chunks = _chunks(6)

        async def crashed():
            service = SketchService(config)
            await service.start()
            for keys, clocks in chunks[:3]:
                await service.ingest(keys, clocks)
            await service.drain()
            await service.snapshot_async()  # snapshot + rotation both land
            for keys, clocks in chunks[3:]:
                await service.ingest(keys, clocks)
            await service.drain()
            await service.stop(drain=False)  # crash: no final snapshot

        async def recovered_run():
            service = SketchService.from_snapshot(config.snapshot_path)
            async with service:
                await service.drain()
                return dumps(service.state), service.records_ingested

        async def reference_run():
            reference = ServiceConfig(mode="flat", epsilon=0.1, window=1_000.0, batch_size=64)
            async with SketchService(reference) as service:
                for keys, clocks in chunks:
                    await service.ingest(keys, clocks)
                await service.drain()
                return dumps(service.state), service.records_ingested

        run(crashed())
        restored_bytes, restored_count = run(recovered_run())
        reference_bytes, reference_count = run(reference_run())
        assert restored_bytes == reference_bytes
        assert restored_count == reference_count


class TestRotationRetention:
    def test_rotation_keeps_epochs_with_unapplied_tails(self, tmp_path):
        """An epoch is deleted only once the snapshot's applied journal
        position has passed its last record: under backpressure a chunk
        journaled (and acked) epochs ago can still be queued-unapplied,
        and deleting its epoch would lose an acked record on crash."""
        journal = IngestJournal(tmp_path)
        journal.open_for_append()
        for keys, clocks in _chunks(2):  # epoch 0: jseq 1, 2
            journal.append(0, keys, clocks, None, None, None)
        journal.rotate(applied_jseq=2)  # -> epoch 1
        for keys, clocks in _chunks(2, size=4):  # epoch 1: jseq 3, 4
            journal.append(0, keys, clocks, None, None, None)
        # The snapshot applied only through jseq 3: epoch 0 (tail 2) is
        # covered and goes; epoch 1 (tail 4) is not and must survive even
        # once it is older than the previous epoch.
        journal.rotate(applied_jseq=3)  # -> epoch 2
        assert not (tmp_path / "wal.0.ndjson").exists()
        journal.rotate(applied_jseq=3)  # -> epoch 3; epoch 1 still past the mark
        assert (tmp_path / "wal.1.ndjson").exists()
        # Replay still reaches the retained records.
        assert [r.jseq for r in IngestJournal(tmp_path).recover(after_jseq=3)] == [4]
        journal.rotate(applied_jseq=4)  # epoch 1 finally covered
        assert not (tmp_path / "wal.1.ndjson").exists()
        journal.close()

    def test_rotation_without_a_position_deletes_nothing(self, tmp_path):
        journal = IngestJournal(tmp_path)
        journal.open_for_append()
        for keys, clocks in _chunks(2):
            journal.append(0, keys, clocks, None, None, None)
        journal.rotate()
        journal.rotate()
        journal.rotate()
        journal.close()
        assert (tmp_path / "wal.0.ndjson").exists()

    def test_recovered_journal_rebuilds_epoch_tails(self, tmp_path):
        """The deletion fence survives a restart: recovery re-learns each
        epoch's last jseq from the files themselves."""
        journal = IngestJournal(tmp_path)
        journal.open_for_append()
        for keys, clocks in _chunks(2):  # epoch 0: jseq 1, 2
            journal.append(0, keys, clocks, None, None, None)
        journal.rotate(applied_jseq=2)  # -> epoch 1
        for keys, clocks in _chunks(2, size=4):  # epoch 1: jseq 3, 4
            journal.append(0, keys, clocks, None, None, None)
        journal.close()

        recovered = IngestJournal(tmp_path)
        recovered.recover()
        recovered.open_for_append()
        recovered.rotate(applied_jseq=2)  # -> epoch 2: epoch 0 covered, gone
        assert not (tmp_path / "wal.0.ndjson").exists()
        recovered.rotate(applied_jseq=2)  # -> epoch 3: epoch 1 tail 4 > 2, kept
        assert (tmp_path / "wal.1.ndjson").exists()
        recovered.close()


class TestDedupWindowEviction:
    def test_resident_client_retry_is_deduped(self, tmp_path):
        config = _service_config(tmp_path, dedup_clients=4)

        async def scenario():
            async with SketchService(config) as service:
                accepted = await service.ingest([1, 2], [1, 2], client_id="c0", seq=1)
                again = await service.ingest([1, 2], [1, 2], client_id="c0", seq=1)
                await service.drain()
                return accepted, again, service.duplicate_chunks, service.records_ingested

        accepted, again, duplicates, ingested = run(scenario())
        assert accepted == 2
        assert again == 2  # re-acked with the same count ...
        assert duplicates == 1
        assert ingested == 2  # ... but applied exactly once

    def test_evicted_client_seq_reuse_is_applied_again(self, tmp_path):
        """The dedup window is a *window*: once dedup_clients other clients
        have pushed a client out, a reused seq is applied again.  This pins
        the documented at-most-window guarantee (and its failure shape)."""
        config = _service_config(tmp_path, dedup_clients=2)

        async def scenario():
            async with SketchService(config) as service:
                await service.ingest([1], [1], client_id="old", seq=1)
                # Two fresh clients evict "old" from the 2-slot window.
                await service.ingest([2], [2], client_id="new1", seq=1)
                await service.ingest([3], [3], client_id="new2", seq=1)
                replayed = await service.ingest([1], [4], client_id="old", seq=1)
                await service.drain()
                return replayed, service.duplicate_chunks, service.records_ingested

        replayed, duplicates, ingested = run(scenario())
        assert replayed == 1
        assert duplicates == 0  # eviction means the retry is NOT recognized
        assert ingested == 4  # ... and the record really is double-applied

    def test_concurrent_duplicate_during_journal_append_is_deduped(self, tmp_path):
        """The dedup claim lands *before* the awaited journal append: a
        reconnect-resend racing the original request (still parked on the
        journal executor) must re-ack, not journal and apply a second copy."""
        config = _service_config(tmp_path)

        async def scenario():
            async with SketchService(config) as service:
                first, second = await asyncio.gather(
                    service.ingest([1, 2], [1, 2], client_id="c0", seq=1),
                    service.ingest([1, 2], [1, 2], client_id="c0", seq=1),
                )
                await service.drain()
                return first, second, service.duplicate_chunks, service.records_ingested

        first, second, duplicates, ingested = run(scenario())
        assert first == 2
        assert second == 2
        assert duplicates == 1
        assert ingested == 2  # one copy applied, never both

    def test_dedup_state_survives_crash_recovery(self, tmp_path):
        """A retry that lands *after* a crash must still dedup: the acked
        seq table is rebuilt from the snapshot and the journal tail."""
        config = _service_config(tmp_path)

        async def crashed():
            service = SketchService(config)
            await service.start()
            await service.ingest([5, 6], [1, 2], client_id="c9", seq=7)
            await service.drain()
            await service.stop(drain=False)  # no final snapshot: journal only

        async def retried():
            service = SketchService(config)
            async with service:
                await service.drain()
                before = service.records_ingested
                await service.ingest([5, 6], [1, 2], client_id="c9", seq=7)
                await service.drain()
                return before, service.records_ingested, service.duplicate_chunks

        run(crashed())
        before, after, duplicates = run(retried())
        assert before == 2  # journal replay restored the crashed records
        assert after == 2  # the retry was recognized and not re-applied
        assert duplicates == 1
