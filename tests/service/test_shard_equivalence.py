"""Property-based equivalence of the sharded serving tier.

The contract under test: a :class:`~repro.service.router.ShardRouter` over
``N`` shard workers answers like serial :class:`SketchService` state fed the
same trace.

* ``shards=1`` — answers must be **byte-identical** to one unsharded serial
  service: the router adds routing and fan-out plumbing but no approximation.
* ``shards=N`` — answers must equal the same merges computed over ``N``
  independently driven serial references (one per shard, worker-equivalent
  configuration, fed exactly the sub-stream the partition function assigns).
  The references never touch router code, so this catches partitioning,
  ordering and merge bugs rather than re-deriving them.

Random traces sweep window models (time/count), storage backends
(columnar/object) and shard counts (1, 2, 4, 7) under hypothesis.
"""

from __future__ import annotations

import asyncio
from typing import Any

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service import ServiceConfig, ShardRouter, SketchService, shard_column, shard_of
from repro.service.shard_worker import worker_config
from repro.windows.base import WindowModel

#: Property tests explore large input spaces; run `-m 'not slow'` to skip.
pytestmark = pytest.mark.slow

EPSILON = 0.25
DELTA = 0.2
UNIVERSE_BITS = 6
SHARD_COUNTS = (1, 2, 4, 7)


def run(coroutine):
    return asyncio.run(coroutine)


# --------------------------------------------------------------------------
# Partition-function pins: the manifest records the scheme name, so these
# exact values may never change — a restored shard's key ownership depends
# on them.
# --------------------------------------------------------------------------
class TestPartitionFunction:
    def test_shard_of_stability_pins(self):
        pins = [
            (0, 4, 0),
            (1, 4, 2),
            (7, 4, 0),
            (12345, 4, 3),
            (-3, 4, 1),
            (2**63, 4, 0),
            (0, 7, 0),
            (99, 7, 3),
            ("alpha", 4, 2),
            ("beta", 4, 3),
            ("alpha", 7, 3),
            (b"alpha", 4, 2),
            (3.5, 4, 0),
            (None, 4, 1),
            (True, 4, 2),  # JSON true: hashes like the integer 1
            (1, 4, 2),
        ]
        for key, shards, expected in pins:
            assert shard_of(key, shards) == expected, (key, shards)

    def test_single_shard_is_identity(self):
        for key in (0, -1, "x", None, 3.5):
            assert shard_of(key, 1) == 0

    @settings(max_examples=60, deadline=None)
    @given(
        keys=st.lists(
            st.one_of(
                st.integers(min_value=-(2**70), max_value=2**70),
                st.text(max_size=8),
            ),
            max_size=200,
        ),
        shards=st.integers(min_value=1, max_value=9),
    )
    def test_shard_column_matches_scalar(self, keys, shards):
        """The vectorized column partitioner equals the scalar function."""
        assert shard_column(keys, shards) == [shard_of(key, shards) for key in keys]

    @settings(max_examples=30, deadline=None)
    @given(
        keys=st.lists(st.integers(min_value=0, max_value=2**31), min_size=64, max_size=200),
        shards=st.integers(min_value=2, max_value=9),
    )
    def test_shard_column_vector_path_matches_scalar(self, keys, shards):
        """Columns long enough for the NumPy path still match bit-for-bit."""
        assert shard_column(keys, shards) == [shard_of(key, shards) for key in keys]


# --------------------------------------------------------------------------
# Trace strategies
# --------------------------------------------------------------------------
def _clocks(model: WindowModel, gaps: list[float], count: int) -> list[float]:
    if model == WindowModel.COUNT_BASED:
        return [float(index + 1) for index in range(count)]
    clock = 0.0
    out = []
    for gap in gaps[:count]:
        clock += gap
        out.append(clock)
    return out


flat_traces = st.lists(
    st.tuples(
        st.sampled_from(["a", "b", "c", "d", "e", "f", "g", "h", "i", "j"]),
        st.floats(min_value=0.0, max_value=8.0),
    ),
    min_size=1,
    max_size=120,
)

hier_traces = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=(1 << UNIVERSE_BITS) - 1),
        st.floats(min_value=0.0, max_value=8.0),
    ),
    min_size=1,
    max_size=120,
)

models = st.sampled_from([WindowModel.TIME_BASED, WindowModel.COUNT_BASED])
backends = st.sampled_from(["columnar", "object"])
shard_counts = st.sampled_from(SHARD_COUNTS)


def _config(mode: str, model: WindowModel, backend: str, shards: int | None) -> ServiceConfig:
    return ServiceConfig(
        mode=mode,
        epsilon=EPSILON,
        delta=DELTA,
        window=40.0,
        model=model,
        backend=backend,
        universe_bits=UNIVERSE_BITS,
        batch_size=32,
        expire_every=None,
        shards=shards,
        seed=3,
    )


async def _drive(
    config: ServiceConfig, keys: list[Any], clocks: list[float], chunk: int = 17
) -> tuple[ShardRouter, list[SketchService]]:
    """Start router + per-shard serial references, feed both the same trace.

    The references are fed the *partitioned* sub-streams directly — the same
    assignment :func:`shard_of` makes, but through plain serial ingest with
    no router code in the path.
    """
    shards = config.shards or 1
    router = ShardRouter(config, local=True)
    references = [SketchService(worker_config(config, shard)) for shard in range(shards)]
    await router.start()
    for reference in references:
        await reference.start()
    owners = [shard_of(key, shards) for key in keys]
    for offset in range(0, len(keys), chunk):
        stop = offset + chunk
        await router.ingest(keys[offset:stop], clocks[offset:stop])
        per_shard: dict[int, tuple[list[Any], list[float]]] = {}
        for index in range(offset, min(stop, len(keys))):
            bucket = per_shard.setdefault(owners[index], ([], []))
            bucket[0].append(keys[index])
            bucket[1].append(clocks[index])
        for shard, (sub_keys, sub_clocks) in per_shard.items():
            await references[shard].ingest(sub_keys, sub_clocks)
    await router.drain()
    for reference in references:
        await reference.drain()
    return router, references


async def _shutdown(router: ShardRouter, references: list[SketchService]) -> None:
    await router.stop(drain=True)
    for reference in references:
        await reference.stop(drain=True)


def _ref_sum(references: list[SketchService], op: str, message: dict[str, Any]) -> float:
    return float(sum(float(ref.query(op, dict(message))) for ref in references))


# --------------------------------------------------------------------------
# Flat mode
# --------------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(trace=flat_traces, model=models, backend=backends, shards=shard_counts)
def test_flat_router_matches_references(trace, model, backend, shards):
    keys = [key for key, _gap in trace]
    clocks = _clocks(model, [gap for _key, gap in trace], len(trace))

    async def body():
        config = _config("flat", model, backend, shards)
        router, references = await _drive(config, keys, clocks)
        try:
            probe_keys = sorted(set(keys)) + ["missing-key"]
            for key in probe_keys:
                served = await router.query("point", {"op": "point", "key": key})
                owner = references[shard_of(key, shards)]
                assert served == owner.query("point", {"op": "point", "key": key})
            assert await router.query("self_join", {"op": "self_join"}) == _ref_sum(
                references, "self_join", {"op": "self_join"}
            )
            assert await router.query("arrivals", {"op": "arrivals"}) == _ref_sum(
                references, "arrivals", {"op": "arrivals"}
            )
            # Windowed variants exercise the expiry path of every shard.
            assert await router.query(
                "self_join", {"op": "self_join", "range": 10.0}
            ) == _ref_sum(references, "self_join", {"op": "self_join", "range": 10.0})
            stats = await router.stats()
            assert stats["records_ingested"] == len(keys)
            assert stats["degraded"] == []
        finally:
            await _shutdown(router, references)

    run(body())


@settings(max_examples=10, deadline=None)
@given(trace=flat_traces, model=models, backend=backends)
def test_flat_single_shard_router_is_byte_identical(trace, model, backend):
    """shards=1 adds plumbing but zero approximation: every answer is equal
    to a *monolithic* serial service (not just a worker-config reference)."""
    keys = [key for key, _gap in trace]
    clocks = _clocks(model, [gap for _key, gap in trace], len(trace))

    async def body():
        router, _ = await _drive(_config("flat", model, backend, 1), keys, clocks)
        serial = SketchService(_config("flat", model, backend, None))
        await serial.start()
        await serial.ingest(keys, clocks)
        await serial.drain()
        try:
            for key in sorted(set(keys)) + ["missing-key"]:
                message = {"op": "point", "key": key}
                assert await router.query("point", message) == serial.query("point", message)
            for message in (
                {"op": "self_join"},
                {"op": "arrivals"},
                {"op": "self_join", "range": 7.5},
            ):
                op = str(message["op"])
                assert await router.query(op, message) == serial.query(op, message)
        finally:
            await router.stop(drain=True)
            await serial.stop(drain=True)

    run(body())


# --------------------------------------------------------------------------
# Hierarchical mode
# --------------------------------------------------------------------------
def _reference_quantile(
    references: list[SketchService], fraction: float, range_length: float | None
) -> int:
    """The router's documented quantile semantics, evaluated over references."""
    message: dict[str, Any] = {"op": "arrivals"}
    if range_length is not None:
        message["range"] = range_length
    total = _ref_sum(references, "arrivals", message)
    target = fraction * total
    lo, hi = 0, (1 << UNIVERSE_BITS) - 1
    while lo < hi:
        mid = (lo + hi) // 2
        probe: dict[str, Any] = {"op": "range", "lo": 0, "hi": mid}
        if range_length is not None:
            probe["range"] = range_length
        if _ref_sum(references, "range", probe) >= target:
            hi = mid
        else:
            lo = mid + 1
    return lo


@settings(max_examples=25, deadline=None)
@given(
    trace=hier_traces,
    model=models,
    backend=backends,
    shards=shard_counts,
    phi=st.sampled_from([0.05, 0.2, 0.5]),
)
def test_hierarchical_router_matches_references(trace, model, backend, shards, phi):
    keys = [key for key, _gap in trace]
    clocks = _clocks(model, [gap for _key, gap in trace], len(trace))

    async def body():
        config = _config("hierarchical", model, backend, shards)
        router, references = await _drive(config, keys, clocks)
        try:
            for key in sorted(set(keys))[:16]:
                served = await router.query("point", {"op": "point", "key": key})
                owner = references[shard_of(key, shards)]
                assert served == owner.query("point", {"op": "point", "key": key})
            for lo, hi in ((0, 7), (0, (1 << UNIVERSE_BITS) - 1), (13, 44)):
                message = {"op": "range", "lo": lo, "hi": hi}
                assert await router.query("range", message) == _ref_sum(
                    references, "range", message
                )
            assert await router.query("arrivals", {"op": "arrivals"}) == _ref_sum(
                references, "arrivals", {"op": "arrivals"}
            )

            # Heavy hitters: same absolute threshold, merged detection sets.
            total = _ref_sum(references, "arrivals", {"op": "arrivals"})
            expected = sorted(
                (
                    pair
                    for ref in references
                    for pair in ref.query(
                        "heavy_hitters",
                        {"op": "heavy_hitters", "absolute": phi * total},
                    )
                ),
                key=lambda item: (-item[1], item[0]),
            )
            served_hitters = await router.query(
                "heavy_hitters", {"op": "heavy_hitters", "phi": phi}
            )
            assert [tuple(pair) for pair in served_hitters] == [
                tuple(pair) for pair in expected
            ]

            # Quantiles: the fanned binary search equals the reference search.
            if total > 0.0:
                for fraction in (0.0, 0.25, 0.5, 0.9, 1.0):
                    served = await router.query(
                        "quantile", {"op": "quantile", "fraction": fraction}
                    )
                    assert served == _reference_quantile(references, fraction, None)
                served_multi = await router.query(
                    "quantiles", {"op": "quantiles", "fractions": [0.1, 0.5, 0.99]}
                )
                assert served_multi == [
                    _reference_quantile(references, fraction, None)
                    for fraction in (0.1, 0.5, 0.99)
                ]
        finally:
            await _shutdown(router, references)

    run(body())


@settings(max_examples=10, deadline=None)
@given(trace=hier_traces, model=models, backend=backends)
def test_hierarchical_single_shard_router_is_byte_identical(trace, model, backend):
    keys = [key for key, _gap in trace]
    clocks = _clocks(model, [gap for _key, gap in trace], len(trace))

    async def body():
        router, _ = await _drive(_config("hierarchical", model, backend, 1), keys, clocks)
        serial = SketchService(_config("hierarchical", model, backend, None))
        await serial.start()
        await serial.ingest(keys, clocks)
        await serial.drain()
        try:
            for message in (
                {"op": "range", "lo": 0, "hi": 44},
                {"op": "arrivals"},
                {"op": "heavy_hitters", "phi": 0.2},
                {"op": "quantile", "fraction": 0.5},
                {"op": "quantiles", "fractions": [0.1, 0.9]},
            ):
                op = str(message["op"])
                assert await router.query(op, dict(message)) == serial.query(
                    op, dict(message)
                )
        finally:
            await router.stop(drain=True)
            await serial.stop(drain=True)

    run(body())


# --------------------------------------------------------------------------
# Multisite mode (deterministic: rounds only complete past period boundaries)
# --------------------------------------------------------------------------
class TestMultisiteSharding:
    def _trace(self):
        arrivals = []
        for clock in range(1, 13):
            for site in range(4):
                arrivals.append(("key-%d" % (site % 3), float(clock), site))
        return arrivals

    def test_single_shard_router_matches_serial_coordinator(self):
        async def body():
            shared = dict(mode="multisite", sites=4, period=3.0, window=100.0,
                          epsilon=EPSILON, delta=DELTA, expire_every=None)
            router = ShardRouter(ServiceConfig(shards=1, **shared), local=True)
            serial = SketchService(ServiceConfig(**shared))
            await router.start()
            await serial.start()
            for key, clock, site in self._trace():
                await router.ingest([key], [clock], site=site)
                await serial.ingest([key], [clock], site=site)
            await router.drain()
            await serial.drain()
            try:
                for key in ("key-0", "key-1", "key-2", "nope"):
                    message = {"op": "point", "key": key}
                    assert await router.query("point", message) == serial.query(
                        "point", message
                    )
                assert await router.query("self_join", {"op": "self_join"}) == serial.query(
                    "self_join", {"op": "self_join"}
                )
                message = {"op": "staleness", "now": 12.0}
                assert await router.query("staleness", dict(message)) == serial.query(
                    "staleness", dict(message)
                )
            finally:
                await router.stop(drain=True)
                await serial.stop(drain=True)

        run(body())

    def test_sharded_frequencies_sum_across_site_blocks(self):
        async def body():
            shared = dict(mode="multisite", sites=4, period=3.0, window=100.0,
                          epsilon=EPSILON, delta=DELTA, expire_every=None)
            router = ShardRouter(ServiceConfig(shards=2, **shared), local=True)
            await router.start()
            # References: one coordinator per shard, spanning its site block
            # (sites 0-1 -> shard 0, sites 2-3 -> shard 1).
            references = [
                SketchService(worker_config(ServiceConfig(shards=2, **shared), shard))
                for shard in range(2)
            ]
            for reference in references:
                await reference.start()
            for key, clock, site in self._trace():
                await router.ingest([key], [clock], site=site)
                await references[site // 2].ingest([key], [clock], site=site % 2)
            await router.drain()
            for reference in references:
                await reference.drain()
            try:
                for key in ("key-0", "key-1", "key-2"):
                    message = {"op": "point", "key": key}
                    assert await router.query("point", dict(message)) == _ref_sum(
                        references, "point", message
                    )
                served = await router.query("self_join", {"op": "self_join"})
                assert served > 0.0  # merged cross-block estimate, not a sum
            finally:
                await _shutdown(router, references)

        run(body())
