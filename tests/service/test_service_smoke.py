"""End-to-end smoke test: `repro serve` + `repro replay` as real processes.

This is the tier-1 twin of the CI ``service-smoke`` job: boot the server CLI
in a subprocess, replay ~50k records through the replay CLI, check the
served answers against a serial in-process reference fed the exact same
trace, then SIGTERM the server and verify it drains, snapshots and exits
cleanly — and that the snapshot restores to the same answers.

Process management goes through :class:`~repro.service.launch.ServeProcess`:
the server binds port 0 and announces the kernel-assigned port on its
banner, so there is no free-port race and no connect-polling loop.
"""

from __future__ import annotations

import json
import subprocess
import sys
import pytest

from repro.core import ECMSketch
from repro.service import (
    ServeProcess,
    ServiceConfig,
    SketchService,
    SyncServiceClient,
    build_replay_stream,
    repro_env,
)
from repro.service.snapshot import load_snapshot

RECORDS = 50_000
EPSILON = 0.05
WINDOW = 1_000_000.0
SEED = 7

pytestmark = pytest.mark.integration


class TestServiceSmoke:
    def test_serve_replay_reference_and_sigterm_snapshot(self, tmp_path):
        snapshot_path = tmp_path / "smoke-snapshot.json"
        report_path = tmp_path / "replay-report.json"
        with ServeProcess(
            "--mode", "flat",
            "--epsilon", EPSILON,
            "--window", WINDOW,
            "--snapshot-path", snapshot_path,
        ) as server:
            port = server.wait_ready()
            replay = subprocess.run(
                [
                    sys.executable, "-m", "repro", "replay",
                    "--port", str(port),
                    "--records", str(RECORDS),
                    "--seed", str(SEED),
                    "--json", str(report_path),
                ],
                env=repro_env(),
                capture_output=True,
                text=True,
                timeout=300,
            )
            assert replay.returncode == 0, replay.stdout + replay.stderr
            report = json.loads(report_path.read_text())
            assert report["records"] == RECORDS
            assert report["server_stats"]["records_ingested"] == RECORDS

            # The replay driver replays a deterministic trace: rebuild it and
            # the serial reference, then compare served answers exactly.
            info = {"mode": "flat", "model": "time"}
            trace, clocks = build_replay_stream(info, RECORDS, seed=SEED)
            reference = ECMSketch.for_point_queries(
                epsilon=EPSILON, delta=0.05, window=WINDOW, backend="columnar"
            )
            reference.add_many([record.key for record in trace], clocks)
            probe_keys = sorted({record.key for record in list(trace)[:500]})[:64]
            with SyncServiceClient.connect(port=port) as client:
                for key in probe_keys:
                    assert client.point(key) == reference.point_query(key)
                assert client.self_join() == reference.self_join()

            # SIGTERM: graceful drain + final snapshot + clean exit.
            assert server.stop() == 0, server.output
            assert "drained" in server.output
            assert snapshot_path.exists()

        payload = load_snapshot(snapshot_path)
        assert payload["records_ingested"] == RECORDS
        restored = SketchService.from_snapshot(snapshot_path)
        for key in probe_keys:
            assert restored.query("point", {"key": key}) == reference.point_query(key)

    def test_restore_flag_boots_from_snapshot(self, tmp_path):
        """`repro serve --restore` resumes from a snapshot written by a peer."""
        snapshot_path = tmp_path / "seed-snapshot.json"
        config = ServiceConfig(mode="flat", epsilon=EPSILON, window=WINDOW,
                               snapshot_path=str(snapshot_path))

        import asyncio

        async def seed():
            async with SketchService(config) as service:
                await service.ingest(["x", "y", "x"], [1.0, 2.0, 3.0])
                await service.drain()
                service.snapshot_now()

        asyncio.run(seed())

        with ServeProcess("--restore", snapshot_path) as server:
            port = server.wait_ready()
            with SyncServiceClient.connect(port=port) as client:
                assert client.point("x") == 2.0
                stats = client.get_stats().raw
                assert stats["records_ingested"] == 3
                # The restored server keeps ingesting past the watermark.
                client.ingest(["x"], [4.0])
                client.drain()
                assert client.point("x") == 3.0
            assert server.stop() == 0, server.output
