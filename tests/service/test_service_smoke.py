"""End-to-end smoke test: `repro serve` + `repro replay` as real processes.

This is the tier-1 twin of the CI ``service-smoke`` job: boot the server CLI
in a subprocess, replay ~50k records through the replay CLI, check the
served answers against a serial in-process reference fed the exact same
trace, then SIGTERM the server and verify it drains, snapshots and exits
cleanly — and that the snapshot restores to the same answers.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import pytest

from repro.core import ECMSketch
from repro.service import (
    ServiceConfig,
    SketchService,
    SyncServiceClient,
    build_replay_stream,
    wait_for_server,
)
from repro.service.snapshot import load_snapshot

RECORDS = 50_000
EPSILON = 0.05
WINDOW = 1_000_000.0
SEED = 7

pytestmark = pytest.mark.integration


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _cli_env() -> dict:
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    return env


class TestServiceSmoke:
    def test_serve_replay_reference_and_sigterm_snapshot(self, tmp_path):
        port = _free_port()
        snapshot_path = tmp_path / "smoke-snapshot.json"
        report_path = tmp_path / "replay-report.json"
        env = _cli_env()
        server = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", str(port),
                "--mode", "flat",
                "--epsilon", str(EPSILON),
                "--window", str(WINDOW),
                "--snapshot-path", str(snapshot_path),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            wait_for_server(port=port)
            replay = subprocess.run(
                [
                    sys.executable, "-m", "repro", "replay",
                    "--port", str(port),
                    "--records", str(RECORDS),
                    "--seed", str(SEED),
                    "--json", str(report_path),
                ],
                env=env,
                capture_output=True,
                text=True,
                timeout=300,
            )
            assert replay.returncode == 0, replay.stdout + replay.stderr
            report = json.loads(report_path.read_text())
            assert report["records"] == RECORDS
            assert report["server_stats"]["records_ingested"] == RECORDS

            # The replay driver replays a deterministic trace: rebuild it and
            # the serial reference, then compare served answers exactly.
            info = {"mode": "flat", "model": "time"}
            trace, clocks = build_replay_stream(info, RECORDS, seed=SEED)
            reference = ECMSketch.for_point_queries(
                epsilon=EPSILON, delta=0.05, window=WINDOW, backend="columnar"
            )
            reference.add_many([record.key for record in trace], clocks)
            probe_keys = sorted({record.key for record in list(trace)[:500]})[:64]
            with SyncServiceClient.connect(port=port) as client:
                for key in probe_keys:
                    assert client.point(key) == reference.point_query(key)
                assert client.self_join() == reference.self_join()

            # SIGTERM: graceful drain + final snapshot + clean exit.
            server.send_signal(signal.SIGTERM)
            output, _ = server.communicate(timeout=60)
            assert server.returncode == 0, output
            assert "drained" in output
            assert snapshot_path.exists()

            payload = load_snapshot(snapshot_path)
            assert payload["records_ingested"] == RECORDS
            restored = SketchService.from_snapshot(snapshot_path)
            for key in probe_keys:
                assert restored.query("point", {"key": key}) == reference.point_query(key)
        finally:
            if server.poll() is None:
                server.kill()
                server.communicate(timeout=30)

    def test_restore_flag_boots_from_snapshot(self, tmp_path):
        """`repro serve --restore` resumes from a snapshot written by a peer."""
        snapshot_path = tmp_path / "seed-snapshot.json"
        config = ServiceConfig(mode="flat", epsilon=EPSILON, window=WINDOW,
                               snapshot_path=str(snapshot_path))

        import asyncio

        async def seed():
            async with SketchService(config) as service:
                await service.ingest(["x", "y", "x"], [1.0, 2.0, 3.0])
                await service.drain()
                service.snapshot_now()

        asyncio.run(seed())

        port = _free_port()
        env = _cli_env()
        server = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", str(port),
                "--restore", str(snapshot_path),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            wait_for_server(port=port)
            with SyncServiceClient.connect(port=port) as client:
                assert client.point("x") == 2.0
                stats = client.stats()
                assert stats["records_ingested"] == 3
                # The restored server keeps ingesting past the watermark.
                client.ingest(["x"], [4.0])
                client.drain()
                assert client.point("x") == 3.0
            server.send_signal(signal.SIGTERM)
            output, _ = server.communicate(timeout=60)
            assert server.returncode == 0, output
        finally:
            if server.poll() is None:
                server.kill()
                server.communicate(timeout=30)
