"""In-process tests of the TCP server, clients and replay driver."""

from __future__ import annotations

import asyncio

import pytest

from repro.service import (
    ServiceConfig,
    ServiceClient,
    SketchServer,
    SketchService,
    run_replay,
)
from repro.service.client import ServiceRequestError
from repro.service.replay import build_replay_stream


def run(coroutine):
    return asyncio.run(coroutine)


def serve(config: ServiceConfig) -> SketchServer:
    return SketchServer(SketchService(config))


class TestProtocolDispatch:
    def test_ping_info_stats_and_queries(self):
        async def body():
            async with (
                serve(ServiceConfig(mode="flat")) as server,
                await ServiceClient.connect(port=server.port) as client,
            ):
                assert await client.ping() == "pong"
                info = await client.get_info()
                assert info.mode == "flat"
                assert info.raw["mode"] == "flat"
                await client.ingest(["a", "b", "a"], [1.0, 2.0, 3.0])
                await client.drain()
                assert await client.point("a") == 2.0
                assert await client.self_join() == 5.0
                stats = await client.get_stats()
                assert stats.records_ingested == 3
                # The 1.x dict-returning info()/stats() shims are gone; the
                # raw payloads stay reachable through the typed results.
                assert not hasattr(client, "info")
                assert not hasattr(client, "stats")
                assert stats.raw["records_ingested"] == 3

        run(body())

    def test_request_id_echo_and_error_envelopes(self):
        async def body():
            async with (
                serve(ServiceConfig(mode="flat")) as server,
                await ServiceClient.connect(port=server.port) as client,
            ):
                response = await client.request({"op": "ping", "id": "q-1"})
                assert response == "pong"  # unwrapped; id handled transparently
                with pytest.raises(ServiceRequestError):
                    await client.request({"op": "no-such-op"})
                with pytest.raises(ServiceRequestError):
                    await client.request({"op": "point"})  # missing key
                with pytest.raises(ServiceRequestError):
                    await client.request({"op": "heavy_hitters", "phi": 0.1})  # flat mode
                # The connection survives every rejected request.
                assert await client.ping() == "pong"

        run(body())

    def test_malformed_line_gets_an_error_response(self):
        async def body():
            async with serve(ServiceConfig(mode="flat")) as server:
                reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
                writer.write(b"this is not json\n")
                await writer.drain()
                import json

                response = json.loads(await reader.readline())
                assert response["ok"] is False
                writer.close()
                await writer.wait_closed()

        run(body())

    def test_ingest_validation_reaches_the_client(self):
        async def body():
            async with (
                serve(ServiceConfig(mode="flat")) as server,
                await ServiceClient.connect(port=server.port) as client,
            ):
                await client.ingest(["a"], [5.0])
                with pytest.raises(ServiceRequestError):
                    await client.ingest(["b"], [4.0])  # out of order
                with pytest.raises(ServiceRequestError):
                    await client.request({"op": "ingest", "keys": "ab", "clocks": [1]})

        run(body())

    def test_shutdown_op_drains_and_stops(self):
        async def body():
            service = SketchService(ServiceConfig(mode="flat"))
            server = SketchServer(service)
            await server.start()
            client = await ServiceClient.connect(port=server.port)
            await client.ingest(["a"] * 10, [float(i) for i in range(10)])
            await client.shutdown()
            await client.close()
            await server.serve_until_shutdown()
            # Shutdown drained the queue before stopping.
            assert service.records_ingested == 10

        run(body())

    def test_snapshot_op(self, tmp_path):
        async def body():
            config = ServiceConfig(mode="flat", snapshot_path=str(tmp_path / "s.json"))
            async with (
                serve(config) as server,
                await ServiceClient.connect(port=server.port) as client,
            ):
                await client.ingest(["a"], [1.0])
                await client.drain()
                path = await client.snapshot()
                assert path == str(tmp_path / "s.json")

        run(body())


class TestHierarchicalOverTheWire:
    def test_query_surface(self):
        async def body():
            config = ServiceConfig(mode="hierarchical", universe_bits=6, epsilon=0.05)
            async with (
                serve(config) as server,
                await ServiceClient.connect(port=server.port) as client,
            ):
                keys = [1, 2, 1, 3, 1, 2] * 40
                clocks = [float(i) for i in range(len(keys))]
                await client.ingest(keys, clocks)
                await client.drain()
                assert await client.point(1) >= 120.0
                assert await client.range_query(0, 63) >= 240.0
                hitters = dict(await client.heavy_hitters(phi=0.2))
                assert 1 in hitters
                assert isinstance(await client.quantile(0.5), int)

        run(body())


class TestReplayDriver:
    def test_flat_replay_in_process(self):
        async def body():
            async with serve(ServiceConfig(mode="flat")) as server:
                report = await run_replay(
                    port=server.port, records=4_000, batch_size=512, query_every=2
                )
                assert report.records == 4_000
                assert report.queries > 0
                assert report.achieved_rate > 0
                assert report.server_stats["records_ingested"] == 4_000
                lines = report.format_lines()
                assert any("achieved ingest rate" in line for line in lines)
                payload = report.to_dict()
                assert payload["records"] == 4_000

        run(body())

    def test_paced_replay_respects_target_rate(self):
        async def body():
            async with serve(ServiceConfig(mode="flat")) as server:
                report = await run_replay(
                    port=server.port, records=2_000, batch_size=250,
                    target_rate=4_000.0, query_every=0,
                )
                # Pacing keeps the achieved rate near (and never wildly above)
                # the target; generous bound to stay robust on busy CI runners.
                assert report.achieved_rate <= 4_800.0
                assert report.queries == 0

        run(body())

    def test_hierarchical_replay_in_process(self):
        async def body():
            config = ServiceConfig(mode="hierarchical", universe_bits=10)
            async with serve(config) as server:
                report = await run_replay(
                    port=server.port, records=3_000, batch_size=512, query_every=2
                )
                assert report.records == 3_000
                assert report.queries + report.query_errors > 0

        run(body())

    def test_multisite_replay_in_process(self):
        async def body():
            config = ServiceConfig(mode="multisite", sites=3, period=200_000.0)
            async with serve(config) as server:
                report = await run_replay(
                    port=server.port, records=3_000, batch_size=256, query_every=2
                )
                assert report.records == 3_000
                # Early queries may precede the first aggregation round; they
                # surface as query_errors, not crashes.
                assert report.queries + report.query_errors > 0

        run(body())


class TestBuildReplayStream:
    def test_count_model_clocks_are_indices(self):
        trace, clocks = build_replay_stream({"mode": "flat", "model": "count"}, 100)
        assert clocks == [float(i + 1) for i in range(100)]
        assert len(trace) == 100

    def test_hierarchical_keys_stay_in_universe(self):
        trace, _clocks = build_replay_stream(
            {"mode": "hierarchical", "model": "time", "universe_bits": 6}, 500
        )
        assert all(0 <= record.key < 64 for record in trace)

    def test_same_seed_same_stream(self):
        info = {"mode": "flat", "model": "time"}
        first, _ = build_replay_stream(info, 200, seed=3)
        second, _ = build_replay_stream(info, 200, seed=3)
        assert [r.key for r in first] == [r.key for r in second]
        assert [r.timestamp for r in first] == [r.timestamp for r in second]


class TestShutdownWithConcurrentConnections:
    def test_idle_connection_does_not_block_shutdown(self):
        """An idle monitoring client must not stall the drain (Server.wait_closed
        on Python >= 3.12.1 waits for all connection handlers)."""

        async def body():
            service = SketchService(ServiceConfig(mode="flat"))
            server = SketchServer(service)
            await server.start()
            # An idle connection that never sends anything.
            idle = await ServiceClient.connect(port=server.port)
            # A second client requests shutdown.
            active = await ServiceClient.connect(port=server.port)
            await active.ingest(["a"], [1.0])
            await active.shutdown()
            await asyncio.wait_for(server.serve_until_shutdown(), timeout=15.0)
            assert service.records_ingested == 1
            await active.close()
            await idle.close()

        run(body())

    def test_raw_nan_ingest_line_is_rejected(self):
        async def body():
            async with serve(ServiceConfig(mode="flat")) as server:
                reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
                writer.write(b'{"op":"ingest","keys":["a"],"clocks":[NaN]}\n')
                await writer.drain()
                import json

                response = json.loads(await reader.readline())
                assert response["ok"] is False
                writer.close()
                await writer.wait_closed()

        run(body())


class TestReplayCliRejection:
    def test_second_replay_fails_politely(self):
        """Replaying twice sends clocks below the watermark: the CLI must
        report the rejection, not dump a traceback."""
        from repro.cli import main as cli_main

        async def start():
            server = serve(ServiceConfig(mode="flat"))
            await server.start()
            return server

        # Drive the server in a background thread loop so the CLI's own
        # asyncio.run calls can nest freely.
        import threading

        loop = asyncio.new_event_loop()
        thread = threading.Thread(target=loop.run_forever, daemon=True)
        thread.start()
        try:
            server = asyncio.run_coroutine_threadsafe(start(), loop).result(timeout=10)
            lines = []
            code = cli_main(
                ["replay", "--port", str(server.port), "--records", "500",
                 "--query-every", "0"],
                out=lines.append,
            )
            assert code == 0
            lines2 = []
            code2 = cli_main(
                ["replay", "--port", str(server.port), "--records", "500",
                 "--query-every", "0"],
                out=lines2.append,
            )
            assert code2 == 1
            assert any("rejected" in line for line in lines2)
            asyncio.run_coroutine_threadsafe(server.shutdown(), loop).result(timeout=10)
            asyncio.run_coroutine_threadsafe(
                server.serve_until_shutdown(), loop
            ).result(timeout=30)
        finally:
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=10)
            loop.close()
