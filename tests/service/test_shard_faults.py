"""Fault injection against the process-backed sharded tier.

SIGKILL a shard worker mid-stream and check the router's contract:

* it *reports* — stats answer promptly with the victim listed under
  ``degraded`` (no hang on a dead connection);
* it *fails fast* — ingest touching the dead shard and fan-out queries
  raise :class:`ShardUnavailableError` instead of blocking, while queries
  owned by healthy shards keep answering;
* it *recovers* — ``restart_shard`` respawns the worker from its per-shard
  snapshot, the high-water mark rolls back to the snapshot clock so the
  lost tail can be re-sent, and post-recovery answers match serial
  references fed the full trace;
* a router restarted from the manifest reassembles the exact pre-crash
  state across all shards.
"""

from __future__ import annotations

import asyncio
import os
from typing import Any

import pytest

from repro.service import ServiceConfig, ShardRouter, SketchService, shard_of
from repro.service.shard_worker import ShardUnavailableError, worker_config

pytestmark = pytest.mark.integration

SHARDS = 3
WINDOW = 1_000_000.0
_STEP_TIMEOUT = 60.0


def _config(snapshot_path: str) -> ServiceConfig:
    return ServiceConfig(
        mode="flat",
        epsilon=0.1,
        window=WINDOW,
        shards=SHARDS,
        batch_size=64,
        expire_every=None,
        snapshot_path=snapshot_path,
        seed=5,
    )


def _trace(records: int, start_clock: float = 1.0) -> tuple[list[str], list[float]]:
    keys = ["key-%d" % (index % 12) for index in range(records)]
    clocks = [start_clock + index for index in range(records)]
    return keys, clocks


async def _bounded(awaitable, timeout: float = _STEP_TIMEOUT):
    """Every step of a fault test must finish or fail — never hang."""
    return await asyncio.wait_for(awaitable, timeout)


async def _reference_answers(
    config: ServiceConfig, keys: list[str], clocks: list[float]
) -> dict[str, Any]:
    """Serial per-shard references fed the full trace, merged like the router."""
    references = [SketchService(worker_config(config, shard)) for shard in range(SHARDS)]
    for reference in references:
        await reference.start()
    per_shard: dict[int, tuple[list[str], list[float]]] = {}
    for key, clock in zip(keys, clocks, strict=False):
        bucket = per_shard.setdefault(shard_of(key, SHARDS), ([], []))
        bucket[0].append(key)
        bucket[1].append(clock)
    for shard, (sub_keys, sub_clocks) in per_shard.items():
        await references[shard].ingest(sub_keys, sub_clocks)
    answers: dict[str, Any] = {}
    for reference in references:
        await reference.drain()
    probe_keys = sorted(set(keys))
    answers["points"] = {
        key: references[shard_of(key, SHARDS)].query("point", {"op": "point", "key": key})
        for key in probe_keys
    }
    answers["self_join"] = float(
        sum(ref.query("self_join", {"op": "self_join"}) for ref in references)
    )
    for reference in references:
        await reference.stop(drain=False)
    return answers


class TestShardFaults:
    def test_sigkill_degrades_fails_fast_and_recovers(self, tmp_path):
        manifest = str(tmp_path / "faults-manifest.json")
        config = _config(manifest)
        keys, clocks = _trace(600)
        cut = 400  # snapshot covers [0, cut); the tail is re-sent after recovery

        async def body():
            router = ShardRouter(config)
            await _bounded(router.start(), 120.0)
            try:
                await _bounded(router.ingest(keys[:cut], clocks[:cut]))
                await _bounded(router.drain())
                await _bounded(router.snapshot_async())
                await _bounded(router.ingest(keys[cut:], clocks[cut:]))
                await _bounded(router.drain())

                victim = shard_of(keys[0], SHARDS)
                router.workers.kill(victim)

                # Degraded status is *reported*, promptly, not hung on.
                stats = await _bounded(router.stats())
                assert victim in stats["degraded"]
                assert not stats["shard_details"][victim]["alive"]

                # Ingest touching the victim fails fast...
                with pytest.raises(ShardUnavailableError):
                    await _bounded(
                        router.ingest(keys[:SHARDS * 4], [clocks[-1] + 1.0] * (SHARDS * 4))
                    )
                # ...fan-out queries fail fast...
                with pytest.raises(ShardUnavailableError):
                    await _bounded(router.query("self_join", {"op": "self_join"}))
                with pytest.raises(ShardUnavailableError):
                    await _bounded(router.drain())
                # ...and snapshots refuse (a manifest missing a live shard
                # would restore into silent data loss).
                with pytest.raises(ShardUnavailableError):
                    await _bounded(router.snapshot_async())

                # Keys owned by healthy shards still answer.
                healthy = next(
                    key for key in sorted(set(keys)) if shard_of(key, SHARDS) != victim
                )
                assert (
                    await _bounded(router.query("point", {"op": "point", "key": healthy}))
                    >= 0.0
                )

                # Recovery: respawn from the per-shard snapshot; the victim's
                # high-water mark rolls back to the snapshot clock.
                outcome = await _bounded(router.restart_shard(victim), 120.0)
                assert outcome["restored_from"] is not None
                victim_snapshot_clock = max(
                    clock
                    for key, clock in zip(keys[:cut], clocks[:cut], strict=False)
                    if shard_of(key, SHARDS) == victim
                )
                assert outcome["applied_clock"] == victim_snapshot_clock
                assert (await _bounded(router.stats()))["degraded"] == []

                # Re-send the victim's lost tail (snapshot-granular recovery
                # contract; healthy shards keep their high-water marks, so
                # only the victim's sub-stream is replayed), then compare
                # every answer against serial references.
                lost = [
                    (key, clock)
                    for key, clock in zip(keys[cut:], clocks[cut:], strict=False)
                    if shard_of(key, SHARDS) == victim
                ]
                await _bounded(
                    router.ingest([key for key, _ in lost], [clock for _, clock in lost])
                )
                await _bounded(router.drain())
                reference = await _reference_answers(config, keys, clocks)
                for key, expected in reference["points"].items():
                    served = await _bounded(router.query("point", {"op": "point", "key": key}))
                    assert served == expected, key
                assert (
                    await _bounded(router.query("self_join", {"op": "self_join"}))
                    == reference["self_join"]
                )
            finally:
                await router.stop(drain=False)

        asyncio.run(body())

    def test_router_restart_from_manifest_reassembles_state(self, tmp_path):
        manifest = str(tmp_path / "restart-manifest.json")
        config = _config(manifest)
        keys, clocks = _trace(500)

        async def body():
            router = ShardRouter(config)
            await _bounded(router.start(), 120.0)
            try:
                await _bounded(router.ingest(keys, clocks))
                await _bounded(router.drain())
            finally:
                # Graceful stop drains and writes the final manifest.
                final = await _bounded(router.stop(drain=True), 120.0)
            assert final == manifest
            assert os.path.exists(manifest)

            restored = ShardRouter.from_manifest(manifest)
            await _bounded(restored.start(), 120.0)
            try:
                assert restored.records_ingested == len(keys)
                reference = await _reference_answers(config, keys, clocks)
                for key, expected in reference["points"].items():
                    served = await _bounded(
                        restored.query("point", {"op": "point", "key": key})
                    )
                    assert served == expected, key
                # The restored tier keeps ingesting past the watermark.
                await _bounded(restored.ingest([keys[0]], [clocks[-1] + 1.0]))
                await _bounded(restored.drain())
                bumped = await _bounded(
                    restored.query("point", {"op": "point", "key": keys[0]})
                )
                assert bumped == reference["points"][keys[0]] + 1.0
            finally:
                await restored.stop(drain=False)

        asyncio.run(body())

    def test_dead_channel_fails_pending_requests(self, tmp_path):
        """A request racing a worker death resolves with
        ShardUnavailableError — it is not a stranded future.  Depending on
        when the EOF is noticed the error is raised at submit time or when
        the response future fails; both surface the same exception."""
        config = _config(str(tmp_path / "inflight-manifest.json"))
        keys, clocks = _trace(50)

        async def body():
            router = ShardRouter(config)
            await _bounded(router.start(), 120.0)
            try:
                await _bounded(router.ingest(keys, clocks))
                await _bounded(router.drain())
                victim = 0
                router.workers.kill(victim)
                with pytest.raises(ShardUnavailableError):
                    await _bounded(router.workers.submit(victim, {"op": "drain"}))
            finally:
                await router.stop(drain=False)

        asyncio.run(body())
