"""Tests of the multi-tenant pool: catalog, namespacing, memory governor.

All in-process (no sockets): the pool is driven directly through its
tenant-namespaced surface, the same one ``dispatch_service_op`` serves.
"""

from __future__ import annotations

import asyncio
import json
import os
import time

import pytest

from repro.core import ECMSketch
from repro.service import (
    ServiceConfig,
    TenantCatalog,
    TenantPool,
)
from repro.service.errors import (
    InvalidParameterError,
    TenantEvictedError,
    TenantExistsError,
    TenantNotFoundError,
    TenantRequiredError,
)

EPSILON = 0.1
WINDOW = 1_000_000.0


def run(coroutine):
    return asyncio.run(coroutine)


def pool_config(pool_dir, **overrides) -> ServiceConfig:
    defaults = dict(
        mode="flat",
        epsilon=EPSILON,
        delta=0.05,
        window=WINDOW,
        pool=True,
        pool_dir=str(pool_dir),
        expire_every=None,
        snapshot_every=None,
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def trace(seed: int, records: int = 400):
    """A deterministic (keys, clocks) stream, distinct per seed."""
    keys = ["k%d" % ((index * seed) % 37) for index in range(records)]
    clocks = [float(index + 1) for index in range(records)]
    return keys, clocks


async def fill(pool: TenantPool, tenant: str, seed: int, records: int = 400) -> None:
    keys, clocks = trace(seed, records)
    await pool.ingest(keys, clocks, tenant=tenant)
    await pool.drain(tenant=tenant)


def reference(seed: int, records: int = 400) -> ECMSketch:
    sketch = ECMSketch.for_point_queries(
        epsilon=EPSILON, delta=0.05, window=WINDOW, backend="columnar"
    )
    keys, clocks = trace(seed, records)
    sketch.add_many(keys, clocks)
    return sketch


class TestCatalog:
    def test_create_get_delete(self, tmp_path):
        catalog = TenantCatalog(str(tmp_path / "catalog.sqlite"))
        catalog.create("alpha", {"mode": "flat"}, now=1.0, seq=1)
        row = catalog.get("alpha")
        assert row["tenant"] == "alpha"
        assert json.loads(row["config"]) == {"mode": "flat"}
        assert row["resident"] == 1
        with pytest.raises(TenantExistsError):
            catalog.create("alpha", {}, now=2.0, seq=2)
        assert catalog.count() == 1
        assert catalog.delete("alpha") is True
        assert catalog.delete("alpha") is False
        assert catalog.get("alpha") is None
        catalog.close()

    def test_reopen_clears_stale_residency(self, tmp_path):
        path = str(tmp_path / "catalog.sqlite")
        catalog = TenantCatalog(path)
        catalog.create("alpha", {}, now=1.0, seq=1)
        catalog.create("beta", {}, now=2.0, seq=2)
        catalog.mark_evicted("beta", "/tmp/beta.json", 10, 5.0)
        # Simulate a crash: close without clearing alpha's residency flag.
        catalog.close()
        reopened = TenantCatalog(path)
        for row in reopened.rows():
            assert row["resident"] == 0, row["tenant"]
        assert reopened.max_touch_seq() == 2
        reopened.close()


class TestTenantLifecycle:
    def test_create_list_stats_delete(self, tmp_path):
        async def body():
            async with TenantPool(pool_config(tmp_path)) as pool:
                stats = await pool.tenant_create("alpha")
                assert stats["tenant"] == "alpha"
                assert stats["resident"] is True
                await pool.tenant_create("beta", {"mode": "hierarchical", "universe_bits": 8})
                listing = {entry["tenant"]: entry for entry in await pool.tenant_list()}
                assert set(listing) == {"alpha", "beta"}
                assert listing["alpha"]["mode"] == "flat"
                assert listing["beta"]["mode"] == "hierarchical"
                assert listing["beta"]["resident"] is True
                await pool.tenant_delete("beta")
                assert [entry["tenant"] for entry in await pool.tenant_list()] == ["alpha"]

        run(body())

    def test_lifecycle_errors(self, tmp_path):
        async def body():
            async with TenantPool(pool_config(tmp_path)) as pool:
                await pool.tenant_create("alpha")
                with pytest.raises(TenantExistsError):
                    await pool.tenant_create("alpha")
                with pytest.raises(TenantNotFoundError):
                    await pool.tenant_delete("ghost")
                with pytest.raises(TenantNotFoundError):
                    await pool.tenant_stats("ghost")
                with pytest.raises(TenantRequiredError):
                    await pool.ingest(["a"], [1.0])
                with pytest.raises(InvalidParameterError):
                    await pool.tenant_create("../escape")
                with pytest.raises(InvalidParameterError):
                    await pool.tenant_create("ok", {"batch_size": 5})

        run(body())

    def test_tenants_are_isolated(self, tmp_path):
        async def body():
            async with TenantPool(pool_config(tmp_path)) as pool:
                await pool.tenant_create("alpha")
                await pool.tenant_create("beta")
                await fill(pool, "alpha", seed=3)
                await fill(pool, "beta", seed=5)
                for tenant, seed in (("alpha", 3), ("beta", 5)):
                    serial = reference(seed)
                    for key in ("k0", "k3", "k9"):
                        served = await pool.query("point", {"tenant": tenant, "key": key})
                        assert served == serial.point_query(key), (tenant, key)

        run(body())


class TestMemoryGovernor:
    def test_lru_eviction_spares_the_hottest(self, tmp_path):
        async def body():
            async with TenantPool(pool_config(tmp_path)) as pool:
                for tenant, seed in (("cold", 3), ("warm", 5), ("hot", 7)):
                    await pool.tenant_create(tenant)
                    await fill(pool, tenant, seed=seed)
                # Touch order is now cold < warm < hot.  A budget one byte
                # below the total needs exactly one eviction: the coldest.
                pool.config.memory_budget_bytes = pool.accounted_bytes() - 1
                swept = await pool.sweep()
                assert swept["evicted"] == ["cold"]
                listing = {entry["tenant"]: entry for entry in await pool.tenant_list()}
                assert listing["cold"]["resident"] is False
                assert listing["cold"]["snapshot_path"] is not None
                assert listing["hot"]["resident"] is True
                stats = pool.stats()
                assert stats["evictions"] == 1
                assert stats["tenants_resident"] == 2

        run(body())

    def test_budget_exactly_at_boundary_evicts_nothing(self, tmp_path):
        async def body():
            async with TenantPool(pool_config(tmp_path)) as pool:
                await pool.tenant_create("alpha")
                await pool.tenant_create("beta")
                await fill(pool, "alpha", seed=3)
                await fill(pool, "beta", seed=5)
                pool.config.memory_budget_bytes = pool.accounted_bytes()
                swept = await pool.sweep()
                assert swept["evicted"] == []
                assert pool.stats()["tenants_resident"] == 2

        run(body())

    def test_last_resident_is_never_evicted(self, tmp_path):
        async def body():
            async with TenantPool(pool_config(tmp_path, memory_budget_bytes=1)) as pool:
                await pool.tenant_create("alpha")
                await fill(pool, "alpha", seed=3)
                await pool.tenant_create("beta")
                await fill(pool, "beta", seed=5)
                # Both tenants dwarf the 1-byte budget; the governor evicts
                # down to one resident and then stops rather than thrash.
                assert pool.stats()["tenants_resident"] == 1
                swept = await pool.sweep()
                assert swept["resident"] == 1
                assert pool.accounted_bytes() > 1

        run(body())

    def test_eviction_under_ingest_load(self, tmp_path):
        async def body():
            async with TenantPool(pool_config(tmp_path, memory_budget_bytes=1)) as pool:
                for tenant in ("alpha", "beta"):
                    await pool.tenant_create(tenant)

                async def hammer(tenant, seed):
                    for round_index in range(5):
                        keys, clocks = trace(seed, 100)
                        shifted = [clock + 100.0 * round_index for clock in clocks]
                        await pool.ingest(keys, shifted, tenant=tenant)

                # Concurrent ingest into both tenants with a 1-byte budget:
                # every other chunk evicts the peer, forcing restores mid
                # stream.  The per-tenant locks make that safe; every
                # acknowledged record must survive the churn.
                await asyncio.gather(hammer("alpha", 3), hammer("beta", 5))
                for tenant in ("alpha", "beta"):
                    stats = await pool.tenant_stats(tenant)
                    assert stats["records_ingested"] == 500, tenant
                assert pool.stats()["evictions"] >= 2
                assert pool.stats()["restores"] >= 2

        run(body())

    def test_eviction_does_not_stall_the_loop(self, tmp_path, monkeypatch):
        """A slow catalog commit during eviction must not block the loop.

        The catalog write runs on the catalog's worker thread (reprolint
        RL002 is the static side of this invariant); a heartbeat coroutine
        must keep ticking while an eviction sits inside a pathologically
        slow ``mark_evicted``.  Before the off-loop catalog, this test
        observes a frozen loop: ~0 beats across the whole eviction.
        """

        async def body():
            async with TenantPool(pool_config(tmp_path)) as pool:
                await pool.tenant_create("cold")
                await fill(pool, "cold", seed=3, records=200)

                real_mark_evicted = TenantCatalog.mark_evicted

                def slow_mark_evicted(catalog, *args):
                    time.sleep(0.6)  # worker thread, not the event loop
                    return real_mark_evicted(catalog, *args)

                monkeypatch.setattr(TenantCatalog, "mark_evicted", slow_mark_evicted)

                beats = 0
                stop = asyncio.Event()

                async def heartbeat():
                    nonlocal beats
                    while not stop.is_set():
                        await asyncio.sleep(0.01)
                        beats += 1

                ticker = asyncio.create_task(heartbeat())
                assert await pool._evict("cold") is True
                stop.set()
                await ticker
                # A loop frozen for the 0.6s commit yields ~0 beats; the
                # off-loop commit yields ~60.  10 leaves slack for slow CI.
                assert beats >= 10, "event loop stalled during eviction (%d beats)" % beats

        run(body())

    def test_concurrent_queries_during_restore(self, tmp_path):
        async def body():
            async with TenantPool(pool_config(tmp_path)) as pool:
                await pool.tenant_create("alpha")
                await fill(pool, "alpha", seed=3)
                expected = await pool.query("point", {"tenant": "alpha", "key": "k3"})
                await pool._evict("alpha")
                assert pool.stats()["tenants_resident"] == 0
                answers = await asyncio.gather(
                    *(
                        pool.query("point", {"tenant": "alpha", "key": "k3"})
                        for _ in range(8)
                    )
                )
                assert answers == [expected] * 8
                # The racing queries serialized on the tenant lock: one
                # restore, not eight.
                assert pool.stats()["restores"] == 1

        run(body())


class TestEvictRestoreFidelity:
    MATRIX = [
        ("flat", "columnar", {}),
        ("flat", "object", {}),
        ("hierarchical", "columnar", {"universe_bits": 8}),
        ("hierarchical", "object", {"universe_bits": 8}),
    ]

    @pytest.mark.parametrize("mode,backend,extra", MATRIX, ids=lambda value: str(value))
    def test_restore_is_byte_identical(self, tmp_path, mode, backend, extra):
        async def body():
            async with TenantPool(pool_config(tmp_path)) as pool:
                overrides = dict(mode=mode, backend=backend, **extra)
                await pool.tenant_create("alpha", overrides)
                keys, clocks = trace(seed=3)
                if mode == "hierarchical":
                    keys = [hash(key) % 256 for key in keys]
                await pool.ingest(keys, clocks, tenant="alpha")
                await pool.drain(tenant="alpha")
                probe = keys[0]
                before = await pool.query("point", {"tenant": "alpha", "key": probe})

                assert await pool._evict("alpha") is True
                path = pool._snapshot_path_for("alpha")
                evicted_bytes = open(path, "rb").read()

                # Touch the tenant: lazily restored from the snapshot.
                after = await pool.query("point", {"tenant": "alpha", "key": probe})
                assert after == before

                # Snapshot the restored state over the same path: the file
                # must come back byte-for-byte (the payload is fully
                # deterministic, so equality means state equality).
                rewritten = await pool.snapshot_async(tenant="alpha")
                assert rewritten == path
                assert open(path, "rb").read() == evicted_bytes

        run(body())

    def test_missing_snapshot_is_reported(self, tmp_path):
        async def body():
            async with TenantPool(pool_config(tmp_path)) as pool:
                await pool.tenant_create("alpha")
                await fill(pool, "alpha", seed=3)
                await pool._evict("alpha")
                os.unlink(pool._snapshot_path_for("alpha"))
                with pytest.raises(TenantEvictedError):
                    await pool.tenant_stats("alpha")
                # The catalog entry survives so the operator can decide.
                listing = await pool.tenant_list()
                assert [entry["tenant"] for entry in listing] == ["alpha"]
                # Explicit delete + re-create is the recovery path.
                await pool.tenant_delete("alpha")
                await pool.tenant_create("alpha")
                assert (await pool.tenant_stats("alpha"))["records_ingested"] == 0

        run(body())

    def test_corrupt_snapshot_is_reported(self, tmp_path):
        async def body():
            async with TenantPool(pool_config(tmp_path)) as pool:
                await pool.tenant_create("alpha")
                await fill(pool, "alpha", seed=3)
                await pool._evict("alpha")
                with open(pool._snapshot_path_for("alpha"), "w") as handle:
                    handle.write('{"kind": "garbage"')
                with pytest.raises(TenantEvictedError):
                    await pool.query("point", {"tenant": "alpha", "key": "k0"})

        run(body())


class TestPoolRestart:
    def test_restart_restores_catalog_and_state(self, tmp_path):
        async def body():
            async with TenantPool(pool_config(tmp_path)) as pool:
                await pool.tenant_create("alpha")
                await pool.tenant_create("beta", {"mode": "hierarchical", "universe_bits": 8})
                await fill(pool, "alpha", seed=3)
                before = await pool.query("point", {"tenant": "alpha", "key": "k3"})
            # __aexit__ drained: every tenant evicted to its snapshot.

            async with TenantPool(pool_config(tmp_path)) as restarted:
                listing = {entry["tenant"]: entry for entry in await restarted.tenant_list()}
                assert set(listing) == {"alpha", "beta"}
                assert all(not entry["resident"] for entry in listing.values())
                assert listing["alpha"]["records_ingested"] == 400
                after = await restarted.query("point", {"tenant": "alpha", "key": "k3"})
                assert after == before
                assert restarted.stats()["restores"] == 1

        run(body())
