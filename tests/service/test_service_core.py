"""Tests of the SketchService core: queueing, batching, queries, lifecycle."""

from __future__ import annotations

import asyncio

import pytest

from repro.core import ECMSketch
from repro.core.config import ECMConfig
from repro.core.errors import ConfigurationError
from repro.distributed.continuous import PeriodicAggregationCoordinator
from repro.queries.hierarchical import HierarchicalECMSketch
from repro.serialization import dumps
from repro.service import (
    IngestRejectedError,
    ServiceConfig,
    ServiceStoppedError,
    SketchService,
)
from repro.service.core import ServiceError
from repro.streams import IntegerZipfTrace, WorldCupSyntheticTrace


def run(coroutine):
    """Drive one async test body to completion."""
    return asyncio.run(coroutine)


def flat_config(**overrides) -> ServiceConfig:
    return ServiceConfig(mode="flat", **overrides)


class TestServiceConfig:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig(mode="turbo")

    def test_rejects_snapshot_period_without_path(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig(snapshot_every=5.0)

    def test_round_trips_through_dict(self):
        config = ServiceConfig(mode="hierarchical", universe_bits=10, epsilon=0.1,
                               snapshot_path="snap.json", snapshot_every=2.0)
        assert ServiceConfig.from_dict(config.to_dict()) == config

    def test_describe_is_mode_specific(self):
        assert "universe_bits" in ServiceConfig(mode="hierarchical").describe()
        assert "sites" in ServiceConfig(mode="multisite").describe()
        flat = ServiceConfig(mode="flat").describe()
        assert "universe_bits" not in flat and "sites" not in flat


class TestFlatIngestAndQueries:
    def test_service_state_matches_serial_reference(self):
        """Chunked concurrent-path ingest is byte-identical to serial add_many."""
        trace = WorldCupSyntheticTrace(num_records=4_000).generate()
        keys = [record.key for record in trace]
        clocks = [record.timestamp for record in trace]

        async def body():
            service = SketchService(flat_config(batch_size=256))
            async with service:
                # Many small, unevenly sized chunks — the ingest loop coalesces.
                position = 0
                size = 1
                while position < len(keys):
                    stop = min(len(keys), position + size)
                    await service.ingest(keys[position:stop], clocks[position:stop])
                    position = stop
                    size = (size * 3) % 97 + 1
                await service.drain()
                return dumps(service.state), service.records_ingested

        service_bytes, ingested = run(body())
        reference = ECMSketch(ECMConfig.for_point_queries(
            epsilon=0.05, delta=0.05, window=1_000_000.0, backend="columnar"))
        reference.add_many(keys, clocks)
        assert ingested == len(keys)
        assert service_bytes == dumps(reference)

    def test_queries_between_batches(self):
        async def body():
            async with SketchService(flat_config()) as service:
                await service.ingest(["a", "b", "a", "a"], [1.0, 2.0, 3.0, 4.0])
                await service.drain()
                point = service.query("point", {"key": "a"})
                self_join = service.query("self_join", {})
                arrivals = service.query("arrivals", {})
                return point, self_join, arrivals

        point, self_join, arrivals = run(body())
        assert point == 3.0
        assert self_join == 10.0
        assert arrivals == 4.0

    def test_weighted_ingest(self):
        async def body():
            async with SketchService(flat_config()) as service:
                await service.ingest(["a", "b"], [1.0, 2.0], values=[5, 2])
                await service.drain()
                return service.records_ingested, service.query("point", {"key": "a"})

        ingested, point = run(body())
        assert ingested == 7
        assert point == 5.0

    def test_stats_shape(self):
        async def body():
            async with SketchService(flat_config()) as service:
                await service.ingest(["a"], [1.0])
                await service.drain()
                return service.stats(), service.info()

        stats, info = run(body())
        assert stats["records_ingested"] == 1
        assert stats["pending_arrivals"] == 0
        assert stats["applied_clock"] == 1.0
        assert stats["memory_bytes"] > 0
        assert stats["mode"] == info["mode"] == "flat"

    def test_expire_now_is_a_no_op_for_answers(self):
        async def body():
            async with SketchService(flat_config(window=10.0)) as service:
                await service.ingest(["a"] * 5, [1.0, 2.0, 3.0, 11.5, 12.0])
                await service.drain()
                before = service.query("point", {"key": "a"})
                service.expire_now()
                after = service.query("point", {"key": "a"})
                return before, after

        before, after = run(body())
        assert before == after


class TestIngestValidation:
    def test_rejects_out_of_order_chunks(self):
        async def body():
            async with SketchService(flat_config()) as service:
                await service.ingest(["a"], [10.0])
                with pytest.raises(IngestRejectedError):
                    await service.ingest(["b"], [9.0])
                # The rejected chunk left no trace: ingest continues cleanly.
                await service.ingest(["c"], [10.0])
                await service.drain()
                return service.records_ingested

        assert run(body()) == 2

    def test_rejects_internal_clock_regression(self):
        async def body():
            async with SketchService(flat_config()) as service:
                with pytest.raises(IngestRejectedError):
                    await service.ingest(["a", "b"], [5.0, 4.0])

        run(body())

    def test_rejects_length_mismatch_and_empty(self):
        async def body():
            async with SketchService(flat_config()) as service:
                with pytest.raises(IngestRejectedError):
                    await service.ingest(["a", "b"], [1.0])
                with pytest.raises(IngestRejectedError):
                    await service.ingest([], [])
                with pytest.raises(IngestRejectedError):
                    await service.ingest(["a"], [1.0], values=[1, 2])
                with pytest.raises(IngestRejectedError):
                    await service.ingest(["a"], [1.0], values=[-1])

        run(body())

    def test_hierarchical_rejects_out_of_universe_keys(self):
        async def body():
            config = ServiceConfig(mode="hierarchical", universe_bits=4)
            async with SketchService(config) as service:
                with pytest.raises(IngestRejectedError):
                    await service.ingest([16], [1.0])
                with pytest.raises(IngestRejectedError):
                    await service.ingest(["a"], [1.0])
                await service.ingest([15], [1.0])

        run(body())

    def test_multisite_rejects_bad_site(self):
        async def body():
            config = ServiceConfig(mode="multisite", sites=2, period=100.0)
            async with SketchService(config) as service:
                with pytest.raises(IngestRejectedError):
                    await service.ingest(["a"], [1.0], site=2)

        run(body())

    def test_stopped_service_rejects_ingest(self):
        async def body():
            service = SketchService(flat_config())
            await service.start()
            await service.stop()
            with pytest.raises(ServiceStoppedError):
                await service.ingest(["a"], [1.0])

        run(body())


class TestBackpressure:
    def test_bounded_queue_suspends_producers(self):
        """With a tiny queue, a flood of puts cannot run ahead of the consumer."""

        async def body():
            config = flat_config(queue_chunks=2, batch_size=8)
            async with SketchService(config) as service:
                clock = 0.0
                for _ in range(64):
                    clock += 1.0
                    await service.ingest(["k"], [clock])
                    # The queue bound holds at every instant.
                    assert service.stats()["pending_chunks"] <= 2
                await service.drain()
                return service.records_ingested

        assert run(body()) == 64


class TestHierarchicalQueries:
    def test_hierarchical_query_surface(self):
        trace = IntegerZipfTrace(num_records=3_000, universe_bits=10, seed=3).generate()
        keys = [record.key for record in trace]
        clocks = [record.timestamp for record in trace]

        async def body():
            config = ServiceConfig(mode="hierarchical", universe_bits=10, epsilon=0.02)
            async with SketchService(config) as service:
                for start in range(0, len(keys), 512):
                    await service.ingest(keys[start:start + 512], clocks[start:start + 512])
                await service.drain()
                point = service.query("point", {"key": keys[0]})
                rng = service.query("range", {"lo": 0, "hi": 1023})
                hitters = service.query("heavy_hitters", {"phi": 0.05})
                median = service.query("quantile", {"fraction": 0.5})
                deciles = service.query("quantiles", {"fractions": [0.25, 0.5, 0.75]})
                return point, rng, hitters, median, deciles

        point, rng, hitters, median, deciles = run(body())
        reference = HierarchicalECMSketch(universe_bits=10, epsilon=0.02, delta=0.05,
                                          window=1_000_000.0)
        reference.add_many(keys, clocks)
        assert point == reference.point_query(keys[0])
        assert rng == reference.range_query(0, 1023)
        assert dict(hitters) == reference.heavy_hitters(0.05)
        assert median == reference.quantile(0.5)
        assert deciles == reference.quantiles([0.25, 0.5, 0.75])

    def test_mode_mismatch_is_rejected(self):
        async def body():
            async with SketchService(flat_config()) as service:
                with pytest.raises(ServiceError):
                    service.query("heavy_hitters", {"phi": 0.1})
                with pytest.raises(ServiceError):
                    service.query("quantile", {"fraction": 0.5})
            config = ServiceConfig(mode="hierarchical", universe_bits=4)
            async with SketchService(config) as service:
                with pytest.raises(ServiceError):
                    service.query("self_join", {})
                # arrivals is served in hierarchical mode too (estimate_total
                # over the leaf level) — the sharded router fans it out.
                assert service.query("arrivals", {}) == 0.0

        run(body())

    def test_unknown_op_and_missing_params(self):
        async def body():
            async with SketchService(flat_config()) as service:
                with pytest.raises(ServiceError):
                    service.query("frobnicate", {})
                with pytest.raises(ServiceError):
                    service.query("point", {})

        run(body())


class TestMultisiteMode:
    def test_rounds_match_direct_coordinator(self):
        """Service-path multisite ingest reproduces the coordinator exactly."""
        trace = WorldCupSyntheticTrace(num_records=3_000, num_nodes=3).generate()
        records = list(trace)

        async def body():
            config = ServiceConfig(mode="multisite", sites=3, period=100_000.0,
                                   batch_size=256)
            async with SketchService(config) as service:
                # Chunks per contiguous same-site run, exactly as the reference
                # coordinator routes per-record arrivals.
                start = 0
                for index in range(1, len(records) + 1):
                    if index == len(records) or records[index].node % 3 != records[start].node % 3:
                        segment = records[start:index]
                        await service.ingest(
                            [r.key for r in segment],
                            [r.timestamp for r in segment],
                            site=segment[0].node % 3,
                        )
                        start = index
                await service.drain()
                coordinator = service.state
                return (
                    coordinator.stats.rounds,
                    service.query("point", {"key": records[0].key}),
                    service.query("self_join", {}),
                    service.query("staleness", {"now": records[-1].timestamp}),
                )

        rounds, point, self_join, staleness = run(body())
        reference = PeriodicAggregationCoordinator(
            num_nodes=3,
            config=ECMConfig.for_point_queries(epsilon=0.05, delta=0.05,
                                               window=1_000_000.0),
            period=100_000.0,
        )
        for record in records:
            reference.observe(record.node % 3, record.key, record.timestamp, record.value)
        assert rounds == reference.stats.rounds > 0
        assert point == reference.query_frequency(records[0].key)
        assert self_join == reference.query_self_join()
        assert staleness == reference.staleness(records[-1].timestamp)


class TestReviewRegressions:
    """Pins for review findings: bad input must die at validation, not apply."""

    def test_rejects_unhashable_keys_before_ack(self):
        """A JSON list/dict key must be rejected, not kill the consumer task."""

        async def body():
            async with SketchService(flat_config()) as service:
                with pytest.raises(IngestRejectedError):
                    await service.ingest([["not", "hashable"]], [1.0])
                with pytest.raises(IngestRejectedError):
                    await service.ingest([{"k": 1}], [1.0])
                # The consumer is alive and the service keeps working.
                await service.ingest(["ok"], [2.0])
                await service.drain()
                assert service.query("point", {"key": "ok"}) == 1.0
                assert service.stats()["ingest_apply_errors"] == 0

        run(body())

    def test_rejects_non_finite_clocks(self):
        """NaN passes no ordering comparison, so it must never enter the queue."""

        async def body():
            async with SketchService(flat_config()) as service:
                with pytest.raises(IngestRejectedError):
                    await service.ingest(["a"], [float("nan")])
                with pytest.raises(IngestRejectedError):
                    await service.ingest(["a"], [float("inf")])
                # The high-water mark survived the rejected chunks.
                await service.ingest(["a"], [1.0])
                with pytest.raises(IngestRejectedError):
                    await service.ingest(["b"], [0.5])

        run(body())

    def test_apply_failure_does_not_kill_the_consumer(self):
        """Defense in depth: a bug slipping past validation drops one batch,
        counts it, and leaves the service serving."""

        async def body():
            async with SketchService(flat_config()) as service:
                # Hashable at validation time, but poisonous inside add_many's
                # NumPy path: a tuple key is hashable yet add_many handles it
                # fine — so instead inject the failure directly.
                original = service._apply_chunks
                calls = {"n": 0}

                def exploding(chunks):
                    calls["n"] += 1
                    if calls["n"] == 1:
                        raise RuntimeError("injected apply bug")
                    return original(chunks)

                service._apply_chunks = exploding
                await service.ingest(["lost"], [1.0])
                await service.drain()  # must not deadlock
                await service.ingest(["kept"], [2.0])
                await service.drain()
                stats = service.stats()
                assert stats["ingest_apply_errors"] == 1
                assert stats["pending_arrivals"] == 0
                assert service.query("point", {"key": "kept"}) == 1.0

        run(body())

    def test_partial_apply_failure_keeps_pending_accounting_exact(self):
        """A failure after some groups applied must not double-decrement."""

        async def body():
            # batch_size must exceed one chunk so the consumer coalesces the
            # two 4-record chunks into a single _apply_chunks call.
            async with SketchService(flat_config(batch_size=16)) as service:
                original = service._apply_chunks
                state = {"armed": False}

                def partial(chunks):
                    if state["armed"] and len(chunks) > 1:
                        original(chunks[:1])  # first group lands...
                        raise RuntimeError("injected failure on the second group")
                    return original(chunks)

                service._apply_chunks = partial
                # Prime one applied record, then arm and enqueue two chunks
                # that the consumer will coalesce into one batch.
                await service.ingest(["warm"], [1.0])
                await service.drain()
                state["armed"] = True
                await service.ingest(["a"] * 4, [2.0, 3.0, 4.0, 5.0])
                await service.ingest(["b"] * 4, [6.0, 7.0, 8.0, 9.0])
                await service.drain()
                stats = service.stats()
                assert stats["pending_arrivals"] == 0, stats
                assert stats["ingest_apply_errors"] >= 1
                # And the service still serves.
                await service.ingest(["c"], [10.0])
                await service.drain()
                assert stats["pending_arrivals"] == 0

        run(body())

    def test_concurrent_snapshots_serialize(self, tmp_path):
        """Overlapping snapshot_async calls must not roll the file back."""

        async def body():
            config = flat_config(snapshot_path=str(tmp_path / "s.json"))
            async with SketchService(config) as service:
                await service.ingest(["a"], [1.0])
                await service.drain()
                paths = await asyncio.gather(*(service.snapshot_async() for _ in range(5)))
                assert service.snapshots_written == 5
                assert set(paths) == {str(tmp_path / "s.json")}
                restored = SketchService.from_snapshot(paths[0])
                assert restored.records_ingested == 1

        run(body())

    def test_large_chunk_vectorized_clock_validation(self):
        """The >=64-element NumPy validation path matches the scalar one."""

        async def body():
            async with SketchService(flat_config()) as service:
                good = [float(i) for i in range(200)]
                await service.ingest(["k"] * 200, good)
                bad_order = [float(i) for i in range(200)]
                bad_order[100] = 10.0  # regression inside the chunk
                with pytest.raises(IngestRejectedError):
                    await service.ingest(["k"] * 200, bad_order)
                bad_nan = [300.0 + i for i in range(200)]
                bad_nan[50] = float("nan")
                with pytest.raises(IngestRejectedError):
                    await service.ingest(["k"] * 200, bad_nan)
                below_watermark = [50.0 + i for i in range(200)]
                with pytest.raises(IngestRejectedError):
                    await service.ingest(["k"] * 200, below_watermark)
                mixed = [500.0 + i for i in range(200)]
                mixed[7] = "not-a-clock"
                with pytest.raises(IngestRejectedError):
                    await service.ingest(["k"] * 200, mixed)
                await service.drain()
                assert service.records_ingested == 200

        run(body())
