"""Tests of the live sketch service (repro.service)."""
