"""Tests of the newline-delimited-JSON protocol layer."""

from __future__ import annotations

import json

import pytest

from repro.service.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    decode_line,
    encode_message,
    error_response,
    ok_response,
)


class TestEncodeMessage:
    def test_round_trip(self):
        message = {"op": "ingest", "keys": ["a", 1, None], "clocks": [1.0, 2.5, 3.0]}
        line = encode_message(message)
        assert line.endswith(b"\n")
        assert line.count(b"\n") == 1
        assert decode_line(line[:-1]) == message

    def test_compact_encoding(self):
        assert encode_message({"op": "ping"}) == b'{"op":"ping"}\n'

    def test_rejects_non_serializable(self):
        with pytest.raises(ProtocolError):
            encode_message({"op": "ingest", "keys": [object()]})

    def test_rejects_nan(self):
        # NaN is not JSON; a server must never emit a line a client cannot parse.
        with pytest.raises(ProtocolError):
            encode_message({"op": "point", "result": float("nan")})

    def test_rejects_oversized_message(self):
        with pytest.raises(ProtocolError):
            encode_message({"op": "ingest", "keys": ["x" * MAX_LINE_BYTES]})


class TestDecodeLine:
    def test_rejects_bad_json(self):
        with pytest.raises(ProtocolError):
            decode_line(b"{not json")

    def test_rejects_non_object(self):
        with pytest.raises(ProtocolError):
            decode_line(b"[1, 2, 3]")

    def test_rejects_bad_utf8(self):
        with pytest.raises(ProtocolError):
            decode_line(b'{"op": "\xff"}')

    def test_rejects_oversized_line(self):
        line = json.dumps({"op": "x" * MAX_LINE_BYTES}).encode()
        with pytest.raises(ProtocolError):
            decode_line(line)


class TestEnvelopes:
    def test_ok_response(self):
        assert ok_response(42) == {"ok": True, "result": 42}
        assert ok_response(42, request_id=7) == {"ok": True, "result": 42, "id": 7}

    def test_error_response(self):
        assert error_response("boom") == {"ok": False, "error": "boom"}
        assert error_response("boom", request_id="q1") == {
            "ok": False, "error": "boom", "id": "q1",
        }


class TestNonFiniteConstants:
    def test_decode_rejects_nan_and_infinity(self):
        # json.loads accepts bare NaN/Infinity by default; the protocol must
        # not, or a NaN clock would defeat the ingest ordering checks.
        for token in (b'{"clocks":[NaN]}', b'{"x":Infinity}', b'{"x":-Infinity}'):
            with pytest.raises(ProtocolError):
                decode_line(token)
