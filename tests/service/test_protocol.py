"""Tests of the newline-delimited-JSON protocol layer."""

from __future__ import annotations

import json

import pytest

from repro.service.errors import VersionMismatchError
from repro.service.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_MAJOR,
    PROTOCOL_VERSION,
    ProtocolError,
    check_protocol_version,
    decode_line,
    encode_message,
    error_response,
    error_response_for,
    ok_response,
    protocol_major,
)


class TestEncodeMessage:
    def test_round_trip(self):
        message = {"op": "ingest", "keys": ["a", 1, None], "clocks": [1.0, 2.5, 3.0]}
        line = encode_message(message)
        assert line.endswith(b"\n")
        assert line.count(b"\n") == 1
        assert decode_line(line[:-1]) == message

    def test_compact_encoding(self):
        assert encode_message({"op": "ping"}) == b'{"op":"ping"}\n'

    def test_rejects_non_serializable(self):
        with pytest.raises(ProtocolError):
            encode_message({"op": "ingest", "keys": [object()]})

    def test_rejects_nan(self):
        # NaN is not JSON; a server must never emit a line a client cannot parse.
        with pytest.raises(ProtocolError):
            encode_message({"op": "point", "result": float("nan")})

    def test_rejects_oversized_message(self):
        with pytest.raises(ProtocolError):
            encode_message({"op": "ingest", "keys": ["x" * MAX_LINE_BYTES]})


class TestDecodeLine:
    def test_rejects_bad_json(self):
        with pytest.raises(ProtocolError):
            decode_line(b"{not json")

    def test_rejects_non_object(self):
        with pytest.raises(ProtocolError):
            decode_line(b"[1, 2, 3]")

    def test_rejects_bad_utf8(self):
        with pytest.raises(ProtocolError):
            decode_line(b'{"op": "\xff"}')

    def test_rejects_oversized_line(self):
        line = json.dumps({"op": "x" * MAX_LINE_BYTES}).encode()
        with pytest.raises(ProtocolError):
            decode_line(line)


class TestEnvelopes:
    def test_ok_response(self):
        assert ok_response(42) == {"ok": True, "result": 42}
        assert ok_response(42, request_id=7) == {"ok": True, "result": 42, "id": 7}

    def test_error_response(self):
        assert error_response("INTERNAL", "boom") == {
            "ok": False,
            "error": {"code": "INTERNAL", "message": "boom", "op": None},
        }
        assert error_response("BAD_REQUEST", "boom", op="ingest", request_id="q1") == {
            "ok": False,
            "error": {"code": "BAD_REQUEST", "message": "boom", "op": "ingest"},
            "id": "q1",
        }

    def test_error_response_for_typed_exception(self):
        response = error_response_for(VersionMismatchError("nope", op="hello"))
        assert response["ok"] is False
        assert response["error"]["code"] == "VERSION_MISMATCH"
        assert response["error"]["op"] == "hello"

    def test_error_response_for_plain_exception(self):
        response = error_response_for(ValueError("bad value"), op="point")
        assert response["error"]["code"] == "BAD_REQUEST"
        assert response["error"]["op"] == "point"


class TestProtocolVersion:
    def test_major_of_current_version(self):
        assert protocol_major(PROTOCOL_VERSION) == PROTOCOL_MAJOR

    def test_major_parses_leading_component(self):
        assert protocol_major("2.17") == 2
        assert protocol_major("10.0") == 10

    def test_major_rejects_malformed(self):
        for version in ("", "x.y", None, 2):
            with pytest.raises(ProtocolError):
                protocol_major(version)  # type: ignore[arg-type]

    def test_check_accepts_same_major(self):
        check_protocol_version(PROTOCOL_VERSION)
        check_protocol_version("%d.99" % PROTOCOL_MAJOR)

    def test_check_rejects_other_major(self):
        with pytest.raises(VersionMismatchError):
            check_protocol_version("%d.0" % (PROTOCOL_MAJOR + 1))
        with pytest.raises(VersionMismatchError):
            check_protocol_version("1.0")


class TestNonFiniteConstants:
    def test_decode_rejects_nan_and_infinity(self):
        # json.loads accepts bare NaN/Infinity by default; the protocol must
        # not, or a NaN clock would defeat the ingest ordering checks.
        for token in (b'{"clocks":[NaN]}', b'{"x":Infinity}', b'{"x":-Infinity}'):
            with pytest.raises(ProtocolError):
                decode_line(token)
