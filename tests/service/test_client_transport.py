"""Transport hygiene after an abandoned round-trip.

When a deadline cancels ``_request_once`` mid-flight, the server's eventual
response is left unread in the stream.  Reusing that connection would pair
the *next* request with the *stale* response — every later answer on the
connection silently shifted by one.  These tests pin the fix: exhausting
the retry budget (or a single-attempt deadline) invalidates the transport,
so the next operation either reconnects cleanly (retry policy) or fails as
an honest connection error (no policy) — never misattributes.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.service.client import RetryPolicy, ServiceClient
from repro.service.errors import DeadlineExceededError
from repro.service.protocol import PROTOCOL_VERSION


def run(coroutine):
    return asyncio.run(coroutine)


async def _serve(reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
    """Minimal protocol peer: ``sleepy`` answers late, everything else fast."""
    try:
        while True:
            line = await reader.readline()
            if not line:
                return
            op = json.loads(line).get("op")
            if op == "hello":
                result: object = {"protocol_version": PROTOCOL_VERSION}
            elif op == "sleepy":
                # Long past every deadline used below, but the answer DOES
                # eventually land on the stream — the misattribution bait.
                await asyncio.sleep(0.4)
                result = "late"
            else:
                result = "pong"
            writer.write((json.dumps({"ok": True, "result": result}) + "\n").encode())
            await writer.drain()
    except (ConnectionError, OSError):
        pass
    finally:
        writer.close()


class TestAbandonedRoundTrip:
    def test_deadline_exhaustion_invalidates_the_transport(self):
        async def body():
            server = await asyncio.start_server(_serve, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            async with server:
                client = await ServiceClient.connect(
                    "127.0.0.1",
                    port,
                    retry=RetryPolicy(attempts=2, base_delay=0.01, max_delay=0.01),
                )
                try:
                    with pytest.raises(DeadlineExceededError):
                        await client.call({"op": "sleepy"}, deadline=0.05)
                    # Pre-fix, the channel would now read the late "sleepy"
                    # answer as this ping's response.  Post-fix the retry
                    # layer reconnects and gets the real one.
                    assert await client.ping() == "pong"
                    assert client.reconnects >= 1
                finally:
                    await client.close()

        run(body())

    def test_single_attempt_deadline_also_invalidates(self):
        async def body():
            server = await asyncio.start_server(_serve, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            async with server:
                client = await ServiceClient.connect("127.0.0.1", port)
                try:
                    with pytest.raises(DeadlineExceededError):
                        await client.request({"op": "sleepy"}, deadline=0.05)
                    # No retry policy: the desynced transport is closed, so
                    # reuse fails loudly instead of answering from the
                    # stale stream.
                    with pytest.raises(OSError):
                        await client.request({"op": "ping"})
                finally:
                    await client.close()

        run(body())
