"""Snapshot/restore round-trips: mid-stream state survives a process hop.

The acceptance bar is byte-identity: serialize the service mid-stream,
restore into a fresh service (simulating a new process), ingest the rest of
the stream into both the restored service and an uninterrupted reference,
and require identical serialized sketch state and identical query answers —
for all window models and both storage backends.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.core.errors import ConfigurationError
from repro.serialization import dumps
from repro.service import ServiceConfig, SketchService
from repro.service.snapshot import (
    SNAPSHOT_KIND,
    load_snapshot,
    snapshot_payload,
    service_state_from_snapshot,
    write_snapshot,
)
from repro.streams import IntegerZipfTrace, WorldCupSyntheticTrace
from repro.windows.base import WindowModel


def run(coroutine):
    return asyncio.run(coroutine)


def _columns(mode: str, model: WindowModel, records: int):
    """A deterministic (keys, clocks) workload matching the service mode."""
    if mode == "hierarchical":
        trace = IntegerZipfTrace(num_records=records, universe_bits=8, seed=5).generate()
    else:
        trace = WorldCupSyntheticTrace(num_records=records, seed=5).generate()
    keys = [record.key for record in trace]
    if model is WindowModel.COUNT_BASED:
        clocks = [index + 1 for index in range(len(keys))]
    else:
        clocks = [record.timestamp for record in trace]
    return keys, clocks


def _probe_answers(service: SketchService, mode: str, keys):
    if mode == "hierarchical":
        return {
            "points": [service.query("point", {"key": key}) for key in keys[:32]],
            "heavy_hitters": service.query("heavy_hitters", {"phi": 0.02}),
            "median": service.query("quantile", {"fraction": 0.5}),
        }
    return {
        "points": [service.query("point", {"key": key}) for key in keys[:32]],
        "self_join": service.query("self_join", {}),
    }


@pytest.mark.parametrize("mode", ["flat", "hierarchical"])
@pytest.mark.parametrize("model", [WindowModel.TIME_BASED, WindowModel.COUNT_BASED])
@pytest.mark.parametrize("backend", ["columnar", "object"])
class TestMidStreamRoundTrip:
    def test_restored_run_is_byte_identical_to_uninterrupted(
        self, tmp_path, mode, model, backend
    ):
        records = 1_200
        # Windows sized so part of the stream expires: the snapshot must
        # carry partially-expired structures faithfully too.
        window = 400.0 if model is WindowModel.COUNT_BASED else 500_000.0
        keys, clocks = _columns(mode, model, records)
        half = records // 2
        config = ServiceConfig(
            mode=mode,
            model=model,
            window=window,
            backend=backend,
            universe_bits=8,
            epsilon=0.1,
            batch_size=128,
            snapshot_path=str(tmp_path / "snap.json"),
        )

        async def interrupted():
            # First half -> snapshot -> fresh process (restore) -> second half.
            async with SketchService(config) as service:
                await service.ingest(keys[:half], clocks[:half])
                await service.drain()
                path = service.snapshot_now()
            restored = SketchService.from_snapshot(path)
            async with restored:
                await restored.ingest(keys[half:], clocks[half:])
                await restored.drain()
                return dumps(restored.state), _probe_answers(restored, mode, keys), restored

        async def uninterrupted():
            async with SketchService(config) as service:
                await service.ingest(keys, clocks)
                await service.drain()
                return dumps(service.state), _probe_answers(service, mode, keys), service

        restored_bytes, restored_answers, restored_service = run(interrupted())
        reference_bytes, reference_answers, reference_service = run(uninterrupted())
        assert restored_bytes == reference_bytes
        assert restored_answers == reference_answers
        assert restored_service.records_ingested == reference_service.records_ingested


class TestMultisiteRoundTrip:
    def test_coordinator_state_survives_restore(self, tmp_path):
        trace = WorldCupSyntheticTrace(num_records=2_000, num_nodes=2, seed=9).generate()
        records = list(trace)
        half = len(records) // 2
        config = ServiceConfig(
            mode="multisite", sites=2, period=100_000.0,
            snapshot_path=str(tmp_path / "multi.json"),
        )

        def chunks(segment):
            start = 0
            for index in range(1, len(segment) + 1):
                if index == len(segment) or segment[index].node % 2 != segment[start].node % 2:
                    yield segment[start:index]
                    start = index

        async def feed(service, segment):
            for chunk in chunks(segment):
                await service.ingest(
                    [r.key for r in chunk],
                    [r.timestamp for r in chunk],
                    site=chunk[0].node % 2,
                )
            await service.drain()

        async def interrupted():
            async with SketchService(config) as service:
                await feed(service, records[:half])
                path = service.snapshot_now()
            restored = SketchService.from_snapshot(path)
            async with restored:
                await feed(restored, records[half:])
                coordinator = restored.state
                return (
                    coordinator.stats.rounds,
                    dumps(coordinator.root_sketch()),
                    [dumps(node.sketch) for node in coordinator.nodes],
                )

        async def uninterrupted():
            async with SketchService(config) as service:
                await feed(service, records)
                coordinator = service.state
                return (
                    coordinator.stats.rounds,
                    dumps(coordinator.root_sketch()),
                    [dumps(node.sketch) for node in coordinator.nodes],
                )

        assert run(interrupted()) == run(uninterrupted())


class TestSnapshotFiles:
    def test_atomic_write_replaces_previous(self, tmp_path):
        path = tmp_path / "snap.json"
        write_snapshot(path, {"kind": SNAPSHOT_KIND, "version": 1, "marker": 1})
        write_snapshot(path, {"kind": SNAPSHOT_KIND, "version": 1, "marker": 2})
        assert load_snapshot(path)["marker"] == 2
        # No temporary files left behind.
        assert [entry.name for entry in tmp_path.iterdir()] == ["snap.json"]

    def test_load_rejects_wrong_kind_and_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"kind": "ecm_sketch", "version": 1}))
        with pytest.raises(ConfigurationError):
            load_snapshot(path)
        path.write_text(json.dumps({"kind": SNAPSHOT_KIND, "version": 99}))
        with pytest.raises(ConfigurationError):
            load_snapshot(path)
        path.write_text("{not json")
        with pytest.raises(ConfigurationError):
            load_snapshot(path)

    def test_payload_carries_watermarks(self, tmp_path):
        async def body():
            config = ServiceConfig(mode="flat", snapshot_path=str(tmp_path / "s.json"))
            async with SketchService(config) as service:
                await service.ingest(["a", "b"], [1.0, 2.0])
                await service.drain()
                return snapshot_payload(service)

        payload = run(body())
        assert payload["kind"] == SNAPSHOT_KIND
        assert payload["records_ingested"] == 2
        assert payload["applied_clock"] == 2.0
        assert payload["config"]["mode"] == "flat"

    def test_restore_rejects_site_count_mismatch(self, tmp_path):
        async def body():
            config = ServiceConfig(mode="multisite", sites=2, period=10.0,
                                   snapshot_path=str(tmp_path / "m.json"))
            async with SketchService(config) as service:
                await service.ingest(["a"], [1.0], site=0)
                await service.drain()
                return snapshot_payload(service)

        payload = run(body())
        payload["config"]["sites"] = 3
        with pytest.raises(ConfigurationError):
            service_state_from_snapshot(payload)
