"""Tests of the typed error layer: envelopes, registry, wire round-trips."""

from __future__ import annotations

import asyncio

import pytest

from repro.core.errors import ConfigurationError, EmptyStructureError
from repro.service import (
    ERROR_CODES,
    STATUS_FOR_CODE,
    ServiceClient,
    ServiceConfig,
    SketchServer,
    SketchService,
    error_envelope,
    exception_for_error,
    status_for_code,
)
from repro.service.errors import (
    ClockRegressionError,
    InvalidParameterError,
    ModeMismatchError,
    PoolDisabledError,
    ServiceRequestError,
    TenantNotFoundError,
    UnknownOperationError,
    VersionMismatchError,
)
from repro.service.protocol import PROTOCOL_MAJOR, decode_line, encode_message


def run(coroutine):
    return asyncio.run(coroutine)


class TestEnvelopeBuilding:
    def test_every_registered_code_round_trips(self):
        for code, (cls, description) in ERROR_CODES.items():
            assert description, code
            exc = cls("boom", op="ingest")
            envelope = error_envelope(exc)
            # INTERNAL is the base-class catch-all; every other class pins
            # its own code.
            if code != "INTERNAL":
                assert envelope == {"code": code, "message": "boom", "op": "ingest"}
            rebuilt = exception_for_error(envelope)
            assert type(rebuilt) is cls
            assert rebuilt.code == envelope["code"]
            assert rebuilt.op == "ingest"

    def test_foreign_exceptions_map_to_stable_codes(self):
        assert error_envelope(ConfigurationError("x"))["code"] == "INVALID_PARAMETER"
        assert error_envelope(EmptyStructureError("x"))["code"] == "EMPTY_STRUCTURE"
        assert error_envelope(TypeError("x"))["code"] == "BAD_REQUEST"
        assert error_envelope(ValueError("x"))["code"] == "BAD_REQUEST"
        assert error_envelope(RuntimeError("x"))["code"] == "INTERNAL"

    def test_explicit_op_wins_over_exception_op(self):
        assert error_envelope(ModeMismatchError("x"), op="range")["op"] == "range"

    def test_subclass_codes(self):
        # CLOCK_REGRESSION specialises INGEST_REJECTED: catching the broad
        # class still works, the code stays the specific one.
        envelope = error_envelope(ClockRegressionError("late"))
        assert envelope["code"] == "CLOCK_REGRESSION"


class TestExceptionForError:
    def test_unknown_code_is_preserved(self):
        exc = exception_for_error({"code": "FUTURE_THING", "message": "m", "op": None})
        assert type(exc) is ServiceRequestError
        assert exc.code == "FUTURE_THING"

    def test_legacy_string_error(self):
        exc = exception_for_error("plain old error text")
        assert type(exc) is ServiceRequestError
        assert "plain old error text" in str(exc)

    def test_prefix_names_the_shard(self):
        exc = exception_for_error(
            {"code": "TENANT_NOT_FOUND", "message": "unknown tenant 'x'"}, prefix="shard 3"
        )
        assert isinstance(exc, TenantNotFoundError)
        assert str(exc).startswith("shard 3: ")


class TestStatusTable:
    def test_every_registered_code_has_a_status(self):
        for code in ERROR_CODES:
            assert code in STATUS_FOR_CODE, code

    def test_routing_codes_have_statuses(self):
        assert status_for_code("NOT_FOUND") == 404
        assert status_for_code("METHOD_NOT_ALLOWED") == 405

    def test_unknown_code_is_a_500(self):
        assert status_for_code("SOMETHING_NEW") == 500
        assert status_for_code(None) == 500


class TestWireRoundTrips:
    """The server's envelope rebuilds the same typed exception client-side."""

    def test_typed_exceptions_over_the_wire(self):
        async def body():
            service = SketchService(ServiceConfig(mode="flat"))
            async with (
                SketchServer(service) as server,
                await ServiceClient.connect(port=server.port) as client,
            ):
                with pytest.raises(UnknownOperationError):
                    await client.request({"op": "no-such-op"})
                with pytest.raises(InvalidParameterError):
                    await client.request({"op": "point"})  # missing key
                with pytest.raises(ModeMismatchError):
                    await client.heavy_hitters(phi=0.1)  # flat mode
                with pytest.raises(PoolDisabledError):
                    await client.point("a", tenant="alpha")  # no pool
                with pytest.raises(ClockRegressionError):
                    await client.ingest(["a", "b"], [5.0, 1.0])
                # The connection survives every rejected request.
                assert await client.ping() == "pong"

        run(body())

    def test_handshake_rejects_wrong_major(self):
        async def body():
            service = SketchService(ServiceConfig(mode="flat"))
            async with SketchServer(service) as server:
                reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
                wrong = "%d.0" % (PROTOCOL_MAJOR + 1)
                writer.write(encode_message({"op": "hello", "protocol_version": wrong}))
                await writer.drain()
                response = decode_line((await reader.readline())[:-1])
                assert response["ok"] is False
                assert response["error"]["code"] == "VERSION_MISMATCH"
                writer.close()
                await writer.wait_closed()

        run(body())

    def test_client_connect_handshake_succeeds(self):
        async def body():
            service = SketchService(ServiceConfig(mode="flat"))
            async with SketchServer(service) as server:
                client = await ServiceClient.connect(port=server.port)
                from repro.service.protocol import PROTOCOL_VERSION

                assert client.server_protocol_version == PROTOCOL_VERSION
                info = await client.get_info()
                assert info.protocol_version == PROTOCOL_VERSION
                await client.close()

        run(body())

    def test_connect_wraps_pre_handshake_servers(self):
        """A server that answers hello with an error (as a pre-2.0 server
        answers any unknown op) is reported as a version mismatch."""

        async def legacy_server(reader, writer):
            await reader.readline()
            writer.write(encode_message({"ok": False, "error": "unknown op 'hello'"}))
            await writer.drain()
            writer.close()

        async def body():
            server = await asyncio.start_server(legacy_server, host="127.0.0.1", port=0)
            port = server.sockets[0].getsockname()[1]
            try:
                with pytest.raises(VersionMismatchError):
                    await ServiceClient.connect(port=port)
            finally:
                server.close()
                await server.wait_closed()

        run(body())
