"""The supervisor's watch loop must outlive a failing liveness poll.

An unexpected error from ``workers.alive`` (or task creation) must not kill
the shard-supervisor task silently — that would permanently disable
self-healing while ``stats`` keeps reporting stale shard states.
"""

from __future__ import annotations

import asyncio
from typing import Any

from repro.service.supervision import HEALTHY, ShardSupervisor


class _Workers:
    def __init__(self, fail_polls: int) -> None:
        self.fail_polls = fail_polls
        self.polls = 0

    def alive(self, shard: int) -> bool:
        self.polls += 1
        if self.fail_polls > 0:
            self.fail_polls -= 1
            raise RuntimeError("injected poll failure")
        return True


class _Router:
    """Just enough router surface for the supervisor's watch loop."""

    def __init__(self, fail_polls: int) -> None:
        self.num_shards = 1
        self._started = True
        self._stopping = False
        self.workers = _Workers(fail_polls)

    async def restart_shard(self, shard: int) -> dict[str, Any]:
        return {"restored_from": None, "applied_clock": None}


def test_watch_loop_survives_a_failing_liveness_poll():
    async def body():
        router = _Router(fail_polls=2)
        supervisor = ShardSupervisor(router, check_every=0.01)  # type: ignore[arg-type]
        await supervisor.start()
        for _ in range(500):
            await asyncio.sleep(0.01)
            if router.workers.polls >= 4:
                break
        await supervisor.stop()
        return router.workers.polls, list(supervisor.states)

    polls, states = asyncio.run(body())
    assert polls >= 4  # kept polling straight through the injected failures
    assert states == [HEALTHY]
