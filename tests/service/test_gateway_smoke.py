"""End-to-end smoke test for the HTTP gateway over a pooled, sharded tier:
``repro serve --shards 2 --pool`` + ``repro gateway`` as real processes.

The tier-1 twin of the CI ``gateway-smoke`` job:

* boot a 2-shard pooled server with a memory budget small enough that the
  three tenants cannot all stay resident;
* create the tenants and ingest their (distinct, deterministic) streams
  through HTTP;
* verify every tenant's served answers against per-tenant serial reference
  sketches — the query round-robin itself forces evict/restore churn under
  the budget;
* verify the budget did force evictions and restores, and that a second
  snapshot after the churn is byte-identical to the first (restore
  fidelity down to the serialized state).
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.core import ECMSketch
from repro.service import ServeProcess

EPSILON = 0.1
WINDOW = 1_000_000.0
RECORDS = 2_000
BUDGET = 2_000  # bytes, across both shards: no worker can keep two tenants
TENANTS = {"alpha": 3, "beta": 5, "gamma": 7}  # id -> stream seed

pytestmark = pytest.mark.integration


def trace(seed: int):
    keys = ["k%d" % ((index * seed) % 97) for index in range(RECORDS)]
    clocks = [float(index + 1) for index in range(RECORDS)]
    return keys, clocks


def reference(seed: int) -> ECMSketch:
    sketch = ECMSketch.for_point_queries(
        epsilon=EPSILON, delta=0.05, window=WINDOW, backend="columnar"
    )
    keys, clocks = trace(seed)
    sketch.add_many(keys, clocks)
    return sketch


def http(port: int, method: str, path: str, body=None):
    """One HTTP exchange; returns (status, payload) without raising on 4xx."""
    encoded = None if body is None else json.dumps(body).encode()
    request = urllib.request.Request(
        "http://127.0.0.1:%d%s" % (port, path), data=encoded, method=method
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def ok(port: int, method: str, path: str, body=None):
    status, payload = http(port, method, path, body)
    assert status == 200, (path, payload)
    return payload["result"]


class TestGatewaySmoke:
    def test_gateway_over_pooled_shards(self, tmp_path):
        pool_dir = tmp_path / "pool"
        with ServeProcess(
            "--mode", "flat",
            "--epsilon", EPSILON,
            "--window", WINDOW,
            "--shards", 2,
            "--pool",
            "--pool-dir", pool_dir,
            "--memory-budget", BUDGET,
        ) as server:
            backend_port = server.wait_ready()
            with ServeProcess(
                "--backend-port", backend_port,
                subcommand="gateway",
                label="repro-gateway",
            ) as gateway:
                port = gateway.wait_ready()

                info = ok(port, "GET", "/v1/info")
                assert info["pool"] is True
                assert info["shards"] == 2

                for tenant in TENANTS:
                    created = ok(port, "PUT", "/v1/tenants/%s" % tenant)
                    assert created["tenant"] == tenant

                for tenant, seed in TENANTS.items():
                    keys, clocks = trace(seed)
                    accepted = ok(
                        port,
                        "POST",
                        "/v1/tenants/%s/ingest" % tenant,
                        {"keys": keys, "clocks": clocks},
                    )
                    assert accepted == {"accepted": RECORDS}
                    ok(port, "POST", "/v1/tenants/%s/drain" % tenant)

                # Pin each tenant's durable state while it is still warm.
                first_snapshot = {}
                for tenant in TENANTS:
                    path = ok(port, "POST", "/v1/tenants/%s/snapshot" % tenant)["path"]
                    first_snapshot[tenant] = (path, open(path, "rb").read())

                # Serial-reference parity, round-robin across tenants: with
                # the budget this tight every switch restores one tenant and
                # evicts another, so correctness here is correctness of the
                # evict/restore path, not just of the sketches.
                references = {tenant: reference(seed) for tenant, seed in TENANTS.items()}
                probe_keys = ["k%d" % value for value in range(0, 97, 7)]
                for round_index in range(3):
                    for tenant, serial in references.items():
                        key = probe_keys[round_index]
                        served = ok(
                            port, "GET", "/v1/tenants/%s/query/point?key=%s" % (tenant, key)
                        )
                        assert served == serial.point_query(key), (tenant, key)
                        served = ok(port, "GET", "/v1/tenants/%s/query/self_join" % tenant)
                        assert served == serial.self_join(), tenant

                stats = ok(port, "GET", "/v1/stats")
                assert stats["pool"] is True
                assert stats["tenants_total"] == 3
                assert stats["records_ingested"] == RECORDS * len(TENANTS)
                assert stats["evictions"] >= 1, stats
                assert stats["restores"] >= 1, stats

                listing = ok(port, "GET", "/v1/tenants")
                assert {entry["tenant"] for entry in listing} == set(TENANTS)

                # Post-churn snapshots must reproduce the pre-churn files
                # byte for byte: queries changed nothing, and eviction +
                # lazy restore must not have either.
                for tenant, (path, before) in first_snapshot.items():
                    rewritten = ok(port, "POST", "/v1/tenants/%s/snapshot" % tenant)["path"]
                    assert rewritten == path, tenant
                    assert open(path, "rb").read() == before, tenant

                # Budget honored after a governor sweep: at most one
                # resident tenant per worker (a lone tenant is never
                # evicted, however large).
                ok(port, "POST", "/v1/sweep")
                stats = ok(port, "GET", "/v1/stats")
                assert stats["tenants_resident"] <= 2, stats

                # 404 through the whole stack, then graceful shutdowns.
                status, payload = http(port, "GET", "/v1/tenants/ghost")
                assert status == 404
                assert payload["error"]["code"] == "TENANT_NOT_FOUND"

                assert gateway.stop() == 0, gateway.output
            assert server.stop() == 0, server.output
