"""End-to-end smoke test for the sharded tier: ``repro serve --shards`` +
``repro replay --connections`` as real processes.

The tier-1 twin of the CI ``shard-smoke`` job:

* boot the router CLI with 4 worker processes (port 0, banner readiness);
* replay the deterministic trace over 4 shard-affine connections;
* check served answers estimate-for-estimate against per-shard serial
  references fed the same partitioned sub-streams;
* snapshot, SIGKILL one worker by pid, verify the router reports it
  degraded, restart it through the protocol ``restart_shard`` op and
  verify the restored answers;
* SIGTERM the router and verify drain + manifest, then boot a fresh
  ``repro serve --restore <manifest>`` and verify it reassembles the
  exact pre-shutdown state.

Record count is tunable via ``REPRO_SHARD_SMOKE_RECORDS`` (CI runs 50k;
the local default keeps the test quick).
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
import pytest

from repro.core import ECMSketch
from repro.service import (
    ServeProcess,
    SyncServiceClient,
    build_replay_stream,
    repro_env,
    shard_of,
)

RECORDS = int(os.environ.get("REPRO_SHARD_SMOKE_RECORDS", "10000"))
SHARDS = 4
CONNECTIONS = 4
EPSILON = 0.05
WINDOW = 1_000_000.0
SEED = 11

pytestmark = pytest.mark.integration


def _build_references():
    """Per-shard serial sketches fed the same partitioned sub-streams the
    router's workers see (order within each shard is preserved by the
    replay driver's record-granular partition)."""
    info = {"mode": "flat", "model": "time"}
    trace, clocks = build_replay_stream(info, RECORDS, seed=SEED)
    keys = [record.key for record in trace]
    per_shard = {shard: ([], []) for shard in range(SHARDS)}
    for key, clock in zip(keys, clocks, strict=False):
        bucket = per_shard[shard_of(key, SHARDS)]
        bucket[0].append(key)
        bucket[1].append(clock)
    references = []
    for shard in range(SHARDS):
        sketch = ECMSketch.for_point_queries(
            epsilon=EPSILON, delta=0.05, window=WINDOW, backend="columnar"
        )
        sub_keys, sub_clocks = per_shard[shard]
        if sub_keys:
            sketch.add_many(sub_keys, sub_clocks)
        references.append(sketch)
    probe_keys = sorted({key for key in keys[:500]})[:64]
    return references, probe_keys


def _assert_matches_references(client, references, probe_keys):
    for key in probe_keys:
        assert client.point(key) == references[shard_of(key, SHARDS)].point_query(key), key
    assert client.self_join() == sum(sketch.self_join() for sketch in references)


def _wait_degraded(client, victim, timeout=30.0):
    """Poll stats until the router notices the killed worker.  The death is
    an OS-level event in another process — there is nothing to await on the
    client side, so this is a bounded poll, not a readiness sleep."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        stats = client.get_stats().raw
        if victim in stats["degraded"]:
            return stats
        time.sleep(0.05)
    raise AssertionError("router never reported shard %d degraded" % victim)


class TestShardSmoke:
    def test_sharded_serve_replay_kill_restart_restore(self, tmp_path):
        manifest = tmp_path / "shard-manifest.json"
        report_path = tmp_path / "replay-report.json"
        with ServeProcess(
            "--mode", "flat",
            "--epsilon", EPSILON,
            "--window", WINDOW,
            "--shards", SHARDS,
            "--snapshot-path", manifest,
        ) as server:
            port = server.wait_ready()
            replay = subprocess.run(
                [
                    sys.executable, "-m", "repro", "replay",
                    "--port", str(port),
                    "--records", str(RECORDS),
                    "--seed", str(SEED),
                    "--connections", str(CONNECTIONS),
                    "--json", str(report_path),
                ],
                env=repro_env(),
                capture_output=True,
                text=True,
                timeout=600,
            )
            assert replay.returncode == 0, replay.stdout + replay.stderr
            report = json.loads(report_path.read_text())
            assert report["records"] == RECORDS
            assert report["connections"] == CONNECTIONS
            assert report["server_stats"]["records_ingested"] == RECORDS

            references, probe_keys = _build_references()
            with SyncServiceClient.connect(port=port) as client:
                info = client.get_info().raw
                assert info["shards"] == SHARDS
                _assert_matches_references(client, references, probe_keys)

                # Snapshot the healthy tier, then SIGKILL one worker by pid.
                assert client.snapshot() == str(manifest)
                stats = client.get_stats().raw
                victim = 1
                pid = stats["shard_details"][victim]["pid"]
                os.kill(pid, signal.SIGKILL)
                _wait_degraded(client, victim)

                # Recovery through the wire protocol: respawn from the
                # per-shard snapshot and verify the answers came back.
                outcome = client.restart_shard(victim)
                assert outcome["restored_from"] is not None
                assert client.get_stats().raw["degraded"] == []
                _assert_matches_references(client, references, probe_keys)

            # SIGTERM: graceful drain + final manifest + clean exit.
            assert server.stop() == 0, server.output
            assert "drained" in server.output
            assert manifest.exists()

        # A fresh router restored from the manifest alone reassembles the
        # exact pre-shutdown state across all shards.
        with ServeProcess("--restore", manifest) as restored:
            port = restored.wait_ready()
            with SyncServiceClient.connect(port=port) as client:
                assert client.get_info().raw["shards"] == SHARDS
                assert client.get_stats().raw["records_ingested"] == RECORDS
                references, probe_keys = _build_references()
                _assert_matches_references(client, references, probe_keys)
            assert restored.stop() == 0, restored.output
