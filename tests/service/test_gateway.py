"""Tests of the HTTP/REST gateway: routing, parity with the TCP client,
and the error-code -> status mapping, all in-process.

The HTTP side is driven with a raw asyncio stream client (the gateway
serves one request per connection), never with blocking ``urllib`` calls —
those would run on the same loop as the gateway and deadlock it.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any

import pytest

from repro.service import (
    PROTOCOL_VERSION,
    GatewayServer,
    ServiceClient,
    ServiceConfig,
    SketchServer,
    SketchService,
    TenantPool,
)

EPSILON = 0.1
WINDOW = 1_000_000.0


def run(coroutine):
    return asyncio.run(coroutine)


async def http(
    port: int, method: str, path: str, body: dict[str, Any] | None = None
) -> tuple[int, dict[str, Any]]:
    """One HTTP exchange against the gateway; returns (status, payload)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        encoded = b"" if body is None else json.dumps(body).encode()
        head = "%s %s HTTP/1.1\r\nHost: gateway\r\nContent-Length: %d\r\n\r\n" % (
            method,
            path,
            len(encoded),
        )
        writer.write(head.encode("ascii") + encoded)
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        await writer.wait_closed()
    header, _, rest = raw.partition(b"\r\n\r\n")
    status = int(header.split(None, 2)[1])
    return status, json.loads(rest)


async def get(port: int, path: str) -> Any:
    """GET that must succeed; returns the unwrapped result."""
    status, payload = await http(port, "GET", path)
    assert status == 200, payload
    assert payload["ok"] is True
    return payload["result"]


async def http_with_headers(
    port: int, method: str, path: str
) -> tuple[int, dict[str, str], dict[str, Any]]:
    """Like :func:`http`, but also returns the response headers (lowercased)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        head = "%s %s HTTP/1.1\r\nHost: gateway\r\nContent-Length: 0\r\n\r\n" % (method, path)
        writer.write(head.encode("ascii"))
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        await writer.wait_closed()
    header, _, rest = raw.partition(b"\r\n\r\n")
    lines = header.decode("latin-1").split("\r\n")
    status = int(lines[0].split(None, 2)[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, json.loads(rest)


def pool_config(pool_dir) -> ServiceConfig:
    return ServiceConfig(
        mode="flat",
        epsilon=EPSILON,
        delta=0.05,
        window=WINDOW,
        pool=True,
        pool_dir=str(pool_dir),
        expire_every=None,
        snapshot_every=None,
    )


class _Stack:
    """Pooled sketch server + gateway + TCP client, as one context."""

    def __init__(self, pool_dir) -> None:
        self.server = SketchServer(TenantPool(pool_config(pool_dir)))
        self.gateway: GatewayServer = None  # type: ignore[assignment]
        self.client: ServiceClient = None  # type: ignore[assignment]

    async def __aenter__(self) -> _Stack:
        await self.server.__aenter__()
        self.gateway = GatewayServer(backend_port=self.server.port, port=0)
        await self.gateway.start()
        self.client = await ServiceClient.connect(port=self.server.port)
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.client.close()
        await self.gateway.stop()
        await self.server.__aexit__(*exc_info)


class TestQueryParity:
    """Every query op answers identically over HTTP and over TCP."""

    def test_flat_tenant(self, tmp_path):
        async def body():
            async with _Stack(tmp_path) as stack:
                port = stack.gateway.port
                await stack.client.create_tenant("flat1")
                keys = ["k%d" % (index % 23) for index in range(300)]
                clocks = [float(index + 1) for index in range(300)]
                status, payload = await http(
                    port,
                    "POST",
                    "/v1/tenants/flat1/ingest",
                    {"keys": keys, "clocks": clocks},
                )
                assert status == 200 and payload["result"] == {"accepted": 300}
                await http(port, "POST", "/v1/tenants/flat1/drain")

                tcp = stack.client
                assert await get(port, "/v1/tenants/flat1/query/point?key=k3") == await tcp.point(
                    "k3", tenant="flat1"
                )
                assert await get(
                    port, "/v1/tenants/flat1/query/point?key=k3&range=100"
                ) == await tcp.point("k3", range_length=100, tenant="flat1")
                assert await get(port, "/v1/tenants/flat1/query/self_join") == await tcp.self_join(
                    tenant="flat1"
                )
                assert await get(port, "/v1/tenants/flat1/query/arrivals") == await tcp.arrivals(
                    tenant="flat1"
                )

        run(body())

    def test_hierarchical_tenant(self, tmp_path):
        async def body():
            async with _Stack(tmp_path) as stack:
                port = stack.gateway.port
                await stack.client.create_tenant(
                    "hier", config={"mode": "hierarchical", "universe_bits": 8}
                )
                keys = [(index * 7) % 256 for index in range(300)]
                clocks = [float(index + 1) for index in range(300)]
                await http(
                    port, "POST", "/v1/tenants/hier/ingest", {"keys": keys, "clocks": clocks}
                )
                await http(port, "POST", "/v1/tenants/hier/drain")

                tcp = stack.client
                base = "/v1/tenants/hier/query"
                assert await get(port, base + "/point?key=5") == await tcp.point(
                    5, tenant="hier"
                )
                assert await get(port, base + "/range?lo=0&hi=63") == await tcp.range_query(
                    0, 63, tenant="hier"
                )
                over_tcp = await tcp.heavy_hitters(phi=0.05, tenant="hier")
                assert await get(port, base + "/heavy_hitters?phi=0.05") == [
                    list(hitter) for hitter in over_tcp
                ]
                assert await get(port, base + "/quantile?fraction=0.5") == await tcp.quantile(
                    0.5, tenant="hier"
                )
                assert await get(
                    port, base + "/quantiles?fractions=0.25,0.5,0.75"
                ) == await tcp.quantiles([0.25, 0.5, 0.75], tenant="hier")
                assert await get(port, base + "/arrivals") == await tcp.arrivals(tenant="hier")

        run(body())

    def test_multisite_tenant(self, tmp_path):
        async def body():
            async with _Stack(tmp_path) as stack:
                port = stack.gateway.port
                await stack.client.create_tenant(
                    "multi", config={"mode": "multisite", "sites": 2, "period": 50.0}
                )
                keys = ["k%d" % (index % 11) for index in range(300)]
                clocks = [float(index + 1) for index in range(300)]
                for site in (0, 1):
                    await http(
                        port,
                        "POST",
                        "/v1/tenants/multi/ingest",
                        {"keys": keys, "clocks": clocks, "site": site},
                    )
                await http(port, "POST", "/v1/tenants/multi/drain")

                tcp = stack.client
                base = "/v1/tenants/multi/query"
                assert await get(port, base + "/point?key=k3") == await tcp.point(
                    "k3", tenant="multi"
                )
                assert await get(port, base + "/self_join") == await tcp.self_join(
                    tenant="multi"
                )
                assert await get(port, base + "/staleness?now=300") == await tcp.staleness(
                    300.0, tenant="multi"
                )
                # root_state has no typed client method (it is the router's
                # merge input); parity is against the raw protocol op.
                over_tcp = await tcp.request({"op": "root_state", "tenant": "multi"})
                assert await get(port, base + "/root_state") == over_tcp

        run(body())


class TestTenantRest:
    def test_lifecycle_over_rest(self, tmp_path):
        async def body():
            async with _Stack(tmp_path) as stack:
                port = stack.gateway.port
                status, payload = await http(
                    port,
                    "PUT",
                    "/v1/tenants/hier",
                    {"mode": "hierarchical", "universe_bits": 8},
                )
                assert status == 200
                assert payload["result"]["tenant"] == "hier"
                assert payload["result"]["resident"] is True
                await http(port, "PUT", "/v1/tenants/flat1")

                listing = await get(port, "/v1/tenants")
                assert {entry["tenant"] for entry in listing} == {"flat1", "hier"}
                modes = {entry["tenant"]: entry["mode"] for entry in listing}
                assert modes == {"flat1": "flat", "hier": "hierarchical"}

                stats = await get(port, "/v1/tenants/hier")
                assert stats["records_ingested"] == 0

                status, payload = await http(port, "DELETE", "/v1/tenants/hier")
                assert status == 200 and payload["result"] == {"deleted": "hier"}
                status, payload = await http(port, "GET", "/v1/tenants/hier")
                assert status == 404

                info = await get(port, "/v1/info")
                assert info["pool"] is True
                assert info["protocol_version"] == PROTOCOL_VERSION
                stats = await get(port, "/v1/stats")
                assert stats["tenants_total"] == 1
                assert stack.gateway.requests_served >= 8

        run(body())

    def test_sweep_over_rest(self, tmp_path):
        async def body():
            async with _Stack(tmp_path) as stack:
                port = stack.gateway.port
                await http(port, "PUT", "/v1/tenants/alpha")
                status, payload = await http(port, "POST", "/v1/sweep")
                assert status == 200
                assert payload["result"]["resident"] == 1
                assert payload["result"]["evicted"] == []

        run(body())


class TestStatusMapping:
    """Live HTTP statuses for each error family, end to end."""

    def test_pooled_statuses(self, tmp_path):
        async def body():
            async with _Stack(tmp_path) as stack:
                port = stack.gateway.port
                await http(port, "PUT", "/v1/tenants/flat1")

                async def expect(status, code, method, path, body=None):
                    got_status, payload = await http(port, method, path, body)
                    assert got_status == status, (path, payload)
                    assert payload["ok"] is False
                    assert payload["error"]["code"] == code, (path, payload)

                await expect(404, "TENANT_NOT_FOUND", "GET", "/v1/tenants/ghost")
                await expect(409, "TENANT_EXISTS", "PUT", "/v1/tenants/flat1")
                await expect(400, "TENANT_REQUIRED", "GET", "/v1/query/point?key=a")
                await expect(
                    409, "MODE_MISMATCH", "GET", "/v1/tenants/flat1/query/heavy_hitters?phi=0.1"
                )
                await expect(
                    400, "INVALID_PARAMETER", "GET", "/v1/tenants/flat1/query/point"
                )
                await expect(
                    400, "UNKNOWN_OP", "GET", "/v1/tenants/flat1/query/bogus"
                )
                await expect(404, "NOT_FOUND", "GET", "/nowhere")
                await expect(404, "NOT_FOUND", "GET", "/v1/nowhere")
                await expect(405, "METHOD_NOT_ALLOWED", "POST", "/v1/info")
                await expect(405, "METHOD_NOT_ALLOWED", "PATCH", "/v1/tenants/flat1")
                await expect(
                    409,
                    "CLOCK_REGRESSION",
                    "POST",
                    "/v1/tenants/flat1/ingest",
                    {"keys": ["a", "b"], "clocks": [5.0, 1.0]},
                )

        run(body())

    def test_bad_body_is_a_400(self, tmp_path):
        async def body():
            async with _Stack(tmp_path) as stack:
                port = stack.gateway.port
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                raw = b"POST /v1/tenants/x/ingest HTTP/1.1\r\nContent-Length: 9\r\n\r\n{not json"
                writer.write(raw)
                await writer.drain()
                response = await reader.read()
                writer.close()
                await writer.wait_closed()
                header, _, rest = response.partition(b"\r\n\r\n")
                assert b" 400 " in header.split(b"\r\n")[0]
                payload = json.loads(rest)
                assert payload["error"]["code"] in ("BAD_REQUEST", "PROTOCOL")

        run(body())

    def test_dead_backend_is_a_503(self, tmp_path):
        async def body():
            pool = TenantPool(pool_config(tmp_path))
            server = SketchServer(pool)
            await server.__aenter__()
            gateway = GatewayServer(backend_port=server.port, port=0)
            await gateway.start()
            try:
                status, _ = await http(gateway.port, "GET", "/v1/info")
                assert status == 200
                await server.__aexit__(None, None, None)
                status, payload = await http(gateway.port, "GET", "/v1/info")
                assert status == 503
                assert payload["error"]["code"] == "SERVICE_STOPPED"
            finally:
                await gateway.stop()

        run(body())

    def test_503_carries_retry_after(self, tmp_path):
        async def body():
            pool = TenantPool(pool_config(tmp_path))
            server = SketchServer(pool)
            await server.__aenter__()
            gateway = GatewayServer(backend_port=server.port, port=0)
            await gateway.start()
            try:
                await server.__aexit__(None, None, None)
                status, headers, payload = await http_with_headers(
                    gateway.port, "GET", "/v1/info"
                )
                assert status == 503
                assert payload["error"]["code"] == "SERVICE_STOPPED"
                assert headers.get("retry-after") == "1"
            finally:
                await gateway.stop()

        run(body())

    def test_unpooled_backend_maps_pool_disabled(self, tmp_path):
        async def body():
            config = ServiceConfig(mode="flat", epsilon=EPSILON, delta=0.05, window=WINDOW)
            async with SketchServer(SketchService(config)) as server:
                gateway = GatewayServer(backend_port=server.port, port=0)
                await gateway.start()
                try:
                    status, payload = await http(gateway.port, "PUT", "/v1/tenants/alpha")
                    assert status == 400
                    assert payload["error"]["code"] == "POOL_DISABLED"
                    # Tenant-less queries still flow through the gateway.
                    status, payload = await http(
                        gateway.port, "POST", "/v1/ingest", {"keys": ["a"], "clocks": [1.0]}
                    )
                    assert status == 200 and payload["result"] == {"accepted": 1}
                    await http(gateway.port, "POST", "/v1/drain")
                    result = await get(gateway.port, "/v1/query/point?key=a")
                    assert result == 1.0
                finally:
                    await gateway.stop()

        run(body())


def _flat_config() -> ServiceConfig:
    return ServiceConfig(mode="flat", epsilon=EPSILON, delta=0.05, window=WINDOW)


class TestResilience:
    """Healthz, Retry-After and the reconnect-to-a-restarted-backend path."""

    def test_healthz_reports_healthy_then_degraded(self, tmp_path):
        async def body():
            server = SketchServer(SketchService(_flat_config()))
            await server.__aenter__()
            gateway = GatewayServer(backend_port=server.port, port=0)
            await gateway.start()
            try:
                status, headers, payload = await http_with_headers(
                    gateway.port, "GET", "/v1/healthz"
                )
                assert status == 200
                assert payload == {"ok": True, "result": {"status": "healthy"}}
                assert "retry-after" not in headers

                await server.__aexit__(None, None, None)
                status, headers, payload = await http_with_headers(
                    gateway.port, "GET", "/v1/healthz"
                )
                assert status == 503
                assert payload["ok"] is False
                assert payload["error"]["code"] == "SERVICE_STOPPED"
                assert headers.get("retry-after") == "1"
            finally:
                await gateway.stop()

        run(body())

    def test_healthz_is_get_only(self, tmp_path):
        async def body():
            async with SketchServer(SketchService(_flat_config())) as server:
                gateway = GatewayServer(backend_port=server.port, port=0)
                await gateway.start()
                try:
                    status, payload = await http(gateway.port, "POST", "/v1/healthz")
                    assert status == 405
                    assert payload["error"]["code"] == "METHOD_NOT_ALLOWED"
                finally:
                    await gateway.stop()

        run(body())

    def test_gateway_reconnects_to_a_restarted_backend(self, tmp_path):
        """Kill the backend mid-session, restart it on the same port: the
        gateway's channel must reconnect and keep serving, and the retried
        ingest must not double-count (channel-level client/seq dedup)."""

        async def body():
            first = SketchServer(SketchService(_flat_config()))
            await first.__aenter__()
            port = first.port
            gateway = GatewayServer(backend_port=port, port=0)
            await gateway.start()
            try:
                status, payload = await http(
                    gateway.port, "POST", "/v1/ingest", {"keys": [1, 2], "clocks": [1.0, 2.0]}
                )
                assert status == 200 and payload["result"] == {"accepted": 2}

                await first.__aexit__(None, None, None)
                second = SketchServer(SketchService(_flat_config()), port=port)
                await second.__aenter__()
                try:
                    status, payload = await http(
                        gateway.port, "POST", "/v1/ingest", {"keys": [3], "clocks": [3.0]}
                    )
                    assert status == 200 and payload["result"] == {"accepted": 1}
                    await http(gateway.port, "POST", "/v1/drain")
                    assert await get(gateway.port, "/v1/query/point?key=3") == 1.0
                    status, _, payload = await http_with_headers(
                        gateway.port, "GET", "/v1/healthz"
                    )
                    assert status == 200
                finally:
                    await second.__aexit__(None, None, None)
            finally:
                await gateway.stop()

        run(body())
