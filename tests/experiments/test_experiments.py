"""Small-scale smoke and shape tests for the experiment runners.

These tests execute every table/figure runner at a reduced scale and assert
the *qualitative* properties the paper reports (errors below epsilon, memory
and transfer-volume ordering between variants), not absolute values.
"""

from __future__ import annotations

import pytest

from repro.core import CounterType
from repro.core.errors import ConfigurationError
from repro.experiments import (
    dataset_specs,
    format_centralized_rows,
    format_centralized_vs_distributed_rows,
    format_complexity_rows,
    format_distributed_rows,
    format_epsilon_split_rows,
    format_merge_strategy_rows,
    format_network_size_rows,
    format_update_rate_rows,
    load_dataset,
    run_centralized_error_experiment,
    run_centralized_vs_distributed_experiment,
    run_complexity_experiment,
    run_distributed_error_experiment,
    run_epsilon_split_ablation,
    run_merge_strategy_ablation,
    run_network_size_experiment,
    run_update_rate_experiment,
)


SMALL = dict(num_records=2_500, max_keys_per_range=30)


class TestCommon:
    def test_dataset_specs(self):
        specs = dataset_specs()
        assert specs["wc98"].num_nodes == 33
        assert specs["snmp"].num_nodes == 535

    def test_load_dataset(self):
        assert len(load_dataset("wc98", num_records=500)) == 500
        assert len(load_dataset("snmp", num_records=500)) == 500
        with pytest.raises(ConfigurationError):
            load_dataset("unknown")

    def test_load_dataset_is_deterministic(self):
        a = load_dataset("wc98", num_records=200)
        b = load_dataset("wc98", num_records=200)
        assert [r.key for r in a] == [r.key for r in b]


class TestFigure4Centralized:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_centralized_error_experiment(
            dataset="wc98", epsilons=(0.1, 0.25), num_records=2_500, max_keys_per_range=30
        )

    def test_row_coverage(self, rows):
        variants = {(row.variant, row.query_type) for row in rows}
        assert ("ECM-EH", "point") in variants
        assert ("ECM-DW", "point") in variants
        assert ("ECM-RW", "point") in variants
        assert ("ECM-EH", "self-join") in variants
        # The paper gives no self-join guarantee for randomized waves.
        assert ("ECM-RW", "self-join") not in variants

    def test_observed_error_below_epsilon(self, rows):
        for row in rows:
            assert row.average_error <= row.epsilon
            assert row.maximum_error <= 1.5 * row.epsilon

    def test_memory_ordering_matches_paper(self, rows):
        by_variant = {
            row.variant: row.memory_bytes
            for row in rows
            if row.query_type == "point" and row.epsilon == 0.1
        }
        assert by_variant["ECM-EH"] < by_variant["ECM-DW"]
        assert by_variant["ECM-RW"] > 5 * by_variant["ECM-EH"]

    def test_memory_decreases_with_epsilon(self, rows):
        eh_rows = {row.epsilon: row.memory_bytes for row in rows
                   if row.variant == "ECM-EH" and row.query_type == "point"}
        assert eh_rows[0.25] < eh_rows[0.1]

    def test_formatting(self, rows):
        text = format_centralized_rows(rows)
        assert "ECM-EH" in text
        assert "avg err" in text


class TestTable3UpdateRates:
    def test_ordering(self):
        rows = run_update_rate_experiment(dataset="wc98", num_records=2_000)
        rates = {row.variant: row.updates_per_second for row in rows}
        assert rates["ECM-EH"] > rates["ECM-RW"]
        assert rates["ECM-DW"] > rates["ECM-RW"]
        text = format_update_rate_rows(rows)
        assert "updates/sec" in text


class TestFigure5AndTable4Distributed:
    def test_distributed_error_rows(self):
        rows = run_distributed_error_experiment(
            dataset="wc98", epsilons=(0.2,), num_records=2_000, num_nodes=8, max_keys_per_range=30
        )
        variants = {row.variant for row in rows}
        assert variants == {"ECM-EH", "ECM-RW"}
        for row in rows:
            assert row.average_error <= row.epsilon
            assert row.transfer_bytes > 0
        eh_transfer = next(r.transfer_bytes for r in rows if r.variant == "ECM-EH" and r.query_type == "point")
        rw_transfer = next(r.transfer_bytes for r in rows if r.variant == "ECM-RW" and r.query_type == "point")
        assert rw_transfer > 5 * eh_transfer
        assert "transfer(MB)" in format_distributed_rows(rows)

    def test_centralized_vs_distributed_rows(self):
        rows = run_centralized_vs_distributed_experiment(
            dataset="wc98", epsilons=(0.2,), num_records=2_000, num_nodes=8,
            variants=(CounterType.EXPONENTIAL_HISTOGRAM,), max_keys_per_range=30,
        )
        assert rows
        for row in rows:
            # Aggregation may only degrade accuracy mildly (paper: ratio ~1.0-1.25).
            assert row.ratio < 3.0
            assert row.distributed_error <= row.epsilon
        assert "ratio" in format_centralized_vs_distributed_rows(rows)


class TestFigure6NetworkSize:
    def test_rows_and_trends(self):
        rows = run_network_size_experiment(
            dataset="wc98", network_sizes=(1, 4, 16), num_records=2_000,
            max_keys_per_range=30, epsilon=0.15,
        )
        eh_rows = [row for row in rows if row.variant == "ECM-EH"]
        rw_rows = [row for row in rows if row.variant == "ECM-RW"]
        assert [row.num_nodes for row in eh_rows] == [1, 4, 16]
        # Transfer volume grows with network size.
        assert eh_rows[0].transfer_bytes < eh_rows[-1].transfer_bytes
        # RW transfers at least 5x the EH volume at the same size.
        assert rw_rows[-1].transfer_bytes > 5 * eh_rows[-1].transfer_bytes
        # Errors stay below epsilon even after aggregation.
        for row in rows:
            assert row.point_average_error <= row.epsilon
        assert rw_rows[0].self_join_average_error is None
        assert "levels" in format_network_size_rows(rows)


class TestTable2Complexity:
    def test_rows(self):
        rows = run_complexity_experiment(
            epsilons=(0.1,), num_records=1_500, num_queries=50
        )
        by_variant = {row.variant: row for row in rows}
        assert set(by_variant) == {"ECM-EH", "ECM-DW", "ECM-RW"}
        assert by_variant["ECM-EH"].measured_bytes < by_variant["ECM-RW"].measured_bytes
        for row in rows:
            assert row.update_microseconds > 0
            assert row.query_microseconds > 0
            assert row.analytical_bytes > 0
        assert "bound(bytes)" in format_complexity_rows(rows)


class TestAblations:
    def test_epsilon_split_ablation(self):
        rows = run_epsilon_split_ablation(epsilons=(0.1,))
        by_policy = {row.policy: row for row in rows}
        assert by_policy["optimal"].memory_bytes <= by_policy["sw-heavy"].memory_bytes
        assert by_policy["optimal"].memory_bytes <= by_policy["cm-heavy"].memory_bytes
        for row in rows:
            assert row.total_error == pytest.approx(0.1, rel=1e-3)
        assert "policy" in format_epsilon_split_rows(rows)

    def test_merge_strategy_ablation(self):
        rows = run_merge_strategy_ablation(num_streams=4, arrivals_per_stream=1_500)
        strategies = {row.strategy for row in rows}
        assert strategies == {"half-half", "all-at-end"}
        for row in rows:
            assert 0.0 <= row.average_error <= row.maximum_error
        assert "strategy" in format_merge_strategy_rows(rows)
