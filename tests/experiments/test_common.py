"""Unit tests for the shared experiment plumbing."""

from __future__ import annotations

import pytest

from repro.core import CounterType
from repro.core.errors import ConfigurationError
from repro.experiments import (
    PAPER_WINDOW_SECONDS,
    VARIANT_LABELS,
    build_sketch,
    load_dataset,
    max_arrivals_bound,
)


class TestVariantLabels:
    def test_all_counter_types_labelled(self):
        assert set(VARIANT_LABELS) == set(CounterType)
        assert VARIANT_LABELS[CounterType.EXPONENTIAL_HISTOGRAM] == "ECM-EH"
        assert VARIANT_LABELS[CounterType.DETERMINISTIC_WAVE] == "ECM-DW"
        assert VARIANT_LABELS[CounterType.RANDOMIZED_WAVE] == "ECM-RW"


class TestBuildSketch:
    def test_point_query_sizing(self):
        sketch = build_sketch(
            counter_type=CounterType.EXPONENTIAL_HISTOGRAM,
            epsilon=0.1,
            delta=0.1,
            window=PAPER_WINDOW_SECONDS,
            max_arrivals=1_000,
            query_type="point",
        )
        assert sketch.config.total_point_error == pytest.approx(0.1)

    def test_self_join_sizing_differs_from_point(self):
        point = build_sketch(
            counter_type=CounterType.EXPONENTIAL_HISTOGRAM,
            epsilon=0.1, delta=0.1, window=PAPER_WINDOW_SECONDS,
            max_arrivals=1_000, query_type="point",
        )
        join = build_sketch(
            counter_type=CounterType.EXPONENTIAL_HISTOGRAM,
            epsilon=0.1, delta=0.1, window=PAPER_WINDOW_SECONDS,
            max_arrivals=1_000, query_type="self-join",
        )
        # The inner-product split spends the budget differently, so the
        # resulting Count-Min width differs (this is why Figure 4 shows
        # different memory for the two query types at the same epsilon).
        assert join.config.epsilon_cm != point.config.epsilon_cm

    def test_unknown_query_type_rejected(self):
        with pytest.raises(ConfigurationError):
            build_sketch(
                counter_type=CounterType.EXPONENTIAL_HISTOGRAM,
                epsilon=0.1, delta=0.1, window=PAPER_WINDOW_SECONDS,
                max_arrivals=1_000, query_type="range",
            )

    def test_randomized_wave_self_join_falls_back_to_point_split(self):
        """The runners never request an RW self-join sketch, but the distributed
        experiment builds RW configs through the point split explicitly."""
        with pytest.raises(ConfigurationError):
            build_sketch(
                counter_type=CounterType.RANDOMIZED_WAVE,
                epsilon=0.1, delta=0.1, window=PAPER_WINDOW_SECONDS,
                max_arrivals=1_000, query_type="self-join",
            )


class TestBounds:
    def test_max_arrivals_bound_is_conservative(self):
        stream = load_dataset("wc98", num_records=1_000)
        assert max_arrivals_bound(stream) >= len(stream)
        assert max_arrivals_bound(stream, safety_factor=4.0) == 4_000

    def test_dataset_sizes_respect_override(self):
        assert len(load_dataset("snmp", num_records=750)) == 750
