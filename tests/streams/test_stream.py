"""Unit tests for the stream abstractions."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.streams import Stream, StreamRecord


def _records():
    return [
        StreamRecord(timestamp=3.0, key="b", node=1),
        StreamRecord(timestamp=1.0, key="a", node=0),
        StreamRecord(timestamp=2.0, key="a", node=1),
        StreamRecord(timestamp=5.0, key="c", node=2, value=2),
    ]


class TestStreamBasics:
    def test_records_sorted_by_time(self):
        stream = Stream(_records())
        timestamps = [record.timestamp for record in stream]
        assert timestamps == sorted(timestamps)

    def test_len_and_getitem(self):
        stream = Stream(_records())
        assert len(stream) == 4
        assert stream[0].timestamp == 1.0

    def test_keys_and_nodes(self):
        stream = Stream(_records())
        assert set(stream.keys()) == {"a", "b", "c"}
        assert set(stream.nodes()) == {0, 1, 2}

    def test_time_bounds_and_duration(self):
        stream = Stream(_records())
        assert stream.start_time() == 1.0
        assert stream.end_time() == 5.0
        assert stream.duration() == 4.0

    def test_empty_stream_bounds_raise(self):
        stream = Stream([])
        assert stream.is_empty()
        with pytest.raises(ConfigurationError):
            stream.start_time()
        with pytest.raises(ConfigurationError):
            stream.end_time()

    def test_total_arrivals_counts_values(self):
        stream = Stream(_records())
        assert stream.total_arrivals() == 5

    def test_key_frequencies(self):
        stream = Stream(_records())
        assert stream.key_frequencies() == {"a": 2, "b": 1, "c": 2}

    def test_repr(self):
        assert "Stream" in repr(Stream(_records()))


class TestPartitioning:
    def test_partition_by_node(self):
        stream = Stream(_records())
        parts = stream.partition_by_node()
        assert set(parts) == {0, 1, 2}
        assert len(parts[1]) == 2
        assert all(record.node == 1 for record in parts[1])

    def test_partition_round_trip_via_concatenate(self):
        stream = Stream(_records())
        parts = stream.partition_by_node()
        union = Stream.concatenate(parts.values())
        assert len(union) == len(stream)
        assert [r.timestamp for r in union] == [r.timestamp for r in stream]

    def test_reassign_round_robin_balances(self):
        records = [StreamRecord(timestamp=float(i), key="k", node=0) for i in range(100)]
        stream = Stream(records)
        reassigned = stream.reassign_round_robin(4)
        counts = {}
        for record in reassigned:
            counts[record.node] = counts.get(record.node, 0) + 1
        assert set(counts) == {0, 1, 2, 3}
        assert max(counts.values()) - min(counts.values()) <= 1

    def test_reassign_round_robin_rejects_bad_input(self):
        with pytest.raises(ConfigurationError):
            Stream(_records()).reassign_round_robin(0)

    def test_filter(self):
        stream = Stream(_records())
        only_a = stream.filter(lambda record: record.key == "a")
        assert len(only_a) == 2

    def test_tail(self):
        stream = Stream(_records())
        recent = stream.tail(range_length=3.0)
        assert all(record.timestamp > 2.0 for record in recent)

    def test_head(self):
        stream = Stream(_records())
        assert len(stream.head(2)) == 2
