"""Unit tests for the synthetic trace generators."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.streams import (
    SnmpSyntheticTrace,
    UniformTrace,
    WorldCupSyntheticTrace,
    ZipfSampler,
    generate_arrival_times,
    make_trace,
)


class TestZipfSampler:
    def test_range(self):
        sampler = ZipfSampler(domain_size=100, exponent=1.1, seed=0)
        for value in sampler.sample_many(1_000):
            assert 0 <= value < 100

    def test_skew(self):
        """With a Zipf exponent > 1 the most popular item dominates."""
        sampler = ZipfSampler(domain_size=1_000, exponent=1.2, seed=1)
        samples = sampler.sample_many(10_000)
        top_share = samples.count(0) / len(samples)
        tail_share = samples.count(900) / len(samples)
        assert top_share > 0.05
        assert top_share > 10 * max(tail_share, 1e-4)

    def test_uniform_when_exponent_zero(self):
        sampler = ZipfSampler(domain_size=10, exponent=0.0, seed=2)
        samples = sampler.sample_many(10_000)
        counts = [samples.count(i) for i in range(10)]
        assert max(counts) < 2 * min(counts)

    def test_deterministic_given_seed(self):
        a = ZipfSampler(domain_size=50, exponent=1.0, seed=7).sample_many(100)
        b = ZipfSampler(domain_size=50, exponent=1.0, seed=7).sample_many(100)
        assert a == b

    def test_probability_sums_to_one(self):
        sampler = ZipfSampler(domain_size=20, exponent=1.0)
        assert sum(sampler.probability(i) for i in range(20)) == pytest.approx(1.0)
        assert sampler.probability(-1) == 0.0
        assert sampler.probability(20) == 0.0

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            ZipfSampler(domain_size=0, exponent=1.0)
        with pytest.raises(ConfigurationError):
            ZipfSampler(domain_size=10, exponent=-1.0)


class TestArrivalTimes:
    def test_monotone_and_in_range(self):
        times = generate_arrival_times(1_000, duration=10_000.0, seed=3)
        assert times == sorted(times)
        assert all(0 <= t <= 10_000.0 for t in times)
        assert len(times) == 1_000

    def test_zero_records(self):
        assert generate_arrival_times(0, duration=100.0) == []

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            generate_arrival_times(-1, duration=100.0)
        with pytest.raises(ConfigurationError):
            generate_arrival_times(10, duration=0.0)
        with pytest.raises(ConfigurationError):
            generate_arrival_times(10, duration=100.0, diurnal_amplitude=1.5)


class TestTraceGenerators:
    def test_worldcup_trace_shape(self):
        trace = WorldCupSyntheticTrace(num_records=2_000, num_nodes=33, domain_size=100).generate()
        assert len(trace) == 2_000
        assert all(0 <= record.node < 33 for record in trace)
        assert all(str(record.key).startswith("/page/") for record in trace)

    def test_worldcup_keys_are_skewed(self):
        trace = WorldCupSyntheticTrace(num_records=5_000, domain_size=500).generate()
        frequencies = trace.key_frequencies()
        top = max(frequencies.values())
        assert top > 5 * (len(trace) / len(frequencies))

    def test_snmp_trace_shape(self):
        trace = SnmpSyntheticTrace(num_records=1_500, num_nodes=50, domain_size=100).generate()
        assert len(trace) == 1_500
        assert all(0 <= record.node < 50 for record in trace)
        assert all(":" in str(record.key) for record in trace)

    def test_snmp_locality(self):
        """Most records of a client should be observed by its home access point."""
        trace = SnmpSyntheticTrace(
            num_records=4_000, num_nodes=40, domain_size=50, roaming_probability=0.1
        ).generate()
        per_key_nodes = {}
        for record in trace:
            per_key_nodes.setdefault(record.key, []).append(record.node)
        dominant_shares = []
        for nodes in per_key_nodes.values():
            if len(nodes) >= 20:
                most_common = max(set(nodes), key=nodes.count)
                dominant_shares.append(nodes.count(most_common) / len(nodes))
        assert dominant_shares and sum(dominant_shares) / len(dominant_shares) > 0.6

    def test_snmp_invalid_roaming(self):
        with pytest.raises(ConfigurationError):
            SnmpSyntheticTrace(roaming_probability=1.5)

    def test_uniform_trace_shape(self):
        trace = UniformTrace(num_records=500, num_nodes=4, domain_size=16).generate()
        assert len(trace) == 500
        assert len(trace.keys()) <= 16

    def test_traces_are_reproducible(self):
        a = WorldCupSyntheticTrace(num_records=300, seed=5).generate()
        b = WorldCupSyntheticTrace(num_records=300, seed=5).generate()
        assert [r.key for r in a] == [r.key for r in b]
        assert [r.timestamp for r in a] == [r.timestamp for r in b]

    def test_make_trace_factory(self):
        assert len(make_trace("wc98", num_records=100)) == 100
        assert len(make_trace("snmp", num_records=100)) == 100
        assert len(make_trace("uniform", num_records=100)) == 100
        with pytest.raises(ConfigurationError):
            make_trace("unknown")
