"""Unit tests for the exact sliding-window stream summary baseline."""

from __future__ import annotations

import pytest

from repro.baselines import ExactStreamSummary
from repro.core.errors import ConfigurationError
from repro.streams import Stream, StreamRecord


def _summary():
    summary = ExactStreamSummary(window=100.0)
    arrivals = [
        ("a", 1.0), ("b", 2.0), ("a", 3.0), ("c", 10.0),
        ("a", 50.0), ("b", 60.0), ("a", 99.0),
    ]
    for key, clock in arrivals:
        summary.add(key, clock)
    return summary


class TestFrequencies:
    def test_frequency_full_window(self):
        summary = _summary()
        assert summary.frequency("a", now=99.0) == 4
        assert summary.frequency("b", now=99.0) == 2
        assert summary.frequency("missing", now=99.0) == 0

    def test_frequency_restricted_range(self):
        summary = _summary()
        assert summary.frequency("a", range_length=50.0, now=99.0) == 2

    def test_boundary_is_half_open(self):
        summary = _summary()
        # Range (49, 99]: includes the arrivals of "a" at 50 and 99.
        assert summary.frequency("a", range_length=50.0, now=99.0) == 2
        # Range (50, 99]: the arrival exactly at the open boundary is excluded.
        assert summary.frequency("a", range_length=49.0, now=99.0) == 1

    def test_arrivals(self):
        summary = _summary()
        assert summary.arrivals(now=99.0) == 7
        assert summary.arrivals(range_length=10.0, now=99.0) == 1

    def test_frequencies_in_range(self):
        summary = _summary()
        frequencies = summary.frequencies_in_range(range_length=60.0, now=99.0)
        assert frequencies == {"a": 2, "b": 1}

    def test_keys_in_range(self):
        summary = _summary()
        assert set(summary.keys_in_range(range_length=60.0, now=99.0)) == {"a", "b"}

    def test_weighted_add(self):
        summary = ExactStreamSummary(window=100.0)
        summary.add("x", 1.0, value=3)
        assert summary.frequency("x", now=1.0) == 3

    def test_out_of_order_rejected(self):
        summary = ExactStreamSummary(window=100.0)
        summary.add("x", 10.0)
        with pytest.raises(ConfigurationError):
            summary.add("y", 5.0)

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            ExactStreamSummary(window=0)


class TestAggregates:
    def test_self_join(self):
        summary = _summary()
        # Full window frequencies: a=4, b=2, c=1 -> F2 = 16 + 4 + 1.
        assert summary.self_join(now=99.0) == 21

    def test_inner_product(self):
        a = ExactStreamSummary(window=100.0)
        b = ExactStreamSummary(window=100.0)
        for key, clock in [("x", 1.0), ("x", 2.0), ("y", 3.0)]:
            a.add(key, clock)
        for key, clock in [("x", 1.5), ("z", 2.5)]:
            b.add(key, clock)
        assert a.inner_product(b, now=3.0) == 2  # 2*1 on "x"

    def test_heavy_hitters(self):
        summary = _summary()
        hitters = summary.heavy_hitters(phi=0.5, now=99.0)
        assert set(hitters) == {"a"}
        assert summary.heavy_hitters(phi=0.01, now=99.0).keys() >= {"a", "b", "c"}

    def test_heavy_hitters_invalid_phi(self):
        with pytest.raises(ConfigurationError):
            _summary().heavy_hitters(phi=0.0)

    def test_quantile_integer_domain(self):
        summary = ExactStreamSummary(window=1_000.0)
        for clock, key in enumerate([1, 1, 2, 3, 3, 3, 5, 9]):
            summary.add(key, float(clock))
        assert summary.quantile(0.0, now=7.0) == 1
        assert summary.quantile(0.5, now=7.0) == 3
        assert summary.quantile(1.0, now=7.0) == 9

    def test_quantile_empty_range(self):
        summary = ExactStreamSummary(window=10.0)
        assert summary.quantile(0.5) is None

    def test_quantile_invalid_fraction(self):
        with pytest.raises(ConfigurationError):
            _summary().quantile(1.5)


class TestIngestion:
    def test_from_stream(self):
        stream = Stream([
            StreamRecord(timestamp=1.0, key="a"),
            StreamRecord(timestamp=2.0, key="b", value=2),
        ])
        summary = ExactStreamSummary.from_stream(stream, window=10.0)
        assert summary.total_arrivals() == 3
        assert summary.distinct_keys() == 2
        assert summary.last_clock == 2.0

    def test_matches_brute_force_on_fixture(self, wc98_trace, wc98_exact):
        now = wc98_trace.end_time()
        window = 100_000.0
        expected = {}
        for record in wc98_trace:
            if now - 10_000.0 < record.timestamp <= now:
                expected[record.key] = expected.get(record.key, 0) + record.value
        assert wc98_exact.frequencies_in_range(10_000.0, now) == expected

    def test_repr(self):
        assert "ExactStreamSummary" in repr(_summary())
