"""Unit tests for the throughput measurement harness."""

from __future__ import annotations

import pytest

from repro.analysis import ThroughputResult, measure_query_rate, measure_update_rate
from repro.core import ECMSketch
from repro.core.errors import ConfigurationError
from repro.streams import Stream


WINDOW = 100_000.0


class TestThroughputResult:
    def test_rate(self):
        result = ThroughputResult(operations=100, elapsed_seconds=2.0)
        assert result.rate == 50.0

    def test_zero_elapsed(self):
        assert ThroughputResult(operations=10, elapsed_seconds=0.0).rate == float("inf")


class TestMeasurement:
    def test_update_rate_counts_all_records(self, uniform_trace):
        sketch = ECMSketch.for_point_queries(epsilon=0.2, delta=0.2, window=WINDOW)
        result = measure_update_rate(sketch, uniform_trace)
        assert result.operations == len(uniform_trace)
        assert result.elapsed_seconds > 0
        assert sketch.total_arrivals() == len(uniform_trace)

    def test_update_rate_max_records(self, uniform_trace):
        sketch = ECMSketch.for_point_queries(epsilon=0.2, delta=0.2, window=WINDOW)
        result = measure_update_rate(sketch, uniform_trace, max_records=100)
        assert result.operations == 100

    def test_update_rate_empty_stream_rejected(self):
        sketch = ECMSketch.for_point_queries(epsilon=0.2, delta=0.2, window=WINDOW)
        with pytest.raises(ConfigurationError):
            measure_update_rate(sketch, Stream([]))

    def test_query_rate(self, uniform_trace):
        sketch = ECMSketch.for_point_queries(epsilon=0.2, delta=0.2, window=WINDOW)
        measure_update_rate(sketch, uniform_trace)
        result = measure_query_rate(sketch, uniform_trace.keys()[:50], now=uniform_trace.end_time())
        assert result.operations == 50
        assert result.rate > 0

    def test_query_rate_requires_keys(self):
        sketch = ECMSketch.for_point_queries(epsilon=0.2, delta=0.2, window=WINDOW)
        with pytest.raises(ConfigurationError):
            measure_query_rate(sketch, [])

    def test_injected_clock(self, uniform_trace):
        """A fake clock makes the rate deterministic for testing."""
        ticks = iter([0.0, 2.0])
        sketch = ECMSketch.for_point_queries(epsilon=0.2, delta=0.2, window=WINDOW)
        result = measure_update_rate(
            sketch, uniform_trace.head(10), clock=lambda: next(ticks)
        )
        assert result.elapsed_seconds == 2.0
        assert result.rate == pytest.approx(5.0)
