"""Unit tests for the experiment-result export helpers."""

from __future__ import annotations

import csv
import json

import pytest

from repro.analysis import row_to_dict, rows_to_dicts, write_csv, write_json, write_rows
from repro.core.errors import ConfigurationError
from repro.experiments import run_epsilon_split_ablation, run_update_rate_experiment
from repro.experiments.centralized import CentralizedErrorRow


def _sample_rows():
    return [
        CentralizedErrorRow(
            dataset="wc98", variant="ECM-EH", query_type="point", epsilon=0.1,
            memory_bytes=1_048_576, average_error=0.01, maximum_error=0.02, queries=10,
        ),
        CentralizedErrorRow(
            dataset="wc98", variant="ECM-RW", query_type="point", epsilon=0.1,
            memory_bytes=10_485_760, average_error=0.005, maximum_error=0.01, queries=10,
        ),
    ]


class TestRowConversion:
    def test_row_to_dict_includes_fields_and_properties(self):
        data = row_to_dict(_sample_rows()[0])
        assert data["variant"] == "ECM-EH"
        assert data["memory_bytes"] == 1_048_576
        # The derived property used on the figure's axis is included too.
        assert data["memory_megabytes"] == pytest.approx(1.0)

    def test_rows_to_dicts_length(self):
        assert len(rows_to_dicts(_sample_rows())) == 2

    def test_non_dataclass_rejected(self):
        with pytest.raises(ConfigurationError):
            row_to_dict({"not": "a dataclass"})


class TestWriters:
    def test_write_json(self, tmp_path):
        path = write_json(_sample_rows(), tmp_path / "figure4.json")
        payload = json.loads(path.read_text())
        assert len(payload) == 2
        assert payload[0]["dataset"] == "wc98"

    def test_write_csv(self, tmp_path):
        path = write_csv(_sample_rows(), tmp_path / "figure4.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 2
        assert rows[1]["variant"] == "ECM-RW"
        assert float(rows[0]["memory_megabytes"]) == pytest.approx(1.0)

    def test_write_csv_mixed_row_types(self, tmp_path):
        mixed = _sample_rows() + list(run_epsilon_split_ablation(epsilons=(0.1,)))
        path = write_csv(mixed, tmp_path / "mixed.csv")
        with path.open() as handle:
            reader = csv.DictReader(handle)
            rows = list(reader)
        assert len(rows) == len(mixed)
        assert "policy" in reader.fieldnames and "variant" in reader.fieldnames

    def test_write_csv_empty_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            write_csv([], tmp_path / "empty.csv")

    def test_write_rows_dispatches_on_extension(self, tmp_path):
        assert write_rows(_sample_rows(), tmp_path / "a.json").suffix == ".json"
        assert write_rows(_sample_rows(), tmp_path / "a.csv").suffix == ".csv"
        with pytest.raises(ConfigurationError):
            write_rows(_sample_rows(), tmp_path / "a.parquet")

    def test_round_trip_of_real_experiment_rows(self, tmp_path):
        rows = run_update_rate_experiment(dataset="wc98", num_records=800)
        path = write_json(rows, tmp_path / "table3.json")
        payload = json.loads(path.read_text())
        assert {entry["variant"] for entry in payload} == {"ECM-EH", "ECM-DW", "ECM-RW"}
        assert all(entry["updates_per_second"] > 0 for entry in payload)
