"""Unit tests for the analytical memory bounds (Table 2)."""

from __future__ import annotations

import pytest

from repro.analysis import (
    counter_bits,
    deterministic_wave_bits,
    ecm_sketch_bytes,
    exponential_histogram_bits,
    g_bound,
    randomized_wave_bits,
)
from repro.core import CounterType
from repro.core.errors import ConfigurationError
from repro.windows import DeterministicWave, ExponentialHistogram, RandomizedWave

from ..conftest import make_arrivals


class TestFormulas:
    def test_g_bound(self):
        assert g_bound(window=1_000, max_arrivals=500) == 1_000
        assert g_bound(window=100, max_arrivals=5_000) == 5_000
        with pytest.raises(ConfigurationError):
            g_bound(0, 10)

    def test_eh_linear_in_inverse_epsilon(self):
        """A 10x tighter epsilon costs roughly 10x the space (log factors aside)."""
        fine = exponential_histogram_bits(0.01, 1_000, 100_000)
        coarse = exponential_histogram_bits(0.1, 1_000, 100_000)
        assert 4.0 <= fine / coarse <= 20.0

    def test_rw_quadratic_in_inverse_epsilon(self):
        fine = randomized_wave_bits(0.01, 0.1, 100_000)
        coarse = randomized_wave_bits(0.1, 0.1, 100_000)
        assert fine / coarse == pytest.approx(100.0, rel=0.2)

    def test_rw_at_least_order_of_magnitude_above_eh(self):
        for epsilon in (0.05, 0.1, 0.2):
            assert randomized_wave_bits(epsilon, 0.1, 100_000) >= 10 * exponential_histogram_bits(
                epsilon, 1_000_000, 100_000
            )

    def test_dw_roughly_double_eh(self):
        eh = exponential_histogram_bits(0.1, 1_000_000, 100_000)
        dw = deterministic_wave_bits(0.1, 1_000_000, 100_000)
        assert eh < dw < 5 * eh

    def test_counter_bits_dispatch(self):
        kwargs = dict(epsilon_sw=0.1, window=1_000.0, max_arrivals=10_000)
        assert counter_bits(CounterType.EXPONENTIAL_HISTOGRAM, **kwargs) == exponential_histogram_bits(
            0.1, 1_000.0, 10_000
        )
        assert counter_bits(CounterType.DETERMINISTIC_WAVE, **kwargs) == deterministic_wave_bits(
            0.1, 1_000.0, 10_000
        )
        assert counter_bits(CounterType.RANDOMIZED_WAVE, **kwargs) == randomized_wave_bits(
            0.1, 0.05, 10_000
        )

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            exponential_histogram_bits(0.0, 100, 100)
        with pytest.raises(ConfigurationError):
            deterministic_wave_bits(1.5, 100, 100)
        with pytest.raises(ConfigurationError):
            randomized_wave_bits(0.1, 0.0, 100)

    def test_ecm_bytes_scales_with_width_and_depth(self):
        small = ecm_sketch_bytes(CounterType.EXPONENTIAL_HISTOGRAM, 0.1, 0.1, 0.1, 1_000, 10_000)
        large = ecm_sketch_bytes(CounterType.EXPONENTIAL_HISTOGRAM, 0.1, 0.01, 0.01, 1_000, 10_000)
        assert large > 5 * small


class TestBoundsCoverMeasurements:
    """The worst-case formulas must upper-bound the live structures."""

    def test_eh_bound_covers_measured(self, rng):
        epsilon = 0.1
        histogram = ExponentialHistogram(epsilon=epsilon, window=10**9)
        arrivals = make_arrivals(rng, 5_000, mean_gap=1.0)
        for clock in arrivals:
            histogram.add(clock)
        bound_bits = exponential_histogram_bits(epsilon, 10**9, len(arrivals))
        assert histogram.memory_bytes() * 8 <= bound_bits * 1.5

    def test_dw_bound_covers_measured(self, rng):
        epsilon = 0.1
        wave = DeterministicWave(epsilon=epsilon, window=10**9, max_arrivals=10_000)
        for clock in make_arrivals(rng, 5_000, mean_gap=1.0):
            wave.add(clock)
        bound_bits = deterministic_wave_bits(epsilon, 10**9, 10_000)
        assert wave.memory_bytes() * 8 <= bound_bits * 1.5

    def test_rw_bound_covers_measured(self, rng):
        epsilon = 0.15
        wave = RandomizedWave(epsilon=epsilon, delta=0.1, window=10**9, max_arrivals=10_000)
        for clock in make_arrivals(rng, 3_000, mean_gap=1.0):
            wave.add(clock)
        bound_bits = randomized_wave_bits(epsilon, 0.1, 10_000)
        assert wave.memory_bytes() * 8 <= bound_bits * 1.5

    def test_ecm_memory_ordering_matches_paper(self, rng):
        """Live ECM sketches must show EH < DW << RW at equal epsilon.

        The ordering is a property of the paper's 32-bit synopsis model, so
        it is checked on ``synopsis_bytes()`` — the backend-independent
        paper-model report (``memory_bytes()`` reports the true allocation of
        whichever storage backend is in use).
        """
        from repro.core import ECMSketch

        arrivals = make_arrivals(rng, 2_000, mean_gap=1.0)
        sketches = {}
        for counter_type in (
            CounterType.EXPONENTIAL_HISTOGRAM,
            CounterType.DETERMINISTIC_WAVE,
            CounterType.RANDOMIZED_WAVE,
        ):
            sketch = ECMSketch.for_point_queries(
                epsilon=0.1, delta=0.1, window=10**9,
                counter_type=counter_type, max_arrivals=10_000,
            )
            for clock in arrivals:
                sketch.add("key-%d" % (int(clock) % 50), clock)
            sketches[counter_type] = sketch.synopsis_bytes()
        assert sketches[CounterType.EXPONENTIAL_HISTOGRAM] < sketches[CounterType.DETERMINISTIC_WAVE]
        # At this reduced scale the gap is >5x; at paper scale it exceeds 10x.
        assert sketches[CounterType.RANDOMIZED_WAVE] > 5 * sketches[CounterType.EXPONENTIAL_HISTOGRAM]
