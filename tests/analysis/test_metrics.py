"""Unit tests for the observed-error metrics harness."""

from __future__ import annotations

import pytest

from repro.analysis import (
    ErrorSummary,
    evaluate_point_queries,
    evaluate_self_join_queries,
    exponential_query_ranges,
    point_query_errors,
    self_join_error,
)
from repro.baselines import ExactStreamSummary
from repro.core import ECMSketch
from repro.core.errors import ConfigurationError


WINDOW = 100_000.0


@pytest.fixture(scope="module")
def sketch_and_exact(wc98_trace):
    sketch = ECMSketch.for_point_queries(epsilon=0.1, delta=0.1, window=WINDOW)
    exact = ExactStreamSummary(window=WINDOW)
    for record in wc98_trace:
        sketch.add(record.key, record.timestamp, record.value)
        exact.add(record.key, record.timestamp, record.value)
    return sketch, exact, wc98_trace.end_time()


class TestErrorSummary:
    def test_from_errors(self):
        summary = ErrorSummary.from_errors([0.1, 0.2, 0.3])
        assert summary.average == pytest.approx(0.2)
        assert summary.maximum == 0.3
        assert summary.count == 3

    def test_empty(self):
        summary = ErrorSummary.from_errors([])
        assert summary.average == 0.0
        assert summary.maximum == 0.0
        assert summary.count == 0

    def test_merge(self):
        a = ErrorSummary.from_errors([0.1, 0.1])
        b = ErrorSummary.from_errors([0.4])
        merged = a.merge(b)
        assert merged.count == 3
        assert merged.average == pytest.approx(0.2)
        assert merged.maximum == 0.4

    def test_merge_empty(self):
        merged = ErrorSummary.from_errors([]).merge(ErrorSummary.from_errors([]))
        assert merged.count == 0


class TestQueryRanges:
    def test_exponential_ranges(self):
        ranges = exponential_query_ranges(1_000_000.0)
        assert ranges == [10.0, 100.0, 1_000.0, 10_000.0, 100_000.0, 1_000_000.0]

    def test_window_always_included(self):
        ranges = exponential_query_ranges(5_000.0)
        assert ranges[-1] == 5_000.0
        assert all(r <= 5_000.0 for r in ranges)

    def test_custom_base(self):
        ranges = exponential_query_ranges(64.0, base=2.0, start_exponent=0)
        assert ranges[0] == 1.0
        assert ranges[-1] == 64.0

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            exponential_query_ranges(0)
        with pytest.raises(ConfigurationError):
            exponential_query_ranges(100, base=1.0)


class TestObservedErrors:
    def test_point_query_errors_below_epsilon(self, sketch_and_exact):
        sketch, exact, now = sketch_and_exact
        errors = point_query_errors(sketch, exact, range_length=WINDOW, now=now)
        assert errors
        assert max(errors) <= 0.1
        assert len(errors) == len(exact.frequencies_in_range(WINDOW, now))

    def test_max_keys_cap(self, sketch_and_exact):
        sketch, exact, now = sketch_and_exact
        errors = point_query_errors(sketch, exact, range_length=WINDOW, now=now, max_keys=10)
        assert len(errors) == 10

    def test_explicit_keys(self, sketch_and_exact):
        sketch, exact, now = sketch_and_exact
        keys = list(exact.frequencies_in_range(WINDOW, now))[:5]
        errors = point_query_errors(sketch, exact, WINDOW, now=now, keys=keys)
        assert len(errors) == 5

    def test_empty_range_returns_no_errors(self, sketch_and_exact):
        sketch, exact, _now = sketch_and_exact
        # Query a range ending before the first arrival.
        assert point_query_errors(sketch, exact, range_length=1.0, now=-100.0) == []

    def test_self_join_error_below_epsilon(self, sketch_and_exact):
        sketch, exact, now = sketch_and_exact
        error = self_join_error(sketch, exact, range_length=WINDOW, now=now)
        assert error is not None
        assert error <= 0.1

    def test_self_join_error_none_for_empty_range(self, sketch_and_exact):
        sketch, exact, _now = sketch_and_exact
        assert self_join_error(sketch, exact, range_length=1.0, now=-100.0) is None

    def test_evaluate_over_ranges(self, sketch_and_exact):
        sketch, exact, now = sketch_and_exact
        ranges = exponential_query_ranges(WINDOW)
        point_summary = evaluate_point_queries(sketch, exact, ranges, now=now, max_keys_per_range=50)
        self_join_summary = evaluate_self_join_queries(sketch, exact, ranges, now=now)
        assert point_summary.count > 0
        assert point_summary.average <= point_summary.maximum <= 0.1
        assert self_join_summary.count == len(ranges)
        assert self_join_summary.maximum <= 0.1
