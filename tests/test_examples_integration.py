"""End-to-end integration tests: the shipped examples must run and make sense.

Each example's ``main()`` is executed with its default (seconds-scale)
parameters; stdout is captured and checked for the claims the example makes.
These tests double as integration coverage of the whole public API surface:
sketch construction, ingestion, querying, aggregation, heavy hitters and
geometric monitoring all run together exactly as a downstream user would run
them.
"""

from __future__ import annotations

import importlib
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


@pytest.fixture(scope="module", autouse=True)
def _examples_on_path():
    sys.path.insert(0, str(EXAMPLES_DIR))
    yield
    sys.path.remove(str(EXAMPLES_DIR))


def _run_example(module_name: str, capsys) -> str:
    module = importlib.import_module(module_name)
    module.main()
    return capsys.readouterr().out


@pytest.mark.integration
def test_quickstart_example(capsys):
    output = _run_example("quickstart", capsys)
    assert "point queries for the most popular page" in output
    assert "self-join over the full window" in output
    # Every reported relative error column value must be below epsilon (0.05).
    for line in output.splitlines():
        parts = line.split()
        if len(parts) == 4 and parts[0].replace(".", "").isdigit():
            assert float(parts[3]) <= 0.05


@pytest.mark.integration
def test_network_monitoring_example(capsys):
    output = _run_example("network_monitoring", capsys)
    assert "ATTACK CONFIRMED" in output
    assert "aggregation:" in output
    assert "203.0.113.7" in output


@pytest.mark.integration
def test_distributed_aggregation_example(capsys):
    output = _run_example("distributed_aggregation", capsys)
    assert "ECM-EH" in output and "ECM-RW" in output
    assert "degradation ratio" in output
    # The example prints the transfer volume for both variants; the RW one
    # must be the larger of the two (the paper's headline distributed result).
    volumes = [
        float(line.split()[-2])
        for line in output.splitlines()
        if line.strip().startswith("transfer volume:")
    ]
    assert len(volumes) == 2
    assert volumes[1] > volumes[0]


@pytest.mark.integration
def test_heavy_hitters_and_quantiles_example(capsys):
    output = _run_example("heavy_hitters_and_quantiles", capsys)
    assert "recall of exact heavy hitters" in output
    # All well-known hot ports must be reported as heavy hitters.
    for port in ("80", "443", "53", "22"):
        assert "\n%8s " % port in output or " %s " % port in output
    assert "quantiles of the in-window port distribution" in output


@pytest.mark.integration
def test_count_based_windows_example(capsys):
    output = _run_example("count_based_windows", capsys)
    assert "after the incident" in output
    assert "WindowModelError" in output
    # The incident must be clearly visible in the windowed error rate.
    healthy_line, incident_line = [
        line for line in output.splitlines() if "errors in last" in line
    ]
    healthy_rate = float(healthy_line.split("rate ")[1].rstrip("%)"))
    incident_rate = float(incident_line.split("rate ")[1].rstrip("%)"))
    assert incident_rate > 5 * healthy_rate


@pytest.mark.integration
def test_continuous_monitoring_example(capsys):
    output = _run_example("continuous_monitoring", capsys)
    assert "threshold crossing detected" in output
    assert "global synchronisations" in output
    # Communication must be far below naive per-arrival shipping.
    assert "x more" in output
