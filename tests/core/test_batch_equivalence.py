"""Equivalence tests for the batched ingestion and query fast paths.

The batched APIs (``HashFamily.hash_many``, ``CountMinSketch.add_many`` /
``point_query_many``, ``ECMSketch.add_many`` / ``point_query_many`` and the
``SlidingWindowCounter.add_batch`` seam) promise *byte-identical* sketch state
and answers relative to the scalar path.  These tests drive random streams
through both paths — across all three counter types and both window models —
and compare the full serialized wire format, which captures every bucket,
checkpoint and sample.
"""

from __future__ import annotations

import random

import pytest

from repro.core import CounterType, CountMinSketch, ECMSketch
from repro.core.errors import ConfigurationError, OutOfOrderArrivalError
from repro.core.hashing import HashFamily, MERSENNE_PRIME_61
from repro.serialization import dumps, histogram_to_dict
from repro.windows import ExponentialHistogram, WindowModel

ALL_COUNTER_TYPES = (
    CounterType.EXPONENTIAL_HISTOGRAM,
    CounterType.DETERMINISTIC_WAVE,
    CounterType.RANDOMIZED_WAVE,
)
ALL_MODELS = (WindowModel.TIME_BASED, WindowModel.COUNT_BASED)


def make_keyed_stream(rng: random.Random, count: int, model: WindowModel, distinct: int = 40):
    """A random stream of (item, clock, value) triples with repeated clocks."""
    clock = 0.0 if model is WindowModel.TIME_BASED else 0
    items, clocks, values = [], [], []
    for _ in range(count):
        if model is WindowModel.TIME_BASED:
            clock = clock + rng.choice([0.0, 0.5, rng.random() * 3.0])
        else:
            clock = clock + 1
        items.append("key-%d" % rng.randrange(distinct))
        clocks.append(clock)
        values.append(rng.choice([0, 1, 1, 1, 2, 3]))
    return items, clocks, values


class TestHashManyEquivalence:
    def test_matches_hash_all_for_mixed_items(self):
        rng = random.Random(1)
        family = HashFamily(depth=5, width=277, seed=17)
        items = (
            [rng.randrange(-(2 ** 63), 2 ** 64) for _ in range(64)]
            + ["key-%d" % i for i in range(64)]
            + [0, 1, True, False, b"bytes", (1, "tuple"), 3.5,
               MERSENNE_PRIME_61 - 1, MERSENNE_PRIME_61, MERSENNE_PRIME_61 + 1, 2 ** 64 - 1]
        )
        columns = family.hash_many(items)
        assert columns.shape == (5, len(items))
        for position, item in enumerate(items):
            assert [int(columns[row, position]) for row in range(5)] == family.hash_all(item)

    def test_numpy_integer_arrays_agree_with_scalar_fingerprints(self):
        # A numpy integer array must hash exactly like its elements do when
        # fed one at a time (np.int64 is not a Python int, but fingerprints
        # like one), otherwise batch- and scalar-ingested keys land in
        # different cells.
        import numpy as np

        from repro.core.hashing import stable_fingerprint, stable_fingerprints

        array = np.array([0, 1, 5, -1, 2 ** 62, -(2 ** 62)], dtype=np.int64)
        vectorized = stable_fingerprints(array)
        for position, element in enumerate(array):
            assert int(vectorized[position]) == stable_fingerprint(element)
            assert stable_fingerprint(element) == stable_fingerprint(int(element))

        family = HashFamily(depth=3, width=101, seed=4)
        columns = family.hash_many(array)
        for position, element in enumerate(array):
            assert [int(columns[row, position]) for row in range(3)] == family.hash_all(element)

    def test_numpy_integer_items_roundtrip_through_sketch(self):
        import numpy as np

        sketch = CountMinSketch(width=32, depth=3, seed=2)
        sketch.add(np.int64(5))
        assert sketch.point_query_many(np.array([5], dtype=np.int64)) == [1.0]
        assert sketch.point_query(np.int64(5)) == 1.0
        assert sketch.point_query(5) == 1.0

    @pytest.mark.parametrize("width", [1, 2, 7, 1000, 2 ** 31 - 1])
    def test_matches_hash_all_across_widths(self, width):
        rng = random.Random(width)
        family = HashFamily(depth=3, width=width, seed=5)
        items = [rng.randrange(2 ** 64) for _ in range(200)]
        columns = family.hash_many(items)
        for position, item in enumerate(items):
            assert [int(columns[row, position]) for row in range(3)] == family.hash_all(item)


class TestCountMinBatchEquivalence:
    def test_add_many_matches_scalar_state(self):
        rng = random.Random(2)
        scalar = CountMinSketch(width=50, depth=4, seed=9)
        batched = CountMinSketch(width=50, depth=4, seed=9)
        items = ["item-%d" % rng.randrange(30) for _ in range(500)]
        values = [float(rng.randrange(1, 4)) for _ in items]
        for item, value in zip(items, values, strict=False):
            scalar.add(item, value)
        position = 0
        while position < len(items):
            step = rng.choice([1, 7, 64, 200])
            batched.add_many(items[position : position + step], values[position : position + step])
            position += step
        assert dumps(scalar) == dumps(batched)

    def test_add_many_unit_weights(self):
        items = ["a", "b", "a", "c", "a", "b"]
        scalar = CountMinSketch(width=16, depth=3)
        batched = CountMinSketch(width=16, depth=3)
        for item in items:
            scalar.add(item)
        batched.add_many(items)
        assert dumps(scalar) == dumps(batched)
        assert batched.total() == len(items)

    def test_point_query_many_matches_scalar(self):
        rng = random.Random(3)
        sketch = CountMinSketch(width=40, depth=4, seed=1)
        sketch.add_many(["item-%d" % rng.randrange(25) for _ in range(400)])
        probes = ["item-%d" % i for i in range(30)]
        assert sketch.point_query_many(probes) == [sketch.point_query(p) for p in probes]

    def test_empty_batch_is_a_noop(self):
        sketch = CountMinSketch(width=8, depth=2)
        before = dumps(sketch)
        sketch.add_many([])
        assert dumps(sketch) == before
        assert sketch.point_query_many([]) == []

    def test_rejects_negative_values(self):
        sketch = CountMinSketch(width=8, depth=2)
        with pytest.raises(ConfigurationError):
            sketch.add_many(["a", "b"], [1.0, -2.0])

    def test_rejects_length_mismatch(self):
        sketch = CountMinSketch(width=8, depth=2)
        with pytest.raises(ConfigurationError):
            sketch.add_many(["a", "b"], [1.0])


class TestExponentialHistogramAddBatch:
    @pytest.mark.parametrize("model", ALL_MODELS)
    @pytest.mark.parametrize("window", [5.0, 200.0, 1e6])
    def test_matches_scalar_including_mid_run_expiry(self, model, window):
        rng = random.Random(int(window))
        clock, clocks, counts = 0.0, [], []
        for _ in range(400):
            clock += rng.choice([0.0, 0.0, rng.random() * 4.0])
            clocks.append(clock)
            counts.append(rng.choice([0, 1, 1, 2, 5]))
        scalar = ExponentialHistogram(epsilon=0.1, window=window, model=model)
        batched = ExponentialHistogram(epsilon=0.1, window=window, model=model)
        for c, k in zip(clocks, counts, strict=False):
            scalar.add(c, k)
        batched.add_batch(clocks, counts)
        assert histogram_to_dict(scalar) == histogram_to_dict(batched)
        assert scalar.arrivals_in_window_upper_bound() == batched.arrivals_in_window_upper_bound()

    def test_unit_fast_path_matches_scalar(self):
        rng = random.Random(8)
        clocks = []
        clock = 0.0
        for _ in range(600):
            clock += rng.random()
            clocks.append(clock)
        scalar = ExponentialHistogram(epsilon=0.05, window=1e9)
        batched = ExponentialHistogram(epsilon=0.05, window=1e9)
        for c in clocks:
            scalar.add(c)
        position = 0
        while position < len(clocks):
            step = rng.choice([1, 13, 100])
            batched.add_batch(clocks[position : position + step])
            position += step
        assert histogram_to_dict(scalar) == histogram_to_dict(batched)

    def test_out_of_order_batch_raises_before_mutation(self):
        histogram = ExponentialHistogram(epsilon=0.1, window=100.0)
        histogram.add(10.0)
        before = histogram_to_dict(histogram)
        with pytest.raises(OutOfOrderArrivalError):
            histogram.add_batch([11.0, 5.0])
        with pytest.raises(OutOfOrderArrivalError):
            histogram.add_batch([11.0, 5.0], [1, 1])
        with pytest.raises(ConfigurationError):
            histogram.add_batch([11.0, 12.0], [1, -1])
        # Unlike scalar adds (which commit the prefix), a bad batch is atomic.
        assert histogram_to_dict(histogram) == before


class TestECMSketchBatchEquivalence:
    @pytest.mark.parametrize("counter_type", ALL_COUNTER_TYPES, ids=lambda c: c.value)
    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.value)
    def test_add_many_state_is_byte_identical(self, counter_type, model):
        rng = random.Random(42)
        kwargs = dict(
            epsilon=0.2,
            delta=0.2,
            window=300.0,
            model=model,
            counter_type=counter_type,
            max_arrivals=5000,
            stream_tag=7,
        )
        scalar = ECMSketch.for_point_queries(**kwargs)
        batched = ECMSketch.for_point_queries(**kwargs)
        items, clocks, values = make_keyed_stream(rng, 800, model)
        for item, clock, value in zip(items, clocks, values, strict=False):
            scalar.add(item, clock, value)
        position = 0
        while position < len(items):
            step = rng.choice([1, 5, 64, 256])
            batched.add_many(
                items[position : position + step],
                clocks[position : position + step],
                values[position : position + step],
            )
            position += step
        # The serialized wire format captures every bucket / checkpoint /
        # sample, so equality here means byte-identical sketch state.
        assert dumps(scalar) == dumps(batched)

    @pytest.mark.parametrize("counter_type", ALL_COUNTER_TYPES, ids=lambda c: c.value)
    def test_point_query_many_matches_scalar(self, counter_type):
        rng = random.Random(13)
        sketch = ECMSketch.for_point_queries(
            epsilon=0.2, delta=0.2, window=500.0,
            counter_type=counter_type, max_arrivals=5000,
        )
        items, clocks, _ = make_keyed_stream(rng, 600, WindowModel.TIME_BASED)
        sketch.add_many(items, clocks)
        probes = ["key-%d" % index for index in range(50)]
        batched_answers = sketch.point_query_many(probes, 200.0)
        scalar_answers = [sketch.point_query(probe, 200.0) for probe in probes]
        assert batched_answers == scalar_answers

    def test_unit_weight_batches_match_scalar(self):
        rng = random.Random(21)
        scalar = ECMSketch.for_point_queries(epsilon=0.1, delta=0.1, window=1e6)
        batched = ECMSketch.for_point_queries(epsilon=0.1, delta=0.1, window=1e6)
        items, clocks, _ = make_keyed_stream(rng, 1000, WindowModel.TIME_BASED, distinct=200)
        for item, clock in zip(items, clocks, strict=False):
            scalar.add(item, clock)
        batched.add_many(items, clocks)
        assert dumps(scalar) == dumps(batched)

    def test_mixed_key_types_do_not_alias(self):
        # 1, 1.0, True and "1" hash differently (or identically) exactly as in
        # the scalar path; the fingerprint memo must not conflate them.
        scalar = ECMSketch.for_point_queries(epsilon=0.1, delta=0.1, window=1e6)
        batched = ECMSketch.for_point_queries(epsilon=0.1, delta=0.1, window=1e6)
        items = [1, 1.0, True, "1", (1,), 1, "1", 1.0] * 20
        clocks = [float(index) for index in range(len(items))]
        for item, clock in zip(items, clocks, strict=False):
            scalar.add(item, clock)
        batched.add_many(items, clocks)
        assert dumps(scalar) == dumps(batched)

    def test_mixed_int_float_clocks_stay_byte_identical(self):
        # np.asarray would promote a mixed clock list to float64; the batched
        # path must still hand counters the original int/float objects.
        scalar = ECMSketch.for_point_queries(epsilon=0.1, delta=0.1, window=1e6)
        batched = ECMSketch.for_point_queries(epsilon=0.1, delta=0.1, window=1e6)
        items = ["x", "y", "x", "z"]
        clocks = [1, 2.5, 7, 9]
        for item, clock in zip(items, clocks, strict=False):
            scalar.add(item, clock)
        batched.add_many(items, clocks)
        assert dumps(scalar) == dumps(batched)

    def test_add_batch_rejects_length_mismatch(self):
        histogram = ExponentialHistogram(epsilon=0.1, window=100.0)
        with pytest.raises(ConfigurationError):
            histogram.add_batch([1.0, 2.0, 3.0], [1, 1])
        from repro.windows.exact_window import ExactWindowCounter

        exact = ExactWindowCounter(window=100.0)
        with pytest.raises(ConfigurationError):
            exact.add_batch([1.0, 2.0, 3.0], [5])
        assert exact.total_arrivals() == 0

    def test_zero_values_are_skipped_like_scalar(self):
        scalar = ECMSketch.for_point_queries(epsilon=0.1, delta=0.1, window=1e6)
        batched = ECMSketch.for_point_queries(epsilon=0.1, delta=0.1, window=1e6)
        scalar.add("a", 1.0, 2)
        # a zero-weight arrival never advances the scalar clock
        scalar.add("c", 5.0, 1)
        batched.add_many(["a", "b", "c"], [1.0, 3.0, 5.0], [2, 0, 1])
        assert dumps(scalar) == dumps(batched)
        assert batched.total_arrivals() == 3

    def test_all_zero_batch_is_a_noop(self):
        sketch = ECMSketch.for_point_queries(epsilon=0.1, delta=0.1, window=1e6)
        sketch.add("a", 1.0)
        before = dumps(sketch)
        sketch.add_many(["b", "c"], [2.0, 3.0], [0, 0])
        assert dumps(sketch) == before

    def test_out_of_order_batch_raises_before_mutation(self):
        sketch = ECMSketch.for_point_queries(epsilon=0.1, delta=0.1, window=1e6)
        sketch.add("a", 10.0)
        before = dumps(sketch)
        with pytest.raises(OutOfOrderArrivalError):
            sketch.add_many(["b", "c"], [11.0, 5.0])
        assert dumps(sketch) == before

    def test_negative_value_raises_before_mutation(self):
        sketch = ECMSketch.for_point_queries(epsilon=0.1, delta=0.1, window=1e6)
        before = dumps(sketch)
        with pytest.raises(ConfigurationError):
            sketch.add_many(["a", "b"], [1.0, 2.0], [1, -1])
        assert dumps(sketch) == before

    def test_length_mismatch_raises(self):
        sketch = ECMSketch.for_point_queries(epsilon=0.1, delta=0.1, window=1e6)
        with pytest.raises(ConfigurationError):
            sketch.add_many(["a", "b"], [1.0])
        with pytest.raises(ConfigurationError):
            sketch.add_many(["a", "b"], [1.0, 2.0], [1])

    def test_batched_sketches_still_aggregate(self):
        rng = random.Random(33)
        config_kwargs = dict(epsilon=0.2, delta=0.2, window=1e6)
        locals_scalar = [
            ECMSketch.for_point_queries(stream_tag=tag, **config_kwargs) for tag in range(2)
        ]
        locals_batched = [
            ECMSketch.for_point_queries(stream_tag=tag, **config_kwargs) for tag in range(2)
        ]
        for tag in range(2):
            items, clocks, _ = make_keyed_stream(rng, 300, WindowModel.TIME_BASED)
            for item, clock in zip(items, clocks, strict=False):
                locals_scalar[tag].add(item, clock)
            locals_batched[tag].add_many(items, clocks)
        merged_scalar = ECMSketch.aggregate(locals_scalar)
        merged_batched = ECMSketch.aggregate(locals_batched)
        assert dumps(merged_scalar) == dumps(merged_batched)


class TestStreamAndNodeBatching:
    def _make_stream(self, count: int = 500):
        from repro.streams import Stream, StreamRecord

        rng = random.Random(55)
        clock = 0.0
        records = []
        for _ in range(count):
            clock += rng.random()
            records.append(
                StreamRecord(timestamp=clock, key="key-%d" % rng.randrange(30), node=0,
                             value=rng.choice([1, 1, 1, 2]))
            )
        return Stream(records)

    def test_iter_batches_covers_stream_in_order(self):
        stream = self._make_stream(101)
        chunks = list(stream.iter_batches(25))
        assert [len(chunk) for chunk in chunks] == [25, 25, 25, 25, 1]
        flattened = [record for chunk in chunks for record in chunk]
        assert flattened == list(stream)

    def test_iter_batches_rejects_nonpositive_size(self):
        stream = self._make_stream(5)
        with pytest.raises(ConfigurationError):
            list(stream.iter_batches(0))

    def test_columns_pivot_matches_records(self):
        stream = self._make_stream(50)
        keys, timestamps, values = stream.columns()
        assert keys == [record.key for record in stream]
        assert timestamps == [record.timestamp for record in stream]
        assert values == [record.value for record in stream]

    def test_node_batched_observe_matches_scalar(self):
        from repro.core.config import ECMConfig
        from repro.distributed.node import StreamNode

        stream = self._make_stream(400)
        config = ECMConfig.for_point_queries(epsilon=0.2, delta=0.2, window=1e6)
        scalar_node = StreamNode(node_id=1, config=config)
        batched_node = StreamNode(node_id=1, config=config)
        scalar_node.observe_stream(stream)
        batched_node.observe_stream(stream, batch_size=64)
        assert dumps(scalar_node.sketch) == dumps(batched_node.sketch)
        assert scalar_node.records_processed == batched_node.records_processed
