"""Unit tests for order-preserving aggregation of ECM-sketches (Section 5.3)."""

from __future__ import annotations

import pytest

from repro.baselines import ExactStreamSummary
from repro.core import CounterType, ECMConfig, ECMSketch
from repro.core.errors import ConfigurationError, IncompatibleSketchError, WindowModelError
from repro.windows import WindowModel


WINDOW = 100_000.0


def _partition_and_feed(trace, config, num_parts):
    """Build one local sketch per partition of the trace (by record.node)."""
    sketches = [ECMSketch(config, stream_tag=i) for i in range(num_parts)]
    for record in trace:
        sketches[record.node % num_parts].add(record.key, record.timestamp, record.value)
    return sketches


class TestAggregationBasics:
    def test_total_arrivals_preserved(self, wc98_trace):
        config = ECMConfig.for_point_queries(epsilon=0.1, delta=0.1, window=WINDOW)
        sketches = _partition_and_feed(wc98_trace, config, 4)
        merged = ECMSketch.aggregate(sketches)
        assert merged.total_arrivals() == len(wc98_trace)

    def test_last_clock_is_max(self, wc98_trace):
        config = ECMConfig.for_point_queries(epsilon=0.1, delta=0.1, window=WINDOW)
        sketches = _partition_and_feed(wc98_trace, config, 4)
        merged = ECMSketch.aggregate(sketches)
        assert merged.last_clock == pytest.approx(wc98_trace.end_time())

    def test_empty_input_rejected(self):
        with pytest.raises(ConfigurationError):
            ECMSketch.aggregate([])

    def test_incompatible_dimensions_rejected(self):
        a = ECMSketch.for_point_queries(epsilon=0.1, delta=0.1, window=WINDOW, seed=1)
        b = ECMSketch.for_point_queries(epsilon=0.1, delta=0.1, window=WINDOW, seed=2)
        with pytest.raises(IncompatibleSketchError):
            ECMSketch.aggregate([a, b])

    def test_count_based_deterministic_aggregation_rejected(self):
        """The paper proves order-preserving aggregation is impossible for
        count-based deterministic synopses (Section 5.1, Figure 2)."""
        config = ECMConfig.for_point_queries(
            epsilon=0.1, delta=0.1, window=1_000, model=WindowModel.COUNT_BASED
        )
        sketches = [ECMSketch(config, stream_tag=i) for i in range(2)]
        for sketch in sketches:
            sketch.add("x", clock=1.0)
        with pytest.raises(WindowModelError):
            ECMSketch.aggregate(sketches)

    def test_merged_with_helper(self, uniform_trace):
        config = ECMConfig.for_point_queries(epsilon=0.1, delta=0.1, window=WINDOW)
        sketches = _partition_and_feed(uniform_trace, config, 3)
        merged = sketches[0].merged_with(sketches[1:])
        assert merged.total_arrivals() == len(uniform_trace)


class TestAggregationAccuracy:
    @pytest.mark.parametrize("num_parts", [2, 4, 8])
    def test_point_queries_within_inflated_bound(self, wc98_trace, wc98_exact, num_parts):
        epsilon = 0.1
        config = ECMConfig.for_point_queries(epsilon=epsilon, delta=0.1, window=WINDOW)
        sketches = _partition_and_feed(wc98_trace, config, num_parts)
        merged = ECMSketch.aggregate(sketches)
        now = wc98_trace.end_time()
        # One aggregation step: window error inflates per Theorem 4; total
        # budget becomes roughly 2*eps (plus hashing error).
        bound = 3 * epsilon
        for range_length in (10_000.0, WINDOW):
            arrivals = wc98_exact.arrivals(range_length, now)
            frequencies = wc98_exact.frequencies_in_range(range_length, now)
            for key in list(frequencies)[:40]:
                estimate = merged.point_query(key, range_length, now=now)
                assert abs(estimate - frequencies[key]) <= bound * arrivals + 1.0

    def test_aggregated_error_tracked(self):
        config = ECMConfig.for_point_queries(epsilon=0.1, delta=0.1, window=WINDOW)
        sketches = [ECMSketch(config, stream_tag=i) for i in range(2)]
        for sketch in sketches:
            sketch.add("x", clock=1.0)
        merged = ECMSketch.aggregate(sketches)
        assert merged.effective_epsilon_sw > config.epsilon_sw

    def test_iterative_aggregation_matches_flat_aggregation(self, wc98_trace, wc98_exact):
        """Hierarchical (two-level) merging stays close to single-level merging."""
        config = ECMConfig.for_point_queries(epsilon=0.1, delta=0.1, window=WINDOW)
        sketches = _partition_and_feed(wc98_trace, config, 4)
        flat = ECMSketch.aggregate(sketches)
        two_level = ECMSketch.aggregate([
            ECMSketch.aggregate(sketches[:2]),
            ECMSketch.aggregate(sketches[2:]),
        ])
        now = wc98_trace.end_time()
        arrivals = wc98_exact.arrivals(WINDOW, now)
        frequencies = wc98_exact.frequencies_in_range(WINDOW, now)
        for key in list(frequencies)[:30]:
            delta = abs(flat.point_query(key, now=now) - two_level.point_query(key, now=now))
            assert delta <= 0.1 * arrivals + 1.0

    def test_self_join_after_aggregation(self, wc98_trace, wc98_exact):
        epsilon = 0.1
        config = ECMConfig.for_inner_product_queries(epsilon=epsilon, delta=0.1, window=WINDOW)
        sketches = _partition_and_feed(wc98_trace, config, 4)
        merged = ECMSketch.aggregate(sketches)
        now = wc98_trace.end_time()
        arrivals = wc98_exact.arrivals(WINDOW, now)
        estimate = merged.self_join(WINDOW, now=now)
        truth = wc98_exact.self_join(WINDOW, now)
        assert abs(estimate - truth) <= 3 * epsilon * arrivals ** 2 + 1.0

    def test_custom_epsilon_prime(self, uniform_trace):
        config = ECMConfig.for_point_queries(epsilon=0.1, delta=0.1, window=WINDOW)
        sketches = _partition_and_feed(uniform_trace, config, 2)
        merged = ECMSketch.aggregate(sketches, epsilon_prime=0.02)
        assert merged.config.epsilon_sw == pytest.approx(0.02)


class TestRandomizedWaveAggregation:
    def test_lossless_merge_counts_union(self, uniform_trace):
        config = ECMConfig.for_point_queries(
            epsilon=0.2, delta=0.2, window=WINDOW,
            counter_type=CounterType.RANDOMIZED_WAVE, max_arrivals=10_000,
        )
        sketches = _partition_and_feed(uniform_trace, config, 4)
        merged = ECMSketch.aggregate(sketches)
        assert merged.total_arrivals() == len(uniform_trace)
        now = uniform_trace.end_time()
        exact = ExactStreamSummary.from_stream(uniform_trace, window=WINDOW)
        arrivals = exact.arrivals(WINDOW, now)
        frequencies = exact.frequencies_in_range(WINDOW, now)
        for key in list(frequencies)[:30]:
            estimate = merged.point_query(key, now=now)
            assert abs(estimate - frequencies[key]) <= 3 * 0.2 * arrivals + 2.0

    def test_effective_epsilon_not_inflated(self):
        config = ECMConfig.for_point_queries(
            epsilon=0.2, delta=0.2, window=WINDOW,
            counter_type=CounterType.RANDOMIZED_WAVE, max_arrivals=1_000,
        )
        sketches = [ECMSketch(config, stream_tag=i) for i in range(2)]
        for sketch in sketches:
            sketch.add("x", clock=1.0)
        merged = ECMSketch.aggregate(sketches)
        assert merged.effective_epsilon_sw == pytest.approx(config.epsilon_sw)

    def test_count_based_randomized_aggregation_allowed(self):
        """Randomized waves merge by sample union, which the window model does
        not invalidate; the ECM aggregation therefore accepts them."""
        config = ECMConfig.for_point_queries(
            epsilon=0.3, delta=0.3, window=1_000, model=WindowModel.COUNT_BASED,
            counter_type=CounterType.RANDOMIZED_WAVE, max_arrivals=1_000,
        )
        sketches = [ECMSketch(config, stream_tag=i) for i in range(2)]
        for index, sketch in enumerate(sketches):
            sketch.add("x", clock=float(index + 1))
        merged = ECMSketch.aggregate(sketches)
        assert merged.total_arrivals() == 2
