"""Unit tests for the ECM-sketch error-budget configuration."""

from __future__ import annotations

import pytest

from repro.core import CounterType, ECMConfig
from repro.core.config import (
    inner_product_error,
    point_query_error,
    split_inner_product_deterministic,
    split_point_query_deterministic,
    split_point_query_randomized,
)
from repro.core.errors import ConfigurationError


class TestErrorFormulas:
    def test_point_query_error(self):
        assert point_query_error(0.1, 0.1) == pytest.approx(0.21)

    def test_inner_product_error(self):
        assert inner_product_error(0.1, 0.05) == pytest.approx(0.01 + 0.2 + 0.05 * 1.21)


class TestDeterministicPointSplit:
    @pytest.mark.parametrize("epsilon", [0.05, 0.1, 0.2, 0.25])
    def test_split_meets_budget_exactly(self, epsilon):
        eps_sw, eps_cm = split_point_query_deterministic(epsilon)
        assert point_query_error(eps_sw, eps_cm) == pytest.approx(epsilon, rel=1e-9)

    def test_split_is_symmetric(self):
        eps_sw, eps_cm = split_point_query_deterministic(0.1)
        assert eps_sw == pytest.approx(eps_cm)

    def test_closed_form_value(self):
        eps_sw, _ = split_point_query_deterministic(0.1)
        assert eps_sw == pytest.approx(1.1 ** 0.5 - 1, rel=1e-9)

    def test_invalid_epsilon(self):
        with pytest.raises(ConfigurationError):
            split_point_query_deterministic(0.0)


class TestRandomizedPointSplit:
    @pytest.mark.parametrize("epsilon", [0.05, 0.1, 0.2, 0.25])
    def test_split_meets_budget(self, epsilon):
        eps_sw, eps_cm = split_point_query_randomized(epsilon)
        assert point_query_error(eps_sw, eps_cm) == pytest.approx(epsilon, rel=1e-6)

    def test_window_error_larger_than_hash_error(self):
        """The quadratic memory cost of randomized waves shifts the budget
        toward a larger window error."""
        eps_sw, eps_cm = split_point_query_randomized(0.1)
        assert eps_sw > eps_cm

    def test_paper_example_value(self):
        eps_sw, eps_cm = split_point_query_randomized(0.1)
        assert eps_sw == pytest.approx(0.066, abs=1e-3)
        assert eps_cm == pytest.approx(0.0319, abs=1e-3)


class TestInnerProductSplit:
    @pytest.mark.parametrize("epsilon", [0.05, 0.1, 0.2, 0.25])
    def test_split_meets_budget(self, epsilon):
        eps_sw, eps_cm = split_inner_product_deterministic(epsilon)
        assert inner_product_error(eps_sw, eps_cm) == pytest.approx(epsilon, rel=1e-4)

    @pytest.mark.parametrize("epsilon", [0.05, 0.1, 0.2])
    def test_split_is_memory_optimal(self, epsilon):
        """No nearby feasible split should be cheaper in 1/(eps_sw*eps_cm)."""
        eps_sw, eps_cm = split_inner_product_deterministic(epsilon)
        best_cost = 1.0 / (eps_sw * eps_cm)
        for factor in (0.7, 0.9, 1.1, 1.3):
            candidate_sw = eps_sw * factor
            candidate_cm = (epsilon - candidate_sw ** 2 - 2 * candidate_sw) / (1 + candidate_sw) ** 2
            if candidate_cm <= 0 or candidate_sw <= 0:
                continue
            assert best_cost <= 1.0 / (candidate_sw * candidate_cm) * (1 + 1e-6)

    def test_both_components_positive(self):
        eps_sw, eps_cm = split_inner_product_deterministic(0.1)
        assert eps_sw > 0
        assert eps_cm > 0


class TestECMConfig:
    def test_for_point_queries_deterministic(self):
        config = ECMConfig.for_point_queries(epsilon=0.1, delta=0.1, window=1_000)
        assert config.total_point_error == pytest.approx(0.1)
        assert config.width >= 1
        assert config.depth >= 1
        assert config.counter_type is CounterType.EXPONENTIAL_HISTOGRAM

    def test_for_point_queries_randomized(self):
        config = ECMConfig.for_point_queries(
            epsilon=0.1, delta=0.1, window=1_000,
            counter_type=CounterType.RANDOMIZED_WAVE, max_arrivals=1_000,
        )
        assert config.total_point_error == pytest.approx(0.1, rel=1e-6)
        assert config.total_failure_probability > config.delta

    def test_for_inner_product_queries(self):
        config = ECMConfig.for_inner_product_queries(epsilon=0.1, delta=0.1, window=1_000)
        assert config.total_inner_product_error == pytest.approx(0.1, rel=1e-4)

    def test_inner_product_with_randomized_wave_rejected(self):
        with pytest.raises(ConfigurationError):
            ECMConfig.for_inner_product_queries(
                epsilon=0.1, delta=0.1, window=1_000,
                counter_type=CounterType.RANDOMIZED_WAVE, max_arrivals=100,
            )

    def test_wave_counters_require_max_arrivals(self):
        with pytest.raises(ConfigurationError):
            ECMConfig(
                epsilon_cm=0.05, epsilon_sw=0.05, delta=0.1, window=100,
                counter_type=CounterType.DETERMINISTIC_WAVE,
            )

    def test_exponential_histogram_does_not_require_max_arrivals(self):
        config = ECMConfig(epsilon_cm=0.05, epsilon_sw=0.05, delta=0.1, window=100)
        assert config.max_arrivals >= 1

    def test_explicit_dimensions_respected(self):
        config = ECMConfig(
            epsilon_cm=0.05, epsilon_sw=0.05, delta=0.1, window=100, width=10, depth=2
        )
        assert config.width == 10
        assert config.depth == 2

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            ECMConfig(epsilon_cm=0.0, epsilon_sw=0.05, delta=0.1, window=100)
        with pytest.raises(ConfigurationError):
            ECMConfig(epsilon_cm=0.05, epsilon_sw=2.0, delta=0.1, window=100)
        with pytest.raises(ConfigurationError):
            ECMConfig(epsilon_cm=0.05, epsilon_sw=0.05, delta=0.0, window=100)
        with pytest.raises(ConfigurationError):
            ECMConfig(epsilon_cm=0.05, epsilon_sw=0.05, delta=0.1, window=0)

    def test_replaced_copies_fields(self):
        config = ECMConfig.for_point_queries(epsilon=0.1, delta=0.1, window=1_000)
        other = config.replaced(epsilon_sw=0.2)
        assert other.epsilon_sw == 0.2
        assert other.epsilon_cm == config.epsilon_cm
        assert config.epsilon_sw != 0.2  # original untouched

    def test_counter_type_properties(self):
        assert CounterType.EXPONENTIAL_HISTOGRAM.is_deterministic
        assert CounterType.DETERMINISTIC_WAVE.is_deterministic
        assert not CounterType.RANDOMIZED_WAVE.is_deterministic
        assert str(CounterType.EXPONENTIAL_HISTOGRAM) == "eh"
