"""merge_many vs pairwise/replay aggregation: serialized-state equality.

``CountMinSketch.merge_many`` and ``ECMSketch.merge_many`` are the vectorized
aggregation entry points; they promise byte-identical state relative to the
reference implementations (``CountMinSketch.merged`` and
``ECMSketch.aggregate``).  These tests enforce that across all three counter
types, plus the aggregation edge cases of the distributed layer: empty
inputs, single inputs, mixed window models and incompatible configurations.
"""

from __future__ import annotations

import random

import pytest

from repro.core import CounterType, CountMinSketch, ECMConfig, ECMSketch
from repro.core.errors import (
    ConfigurationError,
    IncompatibleSketchError,
    WindowModelError,
)
from repro.serialization import dumps
from repro.windows import WindowModel

ALL_COUNTER_TYPES = (
    CounterType.EXPONENTIAL_HISTOGRAM,
    CounterType.DETERMINISTIC_WAVE,
    CounterType.RANDOMIZED_WAVE,
)

WINDOW = 60_000.0


def build_site_sketches(counter_type, num_sites=5, records=900, epsilon=0.15, seed=0):
    config = ECMConfig.for_point_queries(
        epsilon=epsilon,
        delta=0.15,
        window=WINDOW,
        counter_type=counter_type,
        max_arrivals=10 * records,
    )
    sketches = []
    for site in range(num_sites):
        rng = random.Random(seed * 1000 + site)
        sketch = ECMSketch(config, stream_tag=site)
        clock = 0.0
        items, clocks, values = [], [], []
        for _ in range(records):
            clock += rng.choice([0.0, rng.random() * 5.0])
            items.append("key-%d" % rng.randrange(60))
            clocks.append(clock)
            values.append(rng.choice([1, 1, 1, 2]))
        sketch.add_many(items, clocks, values)
        sketches.append(sketch)
    return sketches


class TestCountMinMergeMany:
    def test_matches_pairwise_reference(self):
        sketches = []
        for seed in range(6):
            rng = random.Random(seed)
            sketch = CountMinSketch(width=64, depth=4, seed=3)
            for _ in range(800):
                sketch.add("key-%d" % rng.randrange(50), rng.choice([1.0, 2.0, 0.25]))
            sketches.append(sketch)
        reference = CountMinSketch.merged(sketches)
        vectorized = CountMinSketch.merge_many(sketches)
        # Bit-exact floating-point counters, not just approximately equal.
        assert dumps(vectorized) == dumps(reference)
        assert vectorized.total() == reference.total()

    def test_single_input(self):
        sketch = CountMinSketch(width=16, depth=2)
        sketch.add("x", 3.0)
        assert dumps(CountMinSketch.merge_many([sketch])) == dumps(CountMinSketch.merged([sketch]))

    def test_empty_collection_rejected(self):
        with pytest.raises(ConfigurationError):
            CountMinSketch.merge_many([])

    def test_incompatible_rejected(self):
        one = CountMinSketch(width=16, depth=2, seed=0)
        other = CountMinSketch(width=16, depth=2, seed=1)
        with pytest.raises(IncompatibleSketchError):
            CountMinSketch.merge_many([one, other])


class TestECMMergeManyEquivalence:
    @pytest.mark.parametrize("counter_type", ALL_COUNTER_TYPES)
    def test_matches_aggregate_reference(self, counter_type):
        sketches = build_site_sketches(counter_type)
        reference = ECMSketch.aggregate(sketches)
        vectorized = ECMSketch.merge_many(sketches)
        assert dumps(vectorized) == dumps(reference)
        assert vectorized.effective_epsilon_sw == reference.effective_epsilon_sw
        assert vectorized.total_arrivals() == reference.total_arrivals()

    @pytest.mark.parametrize("counter_type", ALL_COUNTER_TYPES)
    def test_single_site(self, counter_type):
        sketches = build_site_sketches(counter_type, num_sites=1, records=300)
        assert dumps(ECMSketch.merge_many(sketches)) == dumps(ECMSketch.aggregate(sketches))

    def test_custom_epsilon_prime(self):
        sketches = build_site_sketches(CounterType.EXPONENTIAL_HISTOGRAM, num_sites=3)
        reference = ECMSketch.aggregate(sketches, epsilon_prime=0.05)
        vectorized = ECMSketch.merge_many(sketches, epsilon_prime=0.05)
        assert dumps(vectorized) == dumps(reference)

    def test_identical_query_answers(self):
        sketches = build_site_sketches(CounterType.EXPONENTIAL_HISTOGRAM)
        reference = ECMSketch.aggregate(sketches)
        vectorized = ECMSketch.merge_many(sketches)
        now = max(s.last_clock for s in sketches)
        for key in ("key-0", "key-7", "key-59", "missing"):
            for rng in (None, WINDOW / 10.0, WINDOW / 100.0):
                assert vectorized.point_query(key, rng, now=now) == reference.point_query(
                    key, rng, now=now
                )
        assert vectorized.self_join(now=now) == reference.self_join(now=now)

    def test_merged_with_uses_vectorized_path(self):
        first, *rest = build_site_sketches(CounterType.EXPONENTIAL_HISTOGRAM, num_sites=3)
        assert dumps(first.merged_with(rest)) == dumps(ECMSketch.aggregate([first, *rest]))


class TestECMMergeManyEdgeCases:
    def test_empty_collection_rejected(self):
        with pytest.raises(ConfigurationError):
            ECMSketch.merge_many([])

    @pytest.mark.parametrize(
        "counter_type",
        (CounterType.EXPONENTIAL_HISTOGRAM, CounterType.DETERMINISTIC_WAVE),
    )
    def test_count_based_deterministic_rejected(self, counter_type):
        config = ECMConfig.for_point_queries(
            epsilon=0.2,
            delta=0.2,
            window=1_000,
            model=WindowModel.COUNT_BASED,
            counter_type=counter_type,
            max_arrivals=10_000,
        )
        sketches = [ECMSketch(config, stream_tag=tag) for tag in range(2)]
        with pytest.raises(WindowModelError):
            ECMSketch.merge_many(sketches)

    def test_count_based_randomized_wave_allowed(self):
        # Randomized waves are duplicate-insensitive, so even count-based
        # windows aggregate (losslessly) — the paper's Section 5.2 contrast.
        config = ECMConfig.for_point_queries(
            epsilon=0.3,
            delta=0.3,
            window=1_000,
            model=WindowModel.COUNT_BASED,
            counter_type=CounterType.RANDOMIZED_WAVE,
            max_arrivals=10_000,
        )
        sketches = []
        for tag in range(2):
            sketch = ECMSketch(config, stream_tag=tag)
            for index in range(200):
                sketch.add("key-%d" % (index % 11), index + 1)
            sketches.append(sketch)
        assert dumps(ECMSketch.merge_many(sketches)) == dumps(ECMSketch.aggregate(sketches))

    def test_mixed_counter_types_rejected(self):
        eh = build_site_sketches(CounterType.EXPONENTIAL_HISTOGRAM, num_sites=1, records=50)[0]
        dw = build_site_sketches(CounterType.DETERMINISTIC_WAVE, num_sites=1, records=50)[0]
        with pytest.raises(IncompatibleSketchError):
            ECMSketch.merge_many([eh, dw])

    def test_mismatched_windows_rejected(self):
        small = ECMConfig.for_point_queries(epsilon=0.2, delta=0.2, window=100.0)
        large = ECMConfig.for_point_queries(epsilon=0.2, delta=0.2, window=200.0)
        with pytest.raises(IncompatibleSketchError):
            ECMSketch.merge_many([ECMSketch(small), ECMSketch(large)])
