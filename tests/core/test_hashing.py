"""Unit tests for the pairwise-independent hash family."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.core.hashing import MERSENNE_PRIME_61, HashFamily, PairwiseHash, stable_fingerprint


class TestStableFingerprint:
    def test_integers_pass_through(self):
        assert stable_fingerprint(42) == 42
        assert stable_fingerprint(0) == 0

    def test_large_integers_folded_to_64_bits(self):
        assert stable_fingerprint(2**100) < 2**64

    def test_strings_are_deterministic(self):
        assert stable_fingerprint("/index.html") == stable_fingerprint("/index.html")

    def test_bytes_and_str_differ(self):
        assert stable_fingerprint(b"abc") != stable_fingerprint("abc") or True  # both valid, just defined
        assert isinstance(stable_fingerprint(b"abc"), int)

    def test_distinct_strings_differ(self):
        values = {stable_fingerprint("key-%d" % i) for i in range(1000)}
        assert len(values) == 1000

    def test_tuples_supported(self):
        assert stable_fingerprint((1, "a")) == stable_fingerprint((1, "a"))
        assert stable_fingerprint((1, "a")) != stable_fingerprint((1, "b"))

    def test_bool_distinct_from_int_semantics(self):
        assert stable_fingerprint(True) == 1
        assert stable_fingerprint(False) == 0

    def test_non_negative(self):
        for value in ["x", -5, (3, 4), b"\x00\xff"]:
            assert stable_fingerprint(value) >= 0


class TestPairwiseHash:
    def test_range(self):
        hash_fn = PairwiseHash(a=12345, b=678, width=97)
        for item in range(1000):
            assert 0 <= hash_fn(item) < 97

    def test_deterministic(self):
        hash_fn = PairwiseHash(a=12345, b=678, width=97)
        assert hash_fn("abc") == hash_fn("abc")

    def test_invalid_width(self):
        with pytest.raises(ConfigurationError):
            PairwiseHash(a=1, b=0, width=0)

    def test_invalid_coefficients(self):
        with pytest.raises(ConfigurationError):
            PairwiseHash(a=0, b=0, width=10)
        with pytest.raises(ConfigurationError):
            PairwiseHash(a=MERSENNE_PRIME_61, b=0, width=10)
        with pytest.raises(ConfigurationError):
            PairwiseHash(a=1, b=MERSENNE_PRIME_61, width=10)

    def test_roughly_uniform(self):
        hash_fn = PairwiseHash(a=987654321, b=12345, width=10)
        counts = [0] * 10
        for item in range(10_000):
            counts[hash_fn(item)] += 1
        assert min(counts) > 500
        assert max(counts) < 2_000


class TestHashFamily:
    def test_dimensions(self):
        family = HashFamily(depth=5, width=100, seed=3)
        assert family.depth == 5
        assert family.width == 100
        assert len(family.functions) == 5

    def test_invalid_dimensions(self):
        with pytest.raises(ConfigurationError):
            HashFamily(depth=0, width=10)
        with pytest.raises(ConfigurationError):
            HashFamily(depth=3, width=0)

    def test_reproducible_with_same_seed(self):
        a = HashFamily(depth=4, width=50, seed=11)
        b = HashFamily(depth=4, width=50, seed=11)
        for item in ["x", "y", 42, (1, 2)]:
            assert a.hash_all(item) == b.hash_all(item)

    def test_different_seeds_differ(self):
        a = HashFamily(depth=4, width=1000, seed=1)
        b = HashFamily(depth=4, width=1000, seed=2)
        assert any(a.hash_all("item") != b.hash_all("item") for _ in range(1))

    def test_rows_are_independent_functions(self):
        family = HashFamily(depth=3, width=1000, seed=7)
        columns = family.hash_all("some-key")
        assert len(set(columns)) >= 2  # overwhelmingly likely with width 1000

    def test_hash_row_matches_hash_all(self):
        family = HashFamily(depth=3, width=64, seed=5)
        columns = family.hash_all("key")
        for row in range(3):
            assert family.hash_row("key", row) == columns[row]

    def test_compatibility(self):
        a = HashFamily(depth=3, width=64, seed=5)
        b = HashFamily(depth=3, width=64, seed=5)
        c = HashFamily(depth=3, width=64, seed=6)
        d = HashFamily(depth=4, width=64, seed=5)
        assert a.is_compatible_with(b)
        assert not a.is_compatible_with(c)
        assert not a.is_compatible_with(d)
        assert a == b
        assert hash(a) == hash(b)

    def test_repr(self):
        assert "HashFamily" in repr(HashFamily(depth=2, width=8, seed=0))
