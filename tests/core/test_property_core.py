"""Property-based tests (hypothesis) for Count-Min and ECM-sketches."""

from __future__ import annotations

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

#: Property tests explore large input spaces; run `-m 'not slow'` to skip.
pytestmark = pytest.mark.slow

from repro.core import CountMinSketch, ECMSketch


# Streams of (key, gap) pairs: small key domains force collisions, gaps keep
# the arrival clocks in order.
keyed_streams = st.lists(
    st.tuples(st.integers(min_value=0, max_value=30), st.floats(min_value=0.01, max_value=10.0)),
    min_size=1,
    max_size=300,
)


def _materialise(pairs: list[tuple[int, float]]) -> list[tuple[int, float]]:
    clock = 0.0
    out = []
    for key, gap in pairs:
        clock += gap
        out.append((key, clock))
    return out


@settings(max_examples=50, deadline=None)
@given(pairs=keyed_streams)
def test_countmin_point_queries_never_underestimate(pairs):
    """CM point queries upper-bound the true frequency for every key."""
    sketch = CountMinSketch(width=32, depth=3, seed=1)
    truth = Counter()
    for key, _gap in pairs:
        sketch.add(key)
        truth[key] += 1
    for key, count in truth.items():
        assert sketch.point_query(key) >= count


@settings(max_examples=50, deadline=None)
@given(pairs=keyed_streams)
def test_countmin_self_join_never_underestimates(pairs):
    """CM self-join estimates upper-bound the true second frequency moment."""
    sketch = CountMinSketch(width=32, depth=3, seed=2)
    truth = Counter()
    for key, _gap in pairs:
        sketch.add(key)
        truth[key] += 1
    exact_f2 = sum(v * v for v in truth.values())
    assert sketch.self_join() >= exact_f2


@settings(max_examples=50, deadline=None)
@given(pairs=keyed_streams)
def test_countmin_merge_equals_single_sketch(pairs):
    """Summing two halves of a stream equals sketching the whole stream."""
    whole = CountMinSketch(width=16, depth=3, seed=3)
    left = CountMinSketch(width=16, depth=3, seed=3)
    right = CountMinSketch(width=16, depth=3, seed=3)
    for index, (key, _gap) in enumerate(pairs):
        whole.add(key)
        (left if index % 2 == 0 else right).add(key)
    merged = CountMinSketch.merged([left, right])
    assert merged.counters() == whole.counters()


@settings(max_examples=30, deadline=None)
@given(pairs=keyed_streams, fraction=st.floats(min_value=0.05, max_value=1.0))
def test_ecm_point_query_error_bound(pairs, fraction):
    """Theorem 1: the point-query error never exceeds eps * ||a_r||_1 (+1 slack)."""
    epsilon = 0.3
    sketch = ECMSketch.for_point_queries(epsilon=epsilon, delta=0.2, window=1e9, seed=4)
    arrivals = _materialise(pairs)
    for key, clock in arrivals:
        sketch.add(key, clock)
    now = arrivals[-1][1]
    range_length = max(0.01, fraction * now)
    in_range = [(key, clock) for key, clock in arrivals if clock > now - range_length]
    truth = Counter(key for key, _clock in in_range)
    total = len(in_range)
    for key in truth:
        estimate = sketch.point_query(key, range_length, now=now)
        assert abs(estimate - truth[key]) <= epsilon * total + 1.0


@settings(max_examples=25, deadline=None)
@given(pairs=keyed_streams)
def test_ecm_aggregation_preserves_totals_and_bounds(pairs):
    """Splitting a stream across two sketches and aggregating keeps Theorem 1
    within the one-merge inflated budget."""
    epsilon = 0.3
    arrivals = _materialise(pairs)
    parts = [
        ECMSketch.for_point_queries(epsilon=epsilon, delta=0.2, window=1e9, seed=5, stream_tag=tag)
        for tag in range(2)
    ]
    for index, (key, clock) in enumerate(arrivals):
        parts[index % 2].add(key, clock)
    merged = ECMSketch.aggregate(parts)
    assert merged.total_arrivals() == len(arrivals)
    now = arrivals[-1][1]
    truth = Counter(key for key, _clock in arrivals)
    budget = 2.5 * epsilon  # one aggregation step roughly doubles the window term
    for key in truth:
        estimate = merged.point_query(key, now=now)
        assert abs(estimate - truth[key]) <= budget * len(arrivals) + 1.0
