"""Unit tests for the classic Count-Min sketch."""

from __future__ import annotations

import math
import random

import pytest

from repro.core import CountMinSketch, IncompatibleSketchError
from repro.core.countmin import dimensions_for_error
from repro.core.errors import ConfigurationError


class TestDimensions:
    def test_standard_sizing(self):
        width, depth = dimensions_for_error(epsilon=0.01, delta=0.01)
        assert width == math.ceil(math.e / 0.01)
        assert depth == math.ceil(math.log(100))

    @pytest.mark.parametrize("epsilon,delta", [(0, 0.1), (1.5, 0.1), (0.1, 0), (0.1, 1)])
    def test_invalid_parameters(self, epsilon, delta):
        with pytest.raises(ConfigurationError):
            dimensions_for_error(epsilon, delta)

    def test_from_error_constructor(self):
        sketch = CountMinSketch.from_error(epsilon=0.05, delta=0.05)
        assert sketch.width == math.ceil(math.e / 0.05)
        assert sketch.depth == math.ceil(math.log(20))


class TestUpdatesAndPointQueries:
    def test_exact_for_sparse_input(self):
        sketch = CountMinSketch(width=512, depth=4)
        sketch.add("a", 3)
        sketch.add("b", 2)
        sketch.add("a", 1)
        assert sketch.point_query("a") == 4
        assert sketch.point_query("b") == 2

    def test_never_underestimates(self):
        rng = random.Random(0)
        sketch = CountMinSketch(width=64, depth=4)
        truth = {}
        for _ in range(5_000):
            key = "k%d" % rng.randrange(500)
            sketch.add(key)
            truth[key] = truth.get(key, 0) + 1
        for key, count in truth.items():
            assert sketch.point_query(key) >= count

    def test_error_bound_holds_for_most_items(self):
        rng = random.Random(1)
        epsilon, delta = 0.02, 0.05
        sketch = CountMinSketch.from_error(epsilon, delta)
        truth = {}
        for _ in range(20_000):
            key = rng.randrange(2_000)
            sketch.add(key)
            truth[key] = truth.get(key, 0) + 1
        total = sum(truth.values())
        violations = sum(
            1 for key, count in truth.items() if sketch.point_query(key) - count > epsilon * total
        )
        assert violations <= delta * len(truth) * 2 + 1

    def test_unseen_item_estimate_small(self):
        sketch = CountMinSketch(width=2048, depth=5)
        for i in range(100):
            sketch.add(i)
        assert sketch.point_query("never-seen") <= 100

    def test_weighted_updates(self):
        sketch = CountMinSketch(width=128, depth=3)
        sketch.add("x", 2.5)
        assert sketch.point_query("x") == pytest.approx(2.5)

    def test_negative_update_rejected(self):
        sketch = CountMinSketch(width=16, depth=2)
        with pytest.raises(ConfigurationError):
            sketch.add("x", -1)

    def test_update_many(self):
        sketch = CountMinSketch(width=128, depth=3)
        sketch.update_many(["a", "a", "b"])
        assert sketch.point_query("a") >= 2
        assert sketch.total() == 3

    def test_invalid_dimensions(self):
        with pytest.raises(ConfigurationError):
            CountMinSketch(width=0, depth=3)
        with pytest.raises(ConfigurationError):
            CountMinSketch(width=3, depth=0)


class TestInnerProductsAndSelfJoins:
    def test_self_join_overestimates_f2(self):
        rng = random.Random(3)
        sketch = CountMinSketch(width=256, depth=4)
        truth = {}
        for _ in range(5_000):
            key = rng.randrange(200)
            sketch.add(key)
            truth[key] = truth.get(key, 0) + 1
        exact_f2 = sum(v * v for v in truth.values())
        assert sketch.self_join() >= exact_f2
        assert sketch.self_join() <= exact_f2 + 0.05 * sum(truth.values()) ** 2

    def test_inner_product_accuracy(self):
        rng = random.Random(4)
        a = CountMinSketch(width=256, depth=4, seed=9)
        b = CountMinSketch(width=256, depth=4, seed=9)
        truth_a, truth_b = {}, {}
        for _ in range(3_000):
            key = rng.randrange(300)
            a.add(key)
            truth_a[key] = truth_a.get(key, 0) + 1
            key = rng.randrange(300)
            b.add(key)
            truth_b[key] = truth_b.get(key, 0) + 1
        exact = sum(truth_a.get(k, 0) * truth_b.get(k, 0) for k in truth_a)
        estimate = a.inner_product(b)
        assert estimate >= exact
        assert estimate - exact <= 0.05 * a.total() * b.total()

    def test_inner_product_requires_compatible_sketches(self):
        a = CountMinSketch(width=64, depth=3, seed=1)
        b = CountMinSketch(width=64, depth=3, seed=2)
        with pytest.raises(IncompatibleSketchError):
            a.inner_product(b)

    def test_inner_product_of_empty_sketches_is_zero(self):
        a = CountMinSketch(width=16, depth=2)
        b = CountMinSketch(width=16, depth=2)
        assert a.inner_product(b) == 0.0


class TestMergeAndVectorView:
    def test_merge_equals_union_stream(self):
        rng = random.Random(5)
        merged_target = CountMinSketch(width=128, depth=4, seed=7)
        part_a = CountMinSketch(width=128, depth=4, seed=7)
        part_b = CountMinSketch(width=128, depth=4, seed=7)
        for _ in range(2_000):
            key = rng.randrange(100)
            merged_target.add(key)
            (part_a if rng.random() < 0.5 else part_b).add(key)
        merged = CountMinSketch.merged([part_a, part_b])
        assert merged.counters() == merged_target.counters()
        assert merged.total() == merged_target.total()

    def test_merge_incompatible_rejected(self):
        a = CountMinSketch(width=64, depth=3, seed=1)
        b = CountMinSketch(width=32, depth=3, seed=1)
        with pytest.raises(IncompatibleSketchError):
            a.merge_inplace(b)

    def test_merge_empty_list_rejected(self):
        with pytest.raises(ConfigurationError):
            CountMinSketch.merged([])

    def test_vector_round_trip(self):
        sketch = CountMinSketch(width=8, depth=2, seed=3)
        for i in range(20):
            sketch.add(i)
        vector = sketch.as_vector()
        rebuilt = CountMinSketch.from_vector(vector, width=8, depth=2, seed=3)
        assert rebuilt.counters() == sketch.counters()
        assert rebuilt.point_query(5) == sketch.point_query(5)

    def test_from_vector_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            CountMinSketch.from_vector([1.0, 2.0], width=3, depth=2)

    def test_counter_accessor(self):
        sketch = CountMinSketch(width=8, depth=2)
        sketch.add("a", 2)
        columns = sketch.hashes.hash_all("a")
        assert sketch.counter(0, columns[0]) >= 2

    def test_memory_bytes(self):
        sketch = CountMinSketch(width=100, depth=5)
        assert sketch.memory_bytes() >= 100 * 5 * 4

    def test_repr(self):
        assert "CountMinSketch" in repr(CountMinSketch(width=4, depth=2))
