"""Unit tests for the ECM-sketch core structure (single-stream behaviour)."""

from __future__ import annotations


import pytest

from repro.baselines import ExactStreamSummary
from repro.core import CounterType, ECMConfig, ECMSketch
from repro.core.errors import ConfigurationError, IncompatibleSketchError
from repro.windows import WindowModel


WINDOW = 100_000.0


def _feed(sketch: ECMSketch, exact: ExactStreamSummary, trace) -> None:
    for record in trace:
        sketch.add(record.key, record.timestamp, record.value)
        if exact is not None:
            pass


class TestConstruction:
    def test_factory_for_point_queries(self):
        sketch = ECMSketch.for_point_queries(epsilon=0.1, delta=0.1, window=WINDOW)
        assert sketch.width == sketch.config.width
        assert sketch.depth == sketch.config.depth
        assert sketch.counter_type is CounterType.EXPONENTIAL_HISTOGRAM

    def test_factory_for_inner_product_queries(self):
        sketch = ECMSketch.for_inner_product_queries(epsilon=0.1, delta=0.1, window=WINDOW)
        assert sketch.config.total_inner_product_error == pytest.approx(0.1, rel=1e-4)

    @pytest.mark.parametrize(
        "counter_type",
        [CounterType.EXPONENTIAL_HISTOGRAM, CounterType.DETERMINISTIC_WAVE, CounterType.RANDOMIZED_WAVE],
    )
    def test_all_counter_types_instantiable(self, counter_type):
        sketch = ECMSketch.for_point_queries(
            epsilon=0.2, delta=0.2, window=WINDOW,
            counter_type=counter_type, max_arrivals=10_000,
        )
        sketch.add("item", clock=1.0)
        assert sketch.point_query("item", now=1.0) >= 1.0

    def test_unknown_counter_type_rejected(self):
        config = ECMConfig.for_point_queries(epsilon=0.2, delta=0.2, window=WINDOW)
        object.__setattr__(config, "counter_type", "bogus")
        with pytest.raises((ConfigurationError, AttributeError)):
            ECMSketch(config)


class TestUpdatesAndPointQueries:
    def test_empty_sketch_returns_zero(self):
        sketch = ECMSketch.for_point_queries(epsilon=0.1, delta=0.1, window=WINDOW)
        assert sketch.point_query("missing") == 0.0
        assert sketch.total_arrivals() == 0
        assert sketch.last_clock is None

    def test_single_item_counted(self):
        sketch = ECMSketch.for_point_queries(epsilon=0.1, delta=0.1, window=WINDOW)
        sketch.add("a", clock=10.0)
        sketch.add("a", clock=20.0)
        sketch.add("b", clock=30.0)
        assert sketch.point_query("a", now=30.0) >= 2.0
        assert sketch.total_arrivals() == 3
        assert sketch.last_clock == 30.0

    def test_weighted_add(self):
        sketch = ECMSketch.for_point_queries(epsilon=0.1, delta=0.1, window=WINDOW)
        sketch.add("a", clock=10.0, value=5)
        assert sketch.point_query("a", now=10.0) >= 5.0
        assert sketch.total_arrivals() == 5

    def test_zero_value_is_noop(self):
        sketch = ECMSketch.for_point_queries(epsilon=0.1, delta=0.1, window=WINDOW)
        sketch.add("a", clock=10.0, value=0)
        assert sketch.total_arrivals() == 0

    def test_negative_value_rejected(self):
        sketch = ECMSketch.for_point_queries(epsilon=0.1, delta=0.1, window=WINDOW)
        with pytest.raises(ConfigurationError):
            sketch.add("a", clock=10.0, value=-1)

    def test_point_query_error_bound_on_trace(self, wc98_trace, wc98_exact):
        epsilon = 0.1
        sketch = ECMSketch.for_point_queries(epsilon=epsilon, delta=0.1, window=WINDOW)
        for record in wc98_trace:
            sketch.add(record.key, record.timestamp, record.value)
        now = wc98_trace.end_time()
        for range_length in (1_000.0, 10_000.0, WINDOW):
            arrivals = wc98_exact.arrivals(range_length, now)
            frequencies = wc98_exact.frequencies_in_range(range_length, now)
            for key in list(frequencies)[:60]:
                estimate = sketch.point_query(key, range_length, now=now)
                truth = frequencies[key]
                assert abs(estimate - truth) <= epsilon * arrivals + 1.0

    def test_sliding_window_forgets_old_items(self):
        sketch = ECMSketch.for_point_queries(epsilon=0.1, delta=0.1, window=100.0)
        sketch.add("old", clock=0.0)
        for clock in range(200, 240):
            sketch.add("new", clock=float(clock))
        assert sketch.point_query("old", now=239.0) <= 1.0 + 0.1 * 40
        # A query over the full (expired) window sees essentially only "new".
        assert sketch.point_query("new", now=239.0) >= 35.0

    def test_query_range_restriction(self):
        sketch = ECMSketch.for_point_queries(epsilon=0.05, delta=0.05, window=1_000.0)
        for clock in range(100):
            sketch.add("x", clock=float(clock))
        recent = sketch.point_query("x", range_length=10.0, now=99.0)
        full = sketch.point_query("x", now=99.0)
        assert recent < full
        assert recent <= 10 * 1.2 + 1


class TestSelfJoinAndInnerProduct:
    def test_self_join_error_bound_on_trace(self, wc98_trace, wc98_exact):
        epsilon = 0.1
        sketch = ECMSketch.for_inner_product_queries(epsilon=epsilon, delta=0.1, window=WINDOW)
        for record in wc98_trace:
            sketch.add(record.key, record.timestamp, record.value)
        now = wc98_trace.end_time()
        for range_length in (10_000.0, WINDOW):
            arrivals = wc98_exact.arrivals(range_length, now)
            estimate = sketch.self_join(range_length, now=now)
            truth = wc98_exact.self_join(range_length, now)
            assert abs(estimate - truth) <= epsilon * arrivals ** 2 + 1.0

    def test_inner_product_against_itself_matches_self_join(self, uniform_trace):
        sketch = ECMSketch.for_inner_product_queries(epsilon=0.1, delta=0.1, window=WINDOW)
        for record in uniform_trace:
            sketch.add(record.key, record.timestamp, record.value)
        now = uniform_trace.end_time()
        assert sketch.inner_product(sketch, now=now) == pytest.approx(sketch.self_join(now=now))

    def test_inner_product_of_disjoint_streams_is_small(self):
        a = ECMSketch.for_point_queries(epsilon=0.05, delta=0.05, window=WINDOW, seed=3)
        b = ECMSketch.for_point_queries(epsilon=0.05, delta=0.05, window=WINDOW, seed=3)
        for clock in range(200):
            a.add("a-%d" % clock, clock=float(clock))
            b.add("b-%d" % clock, clock=float(clock))
        estimate = a.inner_product(b, now=199.0)
        assert estimate <= 0.1 * 200 * 200

    def test_inner_product_requires_compatible_sketches(self):
        a = ECMSketch.for_point_queries(epsilon=0.1, delta=0.1, window=WINDOW, seed=1)
        b = ECMSketch.for_point_queries(epsilon=0.1, delta=0.1, window=WINDOW, seed=2)
        with pytest.raises(IncompatibleSketchError):
            a.inner_product(b)

    def test_inner_product_tracks_overlap(self, rng):
        a = ECMSketch.for_point_queries(epsilon=0.05, delta=0.05, window=WINDOW)
        b = ECMSketch.for_point_queries(epsilon=0.05, delta=0.05, window=WINDOW)
        truth_a, truth_b = {}, {}
        for clock in range(2_000):
            key = "k%d" % rng.randrange(50)
            a.add(key, clock=float(clock))
            truth_a[key] = truth_a.get(key, 0) + 1
            key = "k%d" % rng.randrange(50)
            b.add(key, clock=float(clock))
            truth_b[key] = truth_b.get(key, 0) + 1
        exact = sum(truth_a.get(k, 0) * truth_b.get(k, 0) for k in truth_a)
        estimate = a.inner_product(b, now=1_999.0)
        assert abs(estimate - exact) <= 0.15 * 2_000 * 2_000


class TestEstimateArrivalsAndExtraction:
    def test_estimate_arrivals_close_to_truth(self, wc98_trace, wc98_exact):
        sketch = ECMSketch.for_point_queries(epsilon=0.1, delta=0.1, window=WINDOW)
        for record in wc98_trace:
            sketch.add(record.key, record.timestamp, record.value)
        now = wc98_trace.end_time()
        truth = wc98_exact.arrivals(WINDOW, now)
        estimate = sketch.estimate_arrivals(WINDOW, now=now)
        assert abs(estimate - truth) <= 0.15 * truth + 1

    def test_counter_estimates_matrix_shape(self):
        sketch = ECMSketch.for_point_queries(epsilon=0.2, delta=0.2, window=WINDOW)
        sketch.add("a", clock=1.0)
        matrix = sketch.counter_estimates_matrix(now=1.0)
        assert len(matrix) == sketch.depth
        assert all(len(row) == sketch.width for row in matrix)

    def test_to_countmin_point_queries_agree(self, uniform_trace):
        sketch = ECMSketch.for_point_queries(epsilon=0.1, delta=0.1, window=WINDOW)
        for record in uniform_trace:
            sketch.add(record.key, record.timestamp, record.value)
        now = uniform_trace.end_time()
        extracted = sketch.to_countmin(now=now)
        for key in list(uniform_trace.keys())[:20]:
            assert extracted.point_query(key) == pytest.approx(
                sketch.point_query(key, now=now)
            )

    def test_error_bound_helpers(self):
        sketch = ECMSketch.for_point_queries(epsilon=0.1, delta=0.1, window=WINDOW)
        assert sketch.point_error_bound(1_000) == pytest.approx(0.1 * 1_000, rel=1e-6)
        assert sketch.inner_product_error_bound(100, 200) > 0

    def test_memory_grows_with_precision(self):
        coarse = ECMSketch.for_point_queries(epsilon=0.25, delta=0.1, window=WINDOW)
        fine = ECMSketch.for_point_queries(epsilon=0.05, delta=0.1, window=WINDOW)
        for clock in range(500):
            coarse.add("k%d" % (clock % 37), clock=float(clock))
            fine.add("k%d" % (clock % 37), clock=float(clock))
        assert fine.memory_bytes() > coarse.memory_bytes()
        assert fine.synopsis_bytes() > coarse.synopsis_bytes()
        # The wire format is the synopsis itself, independent of how the
        # counter grid is stored locally.
        assert fine.serialized_bytes() == fine.synopsis_bytes()

    def test_counter_accessor_and_repr(self):
        sketch = ECMSketch.for_point_queries(epsilon=0.2, delta=0.2, window=WINDOW)
        assert sketch.counter(0, 0) is not None
        assert "ECMSketch" in repr(sketch)


class TestCountBasedModel:
    def test_count_based_point_queries(self):
        """Count-based windows index the stream by arrival position."""
        sketch = ECMSketch.for_point_queries(
            epsilon=0.1, delta=0.1, window=500, model=WindowModel.COUNT_BASED
        )
        for index in range(1, 2_001):
            key = "hot" if index % 2 == 0 else "cold-%d" % index
            sketch.add(key, clock=float(index))
        # Of the last 500 arrivals, ~250 are "hot".
        estimate = sketch.point_query("hot", range_length=500, now=2_000.0)
        assert abs(estimate - 250) <= 0.1 * 500 + 2
