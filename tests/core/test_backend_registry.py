"""Backend registry: capability negotiation, rejection reasons, plugins.

``ECMConfig.backend`` resolution goes through a registry of
:class:`~repro.core.BackendRegistration` entries: ``"auto"`` picks the
highest-priority backend whose ``supports()`` accepts the configuration,
explicit names either get exactly that backend or fail loudly with the
registry's rejection reason, and third parties can register their own
stores without touching core code.
"""

from __future__ import annotations

import pytest

from repro.core import (
    BackendUnavailableError,
    ConfigurationError,
    CounterType,
    ECMConfig,
    ECMSketch,
    known_backend_names,
    register_backend,
    registered_backends,
    resolve_backend,
    unregister_backend,
)
from repro.core.counter_store import ObjectCounterStore
from repro.windows import ColumnarEHStore, KernelEHStore
from repro.windows._eh_kernels import kernels_compiled

WINDOW = 400.0


def _eh_config(backend: str = "auto", **kwargs) -> ECMConfig:
    kwargs.setdefault("epsilon", 0.1)
    kwargs.setdefault("delta", 0.1)
    return ECMConfig.for_point_queries(window=WINDOW, backend=backend, **kwargs)


def _wave_config(backend: str = "auto") -> ECMConfig:
    return ECMConfig.for_point_queries(
        epsilon=0.1,
        delta=0.1,
        window=WINDOW,
        counter_type=CounterType.DETERMINISTIC_WAVE,
        max_arrivals=1000,
        backend=backend,
    )


class TestBuiltinRegistrations:
    def test_builtin_backends_present_in_priority_order(self):
        names = known_backend_names()
        assert names == ["kernels", "columnar", "object"]
        priorities = [entry.priority for entry in registered_backends()]
        assert priorities == sorted(priorities, reverse=True)

    def test_auto_prefers_best_available_backend(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNELS", raising=False)
        expected = "kernels" if kernels_compiled() else "columnar"
        config = _eh_config()
        assert config.resolved_backend == expected
        assert ECMSketch(config).backend == expected

    def test_auto_falls_back_to_object_for_waves(self):
        for counter_type in (CounterType.DETERMINISTIC_WAVE, CounterType.RANDOMIZED_WAVE):
            config = ECMConfig.for_point_queries(
                epsilon=0.2,
                delta=0.2,
                window=WINDOW,
                counter_type=counter_type,
                max_arrivals=1000,
            )
            sketch = ECMSketch(config)
            assert sketch.backend == "object"
            assert isinstance(sketch._store, ObjectCounterStore)

    def test_tiny_epsilon_hierarchical_config_stays_columnar(self, monkeypatch):
        """The old COLUMNAR_MAX_PER_LIMIT=64 silently demoted tiny-epsilon
        grids to the object backend; lazy slot growth removed the cap."""
        monkeypatch.delenv("REPRO_KERNELS", raising=False)
        config = ECMConfig(
            epsilon_cm=0.005, epsilon_sw=0.005, delta=0.05, window=3_600_000.0
        )
        assert config.resolved_backend in ("columnar", "kernels")
        sketch = ECMSketch(config)
        assert isinstance(sketch._store, ColumnarEHStore)


class TestExplicitSelection:
    def test_explicit_columnar_rejects_waves_loudly(self):
        with pytest.raises(BackendUnavailableError, match="counter_type"):
            ECMSketch(_wave_config(backend="columnar"))

    def test_explicit_kernels_rejects_waves_loudly(self):
        with pytest.raises(BackendUnavailableError, match="counter_type"):
            ECMSketch(_wave_config(backend="kernels"))

    def test_explicit_kernels_without_numba_or_force(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNELS", raising=False)
        if kernels_compiled():
            pytest.skip("numba installed: explicit kernels succeed here")
        with pytest.raises(BackendUnavailableError, match="numba"):
            ECMSketch(_eh_config(backend="kernels"))

    def test_unknown_backend_rejected_at_construction(self):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            _eh_config(backend="rowwise")

    def test_auto_never_raises_for_supported_counter_types(self):
        # The object floor accepts everything, so "auto" always resolves.
        for config in (_eh_config(), _wave_config()):
            assert resolve_backend(config).name in known_backend_names()


class TestKernelEnvironmentOverrides:
    def test_forced_kernels_resolve_even_without_numba(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "1")
        config = _eh_config()
        assert config.resolved_backend == "kernels"
        sketch = ECMSketch(_eh_config(backend="kernels"))
        assert isinstance(sketch._store, KernelEHStore)

    def test_disabled_kernels_resolve_to_columnar(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "0")
        assert _eh_config().resolved_backend == "columnar"
        with pytest.raises(BackendUnavailableError, match="REPRO_KERNELS"):
            ECMSketch(_eh_config(backend="kernels"))


class TestThirdPartyRegistration:
    def test_plugin_backend_wins_auto_selection(self):
        class PluginStore(ObjectCounterStore):
            backend_name = "plugin"

        def factory(config, make_counter):
            return PluginStore(
                [
                    [make_counter(row, column) for column in range(config.width)]
                    for row in range(config.depth)
                ]
            )

        register_backend("plugin", factory, lambda config: None, priority=99)
        try:
            assert known_backend_names()[0] == "plugin"
            sketch = ECMSketch(_eh_config())
            assert sketch.backend == "plugin"
            assert isinstance(sketch._store, PluginStore)
        finally:
            unregister_backend("plugin")
        assert "plugin" not in known_backend_names()

    def test_rejecting_plugin_is_skipped_with_reason(self):
        register_backend(
            "picky", lambda c, m: None, lambda c: "never accepts", priority=99
        )
        try:
            assert _eh_config().resolved_backend != "picky"
            with pytest.raises(BackendUnavailableError, match="never accepts"):
                resolve_backend(_eh_config(backend="picky"))
        finally:
            unregister_backend("picky")

    def test_duplicate_registration_requires_replace(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_backend("object", lambda c, m: None, lambda c: None)

    def test_auto_is_a_reserved_name(self):
        with pytest.raises(ConfigurationError, match="reserved|resolver"):
            register_backend("auto", lambda c, m: None, lambda c: None)

    def test_unregister_missing_backend_is_noop(self):
        unregister_backend("never-registered")
