"""Cross-backend equivalence: columnar/kernel vs object counter stores.

The accelerated backends are pure storage/execution changes: for every counter
lifecycle — scalar adds, batched adds (weighted and unweighted, int and float
clocks, window-crossing runs), whole-grid expiry sweeps, merges and
serialization round-trips — the sketch must be *observably identical* to the
object-per-cell reference backend: identical estimates (bitwise), identical
per-cell bucket structures, and byte-identical serialized state.

Every scenario runs twice, once against the NumPy ``columnar`` backend and
once against the ``kernels`` backend with ``REPRO_KERNELS=1`` forcing the
kernels on even when numba is absent (they then run as interpreted Python, so
the equivalence contract is checked in both environments).

The deterministic tests pin the named scenarios; the hypothesis driver
(``slow`` marker) explores random interleavings of the whole lifecycle.
"""

from __future__ import annotations

import contextlib
import os
import random
from collections.abc import Iterator

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ECMConfig, ECMSketch
from repro.core.errors import ConfigurationError
from repro.serialization import dumps, ecm_sketch_to_dict, loads
from repro.windows import ColumnarEHStore, WindowModel

WINDOW = 400.0

ACCELERATED_BACKENDS = ("columnar", "kernels")


@contextlib.contextmanager
def _forced_kernels(backend: str) -> Iterator[None]:
    """Force kernel eligibility while a ``kernels``-backend sketch is built."""
    if backend != "kernels":
        yield
        return
    previous = os.environ.get("REPRO_KERNELS")
    os.environ["REPRO_KERNELS"] = "1"
    try:
        yield
    finally:
        if previous is None:
            del os.environ["REPRO_KERNELS"]
        else:
            os.environ["REPRO_KERNELS"] = previous


def _pair(
    epsilon: float = 0.15,
    delta: float = 0.2,
    window: float = WINDOW,
    model: WindowModel = WindowModel.TIME_BASED,
    seed: int = 3,
    backend: str = "columnar",
) -> tuple[ECMSketch, ECMSketch]:
    """The same configuration on the object backend and an accelerated one."""
    sketches = []
    with _forced_kernels(backend):
        for name in ("object", backend):
            config = ECMConfig.for_point_queries(
                epsilon=epsilon, delta=delta, window=window, model=model, seed=seed, backend=name
            )
            sketches.append(ECMSketch(config))
    return sketches[0], sketches[1]


class _AcceleratedBackendCase:
    """Parametrizes every test in a subclass over the accelerated backends."""

    accel = "columnar"

    @pytest.fixture(autouse=True, params=ACCELERATED_BACKENDS)
    def _accelerated_backend(self, request, monkeypatch) -> str:
        if request.param == "kernels":
            monkeypatch.setenv("REPRO_KERNELS", "1")
        self.accel = request.param
        return request.param

    def _pair(self, **kwargs) -> tuple[ECMSketch, ECMSketch]:
        return _pair(backend=self.accel, **kwargs)


def _assert_twins(reference: ECMSketch, columnar: ECMSketch, keys) -> None:
    """Full observational equality of the two sketches."""
    assert dumps(reference) == dumps(columnar)
    for row in range(reference.depth):
        for column in range(reference.width):
            assert (
                reference.counter(row, column).bucket_count()
                == columnar.counter(row, column).bucket_count()
            )
    for key in keys:
        for range_length in (None, WINDOW / 7, WINDOW / 2, WINDOW):
            assert reference.point_query(key, range_length) == columnar.point_query(
                key, range_length
            )
    assert reference.self_join() == columnar.self_join()
    assert reference.estimate_arrivals() == columnar.estimate_arrivals()
    assert reference.synopsis_bytes() == columnar.synopsis_bytes()
    assert reference.serialized_bytes() == columnar.serialized_bytes()


class TestDeterministicLifecycles(_AcceleratedBackendCase):
    def test_backend_resolution(self):
        _, accelerated = self._pair()
        assert accelerated.backend == self.accel
        assert isinstance(accelerated._store, ColumnarEHStore)
        # Registry selection and rejection semantics live in
        # tests/core/test_backend_registry.py; this just pins that an explicit
        # request for the accelerated backend is honoured, not downgraded.

    def test_scalar_adds(self):
        reference, columnar = self._pair()
        for t in range(200):
            for sketch in (reference, columnar):
                sketch.add("k%d" % (t % 17), clock=float(t), value=1 + t % 3)
        _assert_twins(reference, columnar, ["k%d" % i for i in range(17)])

    def test_scalar_adds_integer_clocks(self):
        reference, columnar = self._pair()
        for t in range(150):
            for sketch in (reference, columnar):
                sketch.add(t % 11, clock=t)
        _assert_twins(reference, columnar, list(range(11)))

    def test_batched_adds_window_crossing(self):
        """Batches spanning several windows exercise the expiring slow path."""
        reference, columnar = self._pair()
        rng = random.Random(7)
        clock = 0.0
        for _ in range(12):
            items, clocks = [], []
            for _ in range(256):
                clock += rng.random() * 8.0  # crosses the 400-unit window often
                items.append("k%d" % rng.randrange(23))
                clocks.append(clock)
            for sketch in (reference, columnar):
                sketch.add_many(items, clocks)
        _assert_twins(reference, columnar, ["k%d" % i for i in range(23)])

    def test_batched_weighted_adds(self):
        reference, columnar = self._pair()
        rng = random.Random(11)
        clock = 0
        for _ in range(8):
            items, clocks, values = [], [], []
            for _ in range(128):
                clock += rng.randrange(0, 3)
                items.append(rng.randrange(19))
                clocks.append(clock)
                values.append(rng.randrange(0, 4))  # includes zero weights
            for sketch in (reference, columnar):
                sketch.add_many(items, clocks, values)
        _assert_twins(reference, columnar, list(range(19)))

    def test_mixed_scalar_batched_and_expire(self):
        reference, columnar = self._pair()
        rng = random.Random(13)
        clock = 0.0
        for step in range(30):
            clock += rng.random() * 20
            if step % 3 == 0:
                for sketch in (reference, columnar):
                    sketch.add("k%d" % (step % 9), clock)
            elif step % 3 == 1:
                items = ["k%d" % rng.randrange(9) for _ in range(64)]
                clocks = []
                for _ in range(64):
                    clock += rng.random()
                    clocks.append(clock)
                for sketch in (reference, columnar):
                    sketch.add_many(items, clocks)
            else:
                now = clock + rng.random() * 100
                for sketch in (reference, columnar):
                    sketch.expire(now)
        _assert_twins(reference, columnar, ["k%d" % i for i in range(9)])

    def test_expire_sweep_drops_dead_buckets(self):
        """expire() removes out-of-window state without changing answers."""
        _, columnar = self._pair()
        for t in range(100):
            columnar.add("key", clock=float(t))
        before = columnar.point_query("key", now=99.0)
        columnar.expire(99.0 + WINDOW * 3)
        for row in range(columnar.depth):
            for column in range(columnar.width):
                assert columnar.counter(row, column).bucket_count() == 0
        assert columnar.point_query("key", now=99.0 + WINDOW * 3) == 0.0
        assert before > 0

    def test_merges_across_backends(self):
        """Merging object- and columnar-backed inputs gives identical roots."""
        ref_a, col_a = self._pair(seed=5)
        ref_b, col_b = self._pair(seed=5)
        for t in range(120):
            for sketch in (ref_a, col_a):
                sketch.add("a%d" % (t % 7), clock=float(t))
            for sketch in (ref_b, col_b):
                sketch.add("b%d" % (t % 5), clock=float(t))
        merged_ref = ECMSketch.merge_many([ref_a, ref_b])
        merged_col = ECMSketch.merge_many([col_a, col_b])
        merged_mixed = ECMSketch.merge_many([ref_a, col_b])
        assert dumps(merged_ref) == dumps(merged_col) == dumps(merged_mixed)
        assert dumps(ECMSketch.aggregate([col_a, col_b])) == dumps(merged_col)

    def test_serialization_roundtrip_keeps_ingesting(self):
        reference, columnar = self._pair()
        for t in range(100):
            for sketch in (reference, columnar):
                sketch.add("k%d" % (t % 6), clock=float(t))
        restored_ref = loads(dumps(reference))
        restored_col = loads(dumps(columnar))
        for t in range(100, 160):
            for sketch in (reference, columnar, restored_ref, restored_col):
                sketch.add("k%d" % (t % 6), clock=float(t))
        assert dumps(reference) == dumps(columnar)
        assert dumps(restored_ref) == dumps(restored_col) == dumps(reference)

    def test_count_based_windows(self):
        reference, columnar = self._pair(model=WindowModel.COUNT_BASED)
        for index in range(300):
            for sketch in (reference, columnar):
                sketch.add("k%d" % (index % 13), clock=index)
        _assert_twins(reference, columnar, ["k%d" % i for i in range(13)])

    def test_counter_accessor_materialises_equal_histograms(self):
        reference, columnar = self._pair()
        for t in range(80):
            for sketch in (reference, columnar):
                sketch.add("x%d" % (t % 4), clock=float(t))
        for row in range(reference.depth):
            for column in range(reference.width):
                ref_counter = reference.counter(row, column)
                col_counter = columnar.counter(row, column)
                assert ref_counter.buckets_oldest_first() == col_counter.buckets_oldest_first()
                assert ref_counter.total_arrivals() == col_counter.total_arrivals()
                assert ref_counter.last_clock == col_counter.last_clock
                assert col_counter.check_invariant()

    def test_huge_integer_clock_rejected(self):
        """Clocks beyond float64's exact-int range raise instead of drifting."""
        _, columnar = self._pair()
        with pytest.raises(ConfigurationError):
            columnar.add("k", clock=(1 << 60) + 1)


class TestExoticStatesDemoteGracefully(_AcceleratedBackendCase):
    """Hand-crafted wire payloads break the canonical-layout invariants; the
    store must absorb them (demoting its implied-size/flag modes) and stay
    byte-identical to the object backend afterwards."""

    def _crafted_payload(self, backend: str) -> ECMSketch:
        config = ECMConfig.for_point_queries(
            epsilon=0.15, delta=0.2, window=WINDOW, backend=backend
        )
        sketch = ECMSketch(config)
        payload = ecm_sketch_to_dict(sketch)
        # A non-power-of-two bucket (size 3) plus mixed int/float clocks.
        payload["counters"][0][0]["buckets"] = [[3, 1, 2.5], [1, 4, 4]]
        payload["counters"][0][0]["total_arrivals"] = 4
        payload["counters"][0][0]["last_clock"] = 4
        from repro.serialization import ecm_sketch_from_dict

        return ecm_sketch_from_dict(payload)

    def test_exotic_payload_roundtrip_and_updates(self):
        reference = self._crafted_payload("object")
        columnar = self._crafted_payload(self.accel)
        assert dumps(reference) == dumps(columnar)
        # Keep mutating after the demotion: scalar, batched, expiry.
        for t in range(5, 40):
            for sketch in (reference, columnar):
                sketch.add("k%d" % (t % 3), clock=float(t))
        items = ["k0"] * 40
        clocks = [40.0 + 0.25 * i for i in range(40)]
        for sketch in (reference, columnar):
            sketch.add_many(items, clocks)
            sketch.expire(500.0)
        assert dumps(reference) == dumps(columnar)

    def test_mixed_clock_types_stay_identical(self):
        reference, columnar = self._pair()
        # Alternate int-clock and float-clock batches, then a mixed batch.
        for sketch in (reference, columnar):
            sketch.add_many(["a", "b", "a"], [1, 2, 3])
            sketch.add_many(["a", "c"], [4.5, 5.5])
            sketch.add_many(["b", "c", "b"], [6, 6.5, 7])
            sketch.add("a", 8)
            sketch.add("a", 9.5)
        assert dumps(reference) == dumps(columnar)


class TestMemoryAccounting(_AcceleratedBackendCase):
    def test_columnar_reports_true_array_footprint(self):
        _, columnar = self._pair()
        store = columnar._store
        assert isinstance(store, ColumnarEHStore)
        baseline = columnar.memory_bytes()
        assert baseline > 0
        for t in range(3000):
            columnar.add("k%d" % (t % 97), clock=float(t))
        # Growth happens in array-allocation steps, not per bucket.
        assert columnar.memory_bytes() >= baseline
        assert columnar.memory_bytes() == store.memory_bytes() + (
            columnar.depth * 2 * 32 + 8 * 32
        ) // 8

    def test_columnar_memory_below_object_resident_at_equal_config(self):
        """The satellite regression pin: at equal config and equal state, the
        columnar backend's reported footprint (true array allocation) must be
        well below what the object backend actually holds resident — that is
        the point of eliminating per-bucket Python objects.  The object
        backend's ``memory_bytes()`` itself still reports the paper's 32-bit
        synopsis model, so the honest comparison is against its
        ``resident_memory_bytes()`` walk."""
        reference, columnar = self._pair(epsilon=0.1)
        rng = random.Random(2)
        clock = 0.0
        for _ in range(40):
            items, clocks = [], []
            for _ in range(512):
                clock += rng.random()
                items.append("k%d" % rng.randrange(301))
                clocks.append(clock)
            for sketch in (reference, columnar):
                sketch.add_many(items, clocks)
        assert dumps(reference) == dumps(columnar)
        assert columnar.memory_bytes() < reference.resident_memory_bytes()
        assert columnar.resident_memory_bytes() < reference.resident_memory_bytes()
        # Identical synopsis accounting (the paper model is storage-agnostic).
        assert columnar.synopsis_bytes() == reference.synopsis_bytes()


# --------------------------------------------------------------- hypothesis
operation_strategy = st.lists(
    st.tuples(
        st.sampled_from(["add", "add_many", "add_many_weighted", "expire", "estimate"]),
        st.integers(min_value=0, max_value=10_000),
    ),
    min_size=1,
    max_size=25,
)


@pytest.mark.slow
@pytest.mark.parametrize("accel", ACCELERATED_BACKENDS)
@settings(max_examples=40, deadline=None)
@given(ops=operation_strategy, integer_clocks=st.booleans(), merge_at_end=st.booleans())
def test_random_interleavings_stay_identical(accel, ops, integer_clocks, merge_at_end):
    """Random add_many/expire/estimate/merge interleavings on both backends
    produce identical estimates, bucket counts and serialized state."""
    reference, columnar = _pair(epsilon=0.25, window=120.0, backend=accel)
    rng = random.Random(4242)
    clock: float = 0 if integer_clocks else 0.0

    def advance(step_seed: int) -> float:
        nonlocal clock
        gap = random.Random(step_seed).randrange(0, 12)
        clock = clock + gap if integer_clocks else clock + gap + 0.5
        return clock

    for op, op_seed in ops:
        op_rng = random.Random(op_seed)
        if op == "add":
            key = "k%d" % op_rng.randrange(8)
            value = op_rng.randrange(1, 4)
            now = advance(op_seed)
            reference.add(key, now, value)
            columnar.add(key, now, value)
        elif op in ("add_many", "add_many_weighted"):
            count = op_rng.randrange(1, 80)
            items = ["k%d" % op_rng.randrange(8) for _ in range(count)]
            clocks = [advance(op_seed * 31 + i) for i in range(count)]
            values = (
                [op_rng.randrange(0, 3) for _ in range(count)]
                if op == "add_many_weighted"
                else None
            )
            reference.add_many(items, clocks, values)
            columnar.add_many(items, clocks, values)
        elif op == "expire":
            now = clock + op_rng.randrange(0, 200)
            reference.expire(now)
            columnar.expire(now)
        else:  # estimate
            range_length = op_rng.choice([None, 10, 60, 120])
            keys = ["k%d" % i for i in range(8)]
            assert reference.point_query_many(keys, range_length) == columnar.point_query_many(
                keys, range_length
            )
    assert dumps(reference) == dumps(columnar)
    for row in range(reference.depth):
        for column in range(reference.width):
            assert (
                reference.counter(row, column).bucket_count()
                == columnar.counter(row, column).bucket_count()
            )
    if merge_at_end:
        # merge_many builds result sketches with the inputs' (sticky) backend,
        # so kernel eligibility must be forced for the merge too.
        with _forced_kernels(accel):
            assert dumps(ECMSketch.merge_many([reference, reference])) == dumps(
                ECMSketch.merge_many([columnar, columnar])
            )
