"""Unit tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro.core.errors import (
    ConfigurationError,
    EmptyStructureError,
    IncompatibleSketchError,
    OutOfOrderArrivalError,
    ReproError,
    WindowModelError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exception_class",
        [
            ConfigurationError,
            IncompatibleSketchError,
            WindowModelError,
            OutOfOrderArrivalError,
            EmptyStructureError,
        ],
    )
    def test_all_derive_from_repro_error(self, exception_class):
        assert issubclass(exception_class, ReproError)

    def test_value_error_compatibility(self):
        """Configuration problems should be catchable as plain ValueError too."""
        assert issubclass(ConfigurationError, ValueError)
        assert issubclass(IncompatibleSketchError, ValueError)
        assert issubclass(WindowModelError, ValueError)
        assert issubclass(OutOfOrderArrivalError, ValueError)

    def test_runtime_error_compatibility(self):
        assert issubclass(EmptyStructureError, RuntimeError)

    def test_catching_family(self):
        with pytest.raises(ReproError):
            raise WindowModelError("count-based windows cannot be merged")

    def test_messages_preserved(self):
        error = ConfigurationError("epsilon must be in (0, 1)")
        assert "epsilon" in str(error)
