"""Property-based tests for the wire format: round trips on arbitrary streams."""

from __future__ import annotations


from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

#: Property tests explore large input spaces; run `-m 'not slow'` to skip.
pytestmark = pytest.mark.slow

from repro.core import ECMSketch
from repro.serialization import dumps, loads
from repro.windows import ExponentialHistogram, RandomizedWave


keyed_streams = st.lists(
    st.tuples(st.integers(min_value=0, max_value=20), st.floats(min_value=0.01, max_value=20.0)),
    min_size=1,
    max_size=150,
)


def _materialise(pairs) -> list[tuple[int, float]]:
    clock = 0.0
    out = []
    for key, gap in pairs:
        clock += gap
        out.append((key, clock))
    return out


@settings(max_examples=40, deadline=None)
@given(pairs=keyed_streams, fraction=st.floats(min_value=0.05, max_value=1.0))
def test_histogram_round_trip_preserves_every_estimate(pairs, fraction):
    histogram = ExponentialHistogram(epsilon=0.1, window=1e9)
    arrivals = _materialise(pairs)
    for _key, clock in arrivals:
        histogram.add(clock)
    restored = loads(dumps(histogram))
    now = arrivals[-1][1]
    range_length = max(0.01, fraction * now)
    assert restored.estimate(range_length, now=now) == histogram.estimate(range_length, now=now)
    assert restored.bucket_count() == histogram.bucket_count()


@settings(max_examples=25, deadline=None)
@given(pairs=keyed_streams, fraction=st.floats(min_value=0.05, max_value=1.0))
def test_ecm_sketch_round_trip_preserves_point_queries(pairs, fraction):
    sketch = ECMSketch.for_point_queries(epsilon=0.3, delta=0.3, window=1e9, seed=11)
    arrivals = _materialise(pairs)
    for key, clock in arrivals:
        sketch.add(key, clock)
    restored = loads(dumps(sketch))
    now = arrivals[-1][1]
    range_length = max(0.01, fraction * now)
    for key in {key for key, _clock in arrivals}:
        assert restored.point_query(key, range_length, now=now) == sketch.point_query(
            key, range_length, now=now
        )
    assert restored.self_join(range_length, now=now) == sketch.self_join(range_length, now=now)


@settings(max_examples=20, deadline=None)
@given(pairs=keyed_streams)
def test_randomized_wave_round_trip_preserves_samples(pairs):
    wave = RandomizedWave(epsilon=0.3, delta=0.3, window=1e9, max_arrivals=1_000, seed=2)
    arrivals = _materialise(pairs)
    for _key, clock in arrivals:
        wave.add(clock)
    restored = loads(dumps(wave))
    assert restored.entry_count() == wave.entry_count()
    now = arrivals[-1][1]
    for fraction in (0.1, 0.5, 1.0):
        range_length = max(0.01, fraction * now)
        assert restored.estimate(range_length, now=now) == wave.estimate(range_length, now=now)
