"""Round-trip tests for the sketch wire format."""

from __future__ import annotations

import json
import random

import pytest

from repro.core import CountMinSketch, CounterType, ECMConfig, ECMSketch
from repro.core.errors import ConfigurationError
from repro.queries import FrequentItemsTracker, HierarchicalECMSketch
from repro.serialization import (
    FORMAT_VERSION,
    config_from_dict,
    config_to_dict,
    countmin_from_dict,
    countmin_to_dict,
    dumps,
    ecm_sketch_from_dict,
    ecm_sketch_to_dict,
    hierarchical_from_dict,
    hierarchical_to_dict,
    histogram_from_dict,
    histogram_to_dict,
    loads,
    randomized_wave_from_dict,
    randomized_wave_to_dict,
    tracker_from_dict,
    tracker_to_dict,
    wave_from_dict,
    wave_to_dict,
)
from repro.windows import DeterministicWave, ExponentialHistogram, RandomizedWave

from .conftest import make_arrivals


WINDOW = 50_000.0


class TestWindowCounterRoundTrips:
    def test_exponential_histogram_round_trip(self, rng):
        histogram = ExponentialHistogram(epsilon=0.05, window=WINDOW)
        arrivals = make_arrivals(rng, 3_000, mean_gap=5.0)
        for clock in arrivals:
            histogram.add(clock)
        restored = histogram_from_dict(histogram_to_dict(histogram))
        now = histogram.last_clock
        for range_length in (100, 1_000, 10_000, WINDOW):
            assert restored.estimate(range_length, now=now) == histogram.estimate(range_length, now=now)
        assert restored.total_arrivals() == histogram.total_arrivals()
        assert restored.bucket_count() == histogram.bucket_count()

    def test_restored_histogram_keeps_ingesting(self, rng):
        histogram = ExponentialHistogram(epsilon=0.1, window=WINDOW)
        for clock in make_arrivals(rng, 500, mean_gap=5.0):
            histogram.add(clock)
        restored = histogram_from_dict(histogram_to_dict(histogram))
        follow_up = make_arrivals(rng, 500, mean_gap=5.0)
        base = histogram.last_clock
        for clock in follow_up:
            histogram.add(base + clock)
            restored.add(base + clock)
        now = histogram.last_clock
        assert restored.estimate(None, now=now) == histogram.estimate(None, now=now)

    def test_deterministic_wave_round_trip(self, rng):
        wave = DeterministicWave(epsilon=0.05, window=WINDOW, max_arrivals=10_000)
        for clock in make_arrivals(rng, 3_000, mean_gap=5.0):
            wave.add(clock)
        restored = wave_from_dict(wave_to_dict(wave))
        now = wave.last_clock
        for range_length in (100, 1_000, 10_000, WINDOW):
            assert restored.estimate(range_length, now=now) == wave.estimate(range_length, now=now)
        assert restored.checkpoint_count() == wave.checkpoint_count()

    def test_randomized_wave_round_trip(self, rng):
        wave = RandomizedWave(epsilon=0.15, delta=0.1, window=WINDOW, max_arrivals=10_000, seed=5)
        for clock in make_arrivals(rng, 2_000, mean_gap=5.0):
            wave.add(clock)
        restored = randomized_wave_from_dict(randomized_wave_to_dict(wave))
        now = wave.last_clock
        for range_length in (100, 1_000, 10_000, WINDOW):
            assert restored.estimate(range_length, now=now) == wave.estimate(range_length, now=now)
        assert restored.entry_count() == wave.entry_count()

    def test_restored_randomized_wave_still_merges(self, rng):
        a = RandomizedWave(epsilon=0.2, delta=0.2, window=WINDOW, max_arrivals=5_000, stream_tag=1)
        b = RandomizedWave(epsilon=0.2, delta=0.2, window=WINDOW, max_arrivals=5_000, stream_tag=2)
        for clock in make_arrivals(rng, 500, mean_gap=5.0):
            a.add(clock)
            b.add(clock + 0.5)
        restored = randomized_wave_from_dict(randomized_wave_to_dict(a))
        merged = RandomizedWave.merged([restored, b])
        assert merged.total_arrivals() == a.total_arrivals() + b.total_arrivals()


class TestCountMinAndConfig:
    def test_countmin_round_trip(self):
        rng = random.Random(2)
        sketch = CountMinSketch(width=64, depth=4, seed=9)
        for _ in range(2_000):
            sketch.add("key-%d" % rng.randrange(200))
        restored = countmin_from_dict(countmin_to_dict(sketch))
        assert restored.counters() == sketch.counters()
        assert restored.point_query("key-3") == sketch.point_query("key-3")
        assert restored.total() == sketch.total()

    def test_config_round_trip(self):
        config = ECMConfig.for_point_queries(
            epsilon=0.1, delta=0.1, window=WINDOW,
            counter_type=CounterType.DETERMINISTIC_WAVE, max_arrivals=5_000, seed=3,
        )
        restored = config_from_dict(config_to_dict(config))
        assert restored.epsilon_cm == config.epsilon_cm
        assert restored.epsilon_sw == config.epsilon_sw
        assert restored.counter_type is config.counter_type
        assert restored.width == config.width
        assert restored.depth == config.depth


class TestECMSketchRoundTrips:
    @pytest.mark.parametrize(
        "counter_type",
        [CounterType.EXPONENTIAL_HISTOGRAM, CounterType.DETERMINISTIC_WAVE, CounterType.RANDOMIZED_WAVE],
    )
    def test_round_trip_preserves_queries(self, uniform_trace, counter_type):
        sketch = ECMSketch.for_point_queries(
            epsilon=0.2, delta=0.2, window=WINDOW,
            counter_type=counter_type, max_arrivals=10_000,
        )
        for record in uniform_trace:
            sketch.add(record.key, record.timestamp, record.value)
        restored = ecm_sketch_from_dict(ecm_sketch_to_dict(sketch))
        now = uniform_trace.end_time()
        for key in list(uniform_trace.keys())[:15]:
            assert restored.point_query(key, now=now) == sketch.point_query(key, now=now)
        assert restored.total_arrivals() == sketch.total_arrivals()
        # Logical state is identical; allocation granularity of the columnar
        # arrays may differ, so compare the backend-independent synopsis.
        assert restored.synopsis_bytes() == sketch.synopsis_bytes()

    def test_restored_sketch_still_aggregates(self, uniform_trace):
        config = ECMConfig.for_point_queries(epsilon=0.1, delta=0.1, window=WINDOW)
        parts = [ECMSketch(config, stream_tag=i) for i in range(2)]
        for index, record in enumerate(uniform_trace):
            parts[index % 2].add(record.key, record.timestamp, record.value)
        shipped = [ecm_sketch_from_dict(ecm_sketch_to_dict(part)) for part in parts]
        merged = ECMSketch.aggregate(shipped)
        assert merged.total_arrivals() == len(uniform_trace)

    def test_shape_mismatch_rejected(self, uniform_trace):
        sketch = ECMSketch.for_point_queries(epsilon=0.2, delta=0.2, window=WINDOW)
        sketch.add("x", clock=1.0)
        payload = ecm_sketch_to_dict(sketch)
        payload["counters"] = payload["counters"][:1]
        with pytest.raises(ConfigurationError):
            ecm_sketch_from_dict(payload)


class TestHierarchicalRoundTrips:
    @pytest.mark.parametrize(
        "counter_type",
        [CounterType.EXPONENTIAL_HISTOGRAM, CounterType.DETERMINISTIC_WAVE, CounterType.RANDOMIZED_WAVE],
    )
    def test_round_trip_preserves_queries(self, rng, counter_type):
        stack = HierarchicalECMSketch(
            universe_bits=6, epsilon=0.2, delta=0.2, window=WINDOW,
            counter_type=counter_type, max_arrivals=10_000,
        )
        clocks = make_arrivals(rng, 600, mean_gap=5.0)
        keys = [rng.randrange(64) for _ in clocks]
        stack.add_many(keys, clocks)
        restored = hierarchical_from_dict(hierarchical_to_dict(stack))
        now = clocks[-1]
        for key in range(0, 64, 7):
            assert restored.point_query(key, now=now) == stack.point_query(key, now=now)
        assert restored.heavy_hitters(phi=0.05, now=now) == stack.heavy_hitters(phi=0.05, now=now)
        assert restored.quantiles([0.25, 0.5, 0.75], now=now) == stack.quantiles(
            [0.25, 0.5, 0.75], now=now
        )
        assert restored.range_query(3, 40, now=now) == stack.range_query(3, 40, now=now)
        assert restored.total_arrivals() == stack.total_arrivals()
        assert restored.synopsis_bytes() == stack.synopsis_bytes()

    def test_restored_stack_keeps_ingesting_and_aggregates(self, rng):
        stacks = []
        for tag in range(2):
            stack = HierarchicalECMSketch(
                universe_bits=5, epsilon=0.2, delta=0.2, window=WINDOW,
                seed=4, stream_tag=tag,
            )
            for clock in make_arrivals(rng, 200, mean_gap=5.0):
                stack.add(rng.randrange(32), clock)
            stacks.append(stack)
        shipped = [hierarchical_from_dict(hierarchical_to_dict(stack)) for stack in stacks]
        shipped[0].add(1, clock=1e9)
        merged = HierarchicalECMSketch.aggregate(shipped)
        assert merged.total_arrivals() == sum(stack.total_arrivals() for stack in stacks) + 1

    def test_level_count_mismatch_rejected(self):
        stack = HierarchicalECMSketch(universe_bits=4, epsilon=0.2, delta=0.2, window=WINDOW)
        stack.add(3, clock=1.0)
        payload = hierarchical_to_dict(stack)
        payload["levels"] = payload["levels"][:2]
        with pytest.raises(ConfigurationError):
            hierarchical_from_dict(payload)


class TestTrackerRoundTrips:
    def test_round_trip_preserves_dictionary_and_queries(self, rng):
        tracker = FrequentItemsTracker(
            epsilon=0.2, delta=0.2, window=WINDOW, universe_bits=6, seed=8
        )
        clocks = make_arrivals(rng, 400, mean_gap=5.0)
        keys = ["/page/%d" % rng.randrange(40) for _ in clocks]
        tracker.add_many(keys, clocks)
        restored = tracker_from_dict(tracker_to_dict(tracker))
        now = clocks[-1]
        assert restored.distinct_keys() == tracker.distinct_keys()
        assert restored.heavy_hitters(phi=0.05, now=now) == tracker.heavy_hitters(phi=0.05, now=now)
        for key in set(keys[:10]):
            assert restored.frequency(key, now=now) == tracker.frequency(key, now=now)
        # The restored tracker keeps encoding new keys after the old ones.
        restored.add("/page/new", clock=now + 1.0)
        assert restored.distinct_keys() == tracker.distinct_keys() + 1

    def test_duplicate_keys_rejected(self):
        tracker = FrequentItemsTracker(epsilon=0.2, delta=0.2, window=WINDOW, universe_bits=4)
        tracker.add("a", clock=1.0)
        tracker.add("b", clock=2.0)
        payload = tracker_to_dict(tracker)
        payload["keys"] = ["a", "a"]
        with pytest.raises(ConfigurationError):
            tracker_from_dict(payload)

    def test_non_json_keys_rejected_at_serialize_time(self):
        # A tuple key would survive dumps() as a JSON list and only explode at
        # load time; serialization must refuse it up front instead.
        tracker = FrequentItemsTracker(epsilon=0.2, delta=0.2, window=WINDOW, universe_bits=4)
        tracker.add(("src", "dst"), clock=1.0)
        with pytest.raises(ConfigurationError):
            tracker_to_dict(tracker)

    def test_unhashable_payload_keys_rejected_at_load_time(self):
        tracker = FrequentItemsTracker(epsilon=0.2, delta=0.2, window=WINDOW, universe_bits=4)
        tracker.add("a", clock=1.0)
        payload = tracker_to_dict(tracker)
        payload["keys"] = [["src", "dst"]]  # what a hand-written payload could hold
        with pytest.raises(ConfigurationError):
            tracker_from_dict(payload)


class TestJsonLayer:
    def test_dumps_loads_all_kinds(self, rng):
        histogram = ExponentialHistogram(epsilon=0.1, window=WINDOW)
        histogram.add(1.0)
        wave = DeterministicWave(epsilon=0.1, window=WINDOW, max_arrivals=100)
        wave.add(1.0)
        rw = RandomizedWave(epsilon=0.3, delta=0.3, window=WINDOW, max_arrivals=100)
        rw.add(1.0)
        cm = CountMinSketch(width=8, depth=2)
        cm.add("x")
        ecm = ECMSketch.for_point_queries(epsilon=0.2, delta=0.2, window=WINDOW)
        ecm.add("x", clock=1.0)
        config = ECMConfig.for_point_queries(epsilon=0.2, delta=0.2, window=WINDOW)
        stack = HierarchicalECMSketch(universe_bits=4, epsilon=0.2, delta=0.2, window=WINDOW)
        stack.add(3, clock=1.0)
        tracker = FrequentItemsTracker(epsilon=0.2, delta=0.2, window=WINDOW, universe_bits=4)
        tracker.add("x", clock=1.0)
        for obj, kind in [
            (histogram, ExponentialHistogram),
            (wave, DeterministicWave),
            (rw, RandomizedWave),
            (cm, CountMinSketch),
            (ecm, ECMSketch),
            (config, ECMConfig),
            (stack, HierarchicalECMSketch),
            (tracker, FrequentItemsTracker),
        ]:
            data = dumps(obj)
            assert isinstance(data, bytes)
            assert json.loads(data.decode())["version"] == FORMAT_VERSION
            restored = loads(data)
            assert isinstance(restored, kind)

    def test_loads_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            loads(b"not json at all {")
        with pytest.raises(ConfigurationError):
            loads(b'{"no": "kind"}')
        with pytest.raises(ConfigurationError):
            loads(b'{"kind": "mystery", "version": 1}')

    def test_version_mismatch_rejected(self):
        histogram = ExponentialHistogram(epsilon=0.1, window=WINDOW)
        payload = histogram_to_dict(histogram)
        payload["version"] = 999
        with pytest.raises(ConfigurationError):
            histogram_from_dict(payload)

    def test_dumps_rejects_unknown_type(self):
        with pytest.raises(ConfigurationError):
            dumps(object())  # type: ignore[arg-type]

    def test_wire_size_tracks_memory_model(self, uniform_trace):
        """The JSON payload should be the same order of magnitude as the
        analytical 32-bit footprint (it is a textual encoding, so larger,
        but not wildly so)."""
        sketch = ECMSketch.for_point_queries(epsilon=0.2, delta=0.2, window=WINDOW)
        for record in uniform_trace:
            sketch.add(record.key, record.timestamp, record.value)
        payload = dumps(sketch)
        assert len(payload) < 40 * sketch.synopsis_bytes()
