"""Tests for the reprolint invariant checker (tools/reprolint).

Every rule gets a must-flag and a must-pass fixture, the suppression
syntax is exercised both per-line and file-wide, the JSON reporter has a
golden payload, and a self-run pins ``src/repro`` clean — the same
invocation the CI ``static-analysis`` job runs.

The acceptance-criteria cases copy the *real* service modules into a
fixture checkout and reintroduce the two historical regressions by hand
(a ``hash()`` call in ``service/router.py``, a deleted ``STATUS_FOR_CODE``
entry): the checker must fail both, because that is exactly what the CI
job relies on.
"""

from __future__ import annotations

import json
import shutil
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT) not in sys.path:  # direct pytest invocation from a subdir
    sys.path.insert(0, str(REPO_ROOT))

from tools.reprolint.cli import main as lint_main  # noqa: E402
from tools.reprolint.cli import render_json  # noqa: E402
from tools.reprolint.engine import ModuleFile, run_checks  # noqa: E402
from tools.reprolint.rules import RULES, Rule, all_rules, register  # noqa: E402


# --------------------------------------------------------------------------
# fixture helpers


def write_module(root: Path, relative: str, source: str) -> Path:
    path = root / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")
    return path


def lint(root: Path, codes: list[str] | None = None, target: str = "src"):
    """Run a rule subset over a fixture checkout; parse errors are failures."""
    findings, errors = run_checks([root / target], all_rules(codes), root=root)
    assert errors == []
    return findings


def codes_of(findings) -> list[str]:
    return [finding.code for finding in findings]


# --------------------------------------------------------------------------
# RL001 no-salted-hash


class TestRL001:
    def test_flags_builtin_hash_in_service(self, tmp_path):
        write_module(
            tmp_path,
            "src/repro/service/partition.py",
            "def shard_of(key, shards):\n    return hash(key) % shards\n",
        )
        findings = lint(tmp_path, ["RL001"])
        assert codes_of(findings) == ["RL001"]
        assert "crc32v1" in findings[0].message
        assert findings[0].line == 2

    def test_flags_in_distributed_and_windows(self, tmp_path):
        write_module(
            tmp_path, "src/repro/distributed/geo.py", "x = hash('a')\n"
        )
        write_module(
            tmp_path, "src/repro/windows/merge2.py", "y = hash('b')\n"
        )
        assert codes_of(lint(tmp_path, ["RL001"])) == ["RL001", "RL001"]

    def test_silent_outside_partition_dirs(self, tmp_path):
        write_module(
            tmp_path,
            "src/repro/experiments/tables.py",
            "def dedupe(rows):\n    return {hash(tuple(r)): r for r in rows}\n",
        )
        assert lint(tmp_path, ["RL001"]) == []

    def test_silent_for_pinned_hashes(self, tmp_path):
        write_module(
            tmp_path,
            "src/repro/service/partition.py",
            "import zlib\n"
            "def shard_of(key, shards):\n"
            "    return zlib.crc32(key.encode()) % shards\n",
        )
        assert lint(tmp_path, ["RL001"]) == []


# --------------------------------------------------------------------------
# RL002 no-blocking-in-async


class TestRL002:
    def test_flags_time_sleep_in_async_def(self, tmp_path):
        write_module(
            tmp_path,
            "src/repro/service/worker.py",
            "import time\n"
            "async def handler():\n"
            "    time.sleep(1.0)\n",
        )
        findings = lint(tmp_path, ["RL002"])
        assert codes_of(findings) == ["RL002"]
        assert "time.sleep" in findings[0].message
        assert "handler" in findings[0].message

    def test_flags_sqlite_through_attribute_and_helper_method(self, tmp_path):
        # The shape satellite 1 fixed: the sqlite call is two hops away from
        # the async def (async evict -> sync _touch -> catalog.touch -> the
        # blocking connection attribute).
        write_module(
            tmp_path,
            "src/repro/service/pool2.py",
            "import sqlite3\n"
            "class Catalog:\n"
            "    def __init__(self):\n"
            "        self._connection = sqlite3.connect('catalog.db')\n"
            "    def touch(self, name):\n"
            "        self._connection.execute('UPDATE t SET x=1')\n"
            "class Pool:\n"
            "    def __init__(self):\n"
            "        self.catalog = Catalog()\n"
            "    def _touch(self, name):\n"
            "        self.catalog.touch(name)\n"
            "    async def evict(self, name):\n"
            "        self._touch(name)\n"
            "    async def restore(self, name):\n"
            "        self.catalog.touch(name)\n",
        )
        findings = lint(tmp_path, ["RL002"])
        assert codes_of(findings) == ["RL002", "RL002"]
        messages = " ".join(finding.message for finding in findings)
        assert "evict" in messages and "restore" in messages

    def test_silent_in_sync_code_and_executor_thunks(self, tmp_path):
        write_module(
            tmp_path,
            "src/repro/service/worker.py",
            "import asyncio\n"
            "import time\n"
            "def warmup():\n"
            "    time.sleep(0.1)\n"
            "async def snapshot():\n"
            "    def write():\n"
            "        with open('s.json', 'w') as f:\n"
            "            f.write('{}')\n"
            "    await asyncio.get_running_loop().run_in_executor(None, write)\n",
        )
        assert lint(tmp_path, ["RL002"]) == []


# --------------------------------------------------------------------------
# RL003 await-under-lock


class TestRL003:
    def test_flags_network_await_in_mutating_lock_body(self, tmp_path):
        write_module(
            tmp_path,
            "src/repro/service/router2.py",
            "class Router:\n"
            "    async def evict(self, name):\n"
            "        async with self._lock:\n"
            "            self._tenants[name] = 'evicting'\n"
            "            await self.channel.request({'op': 'snapshot'})\n",
        )
        findings = lint(tmp_path, ["RL003"])
        assert codes_of(findings) == ["RL003"]
        assert "request" in findings[0].message

    def test_silent_without_mutation_or_for_local_awaits(self, tmp_path):
        write_module(
            tmp_path,
            "src/repro/service/router2.py",
            # Read-only lock body: serializing reads is the point of the lock.
            "class Router:\n"
            "    async def peek(self):\n"
            "        async with self._lock:\n"
            "            return await self.channel.request({'op': 'stats'})\n"
            # Mutation plus a *local* await (drain of the guarded object) is
            # the sanctioned pattern.
            "    async def apply(self, name):\n"
            "        async with self._lock:\n"
            "            self._tenants[name] = 'live'\n"
            "            await self.service.drain()\n",
        )
        assert lint(tmp_path, ["RL003"]) == []


# --------------------------------------------------------------------------
# RL004 registry-exhaustiveness


_ERRORS_SRC = (
    "ERROR_CODES = {\n"
    "    'BAD_REQUEST': None,\n"
    "    'UNKNOWN_OP': None,\n"
    "}\n"
)
_GATEWAY_SRC = (
    "STATUS_FOR_CODE = {\n"
    "    'BAD_REQUEST': 400,\n"
    "    'UNKNOWN_OP': 400,\n"
    "}\n"
)
_SERVER_SRC = (
    "_QUERY_OPS = frozenset(['point', 'range'])\n"
    "_TENANT_OPS = frozenset(['tenant_create'])\n"
)
_CORE_SRC = "_QUERY_HANDLERS = {'point': None, 'range': None}\n"
_ROUTER_SRC = "_ROUTER_QUERY_HANDLERS = {'point': None, 'range': None}\n"
_API_DOC = (
    "| `BAD_REQUEST` | 400 |\n"
    "| `UNKNOWN_OP` | 400 |\n"
    "| `point` | query |\n"
    "| `range` | query |\n"
    "| `tenant_create` | tenant |\n"
)


def write_registry_fixture(root: Path, **overrides: str) -> None:
    sources = {
        "src/repro/service/errors.py": _ERRORS_SRC,
        "src/repro/service/gateway.py": _GATEWAY_SRC,
        "src/repro/service/server.py": _SERVER_SRC,
        "src/repro/service/core.py": _CORE_SRC,
        "src/repro/service/router.py": _ROUTER_SRC,
        "docs/api.md": _API_DOC,
    }
    for short, text in overrides.items():
        sources["docs/api.md" if short == "api" else "src/repro/service/%s.py" % short] = text
    for relative, text in sources.items():
        write_module(root, relative, text)


class TestRL004:
    def test_consistent_registries_pass(self, tmp_path):
        write_registry_fixture(tmp_path)
        assert lint(tmp_path, ["RL004"]) == []

    def test_flags_missing_status_entry(self, tmp_path):
        write_registry_fixture(
            tmp_path, gateway="STATUS_FOR_CODE = {'BAD_REQUEST': 400}\n"
        )
        findings = lint(tmp_path, ["RL004"])
        assert codes_of(findings) == ["RL004"]
        assert "UNKNOWN_OP" in findings[0].message
        assert "STATUS_FOR_CODE" in findings[0].message

    def test_flags_undocumented_error_code_and_op(self, tmp_path):
        write_registry_fixture(
            tmp_path,
            api="| `BAD_REQUEST` | 400 |\n| `point` | query |\n| `tenant_create` | x |\n",
        )
        findings = lint(tmp_path, ["RL004"])
        messages = [finding.message for finding in findings]
        assert any("UNKNOWN_OP" in message and "docs/api.md" in message for message in messages)
        assert any("'range'" in message and "docs/api.md" in message for message in messages)

    def test_flags_op_missing_from_dispatch_table(self, tmp_path):
        write_registry_fixture(tmp_path, core="_QUERY_HANDLERS = {'point': None}\n")
        findings = lint(tmp_path, ["RL004"])
        assert codes_of(findings) == ["RL004"]
        assert "'range'" in findings[0].message and "_QUERY_HANDLERS" in findings[0].message

    def test_flags_unreachable_handler(self, tmp_path):
        write_registry_fixture(
            tmp_path,
            router="_ROUTER_QUERY_HANDLERS = {'point': None, 'range': None, 'median': None}\n",
        )
        findings = lint(tmp_path, ["RL004"])
        assert codes_of(findings) == ["RL004"]
        assert "'median'" in findings[0].message and "unreachable" in findings[0].message

    def test_silent_outside_this_repo(self, tmp_path):
        write_module(tmp_path, "src/otherproject/mod.py", "x = 1\n")
        assert lint(tmp_path, ["RL004"]) == []


# --------------------------------------------------------------------------
# RL005 no-nondeterminism


class TestRL005:
    def test_flags_wall_clock_and_global_rng_in_sketch_modules(self, tmp_path):
        write_module(
            tmp_path,
            "src/repro/core/clocky.py",
            "import time\n"
            "import random\n"
            "def stamp(bucket):\n"
            "    bucket.expiry = time.time()\n"
            "def jitter():\n"
            "    return random.random()\n",
        )
        findings = lint(tmp_path, ["RL005"])
        assert codes_of(findings) == ["RL005", "RL005"]
        messages = " ".join(finding.message for finding in findings)
        assert "time.time" in messages and "random.random" in messages

    def test_flags_unseeded_rng_constructor(self, tmp_path):
        write_module(
            tmp_path,
            "src/repro/windows/wave2.py",
            "import numpy as np\n"
            "rng = np.random.default_rng()\n",
        )
        findings = lint(tmp_path, ["RL005"])
        assert codes_of(findings) == ["RL005"]
        assert "seed" in findings[0].message

    def test_silent_for_seeded_rng_and_monotonic_clocks(self, tmp_path):
        write_module(
            tmp_path,
            "src/repro/windows/wave2.py",
            "import numpy as np\n"
            "import random\n"
            "import time\n"
            "rng = np.random.default_rng(7)\n"
            "local = random.Random(7)\n"
            "t0 = time.perf_counter()\n",
        )
        assert lint(tmp_path, ["RL005"]) == []

    def test_silent_outside_sketch_state_dirs(self, tmp_path):
        # The serving tier may read wall clocks (timers, logs); only
        # sketch-state modules promise replay.
        write_module(
            tmp_path,
            "src/repro/service/timers.py",
            "import time\n"
            "def now():\n"
            "    return time.time()\n",
        )
        assert lint(tmp_path, ["RL005"]) == []


# --------------------------------------------------------------------------
# RL006 no-unbounded-rpc-await


class TestRL006:
    def test_flags_deadlineless_request_and_submit(self, tmp_path):
        write_module(
            tmp_path,
            "src/repro/service/fanout.py",
            "class Router:\n"
            "    async def probe(self):\n"
            "        return await self.channel.request({'op': 'ping'})\n"
            "    async def push(self, message):\n"
            "        return await self.channel.submit(message)\n",
        )
        findings = lint(tmp_path, ["RL006"])
        assert codes_of(findings) == ["RL006", "RL006"]
        messages = " ".join(finding.message for finding in findings)
        assert "deadline" in messages and "request" in messages and "submit" in messages

    def test_flags_bare_open_connection(self, tmp_path):
        write_module(
            tmp_path,
            "src/repro/service/dial.py",
            "import asyncio\n"
            "async def dial(host, port):\n"
            "    return await asyncio.open_connection(host, port)\n",
        )
        assert codes_of(lint(tmp_path, ["RL006"])) == ["RL006"]

    def test_silent_with_deadline_timeout_or_wait_for(self, tmp_path):
        write_module(
            tmp_path,
            "src/repro/service/fanout.py",
            "import asyncio\n"
            "class Router:\n"
            "    async def probe(self):\n"
            "        return await self.channel.request({'op': 'ping'}, deadline=5.0)\n"
            "    async def dial(self, host, port):\n"
            "        return await asyncio.wait_for(asyncio.open_connection(host, port), 5.0)\n"
            "    async def hello(self, client):\n"
            "        return await client.connect(timeout=5.0)\n",
        )
        assert lint(tmp_path, ["RL006"]) == []

    def test_silent_for_self_receivers_and_non_rpc_awaits(self, tmp_path):
        # self.request(...) is the transport implementing itself: the bound
        # lives one frame up in its caller.  call(...) IS the bounded
        # retry wrapper.
        write_module(
            tmp_path,
            "src/repro/service/client2.py",
            "class Client:\n"
            "    async def ping(self):\n"
            "        return await self.request({'op': 'ping'})\n"
            "    async def point(self, key):\n"
            "        return await self.inner.call({'op': 'point', 'key': key})\n",
        )
        assert lint(tmp_path, ["RL006"]) == []

    def test_silent_outside_the_serving_tier(self, tmp_path):
        write_module(
            tmp_path,
            "src/repro/experiments/driver.py",
            "async def probe(channel):\n"
            "    return await channel.request({'op': 'ping'})\n",
        )
        assert lint(tmp_path, ["RL006"]) == []


# --------------------------------------------------------------------------
# RL007 registry-builds-backends


class TestRL007:
    def test_flags_direct_store_construction(self, tmp_path):
        write_module(
            tmp_path,
            "src/repro/core/shortcut.py",
            "from ..windows import ColumnarEHStore\n"
            "def fast_store(config):\n"
            "    return ColumnarEHStore(depth=config.depth, width=config.width,\n"
            "                           epsilon=0.1, window=100.0)\n",
        )
        findings = lint(tmp_path, ["RL007"])
        assert codes_of(findings) == ["RL007"]
        assert "resolve_backend" in findings[0].message

    def test_flags_attribute_calls_and_every_store_class(self, tmp_path):
        write_module(
            tmp_path,
            "src/repro/service/warmup.py",
            "import repro.windows as windows\n"
            "a = windows.KernelEHStore(depth=1, width=1, epsilon=0.1, window=1.0)\n"
            "b = windows.ObjectCounterStore([[None]])\n",
        )
        assert codes_of(lint(tmp_path, ["RL007"])) == ["RL007", "RL007"]

    def test_silent_inside_backend_implementations(self, tmp_path):
        write_module(
            tmp_path,
            "src/repro/windows/kernel_eh2.py",
            "from .columnar_eh import ColumnarEHStore\n"
            "def _factory(config, make_counter):\n"
            "    return ColumnarEHStore(depth=1, width=1, epsilon=0.1, window=1.0)\n",
        )
        write_module(
            tmp_path,
            "src/repro/core/counter_store.py",
            "class ObjectCounterStore:\n"
            "    pass\n"
            "def _object_factory(config, make_counter):\n"
            "    return ObjectCounterStore()\n",
        )
        assert lint(tmp_path, ["RL007"]) == []

    def test_silent_for_registry_resolution(self, tmp_path):
        write_module(
            tmp_path,
            "src/repro/core/sketch2.py",
            "from .counter_store import resolve_backend\n"
            "def build(config, make_counter):\n"
            "    registration = resolve_backend(config)\n"
            "    return registration.factory(config, make_counter)\n",
        )
        assert lint(tmp_path, ["RL007"]) == []


# --------------------------------------------------------------------------
# suppressions


class TestSuppressions:
    def test_line_disable_with_justification(self, tmp_path):
        write_module(
            tmp_path,
            "src/repro/service/probe.py",
            "def probe(key):\n"
            "    return hash(key)  # reprolint: disable=RL001 -- probe, not partitioning\n",
        )
        assert lint(tmp_path, ["RL001"]) == []

    def test_line_disable_only_covers_named_codes(self, tmp_path):
        write_module(
            tmp_path,
            "src/repro/service/probe.py",
            "def probe(key):\n"
            "    return hash(key)  # reprolint: disable=RL005\n",
        )
        assert codes_of(lint(tmp_path, ["RL001"])) == ["RL001"]

    def test_line_disable_covers_only_its_line(self, tmp_path):
        write_module(
            tmp_path,
            "src/repro/service/probe.py",
            "a = hash('a')  # reprolint: disable=RL001\n"
            "b = hash('b')\n",
        )
        findings = lint(tmp_path, ["RL001"])
        assert [(finding.code, finding.line) for finding in findings] == [("RL001", 2)]

    def test_disable_file_covers_the_whole_file(self, tmp_path):
        write_module(
            tmp_path,
            "src/repro/service/probe.py",
            "# reprolint: disable-file=RL001\n"
            "a = hash('a')\n"
            "b = hash('b')\n",
        )
        assert lint(tmp_path, ["RL001"]) == []

    def test_multiple_codes_in_one_comment(self, tmp_path):
        module = ModuleFile(
            tmp_path / "x.py", "x.py", "# reprolint: disable-file=RL001, RL002\n"
        )
        assert module.file_suppressions == frozenset(["RL001", "RL002"])


# --------------------------------------------------------------------------
# reporters and CLI


class TestReporting:
    def test_json_reporter_golden_payload(self, tmp_path):
        write_module(
            tmp_path,
            "src/repro/service/partition.py",
            "def shard_of(key, shards):\n    return hash(key) % shards\n",
        )
        findings = lint(tmp_path, ["RL001"])
        payload = json.loads(render_json(findings, []))
        expected_path = (tmp_path / "src/repro/service/partition.py").as_posix()
        assert payload == {
            "count": 1,
            "errors": [],
            "findings": [
                {
                    "path": expected_path,
                    "line": 2,
                    "col": 12,
                    "code": "RL001",
                    "message": (
                        "builtin hash() is salted per process; use crc32v1 "
                        "(service.router.shard_of) or core.hashing.HashFamily "
                        "for anything that partitions or merges state"
                    ),
                }
            ],
        }

    def test_cli_exit_codes(self, tmp_path):
        dirty = write_module(
            tmp_path, "src/repro/service/bad.py", "x = hash('a')\n"
        )
        clean = write_module(tmp_path, "src/repro/service/ok.py", "x = 1\n")
        out: list[str] = []
        assert lint_main([str(clean), "--root", str(tmp_path)], out=out.append) == 0
        assert out[-1] == "reprolint: clean"
        assert lint_main([str(dirty), "--root", str(tmp_path)], out=out.append) == 1
        assert "RL001" in out[-1]
        assert lint_main([str(tmp_path / "nope.py")], out=out.append) == 2
        assert lint_main([str(clean), "--rules", "RL999"], out=out.append) == 2

    def test_cli_reports_parse_errors(self, tmp_path):
        broken = write_module(
            tmp_path, "src/repro/service/broken.py", "def oops(:\n"
        )
        out: list[str] = []
        assert lint_main([str(broken), "--root", str(tmp_path)], out=out.append) == 2
        assert "cannot parse" in out[-1]

    def test_cli_list_rules_prints_the_catalog(self):
        out: list[str] = []
        assert lint_main(["--list-rules"], out=out.append) == 0
        catalog = "\n".join(out)
        for code in ["RL001", "RL002", "RL003", "RL004", "RL005", "RL006"]:
            assert code in catalog


class TestRegistry:
    def test_all_six_rules_are_registered(self):
        assert {"RL001", "RL002", "RL003", "RL004", "RL005", "RL006"} <= set(RULES)

    def test_register_rejects_bad_and_duplicate_codes(self):
        with pytest.raises(ValueError):
            register(type("NoCode", (Rule,), {"code": ""}))
        with pytest.raises(ValueError):
            register(type("Dup", (Rule,), {"code": "RL001"}))

    def test_unknown_code_subset_raises(self):
        with pytest.raises(KeyError):
            all_rules(["RL404"])


# --------------------------------------------------------------------------
# self-run and acceptance criteria


class TestSelfRun:
    def test_src_is_clean(self):
        findings, errors = run_checks(
            [REPO_ROOT / "src"], all_rules(), root=REPO_ROOT
        )
        assert errors == []
        assert findings == []


def copy_service_checkout(tmp_path: Path) -> Path:
    """Copy the real service tree + docs into a disposable fixture checkout."""
    shutil.copytree(
        REPO_ROOT / "src/repro/service", tmp_path / "src/repro/service"
    )
    (tmp_path / "docs").mkdir()
    shutil.copy(REPO_ROOT / "docs/api.md", tmp_path / "docs/api.md")
    return tmp_path


class TestAcceptance:
    """The two regressions the CI static-analysis job exists to catch."""

    def test_reintroducing_hash_into_router_fails(self, tmp_path):
        root = copy_service_checkout(tmp_path)
        router = root / "src/repro/service/router.py"
        router.write_text(
            router.read_text(encoding="utf-8")
            + "\n\ndef _legacy_shard_of(key, shards):\n"
            "    return hash(key) % shards\n",
            encoding="utf-8",
        )
        findings = lint(root, ["RL001"])
        assert codes_of(findings) == ["RL001"]
        assert findings[0].path.endswith("service/router.py")

    def test_deleting_a_status_for_code_entry_fails(self, tmp_path):
        root = copy_service_checkout(tmp_path)
        gateway = root / "src/repro/service/gateway.py"
        source = gateway.read_text(encoding="utf-8")
        assert '    "MODE_MISMATCH": 409,\n' in source
        gateway.write_text(
            source.replace('    "MODE_MISMATCH": 409,\n', ""), encoding="utf-8"
        )
        findings = lint(root, ["RL004"])
        assert codes_of(findings) == ["RL004"]
        assert "MODE_MISMATCH" in findings[0].message
        assert "STATUS_FOR_CODE" in findings[0].message

    def test_unmodified_service_checkout_is_clean(self, tmp_path):
        root = copy_service_checkout(tmp_path)
        assert lint(root, ["RL001", "RL004"]) == []
