"""Unit tests for geometric-method continuous threshold monitoring."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ECMConfig
from repro.core.errors import ConfigurationError
from repro.distributed import GeometricMonitor, L2NormSquaredFunction, SelfJoinFunction


WINDOW = 100_000.0


def _config(epsilon=0.2):
    return ECMConfig.for_point_queries(epsilon=epsilon, delta=0.2, window=WINDOW)


class TestThresholdFunctions:
    def test_l2_value(self):
        function = L2NormSquaredFunction(scale=2.0)
        assert function.value(np.array([3.0, 4.0])) == pytest.approx(50.0)

    def test_ball_extrema_bracket_values_inside_ball(self):
        function = L2NormSquaredFunction()
        center = np.array([1.0, 2.0, 2.0])
        radius = 0.5
        rng = np.random.default_rng(0)
        for _ in range(200):
            direction = rng.normal(size=3)
            direction /= np.linalg.norm(direction)
            point = center + direction * radius * rng.random()
            value = function.value(point)
            assert function.min_over_ball(center, radius) <= value + 1e-9
            assert value <= function.max_over_ball(center, radius) + 1e-9

    def test_min_over_ball_clamped_at_zero(self):
        function = L2NormSquaredFunction()
        assert function.min_over_ball(np.array([0.1, 0.0]), radius=1.0) == 0.0

    def test_self_join_scale(self):
        function = SelfJoinFunction(num_sites=4, depth=2)
        assert function.scale == pytest.approx(16 / 2)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            L2NormSquaredFunction(scale=0.0)
        with pytest.raises(ConfigurationError):
            SelfJoinFunction(num_sites=0, depth=2)


class TestGeometricMonitor:
    def test_requires_initialization(self):
        monitor = GeometricMonitor(num_sites=2, config=_config(), threshold=100.0)
        with pytest.raises(ConfigurationError):
            monitor.observe(0, "k", clock=1.0)
        with pytest.raises(ConfigurationError):
            monitor.current_estimate()

    def test_initialization_synchronizes_all_sites(self):
        monitor = GeometricMonitor(num_sites=3, config=_config(), threshold=100.0)
        monitor.initialize(now=0.0)
        assert monitor.stats.synchronizations == 1
        assert monitor.stats.messages == 6
        assert monitor.current_estimate() == 0.0
        assert not monitor.above_threshold

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            GeometricMonitor(num_sites=0, config=_config(), threshold=10.0)
        with pytest.raises(ConfigurationError):
            GeometricMonitor(num_sites=2, config=_config(), threshold=-1.0)
        with pytest.raises(ConfigurationError):
            GeometricMonitor(num_sites=2, config=_config(), threshold=10.0, check_every=0)

    def test_crossing_is_detected(self):
        """Driving one key's frequency up must eventually trip the threshold."""
        monitor = GeometricMonitor(num_sites=2, config=_config(), threshold=400.0, check_every=1)
        monitor.initialize(now=0.0)
        clock = 0.0
        for index in range(200):
            clock += 1.0
            monitor.observe(index % 2, "hot-key", clock=clock)
            if monitor.above_threshold:
                break
        assert monitor.above_threshold
        assert monitor.stats.synchronizations >= 2
        assert monitor.current_estimate() >= 400.0 * 0.5

    def test_no_missed_crossing_invariant(self, uniform_trace):
        """Whenever the protocol believes the function is below the threshold,
        the true global value must indeed be below it (up to sketch error)."""
        threshold = 5_0000.0
        monitor = GeometricMonitor(
            num_sites=4, config=_config(), threshold=threshold, check_every=10
        )
        monitor.initialize(now=0.0)
        for record in uniform_trace.head(1_500):
            monitor.observe(record.node, record.key, record.timestamp, record.value)
            if monitor.stats.arrivals % 300 == 0:
                exact = monitor.exact_global_value(now=record.timestamp)
                if not monitor.above_threshold:
                    assert exact <= threshold * 1.5
                else:
                    assert exact >= threshold * 0.5

    def test_communication_is_sublinear_in_arrivals(self, uniform_trace):
        """The whole point of the geometric method: most arrivals are silent."""
        monitor = GeometricMonitor(
            num_sites=4, config=_config(), threshold=10_000_000.0, check_every=1
        )
        monitor.initialize(now=0.0)
        stream = uniform_trace.head(1_000)
        monitor.observe_stream(stream)
        assert monitor.stats.arrivals == 1_000
        # Far fewer synchronisations than arrivals (threshold is far away).
        assert monitor.stats.synchronizations <= 5
        assert monitor.stats.transfer_bytes < 1_000 * monitor._vector_bytes

    def test_check_every_reduces_constraint_checks(self, uniform_trace):
        frequent = GeometricMonitor(num_sites=2, config=_config(), threshold=1e9, check_every=1)
        sparse = GeometricMonitor(num_sites=2, config=_config(), threshold=1e9, check_every=50)
        frequent.initialize(now=0.0)
        sparse.initialize(now=0.0)
        stream = uniform_trace.head(500)
        frequent.observe_stream(stream)
        sparse.observe_stream(stream)
        assert sparse.stats.constraint_checks < frequent.stats.constraint_checks

    def test_estimate_tracks_self_join_after_sync(self, uniform_trace):
        config = _config(epsilon=0.1)
        monitor = GeometricMonitor(num_sites=2, config=config, threshold=1e12, check_every=25)
        monitor.initialize(now=0.0)
        stream = uniform_trace.head(1_000)
        monitor.observe_stream(stream)
        exact = monitor.exact_global_value(now=stream.end_time())
        # Force one more synchronisation and compare.
        monitor._synchronize(now=stream.end_time())
        assert monitor.current_estimate() == pytest.approx(exact, rel=1e-6)

    def test_repr(self):
        monitor = GeometricMonitor(num_sites=2, config=_config(), threshold=10.0)
        assert "GeometricMonitor" in repr(monitor)
