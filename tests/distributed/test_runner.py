"""The sharded parallel runner: serial/parallel equivalence and edge cases.

The runner's contract is that a parallel, sharded, batched simulation
produces site sketches — and therefore a root aggregate — serialized
byte-for-byte the same as the plain per-record serial simulation.  The same
guarantee extends to the batched feeding modes of the periodic-aggregation
coordinator and the geometric monitor.
"""

from __future__ import annotations

import pytest

from repro.core import CounterType, ECMConfig, ECMSketch
from repro.core.errors import ConfigurationError
from repro.distributed import (
    DistributedDeployment,
    GeometricMonitor,
    PeriodicAggregationCoordinator,
    ShardedIngestRunner,
    hierarchical_aggregate,
    run_sharded_ingest,
)
from repro.distributed.runner import plan_shards
from repro.serialization import dumps

WINDOW = 100_000.0


@pytest.fixture(scope="module")
def eh_config():
    return ECMConfig.for_point_queries(epsilon=0.15, delta=0.15, window=WINDOW)


@pytest.fixture(scope="module")
def rw_config_small():
    return ECMConfig.for_point_queries(
        epsilon=0.25,
        delta=0.25,
        window=WINDOW,
        counter_type=CounterType.RANDOMIZED_WAVE,
        max_arrivals=20_000,
    )


class TestShardPlanning:
    def test_even_split(self):
        plans = plan_shards(num_nodes=8, shards=4)
        assert [plan.node_ids for plan in plans] == [(0, 1), (2, 3), (4, 5), (6, 7)]

    def test_uneven_split_spreads_remainder(self):
        plans = plan_shards(num_nodes=7, shards=3)
        assert [len(plan.node_ids) for plan in plans] == [3, 2, 2]
        covered = [node for plan in plans for node in plan.node_ids]
        assert covered == list(range(7))

    def test_more_shards_than_nodes_clamps(self):
        plans = plan_shards(num_nodes=2, shards=8)
        assert len(plans) == 2

    def test_invalid_arguments(self):
        with pytest.raises(ConfigurationError):
            plan_shards(num_nodes=0, shards=1)
        with pytest.raises(ConfigurationError):
            plan_shards(num_nodes=4, shards=0)


class TestRunnerEquivalence:
    def serial_deployment(self, trace, config, num_nodes=8):
        deployment = DistributedDeployment(num_nodes=num_nodes, config=config)
        deployment.ingest(trace)
        return deployment

    def test_in_process_sharded_ingest_matches_serial(self, wc98_trace, eh_config):
        serial = self.serial_deployment(wc98_trace, eh_config)
        nodes, report = run_sharded_ingest(
            wc98_trace, num_nodes=8, config=eh_config, workers=1, shards=3, batch_size=256
        )
        assert report.shards == 3
        assert report.records == len(wc98_trace)
        assert sum(report.per_shard_records) == len(wc98_trace)
        for mine, theirs in zip(nodes, serial.nodes, strict=False):
            assert mine.records_processed == theirs.records_processed
            assert dumps(mine.sketch) == dumps(theirs.sketch)

    def test_parallel_workers_match_serial(self, wc98_trace, eh_config):
        serial = self.serial_deployment(wc98_trace, eh_config)
        parallel = DistributedDeployment(num_nodes=8, config=eh_config)
        parallel.ingest(wc98_trace, workers=2)
        assert parallel.last_ingest_report is not None
        assert parallel.last_ingest_report.workers == 2
        for mine, theirs in zip(parallel.nodes, serial.nodes, strict=False):
            assert dumps(mine.sketch) == dumps(theirs.sketch)
        assert dumps(parallel.aggregate()) == dumps(serial.aggregate())

    def test_parallel_randomized_wave_root_matches_serial(self, wc98_trace, rw_config_small):
        # Randomized waves carry per-site sample state and stream tags; the
        # round-trip through worker processes must preserve all of it.
        serial = self.serial_deployment(wc98_trace, rw_config_small)
        parallel = DistributedDeployment(num_nodes=8, config=rw_config_small)
        parallel.ingest(wc98_trace, workers=2, shards=4, batch_size=128)
        assert dumps(parallel.aggregate()) == dumps(serial.aggregate())

    def test_empty_stream(self, eh_config):
        from repro.streams.stream import Stream

        nodes, report = run_sharded_ingest(
            Stream([]), num_nodes=4, config=eh_config, workers=1
        )
        assert report.records == 0
        assert all(node.records_processed == 0 for node in nodes)

    def test_runner_argument_validation(self, eh_config):
        with pytest.raises(ConfigurationError):
            ShardedIngestRunner(eh_config, workers=0)
        with pytest.raises(ConfigurationError):
            ShardedIngestRunner(eh_config, shards=-1)
        with pytest.raises(ConfigurationError):
            ShardedIngestRunner(eh_config, batch_size=0)

    def test_node_list_length_mismatch_rejected(self, wc98_trace, eh_config):
        runner = ShardedIngestRunner(eh_config)
        from repro.distributed import StreamNode

        with pytest.raises(ConfigurationError):
            runner.ingest(wc98_trace, num_nodes=4, nodes=[StreamNode(0, eh_config)])


class TestAggregationTreeEdgeCases:
    def test_empty_tree_rejected(self):
        with pytest.raises(ConfigurationError):
            hierarchical_aggregate([])

    def test_single_site_tree_returns_the_site_sketch(self, eh_config):
        sketch = ECMSketch(eh_config)
        sketch.add("key", 10.0)
        root = hierarchical_aggregate([sketch])
        assert root is sketch
        assert root.aggregation_report.messages == 0
        assert root.aggregation_report.transfer_bytes == 0

    def test_single_site_deployment(self, wc98_trace, eh_config):
        deployment = DistributedDeployment(num_nodes=1, config=eh_config)
        deployment.ingest(wc98_trace, workers=1)
        root = deployment.aggregate()
        assert root.total_arrivals() == sum(record.value for record in wc98_trace)
        assert deployment.last_report is not None
        assert deployment.last_report.transfer_bytes == 0


class TestBatchedProtocolEquivalence:
    def test_periodic_coordinator_batched_matches_scalar(self, wc98_trace, eh_config):
        scalar = PeriodicAggregationCoordinator(num_nodes=4, config=eh_config, period=WINDOW / 8)
        scalar.observe_stream(wc98_trace)
        batched = PeriodicAggregationCoordinator(num_nodes=4, config=eh_config, period=WINDOW / 8)
        batched.observe_stream(wc98_trace, batch_size=512)
        assert batched.stats.rounds == scalar.stats.rounds
        assert batched.stats.round_clocks == scalar.stats.round_clocks
        assert batched.stats.arrivals == scalar.stats.arrivals
        assert batched.stats.transfer_bytes == scalar.stats.transfer_bytes
        assert dumps(batched.root_sketch()) == dumps(scalar.root_sketch())
        for mine, theirs in zip(batched.nodes, scalar.nodes, strict=False):
            assert dumps(mine.sketch) == dumps(theirs.sketch)

    def test_periodic_coordinator_batch_size_validation(self, eh_config, wc98_trace):
        coordinator = PeriodicAggregationCoordinator(num_nodes=2, config=eh_config, period=10.0)
        with pytest.raises(ConfigurationError):
            coordinator.observe_stream(wc98_trace, batch_size=0)

    @pytest.mark.parametrize("check_every", [1, 40])
    def test_geometric_monitor_batched_matches_scalar(self, wc98_trace, eh_config, check_every):
        threshold = 2e5
        scalar = GeometricMonitor(
            num_sites=4, config=eh_config, threshold=threshold, check_every=check_every
        )
        scalar.initialize(now=0.0)
        scalar.observe_stream(wc98_trace)
        batched = GeometricMonitor(
            num_sites=4, config=eh_config, threshold=threshold, check_every=check_every
        )
        batched.initialize(now=0.0)
        batched.observe_stream(wc98_trace, batch_size=256)
        for attribute in (
            "arrivals",
            "constraint_checks",
            "local_violations",
            "synchronizations",
            "messages",
            "transfer_bytes",
        ):
            assert getattr(batched.stats, attribute) == getattr(scalar.stats, attribute)
        assert batched.current_estimate() == scalar.current_estimate()
        for mine, theirs in zip(batched.sites, scalar.sites, strict=False):
            assert dumps(mine.node.sketch) == dumps(theirs.node.sketch)

    def test_geometric_monitor_requires_initialization(self, wc98_trace, eh_config):
        monitor = GeometricMonitor(num_sites=2, config=eh_config, threshold=1e6)
        with pytest.raises(ConfigurationError):
            monitor.observe_stream(wc98_trace, batch_size=64)
