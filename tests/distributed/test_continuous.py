"""Unit tests for the periodic-propagation continuous-query coordinator."""

from __future__ import annotations

import pytest

from repro.baselines import ExactStreamSummary
from repro.core import ECMConfig
from repro.core.errors import ConfigurationError, EmptyStructureError
from repro.distributed import PeriodicAggregationCoordinator


WINDOW = 100_000.0


def _config(epsilon=0.1):
    return ECMConfig.for_point_queries(epsilon=epsilon, delta=0.1, window=WINDOW)


class TestConstruction:
    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            PeriodicAggregationCoordinator(num_nodes=0, config=_config(), period=10.0)
        with pytest.raises(ConfigurationError):
            PeriodicAggregationCoordinator(num_nodes=2, config=_config(), period=0.0)

    def test_queries_before_first_round_rejected(self):
        coordinator = PeriodicAggregationCoordinator(num_nodes=2, config=_config(), period=10.0)
        with pytest.raises(EmptyStructureError):
            coordinator.root_sketch()
        with pytest.raises(EmptyStructureError):
            coordinator.staleness(now=5.0)

    def test_repr(self):
        coordinator = PeriodicAggregationCoordinator(num_nodes=2, config=_config(), period=10.0)
        assert "PeriodicAggregationCoordinator" in repr(coordinator)


class TestRounds:
    def test_rounds_triggered_by_period(self):
        coordinator = PeriodicAggregationCoordinator(num_nodes=2, config=_config(), period=100.0)
        coordinator.observe(0, "x", clock=0.0)        # arms the first deadline at t=100
        assert coordinator.stats.rounds == 0
        triggered = coordinator.observe(1, "x", clock=150.0)
        assert triggered
        assert coordinator.stats.rounds == 1
        assert coordinator.last_round_clock == 150.0
        # Next deadline is 250; an arrival at 200 must not trigger.
        assert not coordinator.observe(0, "x", clock=200.0)
        assert coordinator.observe(1, "x", clock=260.0)
        assert coordinator.stats.rounds == 2

    def test_round_count_scales_with_period(self, uniform_trace):
        fast = PeriodicAggregationCoordinator(num_nodes=4, config=_config(), period=1_000.0)
        slow = PeriodicAggregationCoordinator(num_nodes=4, config=_config(), period=20_000.0)
        fast.observe_stream(uniform_trace)
        slow.observe_stream(uniform_trace)
        assert fast.stats.rounds > slow.stats.rounds
        assert fast.stats.transfer_bytes > slow.stats.transfer_bytes

    def test_transfer_accounted_per_round(self, uniform_trace):
        coordinator = PeriodicAggregationCoordinator(num_nodes=4, config=_config(), period=5_000.0)
        coordinator.observe_stream(uniform_trace)
        assert coordinator.stats.rounds >= 2
        assert coordinator.stats.messages == coordinator.stats.rounds * (
            len(coordinator.tree.vertices) - 1
        )
        assert len(coordinator.stats.round_clocks) == coordinator.stats.rounds
        assert coordinator.stats.transfer_megabytes() > 0

    def test_manual_round(self):
        coordinator = PeriodicAggregationCoordinator(num_nodes=2, config=_config(), period=1e9)
        coordinator.observe(0, "x", clock=1.0)
        root = coordinator.run_round(now=2.0)
        assert root.total_arrivals() == 1
        assert coordinator.staleness(now=10.0) == 8.0


class TestQueries:
    def test_answers_match_root_sketch(self, uniform_trace):
        coordinator = PeriodicAggregationCoordinator(num_nodes=4, config=_config(), period=10_000.0)
        coordinator.observe_stream(uniform_trace)
        coordinator.run_round(now=uniform_trace.end_time())
        exact = ExactStreamSummary.from_stream(uniform_trace, window=WINDOW)
        now = uniform_trace.end_time()
        arrivals = exact.arrivals(now=now)
        for key in list(exact.frequencies_in_range(None, now))[:20]:
            estimate = coordinator.query_frequency(key)
            truth = exact.frequency(key, now=now)
            assert abs(estimate - truth) <= 0.3 * arrivals + 1
        self_join = coordinator.query_self_join()
        assert abs(self_join - exact.self_join(now=now)) <= 0.3 * arrivals ** 2 + 1

    def test_staleness_bounded_by_period(self, uniform_trace):
        period = 5_000.0
        coordinator = PeriodicAggregationCoordinator(num_nodes=4, config=_config(), period=period)
        max_staleness = 0.0
        started = False
        for record in uniform_trace:
            coordinator.observe_record(record)
            if coordinator.stats.rounds > 0:
                started = True
                max_staleness = max(max_staleness, coordinator.staleness(record.timestamp))
        assert started
        # Staleness can exceed the period only by the gap to the next arrival,
        # which for this trace is far smaller than one period.
        assert max_staleness <= 2 * period
