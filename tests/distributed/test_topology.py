"""Unit tests for the aggregation-tree topology."""

from __future__ import annotations

import math

import pytest

from repro.core.errors import ConfigurationError
from repro.distributed import AggregationTree


class TestAggregationTree:
    @pytest.mark.parametrize("num_leaves", [1, 2, 3, 5, 8, 33, 100, 256])
    def test_leaf_count(self, num_leaves):
        tree = AggregationTree(num_leaves=num_leaves)
        assert len(tree.leaves()) == num_leaves
        assert sorted(leaf.node_id for leaf in tree.leaves()) == list(range(num_leaves))

    @pytest.mark.parametrize("num_leaves", [1, 2, 4, 16, 33, 256])
    def test_height_matches_log2(self, num_leaves):
        tree = AggregationTree(num_leaves=num_leaves)
        assert tree.height() == tree.expected_height() == (0 if num_leaves == 1 else math.ceil(math.log2(num_leaves)))

    def test_single_leaf_tree(self):
        tree = AggregationTree(num_leaves=1)
        assert tree.root.is_leaf
        assert tree.aggregation_steps() == 0
        assert tree.edges() == []

    def test_every_non_root_vertex_has_a_parent(self):
        tree = AggregationTree(num_leaves=13)
        for vertex in tree.vertices.values():
            if vertex.vertex_id == tree.root_id:
                assert vertex.parent is None
            else:
                assert vertex.parent is not None

    def test_children_and_parents_are_consistent(self):
        tree = AggregationTree(num_leaves=9)
        for vertex in tree.vertices.values():
            for child_id in vertex.children:
                assert tree.vertices[child_id].parent == vertex.vertex_id

    def test_internal_vertices_sorted_bottom_up(self):
        tree = AggregationTree(num_leaves=16)
        levels = [vertex.level for vertex in tree.internal_vertices()]
        assert levels == sorted(levels)

    def test_internal_vertices_staffed_by_descendant_site(self):
        tree = AggregationTree(num_leaves=12, seed=4)
        def descendant_sites(vertex_id):
            vertex = tree.vertices[vertex_id]
            if vertex.is_leaf:
                return {vertex.node_id}
            sites = set()
            for child in vertex.children:
                sites |= descendant_sites(child)
            return sites
        for vertex in tree.internal_vertices():
            assert vertex.node_id in descendant_sites(vertex.vertex_id)

    def test_branching_factor(self):
        tree = AggregationTree(num_leaves=27, branching=3)
        for vertex in tree.internal_vertices():
            assert 1 <= len(vertex.children) <= 3
        assert tree.height() == 3

    def test_edge_count(self):
        tree = AggregationTree(num_leaves=10)
        assert len(tree.edges()) == len(tree.vertices) - 1

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            AggregationTree(num_leaves=0)
        with pytest.raises(ConfigurationError):
            AggregationTree(num_leaves=4, branching=1)

    def test_repr(self):
        assert "AggregationTree" in repr(AggregationTree(num_leaves=4))
