"""Unit tests for hierarchical aggregation and the distributed deployment."""

from __future__ import annotations

import pytest

from repro.analysis import evaluate_point_queries, exponential_query_ranges
from repro.core import CounterType, ECMConfig, ECMSketch
from repro.core.errors import ConfigurationError
from repro.distributed import (
    AggregationReport,
    AggregationTree,
    DistributedDeployment,
    StreamNode,
    hierarchical_aggregate,
)
from repro.streams import StreamRecord


WINDOW = 100_000.0


def _config(epsilon=0.1, counter_type=CounterType.EXPONENTIAL_HISTOGRAM):
    return ECMConfig.for_point_queries(
        epsilon=epsilon, delta=0.1, window=WINDOW,
        counter_type=counter_type, max_arrivals=20_000,
    )


class TestStreamNode:
    def test_observe_and_query(self):
        node = StreamNode(node_id=0, config=_config())
        node.observe("k", clock=1.0)
        node.observe_record(StreamRecord(timestamp=2.0, key="k"))
        assert node.records_processed == 2
        assert node.local_point_query("k", now=2.0) >= 2.0
        assert node.local_self_join(now=2.0) >= 4.0

    def test_observe_stream(self, uniform_trace):
        node = StreamNode(node_id=1, config=_config())
        node.observe_stream(uniform_trace)
        assert node.records_processed == len(uniform_trace)
        assert node.upload_bytes() == node.sketch.synopsis_bytes()

    def test_invalid_node_id(self):
        with pytest.raises(ConfigurationError):
            StreamNode(node_id=-1, config=_config())

    def test_repr(self):
        assert "StreamNode" in repr(StreamNode(node_id=0, config=_config()))


class TestHierarchicalAggregate:
    def _local_sketches(self, trace, config, num_nodes):
        sketches = [ECMSketch(config, stream_tag=i) for i in range(num_nodes)]
        for record in trace:
            sketches[record.node % num_nodes].add(record.key, record.timestamp, record.value)
        return sketches

    def test_root_covers_union(self, wc98_trace):
        config = _config()
        sketches = self._local_sketches(wc98_trace, config, 8)
        root = hierarchical_aggregate(sketches)
        assert root.total_arrivals() == len(wc98_trace)
        report = root.aggregation_report
        assert isinstance(report, AggregationReport)
        assert report.messages == 8 + 4 + 2  # binary tree over 8 leaves: 14 shipments
        assert report.levels == 3
        assert report.transfer_bytes > 0
        assert report.transfer_megabytes() == pytest.approx(report.transfer_bytes / 2**20)

    def test_transfer_accounts_every_nonroot_vertex(self, uniform_trace):
        config = _config()
        sketches = self._local_sketches(uniform_trace, config, 5)
        tree = AggregationTree(num_leaves=5)
        report = AggregationReport()
        hierarchical_aggregate(sketches, tree=tree, report=report)
        assert report.messages == len(tree.vertices) - 1
        assert sum(report.per_level_bytes.values()) == report.transfer_bytes

    def test_single_sketch_aggregation_is_identity(self, uniform_trace):
        config = _config()
        sketches = self._local_sketches(uniform_trace, config, 1)
        root = hierarchical_aggregate(sketches)
        assert root is sketches[0]
        assert root.aggregation_report.transfer_bytes == 0

    def test_mismatched_tree_rejected(self, uniform_trace):
        config = _config()
        sketches = self._local_sketches(uniform_trace, config, 4)
        with pytest.raises(ConfigurationError):
            hierarchical_aggregate(sketches, tree=AggregationTree(num_leaves=5))

    def test_empty_input_rejected(self):
        with pytest.raises(ConfigurationError):
            hierarchical_aggregate([])

    def test_root_accuracy_within_hierarchical_bound(self, wc98_trace, wc98_exact):
        epsilon = 0.1
        config = _config(epsilon=epsilon)
        sketches = self._local_sketches(wc98_trace, config, 8)
        root = hierarchical_aggregate(sketches)
        ranges = exponential_query_ranges(WINDOW)
        summary = evaluate_point_queries(
            root, wc98_exact, ranges, now=wc98_trace.end_time(), max_keys_per_range=50
        )
        # Observed error is far below the worst-case multi-level bound; the
        # paper reports < 2x the centralized error, we allow some slack.
        assert summary.average <= epsilon
        assert summary.maximum <= 4 * epsilon


class TestDistributedDeployment:
    def test_ingest_routes_by_node(self, wc98_trace):
        deployment = DistributedDeployment(num_nodes=8, config=_config())
        deployment.ingest(wc98_trace)
        assert deployment.total_records() == len(wc98_trace)
        assert sum(node.records_processed for node in deployment.nodes) == len(wc98_trace)

    def test_node_modulo_mapping(self):
        deployment = DistributedDeployment(num_nodes=2, config=_config())
        deployment.observe(5, "k", clock=1.0)  # node 5 maps to 5 % 2 == 1
        assert deployment.nodes[1].records_processed == 1

    def test_aggregate_produces_report(self, uniform_trace):
        deployment = DistributedDeployment(num_nodes=4, config=_config())
        deployment.ingest(uniform_trace)
        root = deployment.aggregate()
        assert root.total_arrivals() == len(uniform_trace)
        assert deployment.last_report is not None
        assert deployment.last_report.levels == deployment.aggregation_levels() == 2

    def test_error_budget_helpers(self):
        deployment = DistributedDeployment(num_nodes=16, config=_config())
        levels = deployment.aggregation_levels()
        assert levels == 4
        assert deployment.worst_case_window_error() > deployment.config.epsilon_sw
        per_node = deployment.per_node_epsilon_for_target(0.1)
        assert 0 < per_node < 0.1

    def test_invalid_node_count(self):
        with pytest.raises(ConfigurationError):
            DistributedDeployment(num_nodes=0, config=_config())

    def test_randomized_wave_deployment(self, uniform_trace):
        config = _config(epsilon=0.2, counter_type=CounterType.RANDOMIZED_WAVE)
        deployment = DistributedDeployment(num_nodes=4, config=config)
        deployment.ingest(uniform_trace)
        root = deployment.aggregate()
        assert root.total_arrivals() == len(uniform_trace)

    def test_transfer_volume_rw_larger_than_eh(self, uniform_trace):
        """The headline distributed result: RW aggregation costs far more network."""
        eh = DistributedDeployment(num_nodes=4, config=_config(epsilon=0.1))
        rw = DistributedDeployment(
            num_nodes=4, config=_config(epsilon=0.1, counter_type=CounterType.RANDOMIZED_WAVE)
        )
        eh.ingest(uniform_trace)
        rw.ingest(uniform_trace)
        eh.aggregate()
        rw.aggregate()
        assert rw.last_report.transfer_bytes > 5 * eh.last_report.transfer_bytes

    def test_repr(self):
        assert "DistributedDeployment" in repr(DistributedDeployment(num_nodes=2, config=_config()))
