"""Unit tests for the exponential histogram sliding-window counter."""

from __future__ import annotations

import math

import pytest

from repro.core.errors import ConfigurationError, OutOfOrderArrivalError
from repro.windows import ExponentialHistogram, WindowModel
from repro.windows.exact_window import ExactWindowCounter

from ..conftest import make_arrivals


class TestConstruction:
    def test_valid_construction(self):
        histogram = ExponentialHistogram(epsilon=0.1, window=1000)
        assert histogram.epsilon == 0.1
        assert histogram.window == 1000
        assert histogram.model is WindowModel.TIME_BASED
        assert histogram.is_empty()

    def test_count_based_model(self):
        histogram = ExponentialHistogram(epsilon=0.1, window=500, model=WindowModel.COUNT_BASED)
        assert histogram.model is WindowModel.COUNT_BASED

    @pytest.mark.parametrize("epsilon", [0.0, 1.0, -0.5, 2.0])
    def test_invalid_epsilon(self, epsilon):
        with pytest.raises(ConfigurationError):
            ExponentialHistogram(epsilon=epsilon, window=1000)

    @pytest.mark.parametrize("window", [0, -10])
    def test_invalid_window(self, window):
        with pytest.raises(ConfigurationError):
            ExponentialHistogram(epsilon=0.1, window=window)

    def test_k_is_inverse_epsilon(self):
        histogram = ExponentialHistogram(epsilon=0.05, window=1000)
        assert histogram.k == math.ceil(1 / 0.05)

    def test_invalid_model(self):
        with pytest.raises(ConfigurationError):
            ExponentialHistogram(epsilon=0.1, window=100, model="time")  # type: ignore[arg-type]


class TestAdd:
    def test_single_arrival(self):
        histogram = ExponentialHistogram(epsilon=0.1, window=1000)
        histogram.add(5.0)
        assert histogram.total_arrivals() == 1
        assert histogram.estimate(1000, now=5.0) == 1.0

    def test_zero_count_is_noop(self):
        histogram = ExponentialHistogram(epsilon=0.1, window=1000)
        histogram.add(5.0, count=0)
        assert histogram.total_arrivals() == 0
        assert histogram.is_empty()

    def test_negative_count_rejected(self):
        histogram = ExponentialHistogram(epsilon=0.1, window=1000)
        with pytest.raises(ConfigurationError):
            histogram.add(5.0, count=-1)

    def test_bulk_count(self):
        histogram = ExponentialHistogram(epsilon=0.1, window=1000)
        histogram.add(5.0, count=7)
        assert histogram.total_arrivals() == 7

    def test_out_of_order_rejected(self):
        histogram = ExponentialHistogram(epsilon=0.1, window=1000)
        histogram.add(10.0)
        with pytest.raises(OutOfOrderArrivalError):
            histogram.add(5.0)

    def test_equal_clock_accepted(self):
        histogram = ExponentialHistogram(epsilon=0.1, window=1000)
        histogram.add(10.0)
        histogram.add(10.0)
        assert histogram.total_arrivals() == 2

    def test_extend_helper(self):
        histogram = ExponentialHistogram(epsilon=0.1, window=1000)
        histogram.extend([1.0, 2.0, 3.0])
        assert histogram.total_arrivals() == 3

    def test_last_clock_tracked(self):
        histogram = ExponentialHistogram(epsilon=0.1, window=1000)
        assert histogram.last_clock is None
        histogram.add(42.0)
        assert histogram.last_clock == 42.0


class TestInvariant:
    def test_invariant_holds_under_heavy_load(self, rng):
        histogram = ExponentialHistogram(epsilon=0.1, window=5_000)
        for clock in make_arrivals(rng, 5_000, mean_gap=1.0):
            histogram.add(clock)
        assert histogram.check_invariant()

    def test_invariant_holds_for_small_epsilon(self, rng):
        histogram = ExponentialHistogram(epsilon=0.02, window=5_000)
        for clock in make_arrivals(rng, 3_000, mean_gap=1.0):
            histogram.add(clock)
        assert histogram.check_invariant()

    def test_bucket_count_is_logarithmic(self, rng):
        """The number of buckets must stay O(log(eps*n)/eps), far below n."""
        histogram = ExponentialHistogram(epsilon=0.1, window=10**9)
        for clock in make_arrivals(rng, 10_000, mean_gap=1.0):
            histogram.add(clock)
        # k/2 + 2 buckets per size class, ~log2(eps*n) + 1 classes.
        limit = (histogram.k / 2 + 2) * (math.log2(0.1 * 10_000) + 2)
        assert histogram.bucket_count() <= limit

    def test_bucket_sizes_are_powers_of_two(self, rng):
        histogram = ExponentialHistogram(epsilon=0.1, window=10**9)
        for clock in make_arrivals(rng, 2_000, mean_gap=1.0):
            histogram.add(clock)
        for bucket in histogram.iter_buckets():
            assert bucket.size & (bucket.size - 1) == 0

    def test_buckets_ordered_by_time(self, rng):
        histogram = ExponentialHistogram(epsilon=0.1, window=10**9)
        for clock in make_arrivals(rng, 2_000, mean_gap=1.0):
            histogram.add(clock)
        ends = [b.end for b in histogram.buckets_newest_first()]
        assert ends == sorted(ends, reverse=True)
        for bucket in histogram.iter_buckets():
            assert bucket.start <= bucket.end


class TestEstimate:
    @pytest.mark.parametrize("epsilon", [0.05, 0.1, 0.2])
    @pytest.mark.parametrize("range_length", [50, 500, 5_000, 50_000])
    def test_relative_error_bound(self, rng, epsilon, range_length):
        window = 50_000.0
        histogram = ExponentialHistogram(epsilon=epsilon, window=window)
        exact = ExactWindowCounter(window=window)
        for clock in make_arrivals(rng, 8_000, mean_gap=5.0):
            histogram.add(clock)
            exact.add(clock)
        now = histogram.last_clock
        estimate = histogram.estimate(range_length, now=now)
        truth = exact.estimate(range_length, now=now)
        assert abs(estimate - truth) <= epsilon * truth + 1.0

    def test_empty_histogram_estimates_zero(self):
        histogram = ExponentialHistogram(epsilon=0.1, window=1000)
        assert histogram.estimate(100, now=50.0) == 0.0

    def test_range_larger_than_window_clamped(self, rng):
        histogram = ExponentialHistogram(epsilon=0.1, window=1_000)
        for clock in make_arrivals(rng, 500, mean_gap=1.0):
            histogram.add(clock)
        full = histogram.estimate(None, now=histogram.last_clock)
        oversize = histogram.estimate(10**9, now=histogram.last_clock)
        assert full == oversize

    def test_estimate_monotone_in_range(self, rng):
        histogram = ExponentialHistogram(epsilon=0.1, window=100_000)
        for clock in make_arrivals(rng, 3_000, mean_gap=3.0):
            histogram.add(clock)
        now = histogram.last_clock
        estimates = [histogram.estimate(r, now=now) for r in (10, 100, 1_000, 10_000)]
        assert estimates == sorted(estimates)

    def test_invalid_query_range(self):
        histogram = ExponentialHistogram(epsilon=0.1, window=1000)
        histogram.add(1.0)
        with pytest.raises(ConfigurationError):
            histogram.estimate(-5, now=1.0)

    def test_recent_range_is_exact_for_fresh_buckets(self):
        """Queries that only touch size-1 buckets are exact."""
        histogram = ExponentialHistogram(epsilon=0.5, window=1000)
        for clock in [1.0, 2.0, 3.0]:
            histogram.add(clock)
        assert histogram.estimate(1.5, now=3.0) == 2.0


class TestBucketViewCache:
    """The memoized newest-first view must never serve a stale bucket list."""

    def test_interleaved_adds_and_estimates_match_replay(self, rng):
        live = ExponentialHistogram(epsilon=0.1, window=1_000.0)
        arrivals = make_arrivals(rng, 1_200, mean_gap=3.0)
        for index, clock in enumerate(arrivals):
            live.add(clock)
            if index % 7 == 0:
                # Query between mutations so the cache is built and must be
                # dropped again by the following add.
                fresh = ExponentialHistogram(epsilon=0.1, window=1_000.0)
                for replayed in arrivals[: index + 1]:
                    fresh.add(replayed)
                assert live.estimate(now=clock) == fresh.estimate(now=clock)
                assert live.estimate(200.0, now=clock) == fresh.estimate(200.0, now=clock)

    def test_returned_bucket_list_is_safe_to_mutate(self):
        histogram = ExponentialHistogram(epsilon=0.1, window=1_000.0)
        for clock in range(20):
            histogram.add(float(clock))
        baseline = histogram.estimate(now=19.0)
        view = histogram.buckets_newest_first()
        view.clear()  # callers own the returned list; the cache must not alias it
        assert histogram.estimate(now=19.0) == baseline
        assert histogram.buckets_newest_first()

    def test_expire_invalidates_cached_view(self):
        histogram = ExponentialHistogram(epsilon=0.1, window=10.0)
        for clock in range(8):
            histogram.add(float(clock))
        assert histogram.estimate(now=7.0) > 0.0  # builds the cache
        histogram.expire(now=1_000.0)
        assert histogram.bucket_count() == 0
        assert histogram.estimate(now=1_000.0) == 0.0

    def test_add_batch_invalidates_cached_view(self, rng):
        batched = ExponentialHistogram(epsilon=0.1, window=1_000.0)
        scalar = ExponentialHistogram(epsilon=0.1, window=1_000.0)
        first = make_arrivals(rng, 300, mean_gap=3.0)
        base = first[-1]
        second = [base + clock for clock in make_arrivals(rng, 300, mean_gap=3.0)]
        for clock in first + second:
            scalar.add(clock)
        batched.add_batch(first)
        assert batched.estimate(now=first[-1]) > 0.0  # builds the cache
        batched.add_batch(second)
        assert batched.estimate(now=second[-1]) == scalar.estimate(now=second[-1])
        assert [
            (bucket.size, bucket.start, bucket.end)
            for bucket in batched.buckets_newest_first()
        ] == [
            (bucket.size, bucket.start, bucket.end)
            for bucket in scalar.buckets_newest_first()
        ]


class TestExpiry:
    def test_old_buckets_expire(self):
        histogram = ExponentialHistogram(epsilon=0.1, window=100)
        histogram.add(0.0)
        histogram.add(1.0)
        histogram.add(500.0)
        # Arrivals at 0 and 1 are far outside the window ending at 500.
        assert histogram.estimate(None, now=500.0) <= 2.0
        assert histogram.arrivals_in_window_upper_bound() <= 2

    def test_explicit_expire(self):
        histogram = ExponentialHistogram(epsilon=0.1, window=100)
        histogram.add(0.0)
        histogram.expire(now=1_000.0)
        assert histogram.is_empty()

    def test_total_arrivals_not_affected_by_expiry(self):
        histogram = ExponentialHistogram(epsilon=0.1, window=10)
        for clock in range(100):
            histogram.add(float(clock))
        assert histogram.total_arrivals() == 100

    def test_window_slides_with_stream(self, rng):
        """Estimates over the full window track only the recent arrivals."""
        window = 200.0
        histogram = ExponentialHistogram(epsilon=0.1, window=window)
        exact = ExactWindowCounter(window=window)
        clock = 0.0
        for _ in range(5_000):
            clock += rng.random() * 2.0
            histogram.add(clock)
            exact.add(clock)
        estimate = histogram.estimate(None, now=clock)
        truth = exact.estimate(None, now=clock)
        assert abs(estimate - truth) <= 0.1 * truth + 1.0


class TestCountBasedWindows:
    def test_count_based_counting(self):
        """With arrival indices as the clock, the window covers the last N arrivals."""
        histogram = ExponentialHistogram(epsilon=0.1, window=100, model=WindowModel.COUNT_BASED)
        for index in range(1, 1_001):
            histogram.add(float(index))
        estimate = histogram.estimate(50, now=1_000.0)
        assert abs(estimate - 50) <= 0.1 * 50 + 1.0

    def test_count_based_expiry(self):
        histogram = ExponentialHistogram(epsilon=0.1, window=10, model=WindowModel.COUNT_BASED)
        for index in range(1, 101):
            histogram.add(float(index))
        assert histogram.arrivals_in_window_upper_bound() <= 10 + histogram.k


class TestMemory:
    def test_memory_positive_and_grows_with_precision(self, rng):
        arrivals = make_arrivals(rng, 3_000, mean_gap=1.0)
        coarse = ExponentialHistogram(epsilon=0.2, window=10**9)
        fine = ExponentialHistogram(epsilon=0.02, window=10**9)
        for clock in arrivals:
            coarse.add(clock)
            fine.add(clock)
        assert 0 < coarse.memory_bytes() < fine.memory_bytes()

    def test_memory_far_below_exact(self, rng):
        arrivals = make_arrivals(rng, 5_000, mean_gap=1.0)
        histogram = ExponentialHistogram(epsilon=0.1, window=10**9)
        exact = ExactWindowCounter(window=10**9)
        for clock in arrivals:
            histogram.add(clock)
            exact.add(clock)
        assert histogram.memory_bytes() < exact.memory_bytes() / 10

    def test_repr(self):
        histogram = ExponentialHistogram(epsilon=0.1, window=100)
        assert "ExponentialHistogram" in repr(histogram)
