"""Property-based tests (hypothesis) for the sliding-window counters.

These tests drive the counters with arbitrary in-order arrival patterns and
query ranges, asserting the paper's invariants:

* exponential histograms keep invariant 1 and stay within their relative
  error bound on every range;
* deterministic waves never overestimate and stay within their bound;
* order-preserving aggregation of exponential histograms stays within the
  Theorem 4 bound;
* the exact baseline counter matches a brute-force recount.
"""

from __future__ import annotations


from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

#: Property tests explore large input spaces; run `-m 'not slow'` to skip.
pytestmark = pytest.mark.slow

from repro.windows import (
    DeterministicWave,
    ExactWindowCounter,
    ExponentialHistogram,
    aggregated_error,
    merge_exponential_histograms,
)


# Strategy: positive gaps between consecutive arrivals (keeps clocks in order).
gaps = st.lists(st.floats(min_value=0.01, max_value=50.0), min_size=1, max_size=400)
epsilons = st.sampled_from([0.05, 0.1, 0.2, 0.4])
range_fractions = st.floats(min_value=0.001, max_value=1.0)


def _clocks_from_gaps(gap_list: list[float]) -> list[float]:
    clocks = []
    clock = 0.0
    for gap in gap_list:
        clock += gap
        clocks.append(clock)
    return clocks


def _brute_count(clocks: list[float], start: float, end: float) -> int:
    return sum(1 for clock in clocks if start < clock <= end)


@settings(max_examples=60, deadline=None)
@given(gap_list=gaps, epsilon=epsilons, fraction=range_fractions)
def test_exponential_histogram_error_bound(gap_list, epsilon, fraction):
    """|estimate - truth| <= epsilon * truth for every range within the window."""
    window = 1e9
    clocks = _clocks_from_gaps(gap_list)
    histogram = ExponentialHistogram(epsilon=epsilon, window=window)
    for clock in clocks:
        histogram.add(clock)
    now = clocks[-1]
    range_length = max(0.01, fraction * now)
    truth = _brute_count(clocks, now - range_length, now)
    estimate = histogram.estimate(range_length, now=now)
    assert abs(estimate - truth) <= epsilon * truth + 0.5
    assert histogram.check_invariant()


@settings(max_examples=60, deadline=None)
@given(gap_list=gaps, epsilon=epsilons, fraction=range_fractions)
def test_exponential_histogram_expiry_consistency(gap_list, epsilon, fraction):
    """With a finite window, full-window estimates track the retained arrivals."""
    clocks = _clocks_from_gaps(gap_list)
    window = max(1.0, clocks[-1] * fraction)
    histogram = ExponentialHistogram(epsilon=epsilon, window=window)
    for clock in clocks:
        histogram.add(clock)
    now = clocks[-1]
    truth = _brute_count(clocks, now - window, now)
    estimate = histogram.estimate(None, now=now)
    assert abs(estimate - truth) <= epsilon * truth + 0.5


@settings(max_examples=50, deadline=None)
@given(gap_list=gaps, epsilon=epsilons, fraction=range_fractions)
def test_deterministic_wave_never_overestimates(gap_list, epsilon, fraction):
    """Wave estimates are within the bound and never exceed the truth."""
    window = 1e9
    clocks = _clocks_from_gaps(gap_list)
    wave = DeterministicWave(epsilon=epsilon, window=window, max_arrivals=len(clocks) * 2)
    for clock in clocks:
        wave.add(clock)
    now = clocks[-1]
    range_length = max(0.01, fraction * now)
    truth = _brute_count(clocks, now - range_length, now)
    estimate = wave.estimate(range_length, now=now)
    assert estimate <= truth
    assert truth - estimate <= epsilon * truth + 0.5


@settings(max_examples=40, deadline=None)
@given(
    gap_lists=st.lists(gaps, min_size=2, max_size=4),
    epsilon=st.sampled_from([0.05, 0.1, 0.2]),
    fraction=range_fractions,
)
def test_merged_exponential_histograms_respect_theorem_4(gap_lists, epsilon, fraction):
    """Aggregation error stays within eps + eps' + eps*eps' on arbitrary inputs."""
    window = 1e9
    histograms = []
    union: list[float] = []
    for gap_list in gap_lists:
        clocks = _clocks_from_gaps(gap_list)
        histogram = ExponentialHistogram(epsilon=epsilon, window=window)
        for clock in clocks:
            histogram.add(clock)
        histograms.append(histogram)
        union.extend(clocks)
    merged = merge_exponential_histograms(histograms)
    now = max(union)
    range_length = max(0.01, fraction * now)
    truth = _brute_count(union, now - range_length, now)
    estimate = merged.estimate(range_length, now=now)
    bound = aggregated_error(epsilon, epsilon)
    assert abs(estimate - truth) <= bound * truth + 1.0


@settings(max_examples=60, deadline=None)
@given(gap_list=gaps, fraction=range_fractions)
def test_exact_counter_matches_brute_force(gap_list, fraction):
    """The ground-truth counter agrees with a naive recount on every range."""
    clocks = _clocks_from_gaps(gap_list)
    window = max(1.0, clocks[-1])
    counter = ExactWindowCounter(window=window)
    for clock in clocks:
        counter.add(clock)
    now = clocks[-1]
    range_length = max(0.01, fraction * window)
    truth = _brute_count(clocks, now - range_length, now)
    assert counter.estimate(range_length, now=now) == truth


@settings(max_examples=40, deadline=None)
@given(gap_list=gaps, epsilon=epsilons)
def test_estimates_monotone_in_range(gap_list, epsilon):
    """Larger query ranges can never yield smaller estimates."""
    window = 1e9
    clocks = _clocks_from_gaps(gap_list)
    histogram = ExponentialHistogram(epsilon=epsilon, window=window)
    for clock in clocks:
        histogram.add(clock)
    now = clocks[-1]
    spans = [now * f for f in (0.1, 0.25, 0.5, 1.0)]
    estimates = [histogram.estimate(max(span, 0.01), now=now) for span in spans]
    assert estimates == sorted(estimates)
