"""Unit tests for the sliding-window base abstractions."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.windows import ExponentialHistogram, WindowModel
from repro.windows.base import validate_delta, validate_epsilon, validate_window


class TestValidators:
    @pytest.mark.parametrize("value", [0.01, 0.5, 0.99])
    def test_valid_epsilon(self, value):
        assert validate_epsilon(value) == value

    @pytest.mark.parametrize("value", [0.0, 1.0, -0.1, 5.0])
    def test_invalid_epsilon(self, value):
        with pytest.raises(ConfigurationError):
            validate_epsilon(value)

    @pytest.mark.parametrize("value", [0.0, 1.0, 2.0])
    def test_invalid_delta(self, value):
        with pytest.raises(ConfigurationError):
            validate_delta(value)

    def test_valid_delta(self):
        assert validate_delta(0.05) == 0.05

    @pytest.mark.parametrize("value", [0, -1, -0.5])
    def test_invalid_window(self, value):
        with pytest.raises(ConfigurationError):
            validate_window(value)

    def test_valid_window(self):
        assert validate_window(100) == 100.0

    def test_error_message_names_parameter(self):
        with pytest.raises(ConfigurationError, match="my_eps"):
            validate_epsilon(2.0, name="my_eps")


class TestWindowModel:
    def test_values(self):
        assert WindowModel.TIME_BASED.value == "time"
        assert WindowModel.COUNT_BASED.value == "count"

    def test_str(self):
        assert str(WindowModel.TIME_BASED) == "time"


class TestQueryBoundResolution:
    def test_defaults_to_last_clock_and_full_window(self):
        histogram = ExponentialHistogram(epsilon=0.1, window=100)
        histogram.add(50.0)
        start, end = histogram.resolve_query_bounds(None, None)
        assert end == 50.0
        assert start == -50.0

    def test_explicit_now(self):
        histogram = ExponentialHistogram(epsilon=0.1, window=100)
        histogram.add(50.0)
        start, end = histogram.resolve_query_bounds(30, 80.0)
        assert (start, end) == (50.0, 80.0)

    def test_oversized_range_clamped_to_window(self):
        histogram = ExponentialHistogram(epsilon=0.1, window=100)
        histogram.add(10.0)
        start, end = histogram.resolve_query_bounds(10_000, 10.0)
        assert end - start == 100.0

    def test_empty_counter_uses_zero_now(self):
        histogram = ExponentialHistogram(epsilon=0.1, window=100)
        start, end = histogram.resolve_query_bounds(None, None)
        assert end == 0.0
        assert start == -100.0

    def test_non_positive_range_rejected(self):
        histogram = ExponentialHistogram(epsilon=0.1, window=100)
        histogram.add(1.0)
        with pytest.raises(ConfigurationError):
            histogram.resolve_query_bounds(0, 1.0)
