"""Unit tests for order-preserving aggregation of sliding-window synopses."""

from __future__ import annotations


import pytest

from repro.core.errors import ConfigurationError, IncompatibleSketchError, WindowModelError
from repro.windows import (
    DeterministicWave,
    ExponentialHistogram,
    WindowModel,
    aggregated_error,
    bucket_replay_events,
    epsilon_for_levels,
    merge_deterministic_waves,
    merge_exponential_histograms,
    multi_level_error,
    wave_replay_events,
)

from ..conftest import make_arrivals


def _build_histograms(rng, num_streams, arrivals_each, epsilon=0.05, window=100_000.0):
    """Build per-stream histograms and return them with the union arrival log."""
    histograms = []
    union = []
    for _ in range(num_streams):
        histogram = ExponentialHistogram(epsilon=epsilon, window=window)
        clock = 0.0
        for _ in range(arrivals_each):
            clock += rng.random() * 10.0
            histogram.add(clock)
            union.append(clock)
        histograms.append(histogram)
    return histograms, union


class TestErrorFormulas:
    def test_aggregated_error_formula(self):
        assert aggregated_error(0.1, 0.1) == pytest.approx(0.21)
        assert aggregated_error(0.05, 0.02) == pytest.approx(0.05 + 0.02 + 0.001)

    def test_multi_level_error_zero_levels(self):
        assert multi_level_error(0.1, 0) == pytest.approx(0.1)

    def test_multi_level_error_grows_linearly(self):
        one = multi_level_error(0.1, 1)
        five = multi_level_error(0.1, 5)
        assert five > one
        assert five == pytest.approx(5 * 0.1 * 1.1 + 0.1)

    def test_multi_level_error_rejects_negative_levels(self):
        with pytest.raises(ConfigurationError):
            multi_level_error(0.1, -1)

    def test_epsilon_for_levels_inverts_multi_level_error(self):
        for levels in (1, 3, 8):
            for target in (0.05, 0.1, 0.3):
                per_node = epsilon_for_levels(target, levels)
                assert multi_level_error(per_node, levels) == pytest.approx(target, rel=1e-6)

    def test_epsilon_for_levels_zero_levels_identity(self):
        assert epsilon_for_levels(0.2, 0) == 0.2

    def test_epsilon_for_levels_rejects_bad_input(self):
        with pytest.raises(ConfigurationError):
            epsilon_for_levels(0.0, 2)
        with pytest.raises(ConfigurationError):
            epsilon_for_levels(0.1, -2)


class TestBucketReplay:
    def test_replay_preserves_total_count(self, rng):
        histogram = ExponentialHistogram(epsilon=0.1, window=10**9)
        for clock in make_arrivals(rng, 3_000, mean_gap=2.0):
            histogram.add(clock)
        events = bucket_replay_events(histogram)
        assert sum(count for _, count in events) == histogram.arrivals_in_window_upper_bound()

    def test_replay_events_within_bucket_bounds(self, rng):
        histogram = ExponentialHistogram(epsilon=0.1, window=10**9)
        for clock in make_arrivals(rng, 1_000, mean_gap=2.0):
            histogram.add(clock)
        bucket_bounds = [(b.start, b.end) for b in histogram.iter_buckets()]
        for clock, _count in bucket_replay_events(histogram):
            assert any(start <= clock <= end for start, end in bucket_bounds)

    def test_wave_replay_preserves_order(self, rng):
        wave = DeterministicWave(epsilon=0.1, window=10**9, max_arrivals=10_000)
        for clock in make_arrivals(rng, 2_000, mean_gap=2.0):
            wave.add(clock)
        events = wave_replay_events(wave)
        clocks = [clock for clock, _ in sorted(events)]
        assert clocks == sorted(clocks)

    def test_wave_replay_empty_wave(self):
        wave = DeterministicWave(epsilon=0.1, window=100, max_arrivals=10)
        assert wave_replay_events(wave) == []


class TestMergeExponentialHistograms:
    @pytest.mark.parametrize("num_streams", [2, 5, 10])
    def test_merged_error_within_theorem_4_bound(self, rng, num_streams):
        epsilon = 0.05
        histograms, union = _build_histograms(rng, num_streams, 2_000, epsilon=epsilon)
        merged = merge_exponential_histograms(histograms)
        now = max(union)
        bound = aggregated_error(epsilon, epsilon)
        for range_length in (500, 5_000, 50_000):
            truth = sum(1 for t in union if now - range_length < t <= now)
            if truth == 0:
                continue
            estimate = merged.estimate(range_length, now=now)
            assert abs(estimate - truth) <= bound * truth + 1.0

    def test_merge_with_custom_epsilon_prime(self, rng):
        histograms, union = _build_histograms(rng, 3, 1_000, epsilon=0.05)
        merged = merge_exponential_histograms(histograms, epsilon_prime=0.02)
        assert merged.epsilon == 0.02
        now = max(union)
        truth = sum(1 for t in union if now - 10_000 < t <= now)
        estimate = merged.estimate(10_000, now=now)
        assert abs(estimate - truth) <= aggregated_error(0.05, 0.02) * truth + 1.0

    def test_merge_preserves_window_length(self, rng):
        histograms, _ = _build_histograms(rng, 2, 500)
        merged = merge_exponential_histograms(histograms)
        assert merged.window == histograms[0].window

    def test_merge_single_histogram(self, rng):
        histograms, union = _build_histograms(rng, 1, 1_000, epsilon=0.05)
        merged = merge_exponential_histograms(histograms)
        now = max(union)
        truth = sum(1 for t in union if now - 5_000 < t <= now)
        assert abs(merged.estimate(5_000, now=now) - truth) <= aggregated_error(0.05, 0.05) * truth + 1.0

    def test_merge_rejects_empty_list(self):
        with pytest.raises(ConfigurationError):
            merge_exponential_histograms([])

    def test_merge_rejects_count_based_inputs(self):
        histogram = ExponentialHistogram(epsilon=0.1, window=100, model=WindowModel.COUNT_BASED)
        histogram.add(1.0)
        with pytest.raises(WindowModelError):
            merge_exponential_histograms([histogram])

    def test_merge_rejects_mismatched_windows(self):
        a = ExponentialHistogram(epsilon=0.1, window=100)
        b = ExponentialHistogram(epsilon=0.1, window=200)
        a.add(1.0)
        b.add(1.0)
        with pytest.raises(IncompatibleSketchError):
            merge_exponential_histograms([a, b])

    def test_multi_level_aggregation_error(self, rng):
        """Two levels of pairwise aggregation stay within the hierarchical bound."""
        epsilon = 0.05
        histograms, union = _build_histograms(rng, 4, 2_000, epsilon=epsilon)
        level_one = [
            merge_exponential_histograms(histograms[0:2]),
            merge_exponential_histograms(histograms[2:4]),
        ]
        root = merge_exponential_histograms(level_one)
        now = max(union)
        bound = multi_level_error(epsilon, 2)
        for range_length in (1_000, 20_000, 100_000):
            truth = sum(1 for t in union if now - range_length < t <= now)
            if truth == 0:
                continue
            estimate = root.estimate(range_length, now=now)
            assert abs(estimate - truth) <= bound * truth + 1.0


class TestMergeDeterministicWaves:
    def test_merged_wave_error_reasonable(self, rng):
        epsilon = 0.05
        waves = []
        union = []
        for _ in range(4):
            wave = DeterministicWave(epsilon=epsilon, window=100_000, max_arrivals=10_000)
            clock = 0.0
            for _ in range(2_000):
                clock += rng.random() * 10.0
                wave.add(clock)
                union.append(clock)
            waves.append(wave)
        merged = merge_deterministic_waves(waves)
        now = max(union)
        bound = aggregated_error(epsilon, epsilon)
        for range_length in (1_000, 10_000, 90_000):
            truth = sum(1 for t in union if now - range_length < t <= now)
            if truth == 0:
                continue
            estimate = merged.estimate(range_length, now=now)
            assert abs(estimate - truth) <= (bound + epsilon) * truth + 2.0

    def test_merged_wave_bound_defaults_to_sum(self, rng):
        waves = []
        for _ in range(3):
            wave = DeterministicWave(epsilon=0.1, window=1_000, max_arrivals=500)
            wave.add(1.0)
            waves.append(wave)
        merged = merge_deterministic_waves(waves)
        assert merged.max_arrivals == 1_500

    def test_merge_rejects_empty_list(self):
        with pytest.raises(ConfigurationError):
            merge_deterministic_waves([])
