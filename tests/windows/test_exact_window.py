"""Unit tests for the exact sliding-window counter baseline."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError, OutOfOrderArrivalError
from repro.windows import ExactWindowCounter, WindowModel


class TestExactWindowCounter:
    def test_counts_exactly(self):
        counter = ExactWindowCounter(window=100)
        for clock in [1.0, 2.0, 3.0, 50.0, 99.0]:
            counter.add(clock)
        assert counter.estimate(None, now=99.0) == 5.0
        assert counter.estimate(50, now=99.0) == 2.0

    def test_boundary_is_half_open(self):
        """An arrival exactly at the range start is excluded, at the end included."""
        counter = ExactWindowCounter(window=100)
        counter.add(10.0)
        counter.add(20.0)
        assert counter.estimate(10, now=20.0) == 1.0

    def test_expiry(self):
        counter = ExactWindowCounter(window=10)
        counter.add(0.0)
        counter.add(100.0)
        assert counter.in_window_count() == 1
        assert counter.estimate(None, now=100.0) == 1.0

    def test_total_arrivals_includes_expired(self):
        counter = ExactWindowCounter(window=10)
        for clock in range(50):
            counter.add(float(clock))
        assert counter.total_arrivals() == 50
        assert counter.in_window_count() <= 11

    def test_bulk_count(self):
        counter = ExactWindowCounter(window=100)
        counter.add(5.0, count=4)
        assert counter.estimate(None, now=5.0) == 4.0

    def test_out_of_order_rejected(self):
        counter = ExactWindowCounter(window=100)
        counter.add(10.0)
        with pytest.raises(OutOfOrderArrivalError):
            counter.add(5.0)

    def test_negative_count_rejected(self):
        counter = ExactWindowCounter(window=100)
        with pytest.raises(ConfigurationError):
            counter.add(1.0, count=-1)

    def test_memory_linear_in_retained(self):
        counter = ExactWindowCounter(window=10**9)
        baseline = counter.memory_bytes()
        for clock in range(1000):
            counter.add(float(clock))
        assert counter.memory_bytes() >= baseline + 1000 * 4

    def test_explicit_expire(self):
        counter = ExactWindowCounter(window=10)
        counter.add(0.0)
        counter.expire(now=100.0)
        assert counter.in_window_count() == 0

    def test_model_tag(self):
        counter = ExactWindowCounter(window=10, model=WindowModel.COUNT_BASED)
        assert counter.model is WindowModel.COUNT_BASED

    def test_repr(self):
        counter = ExactWindowCounter(window=10)
        assert "ExactWindowCounter" in repr(counter)
