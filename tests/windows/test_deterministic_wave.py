"""Unit tests for the deterministic wave sliding-window counter."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError, OutOfOrderArrivalError
from repro.windows import DeterministicWave, ExponentialHistogram
from repro.windows.exact_window import ExactWindowCounter

from ..conftest import make_arrivals


class TestConstruction:
    def test_valid_construction(self):
        wave = DeterministicWave(epsilon=0.1, window=1000, max_arrivals=10_000)
        assert wave.epsilon == 0.1
        assert wave.max_arrivals == 10_000
        assert wave.num_levels >= 1
        assert wave.per_level >= 2

    def test_requires_positive_max_arrivals(self):
        with pytest.raises(ConfigurationError):
            DeterministicWave(epsilon=0.1, window=1000, max_arrivals=0)

    @pytest.mark.parametrize("epsilon", [0.0, 1.0, -1.0])
    def test_invalid_epsilon(self, epsilon):
        with pytest.raises(ConfigurationError):
            DeterministicWave(epsilon=epsilon, window=1000, max_arrivals=100)

    def test_levels_grow_logarithmically_with_bound(self):
        small = DeterministicWave(epsilon=0.1, window=1000, max_arrivals=1_000)
        large = DeterministicWave(epsilon=0.1, window=1000, max_arrivals=1_000_000)
        assert small.num_levels < large.num_levels
        assert large.num_levels - small.num_levels <= 12


class TestAdd:
    def test_out_of_order_rejected(self):
        wave = DeterministicWave(epsilon=0.1, window=1000, max_arrivals=100)
        wave.add(10.0)
        with pytest.raises(OutOfOrderArrivalError):
            wave.add(9.0)

    def test_negative_count_rejected(self):
        wave = DeterministicWave(epsilon=0.1, window=1000, max_arrivals=100)
        with pytest.raises(ConfigurationError):
            wave.add(1.0, count=-2)

    def test_zero_count_noop(self):
        wave = DeterministicWave(epsilon=0.1, window=1000, max_arrivals=100)
        wave.add(1.0, count=0)
        assert wave.total_arrivals() == 0

    def test_bulk_count(self):
        wave = DeterministicWave(epsilon=0.1, window=1000, max_arrivals=100)
        wave.add(1.0, count=5)
        assert wave.total_arrivals() == 5

    def test_every_arrival_recorded_at_level_zero(self):
        wave = DeterministicWave(epsilon=0.5, window=1000, max_arrivals=100)
        for clock in [1.0, 2.0, 3.0]:
            wave.add(clock)
        level_zero = wave.levels_snapshot()[0]
        assert len(level_zero) == 3

    def test_level_capacity_enforced(self, rng):
        wave = DeterministicWave(epsilon=0.2, window=10**9, max_arrivals=100_000)
        for clock in make_arrivals(rng, 2_000, mean_gap=1.0):
            wave.add(clock)
        for level in wave.levels_snapshot():
            assert len(level) <= wave.per_level


class TestEstimate:
    @pytest.mark.parametrize("epsilon", [0.05, 0.1, 0.2])
    @pytest.mark.parametrize("range_length", [100, 1_000, 10_000])
    def test_relative_error_bound(self, rng, epsilon, range_length):
        window = 50_000.0
        wave = DeterministicWave(epsilon=epsilon, window=window, max_arrivals=20_000)
        exact = ExactWindowCounter(window=window)
        for clock in make_arrivals(rng, 8_000, mean_gap=5.0):
            wave.add(clock)
            exact.add(clock)
        now = wave.last_clock
        estimate = wave.estimate(range_length, now=now)
        truth = exact.estimate(range_length, now=now)
        assert abs(estimate - truth) <= epsilon * truth + 1.0

    def test_never_overestimates(self, rng):
        """The wave estimator counts back from a retained checkpoint: it can
        only miss arrivals between the true range start and the checkpoint,
        never invent extra ones."""
        wave = DeterministicWave(epsilon=0.1, window=50_000, max_arrivals=20_000)
        exact = ExactWindowCounter(window=50_000)
        for clock in make_arrivals(rng, 5_000, mean_gap=4.0):
            wave.add(clock)
            exact.add(clock)
        now = wave.last_clock
        for range_length in (10, 100, 1_000, 10_000, 50_000):
            assert wave.estimate(range_length, now=now) <= exact.estimate(range_length, now=now)

    def test_empty_wave_estimates_zero(self):
        wave = DeterministicWave(epsilon=0.1, window=1000, max_arrivals=100)
        assert wave.estimate(100, now=10.0) == 0.0

    def test_estimate_monotone_in_range(self, rng):
        wave = DeterministicWave(epsilon=0.1, window=100_000, max_arrivals=20_000)
        for clock in make_arrivals(rng, 3_000, mean_gap=3.0):
            wave.add(clock)
        now = wave.last_clock
        estimates = [wave.estimate(r, now=now) for r in (10, 100, 1_000, 10_000)]
        assert estimates == sorted(estimates)


class TestExpiry:
    def test_expired_checkpoints_dropped(self):
        wave = DeterministicWave(epsilon=0.1, window=100, max_arrivals=1_000)
        wave.add(0.0)
        wave.add(500.0)
        wave.expire(now=500.0)
        for level in wave.levels_snapshot():
            for checkpoint in level:
                assert checkpoint.clock > 400.0

    def test_window_slides(self, rng):
        window = 200.0
        wave = DeterministicWave(epsilon=0.1, window=window, max_arrivals=10_000)
        exact = ExactWindowCounter(window=window)
        clock = 0.0
        for _ in range(5_000):
            clock += rng.random() * 2.0
            wave.add(clock)
            exact.add(clock)
        estimate = wave.estimate(None, now=clock)
        truth = exact.estimate(None, now=clock)
        assert abs(estimate - truth) <= 0.1 * truth + 1.0


class TestMemoryComparison:
    def test_memory_roughly_double_exponential_histogram(self, rng):
        """The paper observes ECM-EH needs about half the space of ECM-DW."""
        arrivals = make_arrivals(rng, 6_000, mean_gap=1.0)
        histogram = ExponentialHistogram(epsilon=0.1, window=10**9)
        wave = DeterministicWave(epsilon=0.1, window=10**9, max_arrivals=20_000)
        for clock in arrivals:
            histogram.add(clock)
            wave.add(clock)
        assert histogram.memory_bytes() < wave.memory_bytes()
        assert wave.memory_bytes() < 8 * histogram.memory_bytes()

    def test_worst_case_memory_formula(self):
        wave = DeterministicWave(epsilon=0.1, window=1000, max_arrivals=10_000)
        assert wave.memory_bytes() <= wave.memory_bytes_worst_case()

    def test_repr(self):
        wave = DeterministicWave(epsilon=0.1, window=1000, max_arrivals=100)
        assert "DeterministicWave" in repr(wave)
