"""Serialized-state equality of the bulk merge layer vs the replay reference.

The vectorized merges (``bulk_merge_exponential_histograms``,
``bulk_merge_deterministic_waves`` and the NumPy-ordered randomized-wave
sample union) promise *byte-identical* synopsis state relative to the
replay-based reference algorithms.  These tests drive varied workloads — int
and float clocks, tied clocks, expiring windows that defeat the deferred
cascade, degenerate inputs — through both implementations and compare the
full serialized wire format.
"""

from __future__ import annotations

import random

import pytest

from repro.core.errors import ConfigurationError, IncompatibleSketchError, WindowModelError
from repro.serialization import dumps
from repro.windows import (
    DeterministicWave,
    ExponentialHistogram,
    RandomizedWave,
    WindowModel,
    bulk_merge_deterministic_waves,
    bulk_merge_exponential_histograms,
    merge_deterministic_waves,
    merge_exponential_histograms,
)


def make_clocks(rng: random.Random, count: int, int_clocks: bool, mean_gap: float = 4.0):
    """Monotone clocks with frequent ties (ties stress sort stability)."""
    clock = 0 if int_clocks else 0.0
    out = []
    for _ in range(count):
        if int_clocks:
            clock += rng.choice([0, 0, 1, 2, 5])
        else:
            clock += rng.choice([0.0, 0.0, rng.random() * mean_gap])
        out.append(clock)
    return out


def build_histograms(rng, num, count, window, epsilon=0.05, int_clocks=False):
    histograms = []
    for _ in range(num):
        histogram = ExponentialHistogram(epsilon=epsilon, window=window)
        for clock in make_clocks(rng, count, int_clocks):
            histogram.add(clock)
        histograms.append(histogram)
    return histograms


def build_waves(rng, num, count, window, epsilon=0.05, int_clocks=False):
    waves = []
    for _ in range(num):
        wave = DeterministicWave(epsilon=epsilon, window=window, max_arrivals=4 * count)
        for clock in make_clocks(rng, count, int_clocks):
            wave.add(clock)
        waves.append(wave)
    return waves


class TestBulkHistogramMerge:
    @pytest.mark.parametrize("int_clocks", [False, True])
    @pytest.mark.parametrize("window", [1e6, 800.0])
    def test_matches_replay_reference(self, int_clocks, window):
        # The small window forces expiry during the replay, which disables the
        # deferred-cascade fast path and exercises the exact fallback.
        rng = random.Random(7)
        histograms = build_histograms(rng, 6, 1_500, window, int_clocks=int_clocks)
        reference = merge_exponential_histograms(histograms)
        bulk = bulk_merge_exponential_histograms(histograms)
        assert dumps(bulk) == dumps(reference)

    def test_custom_epsilon_prime(self):
        rng = random.Random(11)
        histograms = build_histograms(rng, 3, 800, 1e6)
        reference = merge_exponential_histograms(histograms, epsilon_prime=0.02)
        bulk = bulk_merge_exponential_histograms(histograms, epsilon_prime=0.02)
        assert dumps(bulk) == dumps(reference)
        assert bulk.epsilon == 0.02

    def test_single_input_and_empty_inputs(self):
        rng = random.Random(3)
        (histogram,) = build_histograms(rng, 1, 400, 1e6)
        assert dumps(bulk_merge_exponential_histograms([histogram])) == dumps(
            merge_exponential_histograms([histogram])
        )
        empty = ExponentialHistogram(epsilon=0.1, window=1e6)
        assert dumps(bulk_merge_exponential_histograms([empty, empty])) == dumps(
            merge_exponential_histograms([empty, empty])
        )

    def test_empty_collection_rejected(self):
        with pytest.raises(ConfigurationError):
            bulk_merge_exponential_histograms([])

    def test_count_based_rejected(self):
        histogram = ExponentialHistogram(epsilon=0.1, window=100, model=WindowModel.COUNT_BASED)
        with pytest.raises(WindowModelError):
            bulk_merge_exponential_histograms([histogram])

    def test_mismatched_windows_rejected(self):
        one = ExponentialHistogram(epsilon=0.1, window=100.0)
        other = ExponentialHistogram(epsilon=0.1, window=200.0)
        with pytest.raises(IncompatibleSketchError):
            bulk_merge_exponential_histograms([one, other])


class TestBulkWaveMerge:
    @pytest.mark.parametrize("int_clocks", [False, True])
    @pytest.mark.parametrize("window", [1e6, 800.0])
    def test_matches_replay_reference(self, int_clocks, window):
        rng = random.Random(13)
        waves = build_waves(rng, 5, 1_200, window, int_clocks=int_clocks)
        reference = merge_deterministic_waves(waves)
        bulk = bulk_merge_deterministic_waves(waves)
        assert dumps(bulk) == dumps(reference)

    def test_explicit_parameters(self):
        rng = random.Random(17)
        waves = build_waves(rng, 3, 600, 1e6)
        reference = merge_deterministic_waves(waves, epsilon_prime=0.03, max_arrivals=50_000)
        bulk = bulk_merge_deterministic_waves(waves, epsilon_prime=0.03, max_arrivals=50_000)
        assert dumps(bulk) == dumps(reference)

    def test_empty_collection_rejected(self):
        with pytest.raises(ConfigurationError):
            bulk_merge_deterministic_waves([])

    def test_count_based_rejected(self):
        wave = DeterministicWave(
            epsilon=0.1, window=100, max_arrivals=1_000, model=WindowModel.COUNT_BASED
        )
        with pytest.raises(WindowModelError):
            bulk_merge_deterministic_waves([wave])


class TestWaveBulkLoad:
    """DeterministicWave.add_batch (arithmetic bulk path) vs scalar adds."""

    @pytest.mark.parametrize("int_clocks", [False, True])
    @pytest.mark.parametrize("window", [1e6, 300.0])
    def test_counted_batch_matches_scalar(self, int_clocks, window):
        rng = random.Random(23)
        clocks = make_clocks(rng, 900, int_clocks)
        counts = [rng.choice([0, 1, 1, 2, 7]) for _ in clocks]
        scalar = DeterministicWave(epsilon=0.08, window=window, max_arrivals=20_000)
        for clock, count in zip(clocks, counts, strict=False):
            scalar.add(clock, count)
        batched = DeterministicWave(epsilon=0.08, window=window, max_arrivals=20_000)
        batched.add_batch(clocks, counts)
        assert dumps(batched) == dumps(scalar)

    def test_batch_onto_existing_state(self):
        # The bulk path must also be exact when the wave already holds
        # checkpoints (ranks continue from the pre-existing total).
        rng = random.Random(29)
        first = make_clocks(rng, 400, False)
        second = [first[-1] + clock for clock in make_clocks(rng, 400, False)]
        scalar = DeterministicWave(epsilon=0.1, window=600.0, max_arrivals=10_000)
        batched = DeterministicWave(epsilon=0.1, window=600.0, max_arrivals=10_000)
        for clock in first:
            scalar.add(clock)
            batched.add(clock)
        for clock in second:
            scalar.add(clock)
        batched.add_batch(second)
        assert dumps(batched) == dumps(scalar)

    def test_all_zero_counts_is_a_no_op(self):
        wave = DeterministicWave(epsilon=0.1, window=100.0, max_arrivals=100)
        wave.add(5.0)
        before = dumps(wave)
        wave.add_batch([6.0, 7.0], [0, 0])
        assert dumps(wave) == before

    def test_object_dtype_clocks_fall_back_to_scalar(self):
        # Clocks NumPy cannot hold natively (ints >= 2**63 become an
        # object-dtype array) must take the scalar path, not crash.
        clocks = [2**70, 2**70 + 3, 2**70 + 7]
        scalar = DeterministicWave(epsilon=0.2, window=100.0, max_arrivals=100)
        for clock in clocks:
            scalar.add(clock, 2)
        batched = DeterministicWave(epsilon=0.2, window=100.0, max_arrivals=100)
        batched.add_batch(clocks, [2, 2, 2])
        assert dumps(batched) == dumps(scalar)

        scalar_eh = ExponentialHistogram(epsilon=0.2, window=100.0)
        for clock in clocks:
            scalar_eh.add(clock, 2)
        batched_eh = ExponentialHistogram(epsilon=0.2, window=100.0)
        batched_eh.add_batch(clocks, [2, 2, 2])
        assert dumps(batched_eh) == dumps(scalar_eh)


class TestRandomizedWaveUnion:
    def build_waves(self, num=4, count=1_500, window=50_000.0):
        waves = []
        for tag in range(num):
            rng = random.Random(100 + tag)
            wave = RandomizedWave(
                epsilon=0.15, delta=0.15, window=window, max_arrivals=20_000, stream_tag=tag
            )
            for clock in make_clocks(rng, count, False):
                wave.add(clock)
            waves.append(wave)
        return waves

    def test_vectorized_union_matches_python_reference(self):
        waves = self.build_waves()
        vectorized = RandomizedWave.merged(waves, vectorized=True)
        reference = RandomizedWave.merged(waves, vectorized=False)
        assert dumps(vectorized) == dumps(reference)

    def test_union_with_capacity_pressure(self):
        # A coarse epsilon keeps per-level capacity tiny, so the union has to
        # trim samples and advance capacity horizons in both implementations.
        waves = []
        for tag in range(3):
            rng = random.Random(200 + tag)
            wave = RandomizedWave(
                epsilon=0.9, delta=0.3, window=1e6, max_arrivals=8_000, stream_tag=tag
            )
            for clock in make_clocks(rng, 2_000, False):
                wave.add(clock)
            waves.append(wave)
        assert dumps(RandomizedWave.merged(waves, vectorized=True)) == dumps(
            RandomizedWave.merged(waves, vectorized=False)
        )
