"""Unit tests for the randomized wave sliding-window counter."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError, IncompatibleSketchError
from repro.windows import ExponentialHistogram, RandomizedWave
from repro.windows.exact_window import ExactWindowCounter

from ..conftest import make_arrivals


class TestConstruction:
    def test_valid_construction(self):
        wave = RandomizedWave(epsilon=0.2, delta=0.1, window=1000, max_arrivals=10_000)
        assert wave.num_copies >= 1
        assert wave.per_level >= 4
        assert wave.num_levels >= 1

    def test_requires_positive_max_arrivals(self):
        with pytest.raises(ConfigurationError):
            RandomizedWave(epsilon=0.2, delta=0.1, window=1000, max_arrivals=0)

    def test_invalid_delta(self):
        with pytest.raises(ConfigurationError):
            RandomizedWave(epsilon=0.2, delta=1.5, window=1000, max_arrivals=100)

    def test_invalid_capacity_constant(self):
        with pytest.raises(ConfigurationError):
            RandomizedWave(epsilon=0.2, delta=0.1, window=1000, max_arrivals=100, capacity_constant=0)

    def test_per_level_quadratic_in_epsilon(self):
        coarse = RandomizedWave(epsilon=0.2, delta=0.1, window=1000, max_arrivals=1_000)
        fine = RandomizedWave(epsilon=0.05, delta=0.1, window=1000, max_arrivals=1_000)
        ratio = fine.per_level / coarse.per_level
        assert ratio == pytest.approx((0.2 / 0.05) ** 2, rel=0.1)

    def test_copies_grow_with_delta(self):
        loose = RandomizedWave(epsilon=0.2, delta=0.3, window=1000, max_arrivals=1_000)
        tight = RandomizedWave(epsilon=0.2, delta=0.01, window=1000, max_arrivals=1_000)
        assert tight.num_copies > loose.num_copies


class TestEstimate:
    @pytest.mark.parametrize("range_length", [500, 5_000, 50_000])
    def test_relative_error_reasonable(self, rng, range_length):
        epsilon = 0.1
        wave = RandomizedWave(epsilon=epsilon, delta=0.1, window=50_000, max_arrivals=20_000)
        exact = ExactWindowCounter(window=50_000)
        for clock in make_arrivals(rng, 8_000, mean_gap=5.0):
            wave.add(clock)
            exact.add(clock)
        now = wave.last_clock
        estimate = wave.estimate(range_length, now=now)
        truth = exact.estimate(range_length, now=now)
        # Probabilistic structure: allow a 3x-epsilon cushion to avoid flakes
        # while still catching the systematic-bias class of bugs.
        assert abs(estimate - truth) <= 3 * epsilon * truth + 2.0

    def test_small_ranges_exact_when_level_zero_covers(self, rng):
        wave = RandomizedWave(epsilon=0.2, delta=0.1, window=50_000, max_arrivals=10_000)
        exact = ExactWindowCounter(window=50_000)
        arrivals = make_arrivals(rng, 50, mean_gap=5.0)
        for clock in arrivals:
            wave.add(clock)
            exact.add(clock)
        now = wave.last_clock
        # Few arrivals: level 0 never overflowed, so estimates are exact.
        assert wave.estimate(100, now=now) == exact.estimate(100, now=now)

    def test_empty_wave_estimates_zero(self):
        wave = RandomizedWave(epsilon=0.2, delta=0.1, window=1000, max_arrivals=100)
        assert wave.estimate(100, now=10.0) == 0.0

    def test_negative_count_rejected(self):
        wave = RandomizedWave(epsilon=0.2, delta=0.1, window=1000, max_arrivals=100)
        with pytest.raises(ConfigurationError):
            wave.add(1.0, count=-1)


class TestMerge:
    def _make_pair(self, rng, count=4_000):
        wave_a = RandomizedWave(epsilon=0.15, delta=0.1, window=50_000, max_arrivals=20_000, stream_tag=1)
        wave_b = RandomizedWave(epsilon=0.15, delta=0.1, window=50_000, max_arrivals=20_000, stream_tag=2)
        arrivals = []
        clock_a = clock_b = 0.0
        for _ in range(count):
            clock_a += rng.random() * 4.0
            clock_b += rng.random() * 4.0
            wave_a.add(clock_a)
            wave_b.add(clock_b)
            arrivals.extend([clock_a, clock_b])
        return wave_a, wave_b, arrivals

    def test_merge_counts_union(self, rng):
        wave_a, wave_b, arrivals = self._make_pair(rng)
        merged = RandomizedWave.merged([wave_a, wave_b])
        now = max(arrivals)
        for range_length in (1_000, 10_000, 40_000):
            truth = sum(1 for t in arrivals if now - range_length < t <= now)
            estimate = merged.estimate(range_length, now=now)
            assert abs(estimate - truth) <= 3 * 0.15 * truth + 2.0

    def test_merge_preserves_total_arrivals(self, rng):
        wave_a, wave_b, _ = self._make_pair(rng, count=500)
        merged = RandomizedWave.merged([wave_a, wave_b])
        assert merged.total_arrivals() == wave_a.total_arrivals() + wave_b.total_arrivals()

    def test_merge_requires_identical_parameters(self):
        wave_a = RandomizedWave(epsilon=0.2, delta=0.1, window=1000, max_arrivals=100)
        wave_b = RandomizedWave(epsilon=0.1, delta=0.1, window=1000, max_arrivals=100)
        with pytest.raises(IncompatibleSketchError):
            wave_a.merge_inplace([wave_b])

    def test_merge_requires_identical_seed(self):
        wave_a = RandomizedWave(epsilon=0.2, delta=0.1, window=1000, max_arrivals=100, seed=1)
        wave_b = RandomizedWave(epsilon=0.2, delta=0.1, window=1000, max_arrivals=100, seed=2)
        with pytest.raises(IncompatibleSketchError):
            RandomizedWave.merged([wave_a, wave_b])

    def test_merge_empty_list_rejected(self):
        with pytest.raises(ConfigurationError):
            RandomizedWave.merged([])

    def test_merge_respects_per_level_capacity(self, rng):
        wave_a, wave_b, _ = self._make_pair(rng, count=3_000)
        merged = RandomizedWave.merged([wave_a, wave_b])
        for copy in merged._copies:
            for level in copy.levels:
                assert len(level) <= merged.per_level


class TestMemoryComparison:
    def test_memory_order_of_magnitude_above_exponential_histogram(self, rng):
        """The quadratic 1/eps^2 dependence must show up as a large gap."""
        arrivals = make_arrivals(rng, 6_000, mean_gap=1.0)
        histogram = ExponentialHistogram(epsilon=0.1, window=10**9)
        wave = RandomizedWave(epsilon=0.1, delta=0.1, window=10**9, max_arrivals=20_000)
        for clock in arrivals:
            histogram.add(clock)
            wave.add(clock)
        assert wave.memory_bytes() >= 10 * histogram.memory_bytes()

    def test_repr(self):
        wave = RandomizedWave(epsilon=0.2, delta=0.1, window=1000, max_arrivals=100)
        assert "RandomizedWave" in repr(wave)
