"""Edge-case coverage for the query layer that the main suites do not hit."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CounterType
from repro.core.ecm_sketch import ECMSketch
from repro.core.errors import EmptyStructureError, WindowModelError
from repro.queries import FrequentItemsTracker, HierarchicalECMSketch
from repro.windows import WindowModel


class TestAlternativeCounterBackends:
    def test_tracker_with_deterministic_wave_counters(self):
        tracker = FrequentItemsTracker(
            epsilon=0.1, delta=0.1, window=1_000.0, universe_bits=6,
            counter_type=CounterType.DETERMINISTIC_WAVE, max_arrivals=5_000,
        )
        for clock in range(200):
            tracker.add("/hot", clock=float(clock))
            tracker.add("/cold-%d" % (clock % 20), clock=float(clock))
        hitters = tracker.heavy_hitters(phi=0.3, now=199.0)
        assert "/hot" in hitters

    def test_hierarchical_with_randomized_wave_counters(self):
        sketch = HierarchicalECMSketch(
            universe_bits=5, epsilon=0.2, delta=0.2, window=1_000.0,
            counter_type=CounterType.RANDOMIZED_WAVE, max_arrivals=2_000,
        )
        for clock in range(300):
            sketch.add(clock % 32, clock=float(clock))
        assert sketch.range_query(0, 31, now=299.0) >= 250


class TestWindowModelInteractions:
    def test_count_based_stack_refuses_aggregation(self):
        stacks = []
        for tag in range(2):
            stack = HierarchicalECMSketch(
                universe_bits=4, epsilon=0.2, delta=0.2, window=100,
                model=WindowModel.COUNT_BASED, stream_tag=tag,
            )
            stack.add(3, clock=1.0)
            stacks.append(stack)
        with pytest.raises(WindowModelError):
            HierarchicalECMSketch.aggregate(stacks)

    def test_count_based_tracker_frequency(self):
        tracker = FrequentItemsTracker(
            epsilon=0.1, delta=0.1, window=50, universe_bits=7,
            model=WindowModel.COUNT_BASED,
        )
        for index in range(1, 201):
            tracker.add("even" if index % 2 == 0 else "odd-%d" % (index % 40), clock=float(index))
        # Of the last 50 arrivals, ~25 are "even".
        estimate = tracker.frequency("even", range_length=50, now=200.0)
        assert abs(estimate - 25) <= 0.1 * 50 + 2


class TestQuantileAndRangeBoundaries:
    def test_quantile_of_point_mass(self):
        sketch = HierarchicalECMSketch(universe_bits=6, epsilon=0.1, delta=0.1, window=1_000.0)
        for clock in range(100):
            sketch.add(42, clock=float(clock))
        assert sketch.quantile(0.0, now=99.0) <= 42
        assert sketch.quantile(0.5, now=99.0) == 42
        assert sketch.quantile(1.0, now=99.0) == 42

    def test_range_query_outside_observed_keys_is_small(self):
        sketch = HierarchicalECMSketch(universe_bits=8, epsilon=0.05, delta=0.05, window=1_000.0)
        for clock in range(200):
            sketch.add(clock % 16, clock=float(clock))
        assert sketch.range_query(200, 255, now=199.0) <= 0.2 * 200

    def test_heavy_hitters_on_empty_sketch(self):
        sketch = HierarchicalECMSketch(universe_bits=4, epsilon=0.2, delta=0.2, window=100.0)
        assert sketch.heavy_hitters(phi=0.5, absolute_threshold=1.0) == {}


class TestEmptyWindowRegressions:
    """The zero-threshold blowup: an empty window must never enumerate the universe."""

    def _count_point_queries(self, monkeypatch):
        calls = {"count": 0}
        original_scalar = ECMSketch.point_query
        original_batched = ECMSketch.point_query_many

        def counting_scalar(self, item, range_length=None, now=None):
            calls["count"] += 1
            return original_scalar(self, item, range_length, now)

        def counting_batched(self, items, range_length=None, now=None):
            calls["count"] += len(items)
            return original_batched(self, items, range_length, now)

        monkeypatch.setattr(ECMSketch, "point_query", counting_scalar)
        monkeypatch.setattr(ECMSketch, "point_query_many", counting_batched)
        return calls

    @pytest.mark.parametrize("batched", [True, False], ids=["batched", "scalar"])
    def test_empty_16_bit_stack_returns_nothing_without_descending(
        self, monkeypatch, batched
    ):
        # Regression: the threshold phi * ||a_r||_1 is 0.0 on an empty window,
        # and `estimate < threshold` never pruned, so heavy_hitters used to
        # enumerate all 65,536 keys of a 16-bit universe (~0.5 s).  It must
        # now return {} without a single point query.
        stack = HierarchicalECMSketch(
            universe_bits=16, epsilon=0.1, delta=0.1, window=1_000.0
        )
        calls = self._count_point_queries(monkeypatch)
        assert stack.heavy_hitters(phi=0.1, batched=batched) == {}
        assert calls["count"] == 0

    def test_window_that_slid_past_all_arrivals_returns_nothing(self):
        stack = HierarchicalECMSketch(
            universe_bits=16, epsilon=0.1, delta=0.1, window=10.0
        )
        for clock in range(5):
            stack.add(42, clock=float(clock))
        # Everything has expired from [now - 10, now] at now = 1000.
        assert stack.heavy_hitters(phi=0.5, now=1_000.0) == {}

    @pytest.mark.parametrize("threshold", [0, 0.0, -1.0])
    def test_non_positive_absolute_threshold_returns_nothing(self, monkeypatch, threshold):
        stack = HierarchicalECMSketch(
            universe_bits=16, epsilon=0.1, delta=0.1, window=1_000.0
        )
        stack.add(3, clock=1.0)
        calls = self._count_point_queries(monkeypatch)
        assert stack.heavy_hitters(phi=0.5, absolute_threshold=threshold) == {}
        assert calls["count"] == 0

    def test_tracker_empty_window_returns_nothing(self):
        tracker = FrequentItemsTracker(
            epsilon=0.1, delta=0.1, window=1_000.0, universe_bits=16
        )
        assert tracker.heavy_hitters(phi=0.1) == {}
        assert tracker.heavy_hitters(phi=0.5, absolute_threshold=0) == {}


class TestNumpyIntegerKeys:
    def test_add_accepts_numpy_integers(self):
        from repro.serialization import dumps

        via_numpy = HierarchicalECMSketch(
            universe_bits=8, epsilon=0.1, delta=0.1, window=100.0
        )
        via_python = HierarchicalECMSketch(
            universe_bits=8, epsilon=0.1, delta=0.1, window=100.0
        )
        batch = np.array([7, 200, 7], dtype=np.int64)
        for position, key in enumerate(batch):
            via_numpy.add(key, clock=float(position))  # np.int64 scalars
        for position, key in enumerate([7, 200, 7]):
            via_python.add(key, clock=float(position))
        assert dumps(via_numpy) == dumps(via_python)
        assert via_numpy.point_query(np.int64(7), now=2.0) == via_python.point_query(7, now=2.0)

    def test_out_of_range_numpy_keys_still_rejected(self):
        from repro.core.errors import ConfigurationError

        stack = HierarchicalECMSketch(universe_bits=4, epsilon=0.2, delta=0.2, window=100.0)
        with pytest.raises(ConfigurationError):
            stack.add(np.int64(16), clock=1.0)
        with pytest.raises(ConfigurationError):
            stack.add(np.int64(-1), clock=1.0)
        with pytest.raises(ConfigurationError):
            stack.add(7.5, clock=1.0)  # type: ignore[arg-type]


class TestEmptyWindowQuantiles:
    def test_quantile_of_empty_stack_raises(self):
        stack = HierarchicalECMSketch(universe_bits=6, epsilon=0.1, delta=0.1, window=100.0)
        # Regression: fraction 0 on an empty stack silently returned key 0.
        with pytest.raises(EmptyStructureError):
            stack.quantile(0.0)
        with pytest.raises(EmptyStructureError):
            stack.quantile(0.5)
        with pytest.raises(EmptyStructureError):
            stack.quantiles([0.25, 0.75])

    def test_quantile_of_expired_window_raises(self):
        stack = HierarchicalECMSketch(universe_bits=6, epsilon=0.1, delta=0.1, window=10.0)
        for clock in range(5):
            stack.add(9, clock=float(clock))
        with pytest.raises(EmptyStructureError):
            stack.quantile(0.5, now=1_000.0)

    def test_quantile_still_works_on_populated_stack(self):
        stack = HierarchicalECMSketch(universe_bits=6, epsilon=0.1, delta=0.1, window=1_000.0)
        for clock in range(50):
            stack.add(20, clock=float(clock))
        assert stack.quantile(0.5, now=49.0) == 20
        assert stack.quantiles([0.5, 1.0], now=49.0) == [20, 20]
