"""Edge-case coverage for the query layer that the main suites do not hit."""

from __future__ import annotations

import pytest

from repro.core import CounterType
from repro.core.errors import WindowModelError
from repro.queries import FrequentItemsTracker, HierarchicalECMSketch
from repro.windows import WindowModel


class TestAlternativeCounterBackends:
    def test_tracker_with_deterministic_wave_counters(self):
        tracker = FrequentItemsTracker(
            epsilon=0.1, delta=0.1, window=1_000.0, universe_bits=6,
            counter_type=CounterType.DETERMINISTIC_WAVE, max_arrivals=5_000,
        )
        for clock in range(200):
            tracker.add("/hot", clock=float(clock))
            tracker.add("/cold-%d" % (clock % 20), clock=float(clock))
        hitters = tracker.heavy_hitters(phi=0.3, now=199.0)
        assert "/hot" in hitters

    def test_hierarchical_with_randomized_wave_counters(self):
        sketch = HierarchicalECMSketch(
            universe_bits=5, epsilon=0.2, delta=0.2, window=1_000.0,
            counter_type=CounterType.RANDOMIZED_WAVE, max_arrivals=2_000,
        )
        for clock in range(300):
            sketch.add(clock % 32, clock=float(clock))
        assert sketch.range_query(0, 31, now=299.0) >= 250


class TestWindowModelInteractions:
    def test_count_based_stack_refuses_aggregation(self):
        stacks = []
        for tag in range(2):
            stack = HierarchicalECMSketch(
                universe_bits=4, epsilon=0.2, delta=0.2, window=100,
                model=WindowModel.COUNT_BASED, stream_tag=tag,
            )
            stack.add(3, clock=1.0)
            stacks.append(stack)
        with pytest.raises(WindowModelError):
            HierarchicalECMSketch.aggregate(stacks)

    def test_count_based_tracker_frequency(self):
        tracker = FrequentItemsTracker(
            epsilon=0.1, delta=0.1, window=50, universe_bits=7,
            model=WindowModel.COUNT_BASED,
        )
        for index in range(1, 201):
            tracker.add("even" if index % 2 == 0 else "odd-%d" % (index % 40), clock=float(index))
        # Of the last 50 arrivals, ~25 are "even".
        estimate = tracker.frequency("even", range_length=50, now=200.0)
        assert abs(estimate - 25) <= 0.1 * 50 + 2


class TestQuantileAndRangeBoundaries:
    def test_quantile_of_point_mass(self):
        sketch = HierarchicalECMSketch(universe_bits=6, epsilon=0.1, delta=0.1, window=1_000.0)
        for clock in range(100):
            sketch.add(42, clock=float(clock))
        assert sketch.quantile(0.0, now=99.0) <= 42
        assert sketch.quantile(0.5, now=99.0) == 42
        assert sketch.quantile(1.0, now=99.0) == 42

    def test_range_query_outside_observed_keys_is_small(self):
        sketch = HierarchicalECMSketch(universe_bits=8, epsilon=0.05, delta=0.05, window=1_000.0)
        for clock in range(200):
            sketch.add(clock % 16, clock=float(clock))
        assert sketch.range_query(200, 255, now=199.0) <= 0.2 * 200

    def test_heavy_hitters_on_empty_sketch(self):
        sketch = HierarchicalECMSketch(universe_bits=4, epsilon=0.2, delta=0.2, window=100.0)
        assert sketch.heavy_hitters(phi=0.5, absolute_threshold=1.0) == {}
