"""Unit tests (including property tests) for the dyadic-range machinery."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ConfigurationError
from repro.queries import children_of, dyadic_cover, prefix_of, prefix_range, validate_universe_bits


class TestPrefixes:
    def test_prefix_of(self):
        assert prefix_of(13, 0) == 13
        assert prefix_of(13, 1) == 6
        assert prefix_of(13, 2) == 3
        assert prefix_of(13, 3) == 1

    def test_prefix_of_invalid(self):
        with pytest.raises(ConfigurationError):
            prefix_of(-1, 0)
        with pytest.raises(ConfigurationError):
            prefix_of(1, -1)

    def test_prefix_range(self):
        assert prefix_range(3, 2) == (12, 15)
        assert prefix_range(0, 4) == (0, 15)
        assert prefix_range(7, 0) == (7, 7)

    def test_children_partition_parent(self):
        for prefix in range(8):
            for level in range(1, 5):
                lo, hi = prefix_range(prefix, level)
                children = children_of(prefix, level)
                covered = []
                for child_prefix, child_level in children:
                    child_lo, child_hi = prefix_range(child_prefix, child_level)
                    covered.extend(range(child_lo, child_hi + 1))
                assert covered == list(range(lo, hi + 1))

    def test_leaf_has_no_children(self):
        assert children_of(5, 0) == []

    def test_validate_universe_bits(self):
        assert validate_universe_bits(16) == 16
        with pytest.raises(ConfigurationError):
            validate_universe_bits(0)
        with pytest.raises(ConfigurationError):
            validate_universe_bits(63)


class TestDyadicCover:
    def test_full_universe_is_two_blocks_or_less(self):
        cover = list(dyadic_cover(0, 15, 4))
        covered = set()
        for prefix, level in cover:
            lo, hi = prefix_range(prefix, level)
            covered.update(range(lo, hi + 1))
        assert covered == set(range(16))
        assert len(cover) <= 2

    def test_single_key(self):
        assert list(dyadic_cover(5, 5, 4)) == [(5, 0)]

    def test_empty_interval(self):
        assert list(dyadic_cover(7, 3, 4)) == []

    def test_out_of_universe_rejected(self):
        with pytest.raises(ConfigurationError):
            list(dyadic_cover(0, 16, 4))
        with pytest.raises(ConfigurationError):
            list(dyadic_cover(-1, 3, 4))

    @settings(max_examples=200, deadline=None)
    @given(data=st.data())
    def test_cover_is_exact_and_disjoint(self, data):
        universe_bits = data.draw(st.integers(min_value=1, max_value=12))
        size = 1 << universe_bits
        lo = data.draw(st.integers(min_value=0, max_value=size - 1))
        hi = data.draw(st.integers(min_value=lo, max_value=size - 1))
        cover = list(dyadic_cover(lo, hi, universe_bits))
        covered = []
        for prefix, level in cover:
            block_lo, block_hi = prefix_range(prefix, level)
            covered.extend(range(block_lo, block_hi + 1))
        assert sorted(covered) == list(range(lo, hi + 1))
        assert len(covered) == len(set(covered))
        # At most 2 blocks per level of the decomposition.
        assert len(cover) <= 2 * universe_bits
