"""Unit tests for the hierarchical (dyadic) ECM-sketch stack."""

from __future__ import annotations


import pytest

from repro.core.errors import ConfigurationError
from repro.queries import HierarchicalECMSketch


WINDOW = 10_000.0


def _build(universe_bits=8, epsilon=0.05, seed=0):
    return HierarchicalECMSketch(
        universe_bits=universe_bits, epsilon=epsilon, delta=0.05, window=WINDOW, seed=seed
    )


def _feed_zipfish(sketch, rng, count=3_000, domain=200):
    """Feed a skewed integer stream; returns exact frequencies and last clock."""
    truth = {}
    clock = 0.0
    for _ in range(count):
        clock += rng.random() * (WINDOW / count / 2)
        key = min(int(rng.paretovariate(1.2)) - 1, domain - 1)
        sketch.add(key, clock)
        truth[key] = truth.get(key, 0) + 1
    return truth, clock


class TestConstruction:
    def test_levels_match_universe_bits(self):
        sketch = _build(universe_bits=10)
        assert sketch.universe_size == 1024
        assert sketch.level_sketch(0) is not sketch.level_sketch(1)

    def test_invalid_universe(self):
        with pytest.raises(ConfigurationError):
            _build(universe_bits=0)

    def test_key_outside_universe_rejected(self):
        sketch = _build(universe_bits=4)
        with pytest.raises(ConfigurationError):
            sketch.add(16, clock=1.0)
        with pytest.raises(ConfigurationError):
            sketch.add(-1, clock=1.0)
        with pytest.raises(ConfigurationError):
            sketch.add("not-an-int", clock=1.0)  # type: ignore[arg-type]

    def test_memory_is_sum_of_levels(self):
        sketch = _build(universe_bits=4)
        sketch.add(3, clock=1.0)
        assert sketch.memory_bytes() == sum(
            sketch.level_sketch(level).memory_bytes() for level in range(4)
        )


class TestQueries:
    def test_point_query_counts(self):
        sketch = _build()
        for clock in range(50):
            sketch.add(7, clock=float(clock))
        assert sketch.point_query(7, now=49.0) >= 50.0
        assert sketch.total_arrivals() == 50

    def test_range_query_matches_exact_on_small_universe(self, rng):
        sketch = _build(universe_bits=6, epsilon=0.02)
        truth, now = _feed_zipfish(sketch, rng, count=2_000, domain=64)
        for lo, hi in [(0, 63), (0, 7), (8, 40), (13, 13)]:
            exact = sum(count for key, count in truth.items() if lo <= key <= hi)
            estimate = sketch.range_query(lo, hi, now=now)
            assert abs(estimate - exact) <= 0.15 * sketch.total_arrivals() + 1

    def test_estimate_total_close(self, rng):
        sketch = _build(universe_bits=8, epsilon=0.05)
        truth, now = _feed_zipfish(sketch, rng, count=2_000)
        total = sum(truth.values())
        assert abs(sketch.estimate_total(now=now) - total) <= 0.2 * total

    def test_prefix_query_level_bounds(self):
        sketch = _build(universe_bits=4)
        sketch.add(3, clock=1.0)
        with pytest.raises(ConfigurationError):
            sketch.prefix_query(0, level=4)

    def test_sliding_window_restriction(self):
        sketch = _build(universe_bits=6, epsilon=0.05)
        for clock in range(100):
            sketch.add(5, clock=float(clock))
        recent = sketch.point_query(5, range_length=10.0, now=99.0)
        assert recent <= 10 * 1.3 + 1


class TestHeavyHitters:
    def test_detects_true_heavy_hitter(self, rng):
        sketch = _build(universe_bits=8, epsilon=0.02)
        clock = 0.0
        for index in range(2_000):
            clock += 1.0
            key = 42 if index % 3 == 0 else rng.randrange(256)
            sketch.add(key, clock)
        hitters = sketch.heavy_hitters(phi=0.2, now=clock)
        assert 42 in hitters

    def test_no_false_heavy_hitters_far_below_threshold(self, rng):
        sketch = _build(universe_bits=8, epsilon=0.02)
        truth, now = _feed_zipfish(sketch, rng, count=3_000, domain=256)
        total = sum(truth.values())
        phi = 0.1
        hitters = sketch.heavy_hitters(phi=phi, now=now)
        # Theorem 5: nothing with true frequency below (phi - eps) * total
        # should be reported (allowing the epsilon slack).
        for key in hitters:
            assert truth.get(key, 0) >= (phi - 0.05) * total

    def test_absolute_threshold(self):
        sketch = _build(universe_bits=6, epsilon=0.05)
        for clock in range(30):
            sketch.add(9, clock=float(clock))
            sketch.add(clock % 64, clock=float(clock))
        hitters = sketch.heavy_hitters(phi=0.0, absolute_threshold=25, now=29.0)
        assert 9 in hitters
        assert all(estimate >= 25 for estimate in hitters.values())

    def test_invalid_phi(self):
        sketch = _build(universe_bits=4)
        sketch.add(1, clock=1.0)
        with pytest.raises(ConfigurationError):
            sketch.heavy_hitters(phi=0.0)

    def test_heavy_hitters_respect_window(self):
        sketch = _build(universe_bits=6, epsilon=0.05)
        for clock in range(100):
            sketch.add(1, clock=float(clock))
        for clock in range(100, 130):
            sketch.add(2, clock=float(clock))
        recent = sketch.heavy_hitters(phi=0.6, range_length=30.0, now=129.0)
        assert 2 in recent
        assert 1 not in recent


class TestQuantiles:
    def test_quantiles_monotone(self, rng):
        sketch = _build(universe_bits=8, epsilon=0.03)
        _truth, now = _feed_zipfish(sketch, rng, count=2_500, domain=256)
        values = sketch.quantiles([0.1, 0.25, 0.5, 0.75, 0.9], now=now)
        assert values == sorted(values)

    def test_median_of_skewed_stream_is_small(self, rng):
        """A Pareto-like stream concentrates mass on small keys."""
        sketch = _build(universe_bits=8, epsilon=0.03)
        truth, now = _feed_zipfish(sketch, rng, count=2_500, domain=256)
        median = sketch.quantile(0.5, now=now)
        total = sum(truth.values())
        exact_below = sum(count for key, count in truth.items() if key <= median)
        assert exact_below >= 0.35 * total

    def test_invalid_fraction(self):
        sketch = _build(universe_bits=4)
        sketch.add(1, clock=1.0)
        with pytest.raises(ConfigurationError):
            sketch.quantile(-0.1)


class TestAggregation:
    def test_aggregate_counts_union(self, rng):
        stacks = [_build(universe_bits=6, epsilon=0.05, seed=9) for _ in range(3)]
        union_truth = {}
        now = 0.0
        for stack in stacks:
            clock = 0.0
            for _ in range(800):
                clock += rng.random() * 5.0
                key = rng.randrange(64)
                stack.add(key, clock)
                union_truth[key] = union_truth.get(key, 0) + 1
            now = max(now, clock)
        merged = HierarchicalECMSketch.aggregate(stacks)
        assert merged.total_arrivals() == sum(union_truth.values())
        total = sum(union_truth.values())
        for key in list(union_truth)[:20]:
            estimate = merged.point_query(key, now=now)
            assert abs(estimate - union_truth[key]) <= 0.3 * total + 1

    def test_aggregate_requires_compatibility(self):
        a = _build(universe_bits=4, seed=1)
        b = _build(universe_bits=4, seed=2)
        a.add(1, clock=1.0)
        b.add(1, clock=1.0)
        with pytest.raises(ConfigurationError):
            HierarchicalECMSketch.aggregate([a, b])

    def test_aggregate_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            HierarchicalECMSketch.aggregate([])

    def test_repr(self):
        assert "HierarchicalECMSketch" in repr(_build(universe_bits=4))
