"""Equivalence tests for the batched hierarchical query engine.

The batched APIs (``HierarchicalECMSketch.add_many`` / ``point_query_many`` /
``prefix_query_many``, the level-synchronized BFS heavy-hitter descent, the
shared-scan ``quantiles`` and ``FrequentItemsTracker.add_many``) promise
results — and, for ingest, *byte-identical* serialized state — equal to the
scalar reference paths.  These tests drive random integer and keyed streams
through both paths across all three counter types and both window models and
compare the full serialized wire format, the detection mappings and the query
answers.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CounterType
from repro.queries import FrequentItemsTracker, HierarchicalECMSketch
from repro.serialization import dumps
from repro.windows import WindowModel

ALL_COUNTER_TYPES = (
    CounterType.EXPONENTIAL_HISTOGRAM,
    CounterType.DETERMINISTIC_WAVE,
    CounterType.RANDOMIZED_WAVE,
)
ALL_MODELS = (WindowModel.TIME_BASED, WindowModel.COUNT_BASED)

UNIVERSE_BITS = 8


def make_stack(counter_type, model, universe_bits=UNIVERSE_BITS, epsilon=0.1):
    window = 600.0 if model is WindowModel.TIME_BASED else 600
    return HierarchicalECMSketch(
        universe_bits=universe_bits,
        epsilon=epsilon,
        delta=0.1,
        window=window,
        model=model,
        counter_type=counter_type,
        max_arrivals=10_000,
        seed=3,
    )


def make_integer_stream(rng: random.Random, count: int, model: WindowModel):
    """Random integer keys with repeated clocks and mixed (incl. zero) weights."""
    clock = 0.0 if model is WindowModel.TIME_BASED else 0
    keys, clocks, values = [], [], []
    for _ in range(count):
        if model is WindowModel.TIME_BASED:
            clock = clock + rng.choice([0.0, 0.5, rng.random() * 3.0])
        else:
            clock = clock + 1
        keys.append(rng.randrange(1 << UNIVERSE_BITS))
        clocks.append(clock)
        values.append(rng.choice([0, 1, 1, 1, 2, 3]))
    return keys, clocks, values


class TestBatchedIngestEquivalence:
    @pytest.mark.parametrize("counter_type", ALL_COUNTER_TYPES, ids=lambda c: c.value)
    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.value)
    def test_add_many_state_matches_scalar(self, counter_type, model):
        rng = random.Random(17)
        keys, clocks, values = make_integer_stream(rng, 400, model)
        scalar = make_stack(counter_type, model)
        batched = make_stack(counter_type, model)
        for key, clock, value in zip(keys, clocks, values, strict=False):
            scalar.add(key, clock, value)
        for start in range(0, len(keys), 96):
            stop = start + 96
            batched.add_many(
                np.asarray(keys[start:stop]), clocks[start:stop], values[start:stop]
            )
        assert dumps(batched) == dumps(scalar)
        assert batched.total_arrivals() == scalar.total_arrivals()

    def test_add_many_accepts_lists_and_arrays_identically(self):
        rng = random.Random(5)
        keys, clocks, _values = make_integer_stream(rng, 200, WindowModel.TIME_BASED)
        from_lists = make_stack(CounterType.EXPONENTIAL_HISTOGRAM, WindowModel.TIME_BASED)
        from_arrays = make_stack(CounterType.EXPONENTIAL_HISTOGRAM, WindowModel.TIME_BASED)
        from_lists.add_many(keys, clocks)
        from_arrays.add_many(np.asarray(keys), np.asarray(clocks))
        assert dumps(from_arrays) == dumps(from_lists)

    def test_add_many_numpy_values_serialize(self):
        stack = make_stack(CounterType.EXPONENTIAL_HISTOGRAM, WindowModel.TIME_BASED)
        stack.add_many(
            np.array([1, 2, 3]), [1.0, 2.0, 3.0], np.array([2, 0, 1], dtype=np.int64)
        )
        assert stack.total_arrivals() == 3
        dumps(stack)  # all state is JSON-serializable Python scalars

    def test_add_many_numpy_scalar_clocks_serialize(self):
        # A list assembled by iterating a NumPy array holds np.float64/np.int64
        # scalars; the stack must normalise them before they reach counters.
        reference = make_stack(CounterType.EXPONENTIAL_HISTOGRAM, WindowModel.TIME_BASED)
        reference.add_many([1, 2], [1.0, 2.0], [1, 2])
        stack = make_stack(CounterType.EXPONENTIAL_HISTOGRAM, WindowModel.TIME_BASED)
        stack.add_many(
            [1, 2],
            list(np.array([1.0, 2.0])),
            [np.int64(1), np.int64(2)],
        )
        assert dumps(stack) == dumps(reference)

    def test_add_many_validates_before_mutating(self):
        from repro.core.errors import ConfigurationError, OutOfOrderArrivalError

        stack = make_stack(CounterType.EXPONENTIAL_HISTOGRAM, WindowModel.TIME_BASED)
        stack.add_many([1, 2], [1.0, 2.0])
        before = dumps(stack)
        with pytest.raises(ConfigurationError):
            stack.add_many([1, 1 << UNIVERSE_BITS], [3.0, 4.0])  # key outside universe
        with pytest.raises(ConfigurationError):
            stack.add_many([1, 2], [3.0])  # length mismatch
        with pytest.raises(ConfigurationError):
            stack.add_many([1, 2], [3.0, 4.0], [1])  # values length mismatch
        with pytest.raises(ConfigurationError):
            stack.add_many(["a", "b"], [3.0, 4.0])  # non-integer keys
        with pytest.raises(OutOfOrderArrivalError):
            stack.add_many([1, 2], [5.0, 4.0])  # out-of-order clocks
        assert dumps(stack) == before

    def test_add_many_empty_batch_is_a_noop(self):
        stack = make_stack(CounterType.EXPONENTIAL_HISTOGRAM, WindowModel.TIME_BASED)
        before = dumps(stack)
        stack.add_many([], [])
        assert dumps(stack) == before


class TestBatchedQueryEquivalence:
    @pytest.fixture(scope="class")
    def fed_stack(self):
        rng = random.Random(23)
        stack = make_stack(CounterType.EXPONENTIAL_HISTOGRAM, WindowModel.TIME_BASED)
        keys, clocks, values = make_integer_stream(rng, 1_500, WindowModel.TIME_BASED)
        stack.add_many(np.asarray(keys), clocks, values)
        return stack, clocks[-1]

    def test_point_query_many_matches_scalar(self, fed_stack):
        stack, now = fed_stack
        keys = list(range(64)) + [255, 128]
        batched = stack.point_query_many(keys, now=now)
        assert batched == [stack.point_query(key, now=now) for key in keys]
        # Also across the small-batch cutoff boundary and with a range.
        assert stack.point_query_many(keys, range_length=50.0, now=now) == [
            stack.point_query(key, range_length=50.0, now=now) for key in keys
        ]
        assert stack.point_query_many(keys[:3], now=now) == [
            stack.point_query(key, now=now) for key in keys[:3]
        ]
        assert stack.point_query_many([], now=now) == []

    def test_prefix_query_many_matches_scalar(self, fed_stack):
        stack, now = fed_stack
        for level in (0, 3, UNIVERSE_BITS - 1):
            prefixes = list(range(1 << (UNIVERSE_BITS - level)))
            assert stack.prefix_query_many(prefixes, level, now=now) == [
                stack.prefix_query(prefix, level, now=now) for prefix in prefixes
            ]

    def test_prefix_query_many_validates_level(self, fed_stack):
        from repro.core.errors import ConfigurationError

        stack, now = fed_stack
        with pytest.raises(ConfigurationError):
            stack.prefix_query_many([0], UNIVERSE_BITS, now=now)

    @pytest.mark.parametrize("phi", [0.01, 0.05, 0.2, 0.9])
    def test_batched_descent_matches_scalar(self, fed_stack, phi):
        stack, now = fed_stack
        assert stack.heavy_hitters(phi=phi, now=now, batched=True) == stack.heavy_hitters(
            phi=phi, now=now, batched=False
        )

    def test_batched_descent_matches_scalar_in_range(self, fed_stack):
        stack, now = fed_stack
        batched = stack.heavy_hitters(phi=0.1, range_length=100.0, now=now, batched=True)
        scalar = stack.heavy_hitters(phi=0.1, range_length=100.0, now=now, batched=False)
        assert batched == scalar

    def test_batched_descent_with_absolute_threshold(self, fed_stack):
        stack, now = fed_stack
        for threshold in (5.0, 50.0, 1e9):
            assert stack.heavy_hitters(
                phi=0.0, absolute_threshold=threshold, now=now, batched=True
            ) == stack.heavy_hitters(
                phi=0.0, absolute_threshold=threshold, now=now, batched=False
            )

    def test_shared_scan_quantiles_match_scalar(self, fed_stack):
        stack, now = fed_stack
        fractions = [0.0, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0]
        assert stack.quantiles(fractions, now=now) == [
            stack.quantile(fraction, now=now) for fraction in fractions
        ]
        assert stack.quantiles(fractions, range_length=200.0, now=now) == [
            stack.quantile(fraction, range_length=200.0, now=now) for fraction in fractions
        ]


class TestGroupTestingGuarantee:
    """Property coverage of Theorem 5: recall of every true heavy hitter."""

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=63), min_size=50, max_size=250),
        st.sampled_from([0.1, 0.2, 0.3]),
    )
    def test_every_true_heavy_hitter_above_phi_plus_eps_is_reported(self, keys, phi):
        epsilon = 0.05
        stack = HierarchicalECMSketch(
            universe_bits=6, epsilon=epsilon, delta=0.01, window=1e6, seed=11
        )
        clocks = [float(index) for index in range(len(keys))]
        stack.add_many(np.asarray(keys), clocks)
        now = clocks[-1]
        total = len(keys)
        truth: dict = {}
        for key in keys:
            truth[key] = truth.get(key, 0) + 1
        detected = stack.heavy_hitters(phi=phi, now=now)
        scalar = stack.heavy_hitters(phi=phi, now=now, batched=False)
        assert detected == scalar
        # Point estimates never under-count by more than eps * total (w.h.p.),
        # so everything at or above (phi + eps) * total must be detected.
        for key, count in truth.items():
            if count >= (phi + epsilon) * total:
                assert key in detected, (
                    "true heavy hitter %d (%d/%d arrivals) missed at phi=%.2f"
                    % (key, count, total, phi)
                )


class TestTrackerBatchEquivalence:
    def test_add_many_state_matches_scalar(self):
        rng = random.Random(31)
        scalar = FrequentItemsTracker(
            epsilon=0.1, delta=0.1, window=1_000.0, universe_bits=7, seed=2
        )
        batched = FrequentItemsTracker(
            epsilon=0.1, delta=0.1, window=1_000.0, universe_bits=7, seed=2
        )
        keys = ["page-%d" % rng.randrange(60) for _ in range(500)]
        clocks = [float(index) for index in range(500)]
        values = [rng.choice([1, 1, 2]) for _ in range(500)]
        for key, clock, value in zip(keys, clocks, values, strict=False):
            scalar.add(key, clock, value)
        for start in range(0, 500, 128):
            stop = start + 128
            batched.add_many(keys[start:stop], clocks[start:stop], values[start:stop])
        assert dumps(batched) == dumps(scalar)
        assert batched.distinct_keys() == scalar.distinct_keys()
        now = clocks[-1]
        assert batched.heavy_hitters(phi=0.05, now=now) == scalar.heavy_hitters(
            phi=0.05, now=now, batched=False
        )

    def test_add_many_assigns_codes_in_first_appearance_order(self):
        tracker = FrequentItemsTracker(
            epsilon=0.2, delta=0.2, window=100.0, universe_bits=4
        )
        tracker.add_many(["c", "a", "c", "b"], [1.0, 2.0, 3.0, 4.0])
        reference = FrequentItemsTracker(
            epsilon=0.2, delta=0.2, window=100.0, universe_bits=4
        )
        for key, clock in zip(["c", "a", "c", "b"], [1.0, 2.0, 3.0, 4.0], strict=False):
            reference.add(key, clock)
        assert dumps(tracker) == dumps(reference)

    def test_add_many_validates_lengths(self):
        from repro.core.errors import ConfigurationError

        tracker = FrequentItemsTracker(
            epsilon=0.2, delta=0.2, window=100.0, universe_bits=4
        )
        with pytest.raises(ConfigurationError):
            tracker.add_many(["a"], [1.0, 2.0])
        with pytest.raises(ConfigurationError):
            tracker.add_many(["a", "b"], [1.0, 2.0], [1])
        tracker.add_many([], [])
        assert tracker.distinct_keys() == 0

    def test_failed_chunk_rolls_back_dictionary(self):
        from repro.core.errors import ConfigurationError, OutOfOrderArrivalError

        tracker = FrequentItemsTracker(
            epsilon=0.2, delta=0.2, window=100.0, universe_bits=4
        )
        tracker.add_many(["a", "b"], [1.0, 2.0])
        before = dumps(tracker)
        with pytest.raises(OutOfOrderArrivalError):
            tracker.add_many(["x", "y", "z"], [5.0, 1.0, 6.0])  # out-of-order clocks
        with pytest.raises(ConfigurationError):
            # Overflows the 2**4 dictionary mid-scan.
            tracker.add_many(
                ["k%d" % i for i in range(20)], [float(i + 10) for i in range(20)]
            )
        # Atomic failure: no sketch state, no new codes — a retry with
        # corrected input assigns the same codes as a node that never failed.
        assert dumps(tracker) == before
        assert tracker.distinct_keys() == 2
        tracker.add_many(["x", "c"], [5.0, 6.0])
        reference = FrequentItemsTracker(
            epsilon=0.2, delta=0.2, window=100.0, universe_bits=4
        )
        reference.add_many(["a", "b", "x", "c"], [1.0, 2.0, 5.0, 6.0])
        assert dumps(tracker) == dumps(reference)

    def test_frequency_many_matches_scalar(self):
        tracker = FrequentItemsTracker(
            epsilon=0.1, delta=0.1, window=1_000.0, universe_bits=6
        )
        tracker.add_many(
            ["a", "b", "a", "c", "a", "b"], [float(i) for i in range(6)]
        )
        probes = ["a", "unseen", "b", "c", "also-unseen"]
        assert tracker.frequency_many(probes, now=5.0) == [
            tracker.frequency(key, now=5.0) for key in probes
        ]
