"""Unit tests for the keyed frequent-items tracker."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.queries import FrequentItemsTracker


WINDOW = 10_000.0


def _tracker(universe_bits=10, epsilon=0.05):
    return FrequentItemsTracker(
        epsilon=epsilon, delta=0.05, window=WINDOW, universe_bits=universe_bits
    )


class TestEncoding:
    def test_distinct_keys_tracked(self):
        tracker = _tracker()
        tracker.add("/a", clock=1.0)
        tracker.add("/b", clock=2.0)
        tracker.add("/a", clock=3.0)
        assert tracker.distinct_keys() == 2

    def test_dictionary_capacity_enforced(self):
        tracker = _tracker(universe_bits=2)
        for index in range(4):
            tracker.add("key-%d" % index, clock=float(index))
        with pytest.raises(ConfigurationError):
            tracker.add("key-overflow", clock=5.0)

    def test_unseen_key_frequency_zero(self):
        tracker = _tracker()
        tracker.add("/a", clock=1.0)
        assert tracker.frequency("/never") == 0.0


class TestQueries:
    def test_frequency_counts(self):
        tracker = _tracker()
        for clock in range(40):
            tracker.add("/hot", clock=float(clock))
            if clock % 4 == 0:
                tracker.add("/cold", clock=float(clock))
        assert tracker.frequency("/hot", now=39.0) >= 40.0
        assert tracker.frequency("/cold", now=39.0) >= 10.0
        assert tracker.estimate_total(now=39.0) >= 45.0

    def test_heavy_hitters_with_string_keys(self, wc98_trace, wc98_exact):
        tracker = FrequentItemsTracker(
            epsilon=0.02, delta=0.05, window=100_000.0, universe_bits=12
        )
        for record in wc98_trace:
            tracker.add(record.key, record.timestamp, record.value)
        now = wc98_trace.end_time()
        phi = 0.03
        detected = tracker.heavy_hitters(phi=phi, now=now)
        exact = wc98_exact.heavy_hitters(phi=phi, now=now)
        # Theorem 5 guarantees recall of every item above the threshold...
        assert set(exact).issubset(set(detected))
        # ...and no item far below the (phi - eps) mark.
        total = wc98_exact.arrivals(now=now)
        for key in detected:
            assert wc98_exact.frequency(key, now=now) >= (phi - 0.02) * total

    def test_heavy_hitters_in_recent_range_only(self):
        tracker = _tracker(epsilon=0.05)
        for clock in range(100):
            tracker.add("/early", clock=float(clock))
        for clock in range(100, 140):
            tracker.add("/late", clock=float(clock))
        recent = tracker.heavy_hitters(phi=0.5, range_length=40.0, now=139.0)
        assert "/late" in recent
        assert "/early" not in recent

    def test_top_k(self):
        tracker = _tracker()
        for clock in range(30):
            tracker.add("/popular", clock=float(clock))
            tracker.add("/page-%d" % (clock % 10), clock=float(clock))
        top = tracker.top_k(3, now=29.0)
        assert top[0][0] == "/popular"
        assert len(top) == 3
        assert top[0][1] >= top[1][1] >= top[2][1]

    def test_top_k_invalid(self):
        with pytest.raises(ConfigurationError):
            _tracker().top_k(0)

    def test_absolute_threshold(self):
        tracker = _tracker()
        for clock in range(25):
            tracker.add("/hot", clock=float(clock))
        detected = tracker.heavy_hitters(phi=0.0, absolute_threshold=20, now=24.0)
        assert "/hot" in detected

    def test_memory_and_accessors(self):
        tracker = _tracker(universe_bits=6)
        tracker.add("/a", clock=1.0)
        assert tracker.memory_bytes() > 0
        assert tracker.sketch().universe_size == 64
        assert "FrequentItemsTracker" in repr(tracker)
