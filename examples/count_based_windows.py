"""Count-based sliding windows: "the last N arrivals" instead of "the last N seconds".

Run with::

    python examples/count_based_windows.py

Some monitoring tasks care about the most recent *N events* rather than a time
range — e.g. "the error rate over the last 10 000 requests".  The ECM-sketch
supports this count-based model directly (Section 4.2.1 of the paper): the
clock fed to ``add`` becomes the global arrival index, and query ranges are
numbers of arrivals.  This example tracks HTTP status classes over the last
10 000 requests and shows how the estimates react to a burst of server errors,
comparing every estimate against an exact recount.  It also demonstrates the
one capability the model gives up: order-preserving aggregation of count-based
sketches raises ``WindowModelError``, exactly as the paper proves it must.
"""

from __future__ import annotations

import random

from repro.core import ECMConfig, ECMSketch
from repro.core.errors import WindowModelError
from repro.windows import WindowModel

WINDOW_ARRIVALS = 10_000      # the last N requests
EPSILON = 0.05


def main() -> None:
    rng = random.Random(13)
    config = ECMConfig.for_point_queries(
        epsilon=EPSILON, delta=0.05, window=WINDOW_ARRIVALS, model=WindowModel.COUNT_BASED
    )
    sketch = ECMSketch(config)
    history = []  # exact log of status classes, for verification only

    def observe(status: str) -> None:
        history.append(status)
        sketch.add(status, clock=float(len(history)))

    def report(label: str) -> None:
        now = float(len(history))
        estimate = sketch.point_query("5xx", range_length=WINDOW_ARRIVALS, now=now)
        exact = sum(1 for status in history[-WINDOW_ARRIVALS:] if status == "5xx")
        print("%-28s errors in last %d requests: estimate=%6.0f exact=%6d (rate %.2f%%)"
              % (label, WINDOW_ARRIVALS, estimate, exact, 100.0 * exact / WINDOW_ARRIVALS))

    # Phase 1: healthy traffic (0.5% errors) for 20k requests.
    for _ in range(20_000):
        observe("5xx" if rng.random() < 0.005 else "2xx")
    report("after healthy traffic:")

    # Phase 2: an incident pushes the error rate to 20% for 5k requests.
    for _ in range(5_000):
        observe("5xx" if rng.random() < 0.20 else "2xx")
    report("after the incident:")

    # Short ranges work too: the error rate over the last 1 000 requests.
    now = float(len(history))
    recent_estimate = sketch.point_query("5xx", range_length=1_000, now=now)
    recent_exact = sum(1 for status in history[-1_000:] if status == "5xx")
    print("errors in the last 1000 requests: estimate=%.0f exact=%d"
          % (recent_estimate, recent_exact))

    # The documented limitation: count-based sketches cannot be aggregated.
    other = ECMSketch(config, stream_tag=1)
    other.add("2xx", clock=1.0)
    try:
        ECMSketch.aggregate([sketch, other])
    except WindowModelError as error:
        print("\naggregating count-based sketches is rejected as expected:")
        print("  WindowModelError: %s" % error)


if __name__ == "__main__":
    main()
