"""Order-preserving aggregation of ECM-sketches across the wc'98 mirrors.

Run with::

    python examples/distributed_aggregation.py

Reproduces the setting of the paper's Section 7.3 at small scale: the 33
world-cup web-server mirrors each summarise their local request stream with an
ECM-sketch; the sketches are aggregated up a balanced binary tree; and the
root sketch answers sliding-window queries for the union stream.  The script
reports the transfer volume of the aggregation and compares the accuracy of
the aggregated sketch against both a centralized sketch and the exact answer.
"""

from __future__ import annotations

from repro.analysis import evaluate_point_queries, exponential_query_ranges
from repro.baselines import ExactStreamSummary
from repro.core import CounterType, ECMConfig, ECMSketch
from repro.distributed import DistributedDeployment
from repro.streams import WorldCupSyntheticTrace

WINDOW_SECONDS = 1_000_000.0
EPSILON = 0.1
NUM_MIRRORS = 33


def main() -> None:
    trace = WorldCupSyntheticTrace(num_records=20_000, num_nodes=NUM_MIRRORS).generate()
    exact = ExactStreamSummary.from_stream(trace, window=WINDOW_SECONDS)
    now = trace.end_time()
    ranges = exponential_query_ranges(WINDOW_SECONDS)

    for counter_type, label in (
        (CounterType.EXPONENTIAL_HISTOGRAM, "ECM-EH (deterministic, compact)"),
        (CounterType.RANDOMIZED_WAVE, "ECM-RW (randomized, lossless merge)"),
    ):
        config = ECMConfig.for_point_queries(
            epsilon=EPSILON, delta=0.1, window=WINDOW_SECONDS,
            counter_type=counter_type, max_arrivals=2 * len(trace),
        )

        # Centralized reference: one sketch sees the whole stream.
        centralized = ECMSketch(config)
        for record in trace:
            centralized.add(record.key, record.timestamp)

        # Distributed: every mirror summarises only its own requests.
        deployment = DistributedDeployment(num_nodes=NUM_MIRRORS, config=config)
        deployment.ingest(trace)
        root = deployment.aggregate()
        report = deployment.last_report

        central_summary = evaluate_point_queries(centralized, exact, ranges, now=now,
                                                 max_keys_per_range=150)
        distributed_summary = evaluate_point_queries(root, exact, ranges, now=now,
                                                     max_keys_per_range=150)

        print("\n=== %s ===" % label)
        print("aggregation tree height: %d levels, %d sketch shipments"
              % (report.levels, report.messages))
        print("transfer volume:        %8.2f MiB" % report.transfer_megabytes())
        print("per-mirror sketch size: %8.1f KiB"
              % (deployment.nodes[0].sketch.memory_bytes() / 1024.0))
        print("observed point-query error (avg / max over %d queries):" % distributed_summary.count)
        print("    centralized sketch: %.4f / %.4f"
              % (central_summary.average, central_summary.maximum))
        print("    aggregated sketch:  %.4f / %.4f"
              % (distributed_summary.average, distributed_summary.maximum))
        print("degradation ratio (distributed / centralized): %.3f"
              % (distributed_summary.average / max(central_summary.average, 1e-12)))
        print("worst-case bound after %d aggregation levels: %.3f"
              % (report.levels, deployment.worst_case_window_error()))


if __name__ == "__main__":
    main()
