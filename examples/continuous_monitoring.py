"""Continuous threshold monitoring with the geometric method (Section 6.2).

Run with::

    python examples/continuous_monitoring.py

Four sites monitor the self-join size (second frequency moment) of their
combined sliding-window stream — a standard proxy for traffic skew / flash
crowds.  Instead of streaming every arrival to a coordinator, each site checks
a purely local geometric constraint on its drift vector; communication happens
only when a constraint is violated.  The script reports how many
synchronisations were needed, the transfer volume, and compares the detection
against an exact recomputation.
"""

from __future__ import annotations

import random

from repro.core import ECMConfig
from repro.distributed import GeometricMonitor
from repro.streams import Stream, StreamRecord

NUM_SITES = 4
WINDOW_SECONDS = 10_000.0
THRESHOLD = 3.0e7          # self-join threshold that the flash crowd will cross
EPSILON = 0.15


def synthesize(seed: int = 3) -> Stream:
    """Balanced traffic that turns strongly skewed half-way through."""
    rng = random.Random(seed)
    records = []
    clock = 0.0
    for index in range(24_000):
        clock += rng.random() * 0.3
        site = rng.randrange(NUM_SITES)
        if index > 12_000 and rng.random() < 0.5:
            key = "flash-crowd-item"
        else:
            key = "item-%d" % rng.randrange(500)
        records.append(StreamRecord(timestamp=clock, key=key, node=site))
    return Stream(records, name="monitored")


def main() -> None:
    traffic = synthesize()
    config = ECMConfig.for_point_queries(epsilon=EPSILON, delta=0.1, window=WINDOW_SECONDS)
    monitor = GeometricMonitor(
        num_sites=NUM_SITES,
        config=config,
        threshold=THRESHOLD,
        check_every=5,          # check local constraints every 5 arrivals per site
    )
    monitor.initialize(now=0.0)

    crossing_clock = None
    for record in traffic:
        synchronized = monitor.observe(record.node, record.key, record.timestamp, record.value)
        if synchronized and monitor.above_threshold and crossing_clock is None:
            crossing_clock = record.timestamp

    stats = monitor.stats
    print("arrivals processed:        %d" % stats.arrivals)
    print("local constraint checks:   %d" % stats.constraint_checks)
    print("local violations:          %d" % stats.local_violations)
    print("global synchronisations:   %d" % stats.synchronizations)
    print("sketch vectors shipped:    %d (%.2f MiB)"
          % (stats.messages, stats.transfer_megabytes()))
    naive = stats.arrivals * monitor._vector_bytes
    print("naive per-arrival shipping would have cost %.2f MiB (%.1fx more)"
          % (naive / 2**20, naive / max(stats.transfer_bytes, 1)))

    print("\nthreshold: %.2e" % THRESHOLD)
    if crossing_clock is not None:
        print("threshold crossing detected at t=%.1f s (flash crowd starts around t=%.0f s)"
              % (crossing_clock, traffic[12_000].timestamp))
    else:
        print("no threshold crossing detected")
    refreshed = monitor.synchronize(now=traffic.end_time())
    print("monitored function after a final synchronisation: %.2e" % refreshed)
    print("exact recomputation of the same function:         %.2e"
          % monitor.exact_global_value(now=traffic.end_time()))


if __name__ == "__main__":
    main()
