"""Heavy hitters, range queries and quantiles over sliding windows (Section 6.1).

Run with::

    python examples/heavy_hitters_and_quantiles.py

The dyadic stack of ECM-sketches answers three classes of queries over the
sliding window of a skewed integer stream (e.g. per-port packet counts):

* group-testing heavy hitters — which ports carry more than phi of the traffic;
* range queries — how much traffic falls into a port range;
* quantiles — the median and tail ports of the in-window distribution.

Every answer is compared against the exact value.
"""

from __future__ import annotations

import random

from repro.baselines import ExactStreamSummary
from repro.queries import HierarchicalECMSketch

WINDOW_SECONDS = 10_000.0
UNIVERSE_BITS = 16          # ports 0..65535
EPSILON = 0.02
PHI = 0.05


def main() -> None:
    rng = random.Random(7)
    sketch = HierarchicalECMSketch(
        universe_bits=UNIVERSE_BITS, epsilon=EPSILON, delta=0.05, window=WINDOW_SECONDS
    )
    exact = ExactStreamSummary(window=WINDOW_SECONDS)

    # Synthetic port-traffic stream: a few very hot service ports plus a
    # heavy-tailed remainder.
    hot_ports = [80, 443, 53, 22]
    clock = 0.0
    for _ in range(40_000):
        clock += rng.random() * 0.4
        if rng.random() < 0.45:
            port = rng.choice(hot_ports)
        else:
            port = min(int(rng.paretovariate(0.6)), 65_535)
        sketch.add(port, clock)
        exact.add(port, clock)
    now = clock

    total = exact.arrivals(now=now)
    print("stream: %d packets in the window, %d distinct ports"
          % (total, exact.distinct_keys()))
    print("dyadic stack: %d levels, %.1f KiB"
          % (UNIVERSE_BITS, sketch.memory_bytes() / 1024.0))

    # ---------------------------------------------------------- heavy hitters
    detected = sketch.heavy_hitters(phi=PHI, now=now)
    truth = exact.heavy_hitters(phi=PHI, now=now)
    print("\nports carrying more than %.0f%% of the window traffic:" % (PHI * 100))
    print("%8s %12s %12s" % ("port", "estimate", "exact"))
    for port in sorted(detected, key=lambda p: -detected[p]):
        print("%8d %12.0f %12d" % (port, detected[port], exact.frequency(port, now=now)))
    missed = set(truth) - set(detected)
    print("recall of exact heavy hitters: %d/%d (missed: %s)"
          % (len(set(truth) & set(detected)), len(truth), sorted(missed) or "none"))

    # ----------------------------------------------------------- range queries
    print("\nrange queries (privileged ports vs ephemeral ports), last 1000 seconds:")
    for lo, hi, label in [(0, 1023, "0-1023"), (1024, 49_151, "1024-49151"), (49_152, 65_535, "49152-65535")]:
        estimate = sketch.range_query(lo, hi, range_length=1_000.0, now=now)
        truth_count = sum(
            count for key, count in exact.frequencies_in_range(1_000.0, now).items() if lo <= key <= hi
        )
        print("  ports %-12s estimate=%8.0f exact=%8d" % (label, estimate, truth_count))

    # --------------------------------------------------------------- quantiles
    print("\nquantiles of the in-window port distribution:")
    for fraction in (0.25, 0.5, 0.9, 0.99):
        approx = sketch.quantile(fraction, now=now)
        truth_q = exact.quantile(fraction, now=now)
        print("  q=%.2f  approx=%6d  exact=%6d" % (fraction, approx, truth_q))


if __name__ == "__main__":
    main()
