"""Quickstart: summarise a stream with an ECM-sketch and query sliding windows.

Run with::

    python examples/quickstart.py

The script builds an ECM-sketch sized for a 5% point-query error, feeds it a
synthetic web-request trace, and answers point and self-join queries over
several sliding-window ranges, comparing every estimate against the exact
answer computed from the raw stream.
"""

from __future__ import annotations

from repro import ECMSketch
from repro.baselines import ExactStreamSummary
from repro.streams import WorldCupSyntheticTrace

WINDOW_SECONDS = 1_000_000.0  # ~11.5 days, as in the paper's experiments
EPSILON = 0.05
DELTA = 0.05


def main() -> None:
    # 1. Generate a synthetic trace standing in for the WorldCup'98 HTTP log.
    trace = WorldCupSyntheticTrace(num_records=20_000, domain_size=1_000).generate()
    print("trace: %d requests, %d distinct pages, %.0f seconds"
          % (len(trace), len(trace.keys()), trace.duration()))

    # 2. Build the sketch (epsilon is the total point-query error budget) and
    #    an exact baseline used only to report the observed error.
    sketch = ECMSketch.for_point_queries(epsilon=EPSILON, delta=DELTA, window=WINDOW_SECONDS)
    exact = ExactStreamSummary(window=WINDOW_SECONDS)
    for record in trace:
        sketch.add(record.key, record.timestamp)
        exact.add(record.key, record.timestamp)
    print("sketch memory: %.1f KiB (exact baseline stores every arrival)"
          % (sketch.memory_bytes() / 1024.0))

    now = trace.end_time()

    # 3. Point queries over exponentially growing sliding-window ranges.
    hottest = max(exact.frequencies_in_range(WINDOW_SECONDS, now).items(), key=lambda kv: kv[1])[0]
    print("\npoint queries for the most popular page %r:" % hottest)
    print("%12s %12s %12s %12s" % ("range (s)", "estimate", "exact", "rel. error"))
    for exponent in range(2, 7):
        range_length = 10.0 ** exponent
        estimate = sketch.point_query(hottest, range_length, now=now)
        truth = exact.frequency(hottest, range_length, now)
        arrivals = exact.arrivals(range_length, now)
        error = abs(estimate - truth) / max(arrivals, 1)
        print("%12.0f %12.1f %12d %12.4f" % (range_length, estimate, truth, error))

    # 4. A self-join (second frequency moment) query over the full window.
    self_join_estimate = sketch.self_join(now=now)
    self_join_truth = exact.self_join(now=now)
    print("\nself-join over the full window: estimate=%.0f exact=%d (normalised error %.5f)"
          % (self_join_estimate, self_join_truth,
             abs(self_join_estimate - self_join_truth) / exact.arrivals(now=now) ** 2))

    # 5. The guarantee that backs these numbers (Theorem 1).
    bound = sketch.point_error_bound(exact.arrivals(now=now))
    print("\nworst-case point-query error bound for the full window: %.1f arrivals" % bound)


if __name__ == "__main__":
    main()
