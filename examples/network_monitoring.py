"""Distributed network monitoring: the DDoS-detection scenario of the paper's intro.

Run with::

    python examples/network_monitoring.py

A set of edge routers each observes its local traffic and maintains (a) a
sliding-window ECM-sketch of per-destination packet counts and (b) a local
trigger that fires when any destination exceeds a per-router threshold.  When
triggers fire, the coordinator aggregates the routers' sketches with the
order-preserving aggregation of Section 5 and runs a network-wide heavy-hitter
analysis to confirm which destinations are genuinely under attack — all
without ever shipping raw packets.
"""

from __future__ import annotations

import random

from repro.core import ECMConfig
from repro.distributed import DistributedDeployment
from repro.queries import FrequentItemsTracker
from repro.streams import Stream, StreamRecord

NUM_ROUTERS = 16
WINDOW_SECONDS = 3_600.0          # one hour of traffic
LOCAL_TRIGGER_THRESHOLD = 120.0   # per-router packets to one destination
ATTACK_TARGET = "203.0.113.7"
EPSILON = 0.05


def synthesize_traffic(seed: int = 42) -> Stream:
    """Background traffic plus a distributed flood towards one destination."""
    rng = random.Random(seed)
    records = []
    clock = 0.0
    for _ in range(30_000):
        clock += rng.random() * 0.2
        router = rng.randrange(NUM_ROUTERS)
        if clock > 2_000.0 and rng.random() < 0.25:
            destination = ATTACK_TARGET          # the flood ramps up mid-trace
        else:
            destination = "198.51.100.%d" % rng.randrange(200)
        records.append(StreamRecord(timestamp=clock, key=destination, node=router))
    return Stream(records, name="edge-traffic")


def main() -> None:
    traffic = synthesize_traffic()
    config = ECMConfig.for_point_queries(epsilon=EPSILON, delta=0.05, window=WINDOW_SECONDS)

    # Each router keeps its own sliding-window sketch.
    deployment = DistributedDeployment(num_nodes=NUM_ROUTERS, config=config)
    deployment.ingest(traffic)
    now = traffic.end_time()

    # Local triggering: a router alerts the coordinator when any destination it
    # serves exceeds its fair-share threshold within the window.
    alerting = []
    for node in deployment.nodes:
        local_count = node.local_point_query(ATTACK_TARGET, now=now)
        if local_count >= LOCAL_TRIGGER_THRESHOLD:
            alerting.append((node.node_id, local_count))
    print("%d of %d routers raised a local trigger for %s"
          % (len(alerting), NUM_ROUTERS, ATTACK_TARGET))
    for node_id, count in alerting[:5]:
        print("  router %2d: ~%.0f packets to the target in the last hour" % (node_id, count))

    # Coordinator: aggregate the routers' sketches (order-preserving) and
    # compute network-wide statistics.
    global_sketch = deployment.aggregate()
    report = deployment.last_report
    print("\naggregation: %d sketches shipped, %.2f MiB total transfer, %d tree levels"
          % (report.messages, report.transfer_megabytes(), report.levels))
    print("network-wide count for %s: ~%.0f packets"
          % (ATTACK_TARGET, global_sketch.point_query(ATTACK_TARGET, now=now)))

    # Network-wide heavy hitters over the last 10 minutes, via the dyadic
    # group-testing structure of Section 6.1.
    tracker = FrequentItemsTracker(
        epsilon=0.02, delta=0.05, window=WINDOW_SECONDS, universe_bits=10
    )
    for record in traffic:
        tracker.add(record.key, record.timestamp)
    hitters = tracker.heavy_hitters(phi=0.1, range_length=600.0, now=now)
    print("\ndestinations receiving >10% of all traffic in the last 10 minutes:")
    for destination, estimate in sorted(hitters.items(), key=lambda kv: -kv[1]):
        print("  %-16s ~%.0f packets" % (destination, estimate))

    verdict = "ATTACK CONFIRMED" if ATTACK_TARGET in hitters else "no network-wide anomaly"
    print("\ncoordinator verdict for %s: %s" % (ATTACK_TARGET, verdict))


if __name__ == "__main__":
    main()
