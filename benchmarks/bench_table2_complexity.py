"""Table 2 — space and time complexity of the three ECM-sketch variants.

Table 2 in the paper is analytical; this benchmark reproduces it empirically:
for each variant and several epsilon values it reports the analytical
worst-case size (from the formulas of Section 4.2), the measured size of a
live sketch after ingesting a trace, and the measured per-update and per-query
latency.

Expected shape: ECM-EH and ECM-DW scale linearly with 1/epsilon (DW about
twice EH), ECM-RW scales quadratically; update cost is roughly constant per
variant with ECM-RW several times slower.
"""

from __future__ import annotations

import pytest

from repro.experiments import format_complexity_rows, run_complexity_experiment

from .conftest import emit


@pytest.mark.benchmark(group="table2")
def test_table2_complexity(benchmark, bench_records, bench_epsilons):
    """Prints analytical vs measured size and latency per variant and epsilon."""

    def run():
        return run_complexity_experiment(
            epsilons=bench_epsilons,
            num_records=min(bench_records, 6_000),
            num_queries=200,
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["rows"] = len(rows)

    emit("Table 2: complexity of ECM-EH / ECM-DW / ECM-RW (analytical bound vs measured)",
         format_complexity_rows(rows))

    def measured(variant, epsilon):
        return next(r.measured_bytes for r in rows if r.variant == variant and r.epsilon == epsilon)

    def analytical(variant, epsilon):
        return next(r.analytical_bytes for r in rows if r.variant == variant and r.epsilon == epsilon)

    smallest, largest = min(bench_epsilons), max(bench_epsilons)
    # Linear vs quadratic scaling with 1/epsilon (the worst-case bounds of Table 2;
    # measured footprints only approach them once the per-level samples saturate).
    eh_growth = analytical("ECM-EH", smallest) / analytical("ECM-EH", largest)
    rw_growth = analytical("ECM-RW", smallest) / analytical("ECM-RW", largest)
    assert rw_growth > eh_growth, "ECM-RW must grow faster with 1/epsilon than ECM-EH"
    # The RW footprint dominates at every epsilon.
    for epsilon in bench_epsilons:
        assert measured("ECM-RW", epsilon) > 5 * measured("ECM-EH", epsilon)
        assert measured("ECM-EH", epsilon) < measured("ECM-DW", epsilon)
