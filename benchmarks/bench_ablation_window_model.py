"""Ablation: time-based vs count-based sliding windows (Section 4.2.1).

The paper's evaluation uses time-based windows, but the ECM-sketch supports
count-based windows through the same structures (the clock becomes the global
arrival index).  This ablation runs both models over the same trace with the
same epsilon and compares observed error, memory and update cost, confirming
that the count-based model carries no accuracy penalty — only the loss of
order-preserving aggregation (which is checked by the unit tests).
"""

from __future__ import annotations

import time

import pytest

from repro.baselines import ExactStreamSummary
from repro.core import CounterType, ECMSketch
from repro.experiments import load_dataset
from repro.windows import WindowModel

from .conftest import emit


@pytest.mark.benchmark(group="ablations")
def test_ablation_time_vs_count_based_windows(benchmark, bench_records):
    """Compare the two window models at epsilon = 0.1 on the wc'98 trace."""
    stream = load_dataset("wc98", num_records=min(bench_records, 6_000))
    epsilon = 0.1
    # The count-based window covers the last half of the trace's arrivals; the
    # time-based window covers the same share of the trace duration.
    count_window = len(stream) // 2
    time_window = stream.duration() / 2.0

    def run():
        results = []
        for model, window in (
            (WindowModel.TIME_BASED, time_window),
            (WindowModel.COUNT_BASED, float(count_window)),
        ):
            sketch = ECMSketch.for_point_queries(
                epsilon=epsilon, delta=0.1, window=window, model=model,
                counter_type=CounterType.EXPONENTIAL_HISTOGRAM,
            )
            exact = ExactStreamSummary(window=window)
            start = time.perf_counter()
            for index, record in enumerate(stream, start=1):
                clock = record.timestamp if model is WindowModel.TIME_BASED else float(index)
                sketch.add(record.key, clock)
                exact.add(record.key, clock)
            elapsed = time.perf_counter() - start
            now = stream.end_time() if model is WindowModel.TIME_BASED else float(len(stream))
            arrivals = exact.arrivals(None, now)
            worst = 0.0
            for key, truth in list(exact.frequencies_in_range(None, now).items())[:150]:
                estimate = sketch.point_query(key, now=now)
                worst = max(worst, abs(estimate - truth) / max(arrivals, 1))
            # The paper's memory axis is the synopsis model, independent of
            # the storage backend.
            results.append((model.value, window, worst, sketch.synopsis_bytes(), elapsed))
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["%12s %14s %12s %14s %12s" % ("model", "window", "worst err", "memory(bytes)", "ingest(s)")]
    lines.append("-" * len(lines[0]))
    for model, window, worst, memory, elapsed in results:
        lines.append("%12s %14.0f %12.4f %14d %12.2f" % (model, window, worst, memory, elapsed))
    emit("Ablation: time-based vs count-based sliding windows (epsilon=0.1)", "\n".join(lines))

    for _model, _window, worst, _memory, _elapsed in results:
        assert worst <= epsilon, "both window models must respect the point-query guarantee"
    time_memory = results[0][3]
    count_memory = results[1][3]
    # The two models use the same machinery; their footprints are comparable.
    assert 0.2 <= count_memory / time_memory <= 5.0
