"""Ablation benchmarks for the design choices called out in DESIGN.md.

* epsilon split — the memory-optimal split of the error budget (Section 4.1)
  against window-heavy and hash-heavy splits at equal total error;
* merge replay strategy — the paper's half-at-start/half-at-end bucket replay
  against a naive all-at-end replay during order-preserving aggregation.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    format_epsilon_split_rows,
    format_merge_strategy_rows,
    run_epsilon_split_ablation,
    run_merge_strategy_ablation,
)

from .conftest import emit


@pytest.mark.benchmark(group="ablations")
def test_ablation_epsilon_split(benchmark):
    """The optimal split must dominate both skewed splits in memory."""
    rows = benchmark.pedantic(
        lambda: run_epsilon_split_ablation(epsilons=(0.05, 0.1, 0.2)), rounds=1, iterations=1
    )
    emit("Ablation: epsilon split between window error and hashing error",
         format_epsilon_split_rows(rows))
    for epsilon in (0.05, 0.1, 0.2):
        optimal = next(r for r in rows if r.policy == "optimal" and r.epsilon == epsilon)
        for policy in ("sw-heavy", "cm-heavy"):
            skewed = next(r for r in rows if r.policy == policy and r.epsilon == epsilon)
            assert optimal.memory_bytes <= skewed.memory_bytes


@pytest.mark.benchmark(group="ablations")
def test_ablation_merge_replay_strategy(benchmark):
    """Both strategies are reported; the half/half replay stays within its bound."""
    rows = benchmark.pedantic(
        lambda: run_merge_strategy_ablation(num_streams=8, arrivals_per_stream=4_000),
        rounds=1,
        iterations=1,
    )
    emit("Ablation: bucket replay strategy during exponential-histogram aggregation",
         format_merge_strategy_rows(rows))
    half_half = next(r for r in rows if r.strategy == "half-half")
    # Theorem 4 bound for eps = eps' = 0.05.
    assert half_half.maximum_error <= 0.05 + 0.05 + 0.05 * 0.05 + 0.01
