"""Extension experiment: inner-product (join-size) queries between two streams.

Theorem 2 of the paper bounds the error of *inner products between two
different streams*, but the evaluation section only exercises the self-join
special case.  This extension experiment closes that gap: two correlated
synthetic streams (pages requested from two mirror groups with overlapping
popularity) are summarised by separate ECM-sketches, and the estimated
sliding-window join size a_r (.) b_r is compared against the exact value for
several ranges and epsilon values.

Expected shape: the normalised error |est - true| / (||a_r||_1 * ||b_r||_1)
stays below the configured epsilon for every range, exactly as the self-join
experiments do.
"""

from __future__ import annotations

import random

import pytest

from repro.baselines import ExactStreamSummary
from repro.core import ECMSketch
from repro.experiments import PAPER_WINDOW_SECONDS
from repro.streams import WorldCupSyntheticTrace

from .conftest import emit


def _correlated_streams(num_records: int, seed: int):
    """Two streams over the same key universe with shifted popularity."""
    base = WorldCupSyntheticTrace(
        num_records=num_records, domain_size=500, seed=seed, duration=PAPER_WINDOW_SECONDS
    ).generate()
    rng = random.Random(seed + 1)
    # Stream B replays the same arrival times but remaps a third of the keys,
    # yielding a join size well below ||a||*||b|| yet far from zero.
    remapped = []
    for record in base:
        key = record.key
        if rng.random() < 0.33:
            key = "/page/%05d" % rng.randrange(500)
        remapped.append((record.timestamp, key))
    stream_a = [(record.timestamp, record.key) for record in base]
    return stream_a, remapped


@pytest.mark.benchmark(group="extension")
def test_extension_inner_product_between_streams(benchmark, bench_records, bench_epsilons):
    """Prints normalised inner-product errors per epsilon and query range."""
    records = min(bench_records, 6_000)
    stream_a, stream_b = _correlated_streams(records, seed=21)
    window = PAPER_WINDOW_SECONDS
    exact_a = ExactStreamSummary(window=window)
    exact_b = ExactStreamSummary(window=window)
    for clock, key in stream_a:
        exact_a.add(key, clock)
    for clock, key in stream_b:
        exact_b.add(key, clock)
    now = max(stream_a[-1][0], stream_b[-1][0])
    ranges = (10_000.0, 100_000.0, window)

    def run():
        rows = []
        for epsilon in bench_epsilons:
            sketch_a = ECMSketch.for_inner_product_queries(
                epsilon=epsilon, delta=0.1, window=window, seed=3
            )
            sketch_b = ECMSketch.for_inner_product_queries(
                epsilon=epsilon, delta=0.1, window=window, seed=3
            )
            for clock, key in stream_a:
                sketch_a.add(key, clock)
            for clock, key in stream_b:
                sketch_b.add(key, clock)
            for range_length in ranges:
                arrivals_a = exact_a.arrivals(range_length, now)
                arrivals_b = exact_b.arrivals(range_length, now)
                if arrivals_a == 0 or arrivals_b == 0:
                    continue
                estimate = sketch_a.inner_product(sketch_b, range_length, now=now)
                truth = exact_a.inner_product(exact_b, range_length, now=now)
                error = abs(estimate - truth) / (arrivals_a * arrivals_b)
                rows.append((epsilon, range_length, truth, estimate, error))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["%6s %12s %14s %14s %12s" % ("eps", "range (s)", "exact join", "estimate", "norm err")]
    lines.append("-" * len(lines[0]))
    for epsilon, range_length, truth, estimate, error in rows:
        lines.append("%6.2f %12.0f %14d %14.0f %12.5f"
                     % (epsilon, range_length, truth, estimate, error))
    emit("Extension: inner-product queries between two distributed streams", "\n".join(lines))

    for epsilon, _range_length, _truth, _estimate, error in rows:
        assert error <= epsilon, "Theorem 2 bound must hold for cross-stream inner products"
