"""Benchmarks of the live sketch service (`repro serve` + `repro replay`).

Covers the serving-path acceptance claims:

* **Sustained ingest with concurrent queries** — a real ``repro serve``
  subprocess (flat mode, EH columnar backend) must sustain at least 50k
  arrivals/sec through the replay driver at batch size 1024 while answering
  interleaved point/self-join queries; latency percentiles are reported.
* **Hierarchical serving** — the same drive against a hierarchical-mode
  server (point/heavy-hitter/quantile query mix), reported for trajectory.
* **Snapshot/restore fidelity** — a service snapshotted mid-stream and
  restored into a fresh process must produce byte-identical sketch state
  and query answers to an uninterrupted run (asserted unconditionally, not
  only under ``REPRO_BENCH_STRICT``); snapshot write/load timings and sizes
  are reported.

Run standalone (``PYTHONPATH=src python benchmarks/bench_service.py
[--json out.json]``) for the report the CI benchmark job archives, or via
``pytest benchmarks/bench_service.py`` (``REPRO_BENCH_STRICT=1`` arms the
50k arrivals/sec floor).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import socket
import subprocess
import sys
import time
from typing import Any, Dict, List, Optional

from repro.serialization import dumps
from repro.service import ServiceConfig, SketchService, run_replay, wait_for_server
from repro.streams import WorldCupSyntheticTrace

#: Acceptance floor on sustained ingest (arrivals/second), flat EH columnar.
THROUGHPUT_FLOOR = 50_000.0
#: Records replayed against the flat server.
FLAT_RECORDS = 65_536
#: Records replayed against the hierarchical server.
HIER_RECORDS = 16_384
#: Ingest batch size of the acceptance run.
BATCH_SIZE = 1_024
#: One query every this many ingest batches.
QUERY_EVERY = 8

_SRC = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", "src"))


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _spawn_server(mode: str, port: int, extra: Optional[List[str]] = None) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", str(port),
         "--mode", mode, "--backend", "columnar", "--batch-size", str(BATCH_SIZE)]
        + (extra or []),
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        wait_for_server(port=port)
    except TimeoutError:
        if process.poll() is not None:
            raise RuntimeError("server exited early:\n%s" % (process.stdout.read(),))
        process.kill()
        raise
    return process


def _stop_server(process: subprocess.Popen) -> None:
    if process.poll() is None:
        process.send_signal(signal.SIGTERM)
        try:
            process.communicate(timeout=60)
        except subprocess.TimeoutExpired:
            process.kill()
            process.communicate(timeout=30)


def _drive(mode: str, records: int, extra: Optional[List[str]] = None) -> Dict[str, Any]:
    """Boot a `repro serve` subprocess, run the replay driver, report."""
    port = _free_port()
    server = _spawn_server(mode, port, extra)
    try:
        report = asyncio.run(
            run_replay(
                port=port,
                records=records,
                batch_size=BATCH_SIZE,
                query_every=QUERY_EVERY,
            )
        )
    finally:
        _stop_server(server)
    return {
        "records": report.records,
        "batch_size": BATCH_SIZE,
        "elapsed_seconds": report.elapsed_seconds,
        "drain_seconds": report.drain_seconds,
        "arrivals_per_second": report.achieved_rate,
        "queries": report.queries,
        "query_p50_ms": report.query_p50_ms,
        "query_p99_ms": report.query_p99_ms,
        "server_memory_bytes": report.server_stats.get("memory_bytes", 0),
    }


def _snapshot_fidelity(tmp_dir: str) -> Dict[str, Any]:
    """Mid-stream snapshot -> restore must equal an uninterrupted run, byte for byte."""
    records = 20_000
    trace = WorldCupSyntheticTrace(num_records=records, seed=21).generate()
    keys = [record.key for record in trace]
    clocks = [record.timestamp for record in trace]
    half = records // 2
    snapshot_path = os.path.join(tmp_dir, "bench-service-snapshot.json")
    config = ServiceConfig(mode="flat", batch_size=BATCH_SIZE, snapshot_path=snapshot_path)
    probe_keys = sorted(set(keys))[:128]

    async def interrupted() -> Any:
        async with SketchService(config) as service:
            await service.ingest(keys[:half], clocks[:half])
            await service.drain()
            write_start = time.perf_counter()
            path = service.snapshot_now()
            write_seconds = time.perf_counter() - write_start
            # Measure now: the shutdown snapshots of both full runs will
            # overwrite this file with full-stream state later.
            snapshot_bytes = os.path.getsize(path)
        load_start = time.perf_counter()
        restored = SketchService.from_snapshot(path)
        load_seconds = time.perf_counter() - load_start
        async with restored:
            await restored.ingest(keys[half:], clocks[half:])
            await restored.drain()
            answers = [restored.query("point", {"key": key}) for key in probe_keys]
            return dumps(restored.state), answers, write_seconds, load_seconds, snapshot_bytes

    async def uninterrupted() -> Any:
        async with SketchService(config) as service:
            await service.ingest(keys, clocks)
            await service.drain()
            answers = [service.query("point", {"key": key}) for key in probe_keys]
            return dumps(service.state), answers

    restored_bytes, restored_answers, write_seconds, load_seconds, snapshot_bytes = (
        asyncio.run(interrupted())
    )
    reference_bytes, reference_answers = asyncio.run(uninterrupted())
    assert restored_bytes == reference_bytes, "restored state diverged from uninterrupted run"
    assert restored_answers == reference_answers, "restored answers diverged"
    return {
        "records": records,
        "snapshot_bytes": snapshot_bytes,
        "snapshot_write_seconds": write_seconds,
        "snapshot_load_seconds": load_seconds,
        "byte_identical": True,
        "probe_keys": len(probe_keys),
    }


def _run_service_benchmark(tmp_dir: str) -> Dict[str, Any]:
    return {
        "flat": _drive("flat", FLAT_RECORDS),
        "hierarchical": _drive("hierarchical", HIER_RECORDS, ["--universe-bits", "12"]),
        "snapshot": _snapshot_fidelity(tmp_dir),
    }


def _format_report(results: Dict[str, Any]) -> List[str]:
    lines = ["Live sketch service (batch %d, EH columnar backend):" % BATCH_SIZE]
    for mode in ("flat", "hierarchical"):
        row = results[mode]
        lines.append(
            "  %-13s %6d records   %8.0f arrivals/s   queries p50 %6.2f ms  p99 %6.2f ms"
            % (
                mode + ":",
                row["records"],
                row["arrivals_per_second"],
                row["query_p50_ms"],
                row["query_p99_ms"],
            )
        )
    snap = results["snapshot"]
    lines.append(
        "  snapshot:     %6d records   write %6.1f ms   load+restore %6.1f ms   "
        "%.0f KiB, byte-identical"
        % (
            snap["records"],
            snap["snapshot_write_seconds"] * 1e3,
            snap["snapshot_load_seconds"] * 1e3,
            snap["snapshot_bytes"] / 1024.0,
        )
    )
    return lines


def test_service_benchmark_report(tmp_path, capsys):
    """Pytest entry: snapshot fidelity always asserted; strict arms the floor."""
    results = _run_service_benchmark(str(tmp_path))
    with capsys.disabled():
        print()
        for line in _format_report(results):
            print(line)
    assert results["snapshot"]["byte_identical"]
    assert results["flat"]["records"] == FLAT_RECORDS
    assert results["flat"]["queries"] > 0, "no queries interleaved with ingest"
    if os.environ.get("REPRO_BENCH_STRICT") == "1":
        rate = results["flat"]["arrivals_per_second"]
        assert rate >= THROUGHPUT_FLOOR, (
            "flat service sustained %.0f arrivals/s, below the %.0f floor"
            % (rate, THROUGHPUT_FLOOR)
        )


def main(argv: Optional[List[str]] = None) -> None:
    """Standalone report (no pytest needed); optionally persists JSON."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", type=str, default=None, help="write results to this file")
    args = parser.parse_args(argv)

    import tempfile

    with tempfile.TemporaryDirectory() as tmp_dir:
        results = _run_service_benchmark(tmp_dir)
    for line in _format_report(results):
        print(line)
    if args.json:
        payload = {"benchmark": "bench_service", **results}
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("results written to %s" % args.json)


if __name__ == "__main__":
    main()
