"""Benchmarks of the live sketch service (`repro serve` + `repro replay`).

Covers the serving-path acceptance claims:

* **Sustained ingest with concurrent queries** — a real ``repro serve``
  subprocess (flat mode, EH columnar backend, write-ahead ingest journal
  armed) must sustain at least 50k arrivals/sec through the replay driver
  at batch size 1024 while answering interleaved point/self-join queries;
  latency percentiles are reported.  Journaling every chunk before the ack
  is part of the measured path, so the floor prices in the WAL overhead.
* **Hierarchical serving** — the same drive against a hierarchical-mode
  server (point/heavy-hitter/quantile query mix), reported for trajectory.
* **Sharded scaling** — the same flat trace against ``--shards 1`` (one
  connection) and ``--shards 4`` (four shard-affine connections).  The
  ``speedup`` leaf is the 4-shard/1-shard ingest-rate ratio; under
  ``REPRO_BENCH_STRICT`` on a ≥4-core host it must clear 2.5×.  The
  4-shard server's merged answers are checked estimate-for-estimate
  against per-shard serial references regardless of strictness.
* **Snapshot/restore fidelity** — a service snapshotted mid-stream and
  restored into a fresh process must produce byte-identical sketch state
  and query answers to an uninterrupted run (asserted unconditionally, not
  only under ``REPRO_BENCH_STRICT``); snapshot write/load timings and sizes
  are reported.

Run standalone (``PYTHONPATH=src python benchmarks/bench_service.py
[--json out.json]``) for the report the CI benchmark job archives, or via
``pytest benchmarks/bench_service.py`` (``REPRO_BENCH_STRICT=1`` arms the
50k arrivals/sec and sharded-scaling floors).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import time
from typing import Any

from repro.core import ECMSketch
from repro.serialization import dumps
from repro.service import (
    ServeProcess,
    ServiceConfig,
    SketchService,
    SyncServiceClient,
    build_replay_stream,
    run_replay,
    shard_of,
)
from repro.streams import WorldCupSyntheticTrace

#: Acceptance floor on sustained ingest (arrivals/second), flat EH columnar.
THROUGHPUT_FLOOR = 50_000.0
#: Acceptance floor on the 4-shard/1-shard ingest-rate ratio (strict mode,
#: only meaningful with at least 4 cores to run the workers on).
SHARD_SPEEDUP_FLOOR = 2.5
#: Records replayed against the flat server.
FLAT_RECORDS = 65_536
#: Records replayed against the hierarchical server.
HIER_RECORDS = 16_384
#: Records replayed per sharded-scaling row.
SHARD_RECORDS = 65_536
#: Shard count of the scaled row.
SHARD_COUNT = 4
#: Ingest batch size of the acceptance run.
BATCH_SIZE = 1_024
#: One query every this many ingest batches.
QUERY_EVERY = 8
#: Trace seed shared by the replay driver and the serial references.
SEED = 7
#: Sketch parameters of the sharded fidelity check — kept explicit so the
#: serial references are built with exactly what the server serves.
EPSILON = 0.05
WINDOW = 1_000_000.0


def _drive(
    mode: str,
    records: int,
    extra: list[object] | None = None,
    connections: int = 1,
    fidelity_shards: int | None = None,
) -> dict[str, Any]:
    """Boot a `repro serve` subprocess, run the replay driver, report.

    With ``fidelity_shards`` set, the served answers are additionally checked
    against per-shard serial references fed the same partitioned sub-streams
    before the server shuts down.
    """
    with ServeProcess(
        "--mode", mode, "--backend", "columnar", "--batch-size", BATCH_SIZE,
        *(extra or []),
    ) as server:
        port = server.wait_ready()
        try:
            report = asyncio.run(
                run_replay(
                    port=port,
                    records=records,
                    batch_size=BATCH_SIZE,
                    query_every=QUERY_EVERY,
                    seed=SEED,
                    connections=connections,
                )
            )
            fidelity = (
                _check_sharded_fidelity(port, records, fidelity_shards)
                if fidelity_shards is not None
                else None
            )
        finally:
            server.stop()
    row = {
        "records": report.records,
        "batch_size": BATCH_SIZE,
        "connections": connections,
        "elapsed_seconds": report.elapsed_seconds,
        "drain_seconds": report.drain_seconds,
        "arrivals_per_second": report.achieved_rate,
        "queries": report.queries,
        "query_p50_ms": report.query_p50_ms,
        "query_p99_ms": report.query_p99_ms,
        "server_memory_bytes": report.server_stats.get("memory_bytes", 0),
    }
    if fidelity is not None:
        row["answers_match_reference"] = fidelity
    return row


def _check_sharded_fidelity(port: int, records: int, shards: int) -> bool:
    """Merged answers must match per-shard serial references exactly."""
    info = {"mode": "flat", "model": "time"}
    trace, clocks = build_replay_stream(info, records, seed=SEED)
    keys = [record.key for record in trace]
    per_shard: dict[int, Any] = {shard: ([], []) for shard in range(shards)}
    for key, clock in zip(keys, clocks, strict=False):
        bucket = per_shard[shard_of(key, shards)]
        bucket[0].append(key)
        bucket[1].append(clock)
    references = []
    for shard in range(shards):
        sketch = ECMSketch.for_point_queries(
            epsilon=EPSILON, delta=0.05, window=WINDOW, backend="columnar"
        )
        sub_keys, sub_clocks = per_shard[shard]
        if sub_keys:
            sketch.add_many(sub_keys, sub_clocks)
        references.append(sketch)
    probe_keys = sorted(set(keys[:500]))[:64]
    with SyncServiceClient.connect(port=port) as client:
        for key in probe_keys:
            expected = references[shard_of(key, shards)].point_query(key)
            assert client.point(key) == expected, (
                "sharded point answer diverged for key %r" % (key,)
            )
        expected_self_join = sum(sketch.self_join() for sketch in references)
        assert client.self_join() == expected_self_join, "sharded self-join diverged"
    return True


def _sharded_scaling() -> dict[str, Any]:
    """Same flat trace through 1 shard / 1 connection and 4 shards / 4
    connections; the ``speedup`` leaf is the tracked scaling ratio."""
    base = ["--epsilon", EPSILON, "--window", WINDOW]
    one = _drive("flat", SHARD_RECORDS, base + ["--shards", 1], connections=1)
    many = _drive(
        "flat",
        SHARD_RECORDS,
        base + ["--shards", SHARD_COUNT],
        connections=SHARD_COUNT,
        fidelity_shards=SHARD_COUNT,
    )
    from repro.core import ECMConfig

    return {
        # The counter-store backend under the servers: labels the scaling
        # ratio so the guard never diffs a kernel-backed run against a
        # NumPy baseline (see benchmarks/compare_bench.py).
        "backend": ECMConfig(
            epsilon_cm=float(EPSILON), epsilon_sw=float(EPSILON), delta=0.05,
            window=float(WINDOW),
        ).resolved_backend,
        "shards_1": one,
        "shards_%d" % SHARD_COUNT: many,
        "speedup": many["arrivals_per_second"] / one["arrivals_per_second"],
        "cpu_count": os.cpu_count() or 1,
    }


def _snapshot_fidelity(tmp_dir: str) -> dict[str, Any]:
    """Mid-stream snapshot -> restore must equal an uninterrupted run, byte for byte."""
    records = 20_000
    trace = WorldCupSyntheticTrace(num_records=records, seed=21).generate()
    keys = [record.key for record in trace]
    clocks = [record.timestamp for record in trace]
    half = records // 2
    snapshot_path = os.path.join(tmp_dir, "bench-service-snapshot.json")
    config = ServiceConfig(mode="flat", batch_size=BATCH_SIZE, snapshot_path=snapshot_path)
    probe_keys = sorted(set(keys))[:128]

    async def interrupted() -> Any:
        async with SketchService(config) as service:
            await service.ingest(keys[:half], clocks[:half])
            await service.drain()
            write_start = time.perf_counter()
            path = service.snapshot_now()
            write_seconds = time.perf_counter() - write_start
            # Measure now: the shutdown snapshots of both full runs will
            # overwrite this file with full-stream state later.
            snapshot_bytes = os.path.getsize(path)
        load_start = time.perf_counter()
        restored = SketchService.from_snapshot(path)
        load_seconds = time.perf_counter() - load_start
        async with restored:
            await restored.ingest(keys[half:], clocks[half:])
            await restored.drain()
            answers = [restored.query("point", {"key": key}) for key in probe_keys]
            return dumps(restored.state), answers, write_seconds, load_seconds, snapshot_bytes

    async def uninterrupted() -> Any:
        async with SketchService(config) as service:
            await service.ingest(keys, clocks)
            await service.drain()
            answers = [service.query("point", {"key": key}) for key in probe_keys]
            return dumps(service.state), answers

    restored_bytes, restored_answers, write_seconds, load_seconds, snapshot_bytes = (
        asyncio.run(interrupted())
    )
    reference_bytes, reference_answers = asyncio.run(uninterrupted())
    assert restored_bytes == reference_bytes, "restored state diverged from uninterrupted run"
    assert restored_answers == reference_answers, "restored answers diverged"
    return {
        "records": records,
        "snapshot_bytes": snapshot_bytes,
        "snapshot_write_seconds": write_seconds,
        "snapshot_load_seconds": load_seconds,
        "byte_identical": True,
        "probe_keys": len(probe_keys),
    }


def _run_service_benchmark(tmp_dir: str) -> dict[str, Any]:
    return {
        # The acceptance run journals every chunk before acking it: the 50k
        # arrivals/s floor holds *with* the write-ahead journal on the path.
        "flat": _drive(
            "flat", FLAT_RECORDS, ["--journal-dir", os.path.join(tmp_dir, "bench-wal")]
        ),
        "hierarchical": _drive("hierarchical", HIER_RECORDS, ["--universe-bits", 12]),
        "sharded": _sharded_scaling(),
        "snapshot": _snapshot_fidelity(tmp_dir),
    }


def _format_report(results: dict[str, Any]) -> list[str]:
    lines = ["Live sketch service (batch %d, EH columnar backend):" % BATCH_SIZE]
    for mode in ("flat", "hierarchical"):
        row = results[mode]
        lines.append(
            "  %-13s %6d records   %8.0f arrivals/s   queries p50 %6.2f ms  p99 %6.2f ms"
            % (
                mode + ":",
                row["records"],
                row["arrivals_per_second"],
                row["query_p50_ms"],
                row["query_p99_ms"],
            )
        )
    sharded = results["sharded"]
    for shards in (1, SHARD_COUNT):
        row = sharded["shards_%d" % shards]
        lines.append(
            "  %-13s %6d records   %8.0f arrivals/s   %d connection%s"
            % (
                "%d shard%s:" % (shards, "s" if shards != 1 else ""),
                row["records"],
                row["arrivals_per_second"],
                row["connections"],
                "s" if row["connections"] != 1 else "",
            )
        )
    lines.append(
        "  scaling:      %d-shard speedup %.2fx over 1 shard (%d cores), "
        "answers match reference: %s"
        % (
            SHARD_COUNT,
            sharded["speedup"],
            sharded["cpu_count"],
            sharded["shards_%d" % SHARD_COUNT].get("answers_match_reference", False),
        )
    )
    snap = results["snapshot"]
    lines.append(
        "  snapshot:     %6d records   write %6.1f ms   load+restore %6.1f ms   "
        "%.0f KiB, byte-identical"
        % (
            snap["records"],
            snap["snapshot_write_seconds"] * 1e3,
            snap["snapshot_load_seconds"] * 1e3,
            snap["snapshot_bytes"] / 1024.0,
        )
    )
    return lines


def test_service_benchmark_report(tmp_path, capsys):
    """Pytest entry: fidelity always asserted; strict arms the floors."""
    results = _run_service_benchmark(str(tmp_path))
    with capsys.disabled():
        print()
        for line in _format_report(results):
            print(line)
    assert results["snapshot"]["byte_identical"]
    assert results["flat"]["records"] == FLAT_RECORDS
    assert results["flat"]["queries"] > 0, "no queries interleaved with ingest"
    sharded = results["sharded"]
    assert sharded["shards_%d" % SHARD_COUNT]["answers_match_reference"] is True
    if os.environ.get("REPRO_BENCH_STRICT") == "1":
        rate = results["flat"]["arrivals_per_second"]
        assert rate >= THROUGHPUT_FLOOR, (
            "flat service sustained %.0f arrivals/s, below the %.0f floor"
            % (rate, THROUGHPUT_FLOOR)
        )
        # Near-linear scaling needs cores for the workers to scale onto:
        # on a 1-2 core host the ratio measures scheduling, not sharding.
        if sharded["cpu_count"] >= SHARD_COUNT:
            assert sharded["speedup"] >= SHARD_SPEEDUP_FLOOR, (
                "%d-shard ingest scaled %.2fx over 1 shard, below the %.1fx floor"
                % (SHARD_COUNT, sharded["speedup"], SHARD_SPEEDUP_FLOOR)
            )


def main(argv: list[str] | None = None) -> None:
    """Standalone report (no pytest needed); optionally persists JSON."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", type=str, default=None, help="write results to this file")
    args = parser.parse_args(argv)

    import tempfile

    with tempfile.TemporaryDirectory() as tmp_dir:
        results = _run_service_benchmark(tmp_dir)
    for line in _format_report(results):
        print(line)
    if args.json:
        payload = {"benchmark": "bench_service", **results}
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("results written to %s" % args.json)


if __name__ == "__main__":
    main()
