"""Figure 4 — centralized setup: observed error vs memory (paper Section 7.2).

Regenerates Figures 4(a)-(d): for each data set (wc'98, snmp) and each sketch
variant (ECM-EH, ECM-DW, ECM-RW), the average and maximum observed error of
point queries and self-join queries against the sketch's memory footprint,
sweeping epsilon with delta = 0.1.

Expected shape (paper): every variant stays below its configured epsilon;
ECM-EH is the most compact, ECM-DW needs roughly twice the space, ECM-RW needs
at least an order of magnitude more.
"""

from __future__ import annotations

import pytest

from repro.experiments import format_centralized_rows, run_centralized_error_experiment

from .conftest import emit


@pytest.mark.benchmark(group="figure4")
@pytest.mark.parametrize("dataset", ["wc98", "snmp"])
def test_figure4_centralized_error_vs_memory(
    benchmark, dataset, bench_records, bench_epsilons, bench_max_keys
):
    """One run per data set; prints the figure's rows (variant, eps, memory, error)."""

    def run():
        return run_centralized_error_experiment(
            dataset=dataset,
            epsilons=bench_epsilons,
            num_records=bench_records,
            max_keys_per_range=bench_max_keys,
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["rows"] = len(rows)
    benchmark.extra_info["dataset"] = dataset

    emit("Figure 4 (%s): observed error vs memory, centralized" % dataset,
         format_centralized_rows(rows))

    # Qualitative checks mirroring the paper's conclusions.
    for row in rows:
        assert row.average_error <= row.epsilon, "observed error must stay below epsilon"
    eh = {r.epsilon: r.memory_bytes for r in rows if r.variant == "ECM-EH" and r.query_type == "point"}
    dw = {r.epsilon: r.memory_bytes for r in rows if r.variant == "ECM-DW" and r.query_type == "point"}
    rw = {r.epsilon: r.memory_bytes for r in rows if r.variant == "ECM-RW" and r.query_type == "point"}
    for epsilon in eh:
        assert eh[epsilon] < dw[epsilon], "ECM-EH must be more compact than ECM-DW"
        assert rw[epsilon] > 5 * eh[epsilon], "ECM-RW must cost at least several times ECM-EH"
