"""Benchmarks of the hierarchical query engine (paper Section 6.1).

Covers the three performance claims of the vectorized query-engine work:

* **Batched ingest** — ``HierarchicalECMSketch.add_many`` (NumPy all-level
  prefixes feeding each level's ``ECMSketch.add_many``) must be at least 3x
  faster than the scalar ``add`` loop at batch size 1024 on a 16-bit
  universe (byte-identical state, enforced by the equivalence suite).
* **Batched descent** — the level-synchronized BFS heavy-hitter descent must
  be at least as fast as the scalar depth-first reference on a 20-bit
  universe (identical detections, enforced by the equivalence suite).  The
  strict CI gate allows a 0.9x noise margin on the millisecond-scale
  descent timings; the report prints the measured ratio.
* **Shared-scan quantiles** — ``quantiles`` resolving many fractions from
  one memo of dyadic prefix estimates vs one full binary search per
  fraction.

Run standalone (``PYTHONPATH=src python benchmarks/bench_query_engine.py
[--json out.json]``) for the report the CI benchmark job archives, or via
``pytest benchmarks/bench_query_engine.py`` for pytest-benchmark timings.
"""

from __future__ import annotations

import argparse
import json
import random
import time

import numpy as np
import pytest

from repro.queries import HierarchicalECMSketch

WINDOW = 1_000_000.0
#: Batch size of the headline ingest comparison (the acceptance point).
BATCH_SIZE = 1_024
#: Universe of the ingest comparison (16 dyadic levels).
INGEST_UNIVERSE_BITS = 16
#: Arrivals of the ingest comparison.
INGEST_RECORDS = 4_096
#: Universe of the heavy-hitter descent comparison (20 dyadic levels).
DESCENT_UNIVERSE_BITS = 20
#: Arrivals of the descent comparison.
DESCENT_RECORDS = 60_000
#: Relative threshold of the descent comparison (dense frontier).
DESCENT_PHI = 0.0002


def _ingest_workload(seed: int = 1):
    """Uniform integer keys + monotone clocks for the ingest comparison."""
    rng = random.Random(seed)
    keys = [rng.randrange(1 << INGEST_UNIVERSE_BITS) for _ in range(INGEST_RECORDS)]
    clocks: list[float] = []
    clock = 0.0
    for _ in range(INGEST_RECORDS):
        clock += rng.random()
        clocks.append(clock)
    return keys, clocks


def _build_stack(universe_bits: int, epsilon: float = 0.05) -> HierarchicalECMSketch:
    return HierarchicalECMSketch(
        universe_bits=universe_bits, epsilon=epsilon, delta=0.1, window=WINDOW
    )


def _descent_stack(seed: int = 1):
    """A 20-bit stack fed a heavy-tailed stream, plus its query clock."""
    rng = random.Random(seed)
    limit = (1 << DESCENT_UNIVERSE_BITS) - 1
    keys = np.array(
        [min(int(rng.paretovariate(1.05)) - 1, limit) for _ in range(DESCENT_RECORDS)]
    )
    clocks: list[float] = []
    clock = 0.0
    for _ in range(DESCENT_RECORDS):
        clock += rng.random()
        clocks.append(clock)
    stack = _build_stack(DESCENT_UNIVERSE_BITS, epsilon=0.02)
    for start in range(0, DESCENT_RECORDS, 8_192):
        stop = start + 8_192
        stack.add_many(keys[start:stop], clocks[start:stop])
    return stack, clocks[-1]


def _timed(thunk) -> float:
    start = time.perf_counter()
    thunk()
    return time.perf_counter() - start


def _best_of(thunk, rounds: int = 3) -> float:
    return min(_timed(thunk) for _ in range(rounds))


# ------------------------------------------------------------ pytest-benchmark
@pytest.mark.benchmark(group="hierarchical-ingest")
def test_ingest_scalar(benchmark):
    keys, clocks = _ingest_workload()

    def run():
        stack = _build_stack(INGEST_UNIVERSE_BITS)
        for key, clock in zip(keys, clocks, strict=False):
            stack.add(key, clock)
        return stack

    benchmark(run)


@pytest.mark.benchmark(group="hierarchical-ingest")
def test_ingest_batched(benchmark):
    keys, clocks = _ingest_workload()
    keys_array = np.asarray(keys)

    def run():
        stack = _build_stack(INGEST_UNIVERSE_BITS)
        for start in range(0, len(keys), BATCH_SIZE):
            stop = start + BATCH_SIZE
            stack.add_many(keys_array[start:stop], clocks[start:stop])
        return stack

    benchmark(run)


@pytest.mark.benchmark(group="heavy-hitter-descent")
def test_descent_scalar(benchmark):
    stack, now = _descent_stack()
    benchmark(lambda: stack.heavy_hitters(phi=DESCENT_PHI, now=now, batched=False))


@pytest.mark.benchmark(group="heavy-hitter-descent")
def test_descent_batched(benchmark):
    stack, now = _descent_stack()
    benchmark(lambda: stack.heavy_hitters(phi=DESCENT_PHI, now=now, batched=True))


def test_query_engine_speedup_report(capsys):
    """Measure and report the batched-over-scalar ratios of the query engine.

    The acceptance bars are a >= 3x ingest speedup at batch size 1024 and a
    batched descent at least as fast as the scalar reference on a 20-bit
    universe.  Wall-clock ratios are noisy on loaded machines, so the floors
    are only enforced when REPRO_BENCH_STRICT=1 (as in a dedicated perf job).
    """
    import os

    results = _run_query_engine_comparison()
    with capsys.disabled():
        print(
            "\ningest %d records (universe 2**%d): scalar %.3fs, batched(%d) %.3fs "
            "-> %.2fx speedup"
            % (
                INGEST_RECORDS,
                INGEST_UNIVERSE_BITS,
                results["ingest"]["scalar_seconds"],
                BATCH_SIZE,
                results["ingest"]["batched_seconds"],
                results["ingest"]["speedup"],
            )
        )
        print(
            "heavy-hitter descent (universe 2**%d, %d hitters): scalar %.4fs, "
            "batched %.4fs -> %.2fx speedup"
            % (
                DESCENT_UNIVERSE_BITS,
                results["descent"]["hitters"],
                results["descent"]["scalar_seconds"],
                results["descent"]["batched_seconds"],
                results["descent"]["speedup"],
            )
        )
        print(
            "quantiles (9 fractions): per-fraction %.4fs, shared-scan %.4fs "
            "-> %.2fx speedup"
            % (
                results["quantiles"]["scalar_seconds"],
                results["quantiles"]["shared_scan_seconds"],
                results["quantiles"]["speedup"],
            )
        )
    if os.environ.get("REPRO_BENCH_STRICT") == "1":
        assert results["ingest"]["speedup"] >= 3.0, (
            "hierarchical ingest speedup regressed to %.2fx (< 3x floor)"
            % (results["ingest"]["speedup"],)
        )
        # The descent rounds are millisecond-scale, so the gate leaves a
        # noise margin below the "at least as fast as scalar" target the
        # report prints (measured ~1.3x on an idle machine).
        assert results["descent"]["speedup"] >= 0.9, (
            "batched descent regressed to %.2fx of scalar (< 0.9x floor)"
            % (results["descent"]["speedup"],)
        )


# -------------------------------------------------------------- report helpers
def _run_query_engine_comparison(rounds: int = 3) -> dict[str, dict[str, float]]:
    """Scalar-vs-batched timings for ingest, descent and quantiles."""
    keys, clocks = _ingest_workload()
    keys_array = np.asarray(keys)

    def ingest_scalar():
        stack = _build_stack(INGEST_UNIVERSE_BITS)
        for key, clock in zip(keys, clocks, strict=False):
            stack.add(key, clock)

    def ingest_batched():
        stack = _build_stack(INGEST_UNIVERSE_BITS)
        for start in range(0, len(keys), BATCH_SIZE):
            stop = start + BATCH_SIZE
            stack.add_many(keys_array[start:stop], clocks[start:stop])

    scalar_seconds = _best_of(ingest_scalar, rounds)
    batched_seconds = _best_of(ingest_batched, rounds)

    stack, now = _descent_stack()
    detected_batched = stack.heavy_hitters(phi=DESCENT_PHI, now=now, batched=True)
    detected_scalar = stack.heavy_hitters(phi=DESCENT_PHI, now=now, batched=False)
    assert detected_batched == detected_scalar
    descent_scalar = _best_of(
        lambda: stack.heavy_hitters(phi=DESCENT_PHI, now=now, batched=False), max(rounds, 5)
    )
    descent_batched = _best_of(
        lambda: stack.heavy_hitters(phi=DESCENT_PHI, now=now, batched=True), max(rounds, 5)
    )

    fractions = [0.1 * step for step in range(1, 10)]
    assert stack.quantiles(fractions, now=now) == [
        stack.quantile(fraction, now=now) for fraction in fractions
    ]
    quantiles_scalar = _best_of(
        lambda: [stack.quantile(fraction, now=now) for fraction in fractions], rounds
    )
    quantiles_shared = _best_of(lambda: stack.quantiles(fractions, now=now), rounds)

    return {
        "ingest": {
            "records": INGEST_RECORDS,
            "universe_bits": INGEST_UNIVERSE_BITS,
            "batch_size": BATCH_SIZE,
            "scalar_seconds": scalar_seconds,
            "batched_seconds": batched_seconds,
            "speedup": scalar_seconds / batched_seconds,
        },
        "descent": {
            "records": DESCENT_RECORDS,
            "universe_bits": DESCENT_UNIVERSE_BITS,
            "phi": DESCENT_PHI,
            "hitters": len(detected_batched),
            "scalar_seconds": descent_scalar,
            "batched_seconds": descent_batched,
            "speedup": descent_scalar / descent_batched,
        },
        "quantiles": {
            "fractions": len(fractions),
            "scalar_seconds": quantiles_scalar,
            "shared_scan_seconds": quantiles_shared,
            "speedup": quantiles_scalar / quantiles_shared,
        },
    }


def main(argv: list[str] | None = None) -> None:
    """Standalone report (no pytest needed); optionally persists JSON.

    The CI benchmark job runs this with ``--json BENCH_query_engine.json``
    and uploads the file next to the parallel-runner trajectory artifact.
    """
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", type=str, default=None, help="write results to this file")
    parser.add_argument("--rounds", type=int, default=3, help="timing rounds (min is kept)")
    args = parser.parse_args(argv)

    results = _run_query_engine_comparison(rounds=args.rounds)
    print("Hierarchical ingest (%d records, universe 2**%d, batch %d):" % (
        INGEST_RECORDS, INGEST_UNIVERSE_BITS, BATCH_SIZE,
    ))
    print(
        "  scalar %7.3fs   batched %7.3fs   speedup %5.2fx"
        % (
            results["ingest"]["scalar_seconds"],
            results["ingest"]["batched_seconds"],
            results["ingest"]["speedup"],
        )
    )
    print("Heavy-hitter descent (universe 2**%d, phi=%g, %d hitters):" % (
        DESCENT_UNIVERSE_BITS, DESCENT_PHI, results["descent"]["hitters"],
    ))
    print(
        "  scalar %7.4fs   batched %7.4fs   speedup %5.2fx"
        % (
            results["descent"]["scalar_seconds"],
            results["descent"]["batched_seconds"],
            results["descent"]["speedup"],
        )
    )
    print("Quantiles (%d fractions, shared scan vs per-fraction search):" % (
        results["quantiles"]["fractions"],
    ))
    print(
        "  per-fraction %7.4fs   shared-scan %7.4fs   speedup %5.2fx"
        % (
            results["quantiles"]["scalar_seconds"],
            results["quantiles"]["shared_scan_seconds"],
            results["quantiles"]["speedup"],
        )
    )

    if args.json:
        payload = {"benchmark": "bench_query_engine", **results}
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("results written to %s" % args.json)


if __name__ == "__main__":
    main()
