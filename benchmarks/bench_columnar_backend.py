"""Benchmarks of the accelerated (columnar / compiled-kernel) ECM backends.

Covers the performance claims of the columnar-store and kernel work against
the object-per-cell reference backend at identical configuration (all
backends produce byte-identical estimates and serialized state, enforced by
``tests/core/test_columnar_equivalence.py``):

* **Batched ingest** — ``ECMSketch.add_many`` at batch size 1024 must be at
  least 2x faster on the NumPy columnar backend and at least 5x faster when
  the numba-compiled kernels are active (all hash rows cascade in one pass
  over the shared arrays).  Measured on the same non-expiring-window workload
  as the earlier ingest benchmarks (``bench_micro_structures``/
  ``bench_query_engine``), plus a secondary expiring-window row where
  window-crossing runs take the exact reference fallback.
* **Expire sweep** — ``ECMSketch.expire`` sweeps the whole ``w x d`` grid in
  one pass.  The steady-state sweep (the common coordinator case: little or
  nothing to drop) is where the oldest-end gate shines; the first sweep after
  a long quiet period, which compacts half the grid, must not fall behind
  the object backend (>= 1x) even on the NumPy path.
* **Point queries** — ``point_query_many`` reads deduplicated cells straight
  out of the arrays.
* **Resident memory** — the columnar ``memory_bytes()`` (true array
  allocation) must undercut what the object backend actually holds resident
  (per-bucket Python objects), while both report the same paper-model
  ``synopsis_bytes()``.

Every timing row carries a ``backend`` label naming the accelerated backend
it measured (``"kernels"`` when numba is installed, ``"columnar"``
otherwise).  ``benchmarks/compare_bench.py`` reads those labels and never
diffs a kernel ratio against a NumPy baseline or vice versa.

Run standalone (``PYTHONPATH=src python benchmarks/bench_columnar_backend.py
[--json out.json]``) for the report the CI benchmark job archives, or via
``pytest benchmarks/bench_columnar_backend.py`` for pytest-benchmark timings.
"""

from __future__ import annotations

import argparse
import json
import random
import time

import numpy as np
import pytest

from repro.core import ECMConfig, ECMSketch
from repro.serialization import dumps
from repro.windows._eh_kernels import kernels_compiled

#: Headline window: nothing expires during the workload (the PR-3 ingest
#: benchmarks' setting, so the 2x acceptance bar is measured like-for-like).
WINDOW = 1_000_000.0
#: Expiring window: roughly half the workload leaves the window, exercising
#: the expiry machinery and the reference fallback of window-crossing runs.
EXPIRING_WINDOW = 8_192.0
#: Total point-query error budget (width 111 x depth 3 at this setting).
EPSILON = 0.05
#: Batch size of the headline ingest comparison (the acceptance point).
BATCH_SIZE = 1_024
#: Arrivals of the ingest comparison.
INGEST_RECORDS = 16_384
#: Key domain (uniform keys; every Count-Min column stays hot).
KEY_BITS = 16
#: Items per point-query batch.
QUERY_BATCH = 4_096


def _accelerated_backend() -> str:
    """The accelerated backend this run measures (registry auto-selection)."""
    config = ECMConfig.for_point_queries(epsilon=EPSILON, delta=0.1, window=WINDOW)
    return config.resolved_backend


def _workload(seed: int = 1):
    rng = random.Random(seed)
    keys = np.asarray([rng.randrange(1 << KEY_BITS) for _ in range(INGEST_RECORDS)])
    clocks: list[float] = []
    clock = 0.0
    for _ in range(INGEST_RECORDS):
        clock += rng.random()
        clocks.append(clock)
    return keys, clocks


def _build(backend: str, keys, clocks, window: float = WINDOW) -> ECMSketch:
    sketch = ECMSketch.for_point_queries(
        epsilon=EPSILON, delta=0.1, window=window, backend=backend
    )
    for start in range(0, len(keys), BATCH_SIZE):
        stop = start + BATCH_SIZE
        sketch.add_many(keys[start:stop], clocks[start:stop])
    return sketch


def _timed(thunk) -> float:
    start = time.perf_counter()
    thunk()
    return time.perf_counter() - start


def _best_of(thunk, rounds: int = 3) -> float:
    return min(_timed(thunk) for _ in range(rounds))


# ------------------------------------------------------------ pytest-benchmark
@pytest.mark.benchmark(group="columnar-ingest")
def test_ingest_object_backend(benchmark):
    keys, clocks = _workload()
    benchmark(lambda: _build("object", keys, clocks))


@pytest.mark.benchmark(group="columnar-ingest")
def test_ingest_columnar_backend(benchmark):
    keys, clocks = _workload()
    benchmark(lambda: _build("columnar", keys, clocks))


@pytest.mark.benchmark(group="columnar-ingest")
def test_ingest_kernel_backend(benchmark):
    if not kernels_compiled():
        pytest.skip("numba not installed: no compiled kernels to time")
    keys, clocks = _workload()
    benchmark(lambda: _build("kernels", keys, clocks))


def test_columnar_backend_report(capsys):
    """Measure and report accelerated-vs-object ratios for the whole lifecycle.

    The acceptance bars are a >= 2x batched-ingest speedup at batch size 1024
    on the NumPy columnar backend (>= 5x with compiled kernels), a compacting
    expire sweep no slower than the object backend, and a lower reported
    memory footprint than the object backend's resident object graph.
    Wall-clock ratios are noisy on loaded machines, so the timing floors are
    only enforced when REPRO_BENCH_STRICT=1 (as in a dedicated perf job); the
    memory comparison is deterministic and always enforced.
    """
    import os

    results = _run_columnar_comparison()
    backend = results["ingest"]["backend"]
    with capsys.disabled():
        print(
            "\ningest %d records (batch %d): object %.3fs, %s %.3fs -> %.2fx"
            % (
                INGEST_RECORDS,
                BATCH_SIZE,
                results["ingest"]["object_seconds"],
                backend,
                results["ingest"]["accel_seconds"],
                results["ingest"]["speedup"],
            )
        )
        print(
            "ingest, expiring window %g: object %.3fs, %s %.3fs -> %.2fx"
            % (
                EXPIRING_WINDOW,
                results["ingest_expiring"]["object_seconds"],
                backend,
                results["ingest_expiring"]["accel_seconds"],
                results["ingest_expiring"]["speedup"],
            )
        )
        print(
            "steady-state expire sweep (%dx%d grid): object %.1fus, %s %.1fus -> %.2fx"
            % (
                results["grid"]["depth"],
                results["grid"]["width"],
                results["expire_steady"]["object_seconds"] * 1e6,
                backend,
                results["expire_steady"]["accel_seconds"] * 1e6,
                results["expire_steady"]["speedup"],
            )
        )
        print(
            "compacting expire sweep (drops ~half the grid): object %.1fus, "
            "%s %.1fus -> %.2fx"
            % (
                results["expire_compacting"]["object_seconds"] * 1e6,
                backend,
                results["expire_compacting"]["accel_seconds"] * 1e6,
                results["expire_compacting"]["speedup"],
            )
        )
        print(
            "point_query_many (%d items): object %.4fs, %s %.4fs -> %.2fx"
            % (
                QUERY_BATCH,
                results["queries"]["object_seconds"],
                backend,
                results["queries"]["accel_seconds"],
                results["queries"]["speedup"],
            )
        )
        print(
            "memory: %s arrays %.0f KiB vs object resident %.0f KiB "
            "(%.2fx; shared synopsis model %.0f KiB)"
            % (
                backend,
                results["memory"]["columnar_bytes"] / 1024.0,
                results["memory"]["object_resident_bytes"] / 1024.0,
                results["memory"]["ratio"],
                results["memory"]["synopsis_bytes"] / 1024.0,
            )
        )
    # The memory claim is deterministic: no noise margin needed.
    assert results["memory"]["columnar_bytes"] < results["memory"]["object_resident_bytes"]
    if os.environ.get("REPRO_BENCH_STRICT") == "1":
        ingest_floor = 5.0 if backend == "kernels" and kernels_compiled() else 2.0
        assert results["ingest"]["speedup"] >= ingest_floor, (
            "%s ingest speedup regressed to %.2fx (< %.0fx floor)"
            % (backend, results["ingest"]["speedup"], ingest_floor)
        )
        # The steady-state sweep runs ~30x faster on an idle machine; the
        # query ratio ~1.5-3x.  The gates leave noise margins below those.
        assert results["expire_steady"]["speedup"] >= 2.0, (
            "%s steady-state expire sweep regressed to %.2fx (< 2x floor)"
            % (backend, results["expire_steady"]["speedup"])
        )
        assert results["expire_compacting"]["speedup"] >= 1.0, (
            "%s compacting expire sweep fell behind the object backend "
            "(%.2fx < 1x floor)" % (backend, results["expire_compacting"]["speedup"])
        )
        assert results["queries"]["speedup"] >= 1.0, (
            "%s point queries regressed to %.2fx of the object backend"
            % (backend, results["queries"]["speedup"])
        )


# -------------------------------------------------------------- report helpers
def _run_columnar_comparison(rounds: int = 3) -> dict[str, dict[str, float]]:
    """Accelerated-vs-object timings for ingest, expiry, queries and memory.

    The accelerated side is whatever backend the registry auto-selects for
    this environment; every timing row is labelled with its name so the
    regression guard can refuse cross-backend comparisons.
    """
    accel = _accelerated_backend()
    keys, clocks = _workload()
    now = clocks[-1]

    ingest_object = _best_of(lambda: _build("object", keys, clocks), rounds)
    ingest_accel = _best_of(lambda: _build(accel, keys, clocks), rounds)
    expiring_object = _best_of(
        lambda: _build("object", keys, clocks, EXPIRING_WINDOW), rounds
    )
    expiring_accel = _best_of(
        lambda: _build(accel, keys, clocks, EXPIRING_WINDOW), rounds
    )

    object_sketch = _build("object", keys, clocks)
    accel_sketch = _build(accel, keys, clocks)
    # The backends must be byte-identical before their timings mean anything.
    assert dumps(object_sketch) == dumps(accel_sketch)

    # Compacting sweep: first expiry after a long quiet period, dropping
    # roughly half the retained buckets — each timing round needs a fresh
    # build.  Steady-state sweep: the immediately following call, where the
    # oldest-end gate short-circuits the whole grid.
    def sweep_pair(backend: str):
        sketch = _build(backend, keys, clocks, EXPIRING_WINDOW)
        horizon = now + EXPIRING_WINDOW / 2
        first = _timed(lambda: sketch.expire(horizon))
        steady = min(_timed(lambda: sketch.expire(horizon)) for _ in range(5))
        return first, steady

    compacting_object, steady_object = min(sweep_pair("object") for _ in range(rounds))
    compacting_accel, steady_accel = min(sweep_pair(accel) for _ in range(rounds))

    query_keys = keys[:QUERY_BATCH]
    expected = object_sketch.point_query_many(query_keys, None, now)
    assert accel_sketch.point_query_many(query_keys, None, now) == expected
    queries_object = _best_of(
        lambda: object_sketch.point_query_many(query_keys, None, now), rounds
    )
    queries_accel = _best_of(
        lambda: accel_sketch.point_query_many(query_keys, None, now), rounds
    )

    return {
        "grid": {"width": object_sketch.width, "depth": object_sketch.depth},
        "ingest": {
            "backend": accel,
            "records": INGEST_RECORDS,
            "batch_size": BATCH_SIZE,
            "window": WINDOW,
            "object_seconds": ingest_object,
            "accel_seconds": ingest_accel,
            "speedup": ingest_object / ingest_accel,
        },
        "ingest_expiring": {
            "backend": accel,
            "records": INGEST_RECORDS,
            "batch_size": BATCH_SIZE,
            "window": EXPIRING_WINDOW,
            "object_seconds": expiring_object,
            "accel_seconds": expiring_accel,
            "speedup": expiring_object / expiring_accel,
        },
        "expire_steady": {
            "backend": accel,
            "object_seconds": steady_object,
            "accel_seconds": steady_accel,
            "speedup": steady_object / steady_accel,
        },
        "expire_compacting": {
            "backend": accel,
            "object_seconds": compacting_object,
            "accel_seconds": compacting_accel,
            "speedup": compacting_object / compacting_accel,
        },
        "queries": {
            "backend": accel,
            "items": QUERY_BATCH,
            "object_seconds": queries_object,
            "accel_seconds": queries_accel,
            "speedup": queries_object / queries_accel,
        },
        "memory": {
            "backend": accel,
            "columnar_bytes": accel_sketch.memory_bytes(),
            "object_resident_bytes": object_sketch.resident_memory_bytes(),
            "synopsis_bytes": accel_sketch.synopsis_bytes(),
            "ratio": accel_sketch.memory_bytes() / object_sketch.resident_memory_bytes(),
        },
    }


def main(argv: list[str] | None = None) -> None:
    """Standalone report (no pytest needed); optionally persists JSON.

    The CI benchmark job runs this with ``--json BENCH_columnar.json`` and
    uploads the file next to the other perf-trajectory artifacts.
    """
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", type=str, default=None, help="write results to this file")
    parser.add_argument("--rounds", type=int, default=3, help="timing rounds (min is kept)")
    args = parser.parse_args(argv)

    results = _run_columnar_comparison(rounds=args.rounds)
    backend = results["ingest"]["backend"]
    print("%s vs object ECM backend (epsilon=%g, %dx%d grid):" % (
        backend, EPSILON, results["grid"]["depth"], results["grid"]["width"],
    ))
    for label, key, unit in (
        ("ingest (batch %d)" % BATCH_SIZE, "ingest", "s"),
        ("ingest, expiring window", "ingest_expiring", "s"),
        ("steady-state expire sweep", "expire_steady", "us"),
        ("compacting expire sweep", "expire_compacting", "us"),
        ("point queries (%d)" % QUERY_BATCH, "queries", "s"),
    ):
        scale = 1e6 if unit == "us" else 1.0
        print(
            "  %-26s object %9.3f%s   %-8s %9.3f%s   speedup %5.2fx"
            % (
                label + ":",
                results[key]["object_seconds"] * scale,
                unit,
                backend,
                results[key]["accel_seconds"] * scale,
                unit,
                results[key]["speedup"],
            )
        )
    print(
        "  memory:                    %s %6.0f KiB vs object resident %6.0f KiB "
        "(synopsis %6.0f KiB)"
        % (
            backend,
            results["memory"]["columnar_bytes"] / 1024.0,
            results["memory"]["object_resident_bytes"] / 1024.0,
            results["memory"]["synopsis_bytes"] / 1024.0,
        )
    )

    if args.json:
        payload = {"benchmark": "bench_columnar_backend", "backend": backend, **results}
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("results written to %s" % args.json)


if __name__ == "__main__":
    main()
