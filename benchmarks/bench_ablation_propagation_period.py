"""Ablation: propagation period of the continuous-query coordinator.

An extension beyond the paper's one-shot aggregation experiments (and in the
spirit of the scheduled-propagation work it cites): the coordinator
re-aggregates the distributed ECM-sketches every ``period`` stream-seconds and
answers continuous queries from the latest aggregate.  The ablation sweeps the
period and reports the communication cost against the worst observed error of
point queries asked right before each refresh (i.e. at maximum staleness).
"""

from __future__ import annotations

import pytest

from repro.baselines import ExactStreamSummary
from repro.core import ECMConfig
from repro.distributed import PeriodicAggregationCoordinator
from repro.experiments import PAPER_WINDOW_SECONDS, load_dataset

from .conftest import emit

PERIODS = (200_000.0, 100_000.0, 50_000.0, 25_000.0)


@pytest.mark.benchmark(group="ablations")
def test_ablation_propagation_period(benchmark, bench_records):
    """Sweep the aggregation period; print transfer volume vs staleness error."""
    stream = load_dataset("wc98", num_records=min(bench_records, 6_000))
    exact = ExactStreamSummary.from_stream(stream, window=PAPER_WINDOW_SECONDS)
    config = ECMConfig.for_point_queries(epsilon=0.1, delta=0.1, window=PAPER_WINDOW_SECONDS)
    probe_keys = [key for key, _ in sorted(
        exact.frequencies_in_range(None, stream.end_time()).items(), key=lambda kv: -kv[1]
    )[:20]]

    def run():
        results = []
        for period in PERIODS:
            coordinator = PeriodicAggregationCoordinator(num_nodes=16, config=config, period=period)
            worst_error = 0.0
            for record in stream:
                coordinator.observe_record(record)
                # Query at maximum staleness: right before each refresh.
                if coordinator.stats.rounds and record.timestamp - coordinator.last_round_clock > 0.9 * period:
                    arrivals = exact.arrivals(None, record.timestamp)
                    for key in probe_keys[:5]:
                        estimate = coordinator.query_frequency(key)
                        truth = exact.frequency(key, now=record.timestamp)
                        worst_error = max(worst_error, abs(estimate - truth) / max(arrivals, 1))
            results.append((period, coordinator.stats.rounds,
                            coordinator.stats.transfer_megabytes(), worst_error))
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["%12s %8s %14s %16s" % ("period (s)", "rounds", "transfer(MB)", "worst stale err")]
    lines.append("-" * len(lines[0]))
    for period, rounds, transfer, error in results:
        lines.append("%12.0f %8d %14.3f %16.4f" % (period, rounds, transfer, error))
    emit("Ablation: propagation period vs communication and staleness error",
         "\n".join(lines))

    # Shorter periods must cost more communication.
    transfers = [transfer for _, _, transfer, _ in results]
    assert transfers == sorted(transfers), "communication must grow as the period shrinks"
    # And even the longest period keeps the staleness error bounded (the
    # sliding window absorbs old data; staleness only hides recent arrivals).
    assert all(error <= 0.25 for _, _, _, error in results)
