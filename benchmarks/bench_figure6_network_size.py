"""Figure 6 — influence of the network size (Section 7.3).

Artificial networks of 1..256 servers (a reduced grid by default; set
``REPRO_BENCH_FULL=1`` for the paper's full grid) receive the wc'98 / snmp
records divided uniformly across the leaves of a balanced binary tree, with
epsilon = delta = 0.1.

Expected shape (paper): the ECM-EH observed error grows slowly with the number
of aggregation levels while the ECM-RW error is flat (lossless merging); the
transfer volume grows roughly linearly with the node count and is an order of
magnitude larger for ECM-RW.
"""

from __future__ import annotations

import pytest

from repro.experiments import format_network_size_rows, run_network_size_experiment

from .conftest import emit


@pytest.mark.benchmark(group="figure6")
@pytest.mark.parametrize("dataset", ["wc98", "snmp"])
def test_figure6_error_and_transfer_vs_network_size(
    benchmark, dataset, bench_records, bench_network_sizes, bench_max_keys
):
    """One run per data set; prints error and transfer volume per network size."""

    def run():
        return run_network_size_experiment(
            dataset=dataset,
            network_sizes=bench_network_sizes,
            epsilon=0.1,
            num_records=bench_records,
            max_keys_per_range=bench_max_keys,
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["dataset"] = dataset
    benchmark.extra_info["sizes"] = list(bench_network_sizes)

    emit("Figure 6 (%s): error and transfer volume vs number of nodes" % dataset,
         format_network_size_rows(rows))

    eh_rows = [row for row in rows if row.variant == "ECM-EH"]
    rw_rows = [row for row in rows if row.variant == "ECM-RW"]
    largest = max(bench_network_sizes)

    for row in rows:
        assert row.point_average_error <= row.epsilon, "error must stay below epsilon at every size"
    # Transfer volume grows with the network size for both variants.
    assert eh_rows[0].transfer_bytes < eh_rows[-1].transfer_bytes
    assert rw_rows[0].transfer_bytes <= rw_rows[-1].transfer_bytes
    # At the largest size, lossless RW aggregation costs several times more network.
    eh_large = next(r for r in eh_rows if r.num_nodes == largest)
    rw_large = next(r for r in rw_rows if r.num_nodes == largest)
    assert rw_large.transfer_bytes > 5 * eh_large.transfer_bytes
