"""Figure 5 — distributed setup: observed error vs transfer volume (Section 7.3).

The observation sites of each data set (33 wc'98 mirrors; the snmp access
points, reduced from 535 to 64 at reproduction scale) form a balanced binary
aggregation tree.  For every epsilon, local ECM-sketches are aggregated to the
root and the observed error of root-level point and self-join queries is
plotted against the total transfer volume of the aggregation round.

Expected shape (paper): ECM-EH error stays below epsilon even after iterative
aggregation, while its transfer volume is at least an order of magnitude lower
than ECM-RW's lossless aggregation.
"""

from __future__ import annotations

import pytest

from repro.experiments import format_distributed_rows, run_distributed_error_experiment

from .conftest import emit

#: snmp's 535 APs are reduced at benchmark scale; wc98 keeps its 33 mirrors.
NODE_COUNTS = {"wc98": 33, "snmp": 64}


@pytest.mark.benchmark(group="figure5")
@pytest.mark.parametrize("dataset", ["wc98", "snmp"])
def test_figure5_distributed_error_vs_transfer(
    benchmark, dataset, bench_records, bench_epsilons, bench_max_keys
):
    """One run per data set; prints error-vs-transfer rows for ECM-EH and ECM-RW."""

    def run():
        return run_distributed_error_experiment(
            dataset=dataset,
            epsilons=bench_epsilons,
            num_records=bench_records,
            num_nodes=NODE_COUNTS[dataset],
            max_keys_per_range=bench_max_keys,
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["dataset"] = dataset
    benchmark.extra_info["nodes"] = NODE_COUNTS[dataset]

    emit("Figure 5 (%s): observed error vs transfer volume, distributed" % dataset,
         format_distributed_rows(rows))

    for row in rows:
        assert row.average_error <= row.epsilon, "aggregated error must stay below epsilon"
    for epsilon in bench_epsilons:
        eh = next(r for r in rows if r.variant == "ECM-EH" and r.query_type == "point" and r.epsilon == epsilon)
        rw = next(r for r in rows if r.variant == "ECM-RW" and r.query_type == "point" and r.epsilon == epsilon)
        assert rw.transfer_bytes > 5 * eh.transfer_bytes, (
            "ECM-RW aggregation must cost several times more network than ECM-EH"
        )
