"""Bench-regression guard: diff fresh BENCH_*.json files against baselines.

The nightly CI benchmark job regenerates the perf-trajectory JSON files
(``BENCH_pr2.json``, ``BENCH_query_engine.json``, ``BENCH_columnar.json``,
``BENCH_service.json``) and, instead of only uploading them as artifacts,
runs this script to compare every *speedup ratio* in the fresh results
against the committed baselines.  Speedup ratios are within-run comparisons
(vectorized vs reference on the same machine, same load), so they transfer
across runner hardware in a way absolute rates do not — which is why only
keys named ``speedup`` are gated.

A fresh speedup may drift below its baseline by at most ``--tolerance``
(default 25%); anything worse fails the job::

    python benchmarks/compare_bench.py \\
        --pair BENCH_pr2.json fresh/BENCH_pr2.json \\
        --pair BENCH_columnar.json fresh/BENCH_columnar.json

``--self-test`` proves the guard actually guards: it synthesises a 30%
slowdown and exits non-zero unless the comparison flags it.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Iterator
from typing import Any

#: Fractional slack a fresh speedup may lose against its baseline.
DEFAULT_TOLERANCE = 0.25

#: Ceiling on any required floor.  Very large ratios (a 33x steady-state
#: expire sweep, say) are the most hardware-sensitive numbers in the suite:
#: what matters on a different runner is that the optimization has not
#: collapsed, not that it reproduces the committed multiple within 25%.
#: Floors derived from such baselines are clamped here; per-benchmark noise
#: floors below the clamp stay governed by the 25% tolerance.
DEFAULT_FLOOR_CLAMP = 4.0

#: Leaf keys treated as gated speedup ratios.
RATIO_KEYS = frozenset(["speedup"])


def iter_ratio_leaves(
    tree: Any, prefix: str = "", backend: str | None = None
) -> Iterator[tuple[str, tuple[float, str | None]]]:
    """Yield ``(dotted.path, (value, backend))`` for every gated ratio leaf.

    ``backend`` is the nearest enclosing dict's ``"backend"`` label (rows
    measured against the compiled kernels vs the NumPy columnar path carry
    different labels, and their ratios must never be diffed against each
    other).
    """
    if isinstance(tree, dict):
        label = tree.get("backend")
        if isinstance(label, str):
            backend = label
        for key in sorted(tree):
            path = "%s.%s" % (prefix, key) if prefix else str(key)
            value = tree[key]
            if key in RATIO_KEYS and isinstance(value, (int, float)) and not isinstance(value, bool):
                yield path, (float(value), backend)
            else:
                yield from iter_ratio_leaves(value, path, backend)
    elif isinstance(tree, list):
        for index, value in enumerate(tree):
            yield from iter_ratio_leaves(value, "%s[%d]" % (prefix, index), backend)


def compare_trees(
    baseline: Any,
    fresh: Any,
    tolerance: float,
    floor_clamp: float = DEFAULT_FLOOR_CLAMP,
) -> tuple[list[str], list[str]]:
    """Compare two benchmark trees; returns (report_lines, regression_lines)."""
    baseline_leaves = dict(iter_ratio_leaves(baseline))
    fresh_leaves = dict(iter_ratio_leaves(fresh))
    report: list[str] = []
    regressions: list[str] = []
    for path, (base_value, base_backend) in sorted(baseline_leaves.items()):
        fresh_entry = fresh_leaves.get(path)
        if fresh_entry is None:
            report.append("  MISSING  %-48s baseline %6.2fx, absent in fresh run" % (path, base_value))
            regressions.append("%s: ratio missing from the fresh results" % path)
            continue
        fresh_value, fresh_backend = fresh_entry
        if base_backend != fresh_backend:
            # A kernel ratio against a NumPy baseline (or vice versa) is not
            # a regression signal — different code paths, different bars.
            report.append(
                "  skipped  %-48s backend changed: %s -> %s (baseline %.2fx, fresh %.2fx)"
                % (path, base_backend or "unlabelled", fresh_backend or "unlabelled",
                   base_value, fresh_value)
            )
            continue
        floor = min(base_value * (1.0 - tolerance), floor_clamp)
        status = "ok" if fresh_value >= floor else "REGRESSED"
        report.append(
            "  %-10s%-48s baseline %6.2fx   fresh %6.2fx   floor %6.2fx"
            % (status, path, base_value, fresh_value, floor)
        )
        if fresh_value < floor:
            regressions.append(
                "%s: %.2fx -> %.2fx (%.0f%% below baseline; tolerance %.0f%%)"
                % (
                    path,
                    base_value,
                    fresh_value,
                    100.0 * (1.0 - fresh_value / base_value),
                    100.0 * tolerance,
                )
            )
    for path in sorted(set(fresh_leaves) - set(baseline_leaves)):
        report.append(
            "  new      %-48s fresh %6.2fx (no baseline yet)" % (path, fresh_leaves[path][0])
        )
    return report, regressions


def compare_files(
    baseline_path: str,
    fresh_path: str,
    tolerance: float,
    floor_clamp: float = DEFAULT_FLOOR_CLAMP,
) -> tuple[list[str], list[str]]:
    """Compare one baseline/fresh file pair."""
    with open(baseline_path, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    with open(fresh_path, "r", encoding="utf-8") as handle:
        fresh = json.load(handle)
    return compare_trees(baseline, fresh, tolerance, floor_clamp)


def self_test(tolerance: float = DEFAULT_TOLERANCE) -> int:
    """Prove the guard catches a synthetic 30% slowdown (and passes a 10% one)."""
    baseline = {
        "ingest": {"speedup": 3.0, "records": 1000},
        "stages": [{"name": "merge", "speedup": 2.0}],
        "meta": {"benchmark": "self-test"},
    }
    slowdown_30 = json.loads(json.dumps(baseline))
    slowdown_30["ingest"]["speedup"] = 3.0 * 0.70  # 30% regression: must fail
    slowdown_10 = json.loads(json.dumps(baseline))
    slowdown_10["stages"][0]["speedup"] = 2.0 * 0.90  # 10% drift: within tolerance
    clamped = {"sweep": {"speedup": 30.0}}
    clamped_fresh = {"sweep": {"speedup": 5.0}}  # above the clamp: must pass
    # A kernel run diffed against a NumPy baseline: the ratio halves, but the
    # backend label changed, so the guard must skip the row, not flag it.
    numpy_baseline = {"ingest": {"backend": "kernels", "speedup": 8.0}}
    kernel_fresh = {"ingest": {"backend": "columnar", "speedup": 2.5}}

    _, must_fail = compare_trees(baseline, slowdown_30, tolerance)
    _, must_pass = compare_trees(baseline, slowdown_10, tolerance)
    _, missing = compare_trees(baseline, {"meta": {}}, tolerance)
    _, clamp_pass = compare_trees(clamped, clamped_fresh, tolerance)
    _, clamp_fail = compare_trees(clamped, {"sweep": {"speedup": 3.0}}, tolerance)
    backend_report, backend_switch = compare_trees(numpy_baseline, kernel_fresh, tolerance)

    failures: list[str] = []
    if not must_fail:
        failures.append("guard did not flag a 30%% speedup regression")
    if must_pass:
        failures.append("guard flagged a 10%% drift inside the tolerance: %s" % must_pass)
    if len(missing) != 2:
        failures.append("guard did not flag ratios missing from the fresh results")
    if clamp_pass:
        failures.append("floor clamp did not cap a 30x baseline at %gx: %s"
                        % (DEFAULT_FLOOR_CLAMP, clamp_pass))
    if not clamp_fail:
        failures.append("a collapse below the %gx clamp was not flagged" % DEFAULT_FLOOR_CLAMP)
    if backend_switch:
        failures.append(
            "guard diffed ratios across a backend change instead of skipping: %s"
            % backend_switch
        )
    if not any("skipped" in line and "backend changed" in line for line in backend_report):
        failures.append("guard did not report the backend-change skip")
    if failures:
        for failure in failures:
            print("self-test FAILED: %s" % failure)
        return 1
    print("self-test passed: 30%% slowdown flagged, 10%% drift tolerated, missing "
          "ratios flagged, cross-backend rows skipped, floors clamp at %gx "
          "(tolerance %.0f%%)"
          % (DEFAULT_FLOOR_CLAMP, 100.0 * tolerance))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--pair",
        nargs=2,
        action="append",
        metavar=("BASELINE", "FRESH"),
        default=[],
        help="one baseline/fresh JSON file pair to compare (repeatable)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="fractional speedup loss tolerated before failing (default 0.25)",
    )
    parser.add_argument(
        "--floor-clamp",
        type=float,
        default=DEFAULT_FLOOR_CLAMP,
        help="ceiling on any required floor; large committed ratios are the "
             "most hardware-sensitive, so their floors cap here (default %g)"
             % DEFAULT_FLOOR_CLAMP,
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="verify the guard flags a synthetic 30%% slowdown, then exit",
    )
    args = parser.parse_args(argv)
    if not (0.0 <= args.tolerance < 1.0):
        parser.error("--tolerance must be in [0, 1)")

    if args.self_test:
        return self_test(args.tolerance)
    if not args.pair:
        parser.error("nothing to do: pass --pair BASELINE FRESH (or --self-test)")

    all_regressions: dict[str, list[str]] = {}
    for baseline_path, fresh_path in args.pair:
        print("%s vs %s:" % (baseline_path, fresh_path))
        report, regressions = compare_files(
            baseline_path, fresh_path, args.tolerance, args.floor_clamp
        )
        for line in report:
            print(line)
        if regressions:
            all_regressions[baseline_path] = regressions
    if all_regressions:
        print("\nbench-regression guard FAILED:")
        for baseline_path, regressions in all_regressions.items():
            for regression in regressions:
                print("  %s: %s" % (baseline_path, regression))
        return 1
    print("\nbench-regression guard passed (%d pair%s, tolerance %.0f%%)"
          % (len(args.pair), "" if len(args.pair) == 1 else "s", 100.0 * args.tolerance))
    return 0


if __name__ == "__main__":
    sys.exit(main())
