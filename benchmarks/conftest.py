"""Shared configuration of the benchmark harness.

Every benchmark regenerates one table or figure of the paper at *reproduction
scale* (tens of thousands of synthetic records instead of the papers'
hundreds of millions of trace records) and prints the corresponding rows, so
running ``pytest benchmarks/ --benchmark-only -s`` produces the full set of
tables referenced in EXPERIMENTS.md.

Scale knobs (environment variables):

* ``REPRO_BENCH_RECORDS`` — records per trace (default 8000);
* ``REPRO_BENCH_FULL`` — set to ``1`` to run the paper's full parameter grids
  (all five epsilon values, all network sizes up to 256).
"""

from __future__ import annotations

import os

import pytest


def _records_default() -> int:
    return int(os.environ.get("REPRO_BENCH_RECORDS", "8000"))


def _full_grid() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "0") == "1"


@pytest.fixture(scope="session")
def bench_records() -> int:
    """Number of synthetic records per trace used by the benchmarks."""
    return _records_default()


@pytest.fixture(scope="session")
def bench_epsilons() -> tuple:
    """Epsilon sweep: the paper's five values, or a three-value subset by default."""
    if _full_grid():
        return (0.05, 0.10, 0.15, 0.20, 0.25)
    return (0.05, 0.10, 0.25)


@pytest.fixture(scope="session")
def bench_network_sizes() -> tuple:
    """Figure 6 network sizes: full 1..256 grid, or a subset by default."""
    if _full_grid():
        return (1, 2, 4, 8, 16, 32, 64, 128, 256)
    return (1, 4, 16, 64)


@pytest.fixture(scope="session")
def bench_max_keys() -> int:
    """Cap on evaluated point-query keys per range (keeps exact recounting fast)."""
    return 150


def emit(title: str, table: str) -> None:
    """Print one experiment table under a recognisable banner."""
    banner = "=" * 72
    print("\n%s\n%s\n%s\n%s" % (banner, title, banner, table))
