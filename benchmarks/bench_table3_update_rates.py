"""Table 3 — sustained update rates of the three ECM-sketch variants.

The paper reports updates/second for ECM-EH, ECM-DW and ECM-RW at epsilon=0.1
on both data sets (Java implementation: roughly 1.49M / 1.17M / 0.18M on
wc'98).  Absolute numbers are not comparable from pure Python; the reproduced
shape is the ordering and the rough ratios — ECM-EH fastest, ECM-DW slightly
slower, ECM-RW several times slower.
"""

from __future__ import annotations

import pytest

from repro.core.config import CounterType
from repro.experiments import (
    build_sketch,
    format_update_rate_rows,
    load_dataset,
    max_arrivals_bound,
    run_update_rate_experiment,
)

from .conftest import emit


@pytest.mark.benchmark(group="table3")
@pytest.mark.parametrize("dataset", ["wc98", "snmp"])
def test_table3_update_rate_table(benchmark, dataset, bench_records):
    """Prints the Table 3 rows for one data set and checks the ordering."""

    def run():
        return run_update_rate_experiment(dataset=dataset, epsilon=0.1, num_records=bench_records)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["dataset"] = dataset
    for row in rows:
        benchmark.extra_info[row.variant] = round(row.updates_per_second)

    emit("Table 3 (%s): update rates (updates/second), epsilon=0.1" % dataset,
         format_update_rate_rows(rows))

    rates = {row.variant: row.updates_per_second for row in rows}
    assert rates["ECM-EH"] > rates["ECM-DW"] * 0.8, "ECM-EH should be at least as fast as ECM-DW"
    assert rates["ECM-EH"] > 2 * rates["ECM-RW"], "ECM-RW should be several times slower"


@pytest.mark.benchmark(group="table3-micro")
@pytest.mark.parametrize(
    "counter_type",
    [CounterType.EXPONENTIAL_HISTOGRAM, CounterType.DETERMINISTIC_WAVE, CounterType.RANDOMIZED_WAVE],
    ids=["ECM-EH", "ECM-DW", "ECM-RW"],
)
def test_table3_per_variant_update_throughput(benchmark, counter_type, bench_records):
    """pytest-benchmark timing of the raw update loop, one variant at a time."""
    stream = load_dataset("wc98", num_records=min(bench_records, 5_000))
    records = stream.records

    def ingest():
        sketch = build_sketch(
            counter_type=counter_type,
            epsilon=0.1,
            delta=0.1,
            window=1_000_000.0,
            max_arrivals=max_arrivals_bound(stream),
        )
        for record in records:
            sketch.add(record.key, record.timestamp, record.value)
        return sketch

    sketch = benchmark.pedantic(ingest, rounds=3, iterations=1)
    benchmark.extra_info["records"] = len(records)
    # Synopsis model: keeps the recorded perf trajectory comparable across
    # storage backends.
    benchmark.extra_info["memory_bytes"] = sketch.synopsis_bytes()
