"""Micro-benchmarks of the individual synopsis structures.

These are conventional pytest-benchmark timings (multiple rounds) of the
lowest-level operations — sliding-window counter updates and queries, plain
Count-Min updates, ECM-sketch point and self-join queries, and one
order-preserving aggregation step.  They complement the table/figure
benchmarks by making the per-operation costs of Table 2 directly visible in
the pytest-benchmark report.
"""

from __future__ import annotations

import random

import pytest

from repro.core import CountMinSketch, ECMSketch
from repro.windows import (
    DeterministicWave,
    ExponentialHistogram,
    RandomizedWave,
    merge_exponential_histograms,
)

WINDOW = 1_000_000.0


def _arrivals(count: int, seed: int = 0):
    rng = random.Random(seed)
    clock = 0.0
    out = []
    for _ in range(count):
        clock += rng.random() * 10.0
        out.append(clock)
    return out


@pytest.mark.benchmark(group="micro-window-update")
def test_update_exponential_histogram(benchmark):
    arrivals = _arrivals(5_000)

    def run():
        histogram = ExponentialHistogram(epsilon=0.05, window=WINDOW)
        for clock in arrivals:
            histogram.add(clock)
        return histogram

    benchmark(run)


@pytest.mark.benchmark(group="micro-window-update")
def test_update_deterministic_wave(benchmark):
    arrivals = _arrivals(5_000)

    def run():
        wave = DeterministicWave(epsilon=0.05, window=WINDOW, max_arrivals=10_000)
        for clock in arrivals:
            wave.add(clock)
        return wave

    benchmark(run)


@pytest.mark.benchmark(group="micro-window-update")
def test_update_randomized_wave(benchmark):
    arrivals = _arrivals(5_000)

    def run():
        wave = RandomizedWave(epsilon=0.1, delta=0.1, window=WINDOW, max_arrivals=10_000)
        for clock in arrivals:
            wave.add(clock)
        return wave

    benchmark(run)


@pytest.mark.benchmark(group="micro-window-query")
def test_query_exponential_histogram(benchmark):
    arrivals = _arrivals(20_000)
    histogram = ExponentialHistogram(epsilon=0.05, window=WINDOW)
    for clock in arrivals:
        histogram.add(clock)
    now = arrivals[-1]
    ranges = [10.0, 100.0, 1_000.0, 10_000.0, 100_000.0]

    benchmark(lambda: [histogram.estimate(r, now=now) for r in ranges])


@pytest.mark.benchmark(group="micro-window-merge")
def test_merge_exponential_histograms_pair(benchmark):
    histograms = []
    for seed in range(2):
        histogram = ExponentialHistogram(epsilon=0.05, window=WINDOW)
        for clock in _arrivals(10_000, seed=seed):
            histogram.add(clock)
        histograms.append(histogram)

    benchmark(lambda: merge_exponential_histograms(histograms))


@pytest.mark.benchmark(group="micro-countmin")
def test_update_plain_countmin(benchmark):
    rng = random.Random(3)
    keys = ["key-%d" % rng.randrange(1_000) for _ in range(5_000)]

    def run():
        sketch = CountMinSketch.from_error(epsilon=0.05, delta=0.1)
        for key in keys:
            sketch.add(key)
        return sketch

    benchmark(run)


@pytest.mark.benchmark(group="micro-ecm-query")
def test_ecm_point_query(benchmark):
    rng = random.Random(4)
    sketch = ECMSketch.for_point_queries(epsilon=0.1, delta=0.1, window=WINDOW)
    clock = 0.0
    keys = []
    for _ in range(10_000):
        clock += rng.random() * 10.0
        key = "key-%d" % rng.randrange(500)
        keys.append(key)
        sketch.add(key, clock)
    probe = keys[:: len(keys) // 50][:50]

    benchmark(lambda: [sketch.point_query(key, 100_000.0, now=clock) for key in probe])


@pytest.mark.benchmark(group="micro-ecm-query")
def test_ecm_self_join_query(benchmark):
    rng = random.Random(5)
    sketch = ECMSketch.for_inner_product_queries(epsilon=0.1, delta=0.1, window=WINDOW)
    clock = 0.0
    for _ in range(10_000):
        clock += rng.random() * 10.0
        sketch.add("key-%d" % rng.randrange(500), clock)

    benchmark(lambda: sketch.self_join(100_000.0, now=clock))
