"""Micro-benchmarks of the individual synopsis structures.

These are conventional pytest-benchmark timings (multiple rounds) of the
lowest-level operations — sliding-window counter updates and queries, plain
Count-Min updates, ECM-sketch point and self-join queries, and one
order-preserving aggregation step.  They complement the table/figure
benchmarks by making the per-operation costs of Table 2 directly visible in
the pytest-benchmark report.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.core import CountMinSketch, ECMSketch
from repro.windows import (
    DeterministicWave,
    ExponentialHistogram,
    RandomizedWave,
    merge_exponential_histograms,
)

WINDOW = 1_000_000.0
#: Chunk size used by the batched-ingestion comparisons (the acceptance point
#: for the add_many fast path).
BATCH_SIZE = 1_024


def _arrivals(count: int, seed: int = 0):
    rng = random.Random(seed)
    clock = 0.0
    out = []
    for _ in range(count):
        clock += rng.random() * 10.0
        out.append(clock)
    return out


@pytest.mark.benchmark(group="micro-window-update")
def test_update_exponential_histogram(benchmark):
    arrivals = _arrivals(5_000)

    def run():
        histogram = ExponentialHistogram(epsilon=0.05, window=WINDOW)
        for clock in arrivals:
            histogram.add(clock)
        return histogram

    benchmark(run)


@pytest.mark.benchmark(group="micro-window-update")
def test_update_deterministic_wave(benchmark):
    arrivals = _arrivals(5_000)

    def run():
        wave = DeterministicWave(epsilon=0.05, window=WINDOW, max_arrivals=10_000)
        for clock in arrivals:
            wave.add(clock)
        return wave

    benchmark(run)


@pytest.mark.benchmark(group="micro-window-update")
def test_update_randomized_wave(benchmark):
    arrivals = _arrivals(5_000)

    def run():
        wave = RandomizedWave(epsilon=0.1, delta=0.1, window=WINDOW, max_arrivals=10_000)
        for clock in arrivals:
            wave.add(clock)
        return wave

    benchmark(run)


@pytest.mark.benchmark(group="micro-window-query")
def test_query_exponential_histogram(benchmark):
    arrivals = _arrivals(20_000)
    histogram = ExponentialHistogram(epsilon=0.05, window=WINDOW)
    for clock in arrivals:
        histogram.add(clock)
    now = arrivals[-1]
    ranges = [10.0, 100.0, 1_000.0, 10_000.0, 100_000.0]

    benchmark(lambda: [histogram.estimate(r, now=now) for r in ranges])


@pytest.mark.benchmark(group="micro-window-merge")
def test_merge_exponential_histograms_pair(benchmark):
    histograms = []
    for seed in range(2):
        histogram = ExponentialHistogram(epsilon=0.05, window=WINDOW)
        for clock in _arrivals(10_000, seed=seed):
            histogram.add(clock)
        histograms.append(histogram)

    benchmark(lambda: merge_exponential_histograms(histograms))


@pytest.mark.benchmark(group="micro-countmin")
def test_update_plain_countmin(benchmark):
    rng = random.Random(3)
    keys = ["key-%d" % rng.randrange(1_000) for _ in range(5_000)]

    def run():
        sketch = CountMinSketch.from_error(epsilon=0.05, delta=0.1)
        for key in keys:
            sketch.add(key)
        return sketch

    benchmark(run)


@pytest.mark.benchmark(group="micro-countmin")
def test_update_plain_countmin_batched(benchmark):
    rng = random.Random(3)
    keys = ["key-%d" % rng.randrange(1_000) for _ in range(5_000)]

    def run():
        sketch = CountMinSketch.from_error(epsilon=0.05, delta=0.1)
        for start in range(0, len(keys), BATCH_SIZE):
            sketch.add_many(keys[start : start + BATCH_SIZE])
        return sketch

    benchmark(run)


def _ecm_ingest_workload(count: int = 8_192, distinct: int = 500, seed: int = 6):
    # WorldCup-trace-style URL keys (the paper's workload): realistic key
    # lengths matter because per-arrival fingerprinting is part of the scalar
    # hot path being measured.
    rng = random.Random(seed)
    clock = 0.0
    items, clocks = [], []
    for _ in range(count):
        clock += rng.random() * 10.0
        items.append("/english/images/team_group_header_%d.gif" % rng.randrange(distinct))
        clocks.append(clock)
    return items, clocks


def _ecm_ingest_scalar(items, clocks):
    sketch = ECMSketch.for_point_queries(epsilon=0.1, delta=0.1, window=WINDOW)
    for item, clock in zip(items, clocks, strict=False):
        sketch.add(item, clock)
    return sketch


def _ecm_ingest_batched(items, clocks, batch_size=None):
    batch_size = batch_size or BATCH_SIZE
    sketch = ECMSketch.for_point_queries(epsilon=0.1, delta=0.1, window=WINDOW)
    for start in range(0, len(items), batch_size):
        stop = start + batch_size
        sketch.add_many(items[start:stop], clocks[start:stop])
    return sketch


@pytest.mark.benchmark(group="micro-ecm-ingest")
def test_ecm_ingest_scalar(benchmark):
    items, clocks = _ecm_ingest_workload()
    benchmark(lambda: _ecm_ingest_scalar(items, clocks))


@pytest.mark.benchmark(group="micro-ecm-ingest")
def test_ecm_ingest_batched(benchmark):
    items, clocks = _ecm_ingest_workload()
    benchmark(lambda: _ecm_ingest_batched(items, clocks))


def test_ecm_batched_ingest_speedup_report(capsys):
    """Measure and report the add_many/add throughput ratio at batch 1024.

    The acceptance bar for the batched hot path is a >= 3x ingestion speedup
    at batch size 1024; this check reports the measured ratio on every run.
    Wall-clock ratios are noisy on loaded machines, so the regression floor
    is only enforced when REPRO_BENCH_STRICT=1 (as in a dedicated perf job).
    """
    import os

    items, clocks = _ecm_ingest_workload(count=16_384)
    scalar_seconds = min(
        _timed(lambda: _ecm_ingest_scalar(items, clocks)) for _ in range(3)
    )
    batched_seconds = min(
        _timed(lambda: _ecm_ingest_batched(items, clocks)) for _ in range(3)
    )
    speedup = scalar_seconds / batched_seconds
    with capsys.disabled():
        print(
            "\nECMSketch ingestion at batch size %d: scalar %.0f items/s, "
            "batched %.0f items/s -> %.2fx speedup"
            % (
                BATCH_SIZE,
                len(items) / scalar_seconds,
                len(items) / batched_seconds,
                speedup,
            )
        )
    if os.environ.get("REPRO_BENCH_STRICT") == "1":
        assert speedup >= 2.0, "batched ingestion regressed to %.2fx (< 2x floor)" % speedup


def _timed(thunk):
    start = time.perf_counter()
    thunk()
    return time.perf_counter() - start


@pytest.mark.benchmark(group="micro-ecm-query")
def test_ecm_point_query(benchmark):
    rng = random.Random(4)
    sketch = ECMSketch.for_point_queries(epsilon=0.1, delta=0.1, window=WINDOW)
    clock = 0.0
    keys = []
    for _ in range(10_000):
        clock += rng.random() * 10.0
        key = "key-%d" % rng.randrange(500)
        keys.append(key)
        sketch.add(key, clock)
    probe = keys[:: len(keys) // 50][:50]

    benchmark(lambda: [sketch.point_query(key, 100_000.0, now=clock) for key in probe])


@pytest.mark.benchmark(group="micro-ecm-query")
def test_ecm_point_query_batched(benchmark):
    rng = random.Random(4)
    sketch = ECMSketch.for_point_queries(epsilon=0.1, delta=0.1, window=WINDOW)
    clock = 0.0
    keys = []
    for _ in range(10_000):
        clock += rng.random() * 10.0
        key = "key-%d" % rng.randrange(500)
        keys.append(key)
        sketch.add(key, clock)
    probe = keys[:: len(keys) // 50][:50]

    benchmark(lambda: sketch.point_query_many(probe, 100_000.0, now=clock))


@pytest.mark.benchmark(group="micro-ecm-query")
def test_ecm_self_join_query(benchmark):
    rng = random.Random(5)
    sketch = ECMSketch.for_inner_product_queries(epsilon=0.1, delta=0.1, window=WINDOW)
    clock = 0.0
    for _ in range(10_000):
        clock += rng.random() * 10.0
        sketch.add("key-%d" % rng.randrange(500), clock)

    benchmark(lambda: sketch.self_join(100_000.0, now=clock))


def main() -> None:
    """Standalone scalar-vs-batched ingestion report (no pytest needed).

    Run as ``PYTHONPATH=src python benchmarks/bench_micro_structures.py``.
    """
    items, clocks = _ecm_ingest_workload(count=20_480)
    scalar_seconds = min(_timed(lambda: _ecm_ingest_scalar(items, clocks)) for _ in range(5))
    batched_seconds = min(_timed(lambda: _ecm_ingest_batched(items, clocks)) for _ in range(5))
    print("ECM-sketch ingestion (%d arrivals, EH counters, depth/width from eps=delta=0.1):" % len(items))
    print("  per-item add        : %8.0f items/s" % (len(items) / scalar_seconds))
    print("  add_many (batch %4d): %8.0f items/s" % (BATCH_SIZE, len(items) / batched_seconds))
    print("  speedup             : %.2fx" % (scalar_seconds / batched_seconds))


if __name__ == "__main__":
    main()
