"""Benchmarks of the vectorized aggregation and the sharded parallel runner.

Covers the two performance claims of the sharded-simulation work:

* **Aggregation speedup** — merging 32+ site sketches through the vectorized
  ``ECMSketch.merge_many`` must be at least 3x faster than the replay-based
  reference ``ECMSketch.aggregate`` (identical output, enforced by the
  equivalence suite).
* **Site-count scaling** — the per-site cost of a flat ``merge_many`` stays
  roughly constant as the deployment grows (near-linear total cost).

It also records the runner's sharded-ingest throughput at 1 and 2 workers.
Run standalone (``PYTHONPATH=src python benchmarks/bench_parallel_runner.py
[--json out.json]``) for the report the CI benchmark job archives, or via
``pytest benchmarks/bench_parallel_runner.py`` for pytest-benchmark timings.
"""

from __future__ import annotations

import argparse
import json
import random
import time

import pytest

from repro.core import CounterType, ECMConfig, ECMSketch
from repro.distributed import run_sharded_ingest
from repro.streams import WorldCupSyntheticTrace

WINDOW = 1_000_000.0
#: Site count of the headline aggregation comparison.
AGGREGATION_SITES = 32
#: Arrivals ingested per site before aggregating.
ARRIVALS_PER_SITE = 3_000
#: Site counts of the scaling sweep.
SCALING_SITES = (8, 16, 32, 64)


def _build_site_sketches(
    counter_type: CounterType,
    num_sites: int,
    arrivals_per_site: int = ARRIVALS_PER_SITE,
    epsilon: float = 0.1,
) -> list[ECMSketch]:
    """Local sketches of a simulated deployment (WorldCup-style keys).

    Built on the object backend: this benchmark isolates the merge-layer
    algorithms (replay reference vs vectorized bulk merge), and the columnar
    store's cell interchange would add the same constant to both strategies,
    diluting the measured ratio.  The columnar backend's own lifecycle is
    covered by ``bench_columnar_backend.py``.
    """
    config = ECMConfig.for_point_queries(
        epsilon=epsilon,
        delta=0.1,
        window=WINDOW,
        counter_type=counter_type,
        max_arrivals=10 * arrivals_per_site,
        backend="object",
    )
    keys = ["/english/images/team_group_header_%d.gif" % index for index in range(200)]
    sketches = []
    for site in range(num_sites):
        rng = random.Random(site)
        sketch = ECMSketch(config, stream_tag=site)
        clock = 0.0
        items, clocks = [], []
        for _ in range(arrivals_per_site):
            clock += rng.random() * 5.0
            items.append(keys[rng.randrange(len(keys))])
            clocks.append(clock)
        sketch.add_many(items, clocks)
        sketches.append(sketch)
    return sketches


def _timed(thunk) -> float:
    start = time.perf_counter()
    thunk()
    return time.perf_counter() - start


def _best_of(thunk, rounds: int = 3) -> float:
    return min(_timed(thunk) for _ in range(rounds))


# ------------------------------------------------------------ pytest-benchmark
@pytest.mark.benchmark(group="aggregation-32-sites")
@pytest.mark.parametrize(
    "counter_type",
    [CounterType.EXPONENTIAL_HISTOGRAM, CounterType.DETERMINISTIC_WAVE],
    ids=["eh", "dw"],
)
def test_aggregate_reference(benchmark, counter_type):
    sketches = _build_site_sketches(counter_type, AGGREGATION_SITES)
    benchmark(lambda: ECMSketch.aggregate(sketches))


@pytest.mark.benchmark(group="aggregation-32-sites")
@pytest.mark.parametrize(
    "counter_type",
    [CounterType.EXPONENTIAL_HISTOGRAM, CounterType.DETERMINISTIC_WAVE],
    ids=["eh", "dw"],
)
def test_merge_many_vectorized(benchmark, counter_type):
    sketches = _build_site_sketches(counter_type, AGGREGATION_SITES)
    benchmark(lambda: ECMSketch.merge_many(sketches))


def test_aggregation_speedup_report(capsys):
    """Measure and report the merge_many/aggregate ratio at 32 sites.

    The acceptance bar is a >= 3x aggregation speedup for the deterministic
    counters.  Wall-clock ratios are noisy on loaded machines, so the floor
    is only enforced when REPRO_BENCH_STRICT=1 (as in a dedicated perf job).
    """
    import os

    results = _run_aggregation_comparison()
    with capsys.disabled():
        for variant, row in results.items():
            print(
                "\n%s aggregation of %d sites: reference %.3fs, vectorized %.3fs "
                "-> %.2fx speedup"
                % (
                    variant,
                    AGGREGATION_SITES,
                    row["reference_seconds"],
                    row["vectorized_seconds"],
                    row["speedup"],
                )
            )
    if os.environ.get("REPRO_BENCH_STRICT") == "1":
        for variant in ("eh", "dw"):
            assert results[variant]["speedup"] >= 3.0, (
                "%s aggregation speedup regressed to %.2fx (< 3x floor)"
                % (variant, results[variant]["speedup"])
            )
        # Randomized waves auto-fall back to the reference trim below the
        # selection cutoff, so the vectorized path must never be slower
        # (0.9x leaves a noise margin on the shared-sort-dominated timing).
        assert results["rw"]["speedup"] >= 0.9, (
            "rw aggregation regressed to %.2fx of the reference path"
            % (results["rw"]["speedup"],)
        )


# -------------------------------------------------------------- report helpers
def _run_aggregation_comparison(rounds: int = 3) -> dict[str, dict[str, float]]:
    """Reference-vs-vectorized aggregation timings at the headline site count."""
    results: dict[str, dict[str, float]] = {}
    for counter_type, label in (
        (CounterType.EXPONENTIAL_HISTOGRAM, "eh"),
        (CounterType.DETERMINISTIC_WAVE, "dw"),
        (CounterType.RANDOMIZED_WAVE, "rw"),
    ):
        arrivals = ARRIVALS_PER_SITE if counter_type is not CounterType.RANDOMIZED_WAVE else 1_500
        sketches = _build_site_sketches(counter_type, AGGREGATION_SITES, arrivals)
        reference = _best_of(lambda: ECMSketch.aggregate(sketches), rounds)
        vectorized = _best_of(lambda: ECMSketch.merge_many(sketches), rounds)
        results[label] = {
            "sites": AGGREGATION_SITES,
            "arrivals_per_site": arrivals,
            "reference_seconds": reference,
            "vectorized_seconds": vectorized,
            "speedup": reference / vectorized,
        }
    return results


def _run_scaling_sweep(rounds: int = 3) -> list[dict[str, float]]:
    """merge_many cost per site as the deployment grows (near-linear target)."""
    rows: list[dict[str, float]] = []
    for num_sites in SCALING_SITES:
        sketches = _build_site_sketches(CounterType.EXPONENTIAL_HISTOGRAM, num_sites)
        seconds = _best_of(lambda: ECMSketch.merge_many(sketches), rounds)
        rows.append(
            {
                "sites": num_sites,
                "seconds": seconds,
                "seconds_per_site": seconds / num_sites,
            }
        )
    return rows


def _run_runner_throughput(records: int = 20_000, num_sites: int = 16) -> list[dict[str, float]]:
    """Sharded-ingest throughput at 1 and 2 workers."""
    trace = WorldCupSyntheticTrace(num_records=records, num_nodes=num_sites).generate()
    config = ECMConfig.for_point_queries(epsilon=0.1, delta=0.1, window=WINDOW)
    rows: list[dict[str, float]] = []
    for workers in (1, 2):
        _, report = run_sharded_ingest(
            trace, num_nodes=num_sites, config=config, workers=workers
        )
        rows.append(
            {
                "workers": workers,
                "shards": report.shards,
                "records": report.records,
                "ingest_seconds": report.ingest_seconds,
                "records_per_second": report.records_per_second(),
            }
        )
    return rows


def main(argv: list[str] | None = None) -> None:
    """Standalone report (no pytest needed); optionally persists JSON.

    The CI benchmark job runs this with ``--json BENCH_pr2.json`` and uploads
    the file as the perf-trajectory artifact.
    """
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", type=str, default=None, help="write results to this file")
    parser.add_argument("--rounds", type=int, default=3, help="timing rounds (min is kept)")
    args = parser.parse_args(argv)

    aggregation = _run_aggregation_comparison(rounds=args.rounds)
    print("Aggregation of %d site sketches (reference replay vs vectorized merge_many):" % AGGREGATION_SITES)
    for variant, row in aggregation.items():
        print(
            "  %-3s reference %7.3fs   vectorized %7.3fs   speedup %5.2fx"
            % (variant, row["reference_seconds"], row["vectorized_seconds"], row["speedup"])
        )

    scaling = _run_scaling_sweep(rounds=args.rounds)
    print("merge_many site-count scaling (ECM-EH, %d arrivals/site):" % ARRIVALS_PER_SITE)
    for row in scaling:
        print(
            "  %3d sites: %7.3fs total   %7.2f ms/site"
            % (row["sites"], row["seconds"], 1_000.0 * row["seconds_per_site"])
        )

    runner = _run_runner_throughput()
    print("Sharded runner ingest throughput (16 sites, 20k records):")
    for row in runner:
        print(
            "  workers=%d shards=%d: %8.0f records/s"
            % (row["workers"], row["shards"], row["records_per_second"])
        )

    if args.json:
        payload = {
            "benchmark": "bench_parallel_runner",
            "aggregation_32_sites": aggregation,
            "scaling": scaling,
            "runner_throughput": runner,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("results written to %s" % args.json)


if __name__ == "__main__":
    main()
