"""Table 4 — accuracy loss caused by iterative aggregation (Section 7.3).

For epsilon in {0.1, 0.2}, the same stream is summarised (a) by a single
centralized ECM-sketch and (b) by per-site sketches aggregated up the binary
tree; the table reports both observed errors and their ratio.

Expected shape (paper): the ratio stays close to 1 (at most ~1.25 for ECM-EH
point queries on wc'98), i.e. iterative aggregation costs very little accuracy
— far less than the worst-case bound of Theorem 4.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    format_centralized_vs_distributed_rows,
    run_centralized_vs_distributed_experiment,
)

from .conftest import emit

NODE_COUNTS = {"wc98": 33, "snmp": 64}


@pytest.mark.benchmark(group="table4")
@pytest.mark.parametrize("dataset", ["wc98", "snmp"])
def test_table4_centralized_vs_distributed(benchmark, dataset, bench_records, bench_max_keys):
    """Prints the Table 4 rows for one data set and checks the degradation ratio."""

    def run():
        return run_centralized_vs_distributed_experiment(
            dataset=dataset,
            epsilons=(0.1, 0.2),
            num_records=bench_records,
            num_nodes=NODE_COUNTS[dataset],
            max_keys_per_range=bench_max_keys,
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["dataset"] = dataset

    emit("Table 4 (%s): centralized vs distributed observed error" % dataset,
         format_centralized_vs_distributed_rows(rows))

    for row in rows:
        assert row.distributed_error <= row.epsilon, "distributed error must stay below epsilon"
        if row.variant == "ECM-EH":
            assert row.ratio < 3.0, "aggregation should cost far less than the worst-case bound"
