"""Counter stores: pluggable backing storage for the ECM-sketch counter grid.

An ECM-sketch is a ``depth x width`` grid of sliding-window counters.  How
that grid is *stored* is independent of the sketch semantics, so the storage
lives behind the :class:`CounterStore` interface with two implementations:

* :class:`ObjectCounterStore` — the reference layout: one Python counter
  object per cell (exponential histogram, deterministic wave or randomized
  wave).  Simple, handles every counter type, and is the ground truth the
  equivalence suites compare against.
* :class:`~repro.windows.columnar_eh.ColumnarEHStore` — a structure-of-arrays
  layout for exponential-histogram grids: every bucket of every cell lives in
  shared NumPy arrays, so the whole-grid operations (batched ingest, expiry
  sweeps, multi-cell estimates) run as vectorized passes with no per-bucket
  Python objects.

Both stores are required to be *observably identical*: estimates, bucket
structures and serialized state must match byte-for-byte across backends for
every counter lifecycle (``tests/core/test_columnar_equivalence.py``).

The store interface deliberately mirrors how :class:`~repro.core.ecm_sketch.ECMSketch`
consumes the grid: scalar updates address one ``(row, column)`` cell, batched
updates hand over a whole hash row worth of column-grouped runs, and queries
either read one cell or gather many cells in one call.

Which store a sketch gets is decided by the **backend registry** at the bottom
of this module: every backend registers a factory, a capability predicate and
a priority (:func:`register_backend`), and :func:`resolve_backend` picks the
store for a configuration — the highest-priority backend whose ``supports()``
accepts it for ``backend="auto"``, or exactly the named one (failing loudly
with the rejection reason) for an explicit name.  Sketch code never
constructs a store class directly (reprolint rule RL007 enforces this), so
third-party stores drop in by registering, with no caller changes.
"""

from __future__ import annotations

import abc
import sys
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

from ..windows.base import SlidingWindowCounter
from .errors import BackendUnavailableError, ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (config -> windows)
    from .config import ECMConfig

__all__ = [
    "CounterStore",
    "ObjectCounterStore",
    "BackendRegistration",
    "register_backend",
    "unregister_backend",
    "registered_backends",
    "known_backend_names",
    "resolve_backend",
]

#: Clock/value payload of a batched ingest: a NumPy array whose dtype
#: round-trips the original scalars exactly, or a plain list holding the
#: original Python objects (used for mixed int/float batches).
RunPayload = np.ndarray | Sequence[Any]

#: One hash row of a column-grouped batch:
#: ``(row, run_columns, run_starts, run_stops, clocks, values)``.
RowPayload = tuple[
    int, Sequence[int], Sequence[int], Sequence[int], RunPayload, RunPayload | None
]


class CounterStore(abc.ABC):
    """Backing storage for a ``depth x width`` grid of sliding-window counters.

    All mutating entry points must leave the store in exactly the state the
    reference per-cell counters would reach for the same arrival sequence;
    the query entry points must return exactly the reference estimates.
    """

    #: Identifier reported by :attr:`repro.core.ecm_sketch.ECMSketch.backend`.
    backend_name: str

    #: Capability flag consulted by the sketch hot paths: columnar-family
    #: stores consume the batched clock/value payloads as NumPy arrays and
    #: answer multi-cell queries through one gathered ``estimate_cells``
    #: pass; object-per-cell stores receive plain lists and are queried
    #: cell by cell.
    prefers_arrays: bool = False

    depth: int
    width: int

    # ------------------------------------------------------------ mutation
    @abc.abstractmethod
    def add_single(self, row: int, column: int, clock: float, count: int = 1) -> None:
        """Register ``count`` unit arrivals at one cell (scalar hot path)."""

    @abc.abstractmethod
    def ingest_sorted_row(
        self,
        row: int,
        run_columns: Sequence[int],
        run_starts: Sequence[int],
        run_stops: Sequence[int],
        clocks: RunPayload,
        values: RunPayload | None,
    ) -> None:
        """Ingest one hash row of a pre-validated, column-grouped batch.

        The caller (``ECMSketch.add_many``) has stably sorted the batch by
        column, so ``clocks[start:stop]`` is the in-stream-order arrival run
        of cell ``(row, run_columns[i])``.  ``clocks``/``values`` are either
        NumPy arrays whose dtype preserves the original scalars exactly, or
        plain Python lists carrying the original objects (mixed-type
        batches).  Zero values have already been dropped and clock order has
        been validated.
        """

    def ingest_sorted_rows(self, payloads: Sequence[RowPayload]) -> None:
        """Ingest every hash row of one batch.

        Rows address disjoint cells, so their order is immaterial; stores may
        override this to process all rows in one combined pass (the columnar
        store does).
        """
        for row, run_columns, run_starts, run_stops, clocks, values in payloads:
            self.ingest_sorted_row(row, run_columns, run_starts, run_stops, clocks, values)

    @abc.abstractmethod
    def expire_all(self, now: float) -> None:
        """Drop buckets/entries outside ``(now - window, now]`` in every cell."""

    # ------------------------------------------------------------- queries
    @abc.abstractmethod
    def estimate(
        self, row: int, column: int, range_length: float | None = None, now: float | None = None
    ) -> float:
        """Reference-identical estimate of one cell for a query range."""

    @abc.abstractmethod
    def estimate_cells(
        self, cells: np.ndarray, range_length: float | None, now: float
    ) -> np.ndarray:
        """Estimates for many cells (flat ``row * width + column`` ids).

        Returns a float64 array aligned with ``cells``; every element equals
        exactly what :meth:`estimate` would return for that cell.
        """

    @abc.abstractmethod
    def estimate_grid(self, range_length: float | None, now: float) -> list[list[float]]:
        """Estimates of every cell, as a ``depth x width`` nested list."""

    # ----------------------------------------------------- cell interchange
    @abc.abstractmethod
    def get_counter(self, row: int, column: int) -> SlidingWindowCounter:
        """The cell as a reference counter object.

        The object store returns the live counter; columnar stores
        materialise an equivalent counter on demand (mutating it does *not*
        write back — use :meth:`set_counter` for that).
        """

    @abc.abstractmethod
    def set_counter(self, row: int, column: int, counter: SlidingWindowCounter) -> None:
        """Replace one cell's state with that of ``counter``."""

    # ------------------------------------------------------------ accounting
    @abc.abstractmethod
    def memory_bytes(self) -> int:
        """Footprint of the backing storage, in bytes.

        Object store: the paper's analytical 32-bit synopsis model (the
        object graph *is* the synopsis in the reference implementation).
        Columnar store: the true allocation of the backing arrays.
        """

    @abc.abstractmethod
    def synopsis_bytes(self) -> int:
        """The paper's analytical 32-bit synopsis footprint, in bytes.

        Backend-independent: both stores report the same number for the same
        logical counter state.  This is what transfer-volume accounting and
        the paper-reproduction figures use.
        """

    @abc.abstractmethod
    def resident_bytes(self) -> int:
        """Estimated true resident memory of the store, in bytes.

        For the object store this walks the Python object graph (counter
        objects, level containers, per-bucket objects); for columnar stores
        it equals :meth:`memory_bytes`.
        """


def _resident_bytes_of_counter(counter: SlidingWindowCounter) -> int:
    """Estimated resident footprint of one reference counter object."""
    resident = getattr(counter, "resident_bytes", None)
    if resident is not None:
        return int(resident())
    # Fallback for counter types without a dedicated accounting method: the
    # shallow object size understates containers but keeps the comparison
    # conservative.
    return sys.getsizeof(counter)


class ObjectCounterStore(CounterStore):
    """Reference store: one Python counter object per grid cell."""

    backend_name = "object"

    def __init__(self, grid: list[list[SlidingWindowCounter]]) -> None:
        self._grid = grid
        self.depth = len(grid)
        self.width = len(grid[0]) if grid else 0

    # ------------------------------------------------------------ mutation
    def add_single(self, row: int, column: int, clock: float, count: int = 1) -> None:
        self._grid[row][column].add(clock, count)

    def ingest_sorted_row(
        self,
        row: int,
        run_columns: Sequence[int],
        run_starts: Sequence[int],
        run_stops: Sequence[int],
        clocks: RunPayload,
        values: RunPayload | None,
    ) -> None:
        clocks_list = clocks.tolist() if isinstance(clocks, np.ndarray) else clocks
        values_list = values.tolist() if isinstance(values, np.ndarray) else values
        row_counters = self._grid[row]
        for column, start, stop in zip(run_columns, run_starts, run_stops, strict=False):
            row_counters[column].add_batch(
                clocks_list[start:stop],
                None if values_list is None else values_list[start:stop],
                assume_ordered=True,
            )

    def expire_all(self, now: float) -> None:
        for row_counters in self._grid:
            for counter in row_counters:
                counter.expire(now)

    # ------------------------------------------------------------- queries
    def estimate(
        self, row: int, column: int, range_length: float | None = None, now: float | None = None
    ) -> float:
        return self._grid[row][column].estimate(range_length, now)

    def estimate_cells(
        self, cells: np.ndarray, range_length: float | None, now: float
    ) -> np.ndarray:
        width = self.width
        return np.array(
            [
                self._grid[cell // width][cell % width].estimate(range_length, now)
                for cell in cells.tolist()
            ],
            dtype=np.float64,
        )

    def estimate_grid(self, range_length: float | None, now: float) -> list[list[float]]:
        return [
            [counter.estimate(range_length, now) for counter in row_counters]
            for row_counters in self._grid
        ]

    # ----------------------------------------------------- cell interchange
    def get_counter(self, row: int, column: int) -> SlidingWindowCounter:
        return self._grid[row][column]

    def set_counter(self, row: int, column: int, counter: SlidingWindowCounter) -> None:
        self._grid[row][column] = counter

    # ------------------------------------------------------------ accounting
    def memory_bytes(self) -> int:
        return sum(counter.memory_bytes() for row in self._grid for counter in row)

    def synopsis_bytes(self) -> int:
        return self.memory_bytes()

    def resident_bytes(self) -> int:
        total = sys.getsizeof(self._grid)
        for row_counters in self._grid:
            total += sys.getsizeof(row_counters)
            for counter in row_counters:
                total += _resident_bytes_of_counter(counter)
        return total


# ---------------------------------------------------------- backend registry
#: Builds one reference counter for a grid cell; backends that store counter
#: objects call it once per cell, columnar backends ignore it.
CounterFactory = Callable[[int, int], SlidingWindowCounter]

#: Builds a store for a validated configuration.
BackendFactory = Callable[["ECMConfig", CounterFactory], CounterStore]

#: Capability predicate: ``None`` when the backend can serve the
#: configuration, otherwise a human-readable rejection reason (surfaced
#: verbatim when an explicitly-named backend is refused).
BackendSupports = Callable[["ECMConfig"], "str | None"]


@dataclass(frozen=True)
class BackendRegistration:
    """One registered counter-store backend.

    Attributes:
        name: Registry key; what ``ECMConfig.backend`` names and what
            :attr:`~repro.core.ecm_sketch.ECMSketch.backend` reports.
        factory: Store constructor for an accepted configuration.
        supports: Capability predicate (``None`` = accepted, a string = the
            rejection reason).
        priority: ``backend="auto"`` picks the highest-priority backend whose
            ``supports()`` accepts; built-ins use kernels=20 > columnar=10 >
            object=0.
    """

    name: str
    factory: BackendFactory
    supports: BackendSupports
    priority: int


_BACKENDS: dict[str, BackendRegistration] = {}


def register_backend(
    name: str,
    factory: BackendFactory,
    supports: BackendSupports,
    priority: int = 0,
    *,
    replace: bool = False,
) -> BackendRegistration:
    """Register a counter-store backend under ``name``.

    Args:
        name: Registry key (``"auto"`` is reserved for the resolver).
        factory: ``factory(config, make_counter) -> CounterStore``.
        supports: ``supports(config)`` returning ``None`` to accept or a
            rejection reason string to refuse.
        priority: Auto-selection rank; higher wins.
        replace: Allow overwriting an existing registration (tests and
            third-party shims); without it a duplicate name is an error.

    Returns:
        The stored :class:`BackendRegistration`.
    """
    if name == "auto":
        raise ConfigurationError("'auto' is the resolver keyword, not a registrable backend name")
    if not replace and name in _BACKENDS:
        raise ConfigurationError(
            "backend %r is already registered; pass replace=True to override" % (name,)
        )
    registration = BackendRegistration(
        name=name, factory=factory, supports=supports, priority=priority
    )
    _BACKENDS[name] = registration
    return registration


def unregister_backend(name: str) -> None:
    """Remove a registration (no-op when absent); for tests and plugins."""
    _BACKENDS.pop(name, None)


def _ensure_builtin_backends() -> None:
    # The columnar-family backends register at the bottom of their own
    # modules; importing the windows package is what runs them.  Lazy to
    # break the import cycle (this module is imported *by* those modules).
    from .. import windows  # noqa: F401


def registered_backends() -> list[BackendRegistration]:
    """Every registration, highest priority first (ties by name)."""
    _ensure_builtin_backends()
    return sorted(_BACKENDS.values(), key=lambda entry: (-entry.priority, entry.name))


def known_backend_names() -> list[str]:
    """Registered backend names, highest priority first."""
    return [entry.name for entry in registered_backends()]


def resolve_backend(config: ECMConfig) -> BackendRegistration:
    """The registration that will store ``config``'s counter grid.

    ``backend="auto"`` returns the highest-priority backend whose
    ``supports()`` accepts the configuration; an explicit name returns
    exactly that backend or raises :class:`BackendUnavailableError` carrying
    the rejection reason (never a silent demotion).  Unknown names raise
    :class:`ConfigurationError` listing what is registered.
    """
    _ensure_builtin_backends()
    name = config.backend
    if name == "auto":
        rejections = []
        for entry in registered_backends():
            reason = entry.supports(config)
            if reason is None:
                return entry
            rejections.append("%s: %s" % (entry.name, reason))
        raise BackendUnavailableError(
            "no registered backend supports this configuration (%s)" % "; ".join(rejections)
        )
    entry = _BACKENDS.get(name)
    if entry is None:
        raise ConfigurationError(
            "unknown backend %r; registered backends: %s"
            % (name, ", ".join(known_backend_names()) or "(none)")
        )
    reason = entry.supports(config)
    if reason is not None:
        raise BackendUnavailableError("backend %r cannot serve this configuration: %s" % (name, reason))
    return entry


def _object_supports(config: ECMConfig) -> str | None:
    # The reference layout stores any counter type; it is the priority-0
    # floor every configuration can fall back to.
    return None


def _object_factory(config: ECMConfig, make_counter: CounterFactory) -> CounterStore:
    return ObjectCounterStore(
        [
            [make_counter(row, column) for column in range(config.width)]
            for row in range(config.depth)
        ]
    )


register_backend("object", _object_factory, _object_supports, priority=0)
