"""Counter stores: pluggable backing storage for the ECM-sketch counter grid.

An ECM-sketch is a ``depth x width`` grid of sliding-window counters.  How
that grid is *stored* is independent of the sketch semantics, so the storage
lives behind the :class:`CounterStore` interface with two implementations:

* :class:`ObjectCounterStore` — the reference layout: one Python counter
  object per cell (exponential histogram, deterministic wave or randomized
  wave).  Simple, handles every counter type, and is the ground truth the
  equivalence suites compare against.
* :class:`~repro.windows.columnar_eh.ColumnarEHStore` — a structure-of-arrays
  layout for exponential-histogram grids: every bucket of every cell lives in
  shared NumPy arrays, so the whole-grid operations (batched ingest, expiry
  sweeps, multi-cell estimates) run as vectorized passes with no per-bucket
  Python objects.

Both stores are required to be *observably identical*: estimates, bucket
structures and serialized state must match byte-for-byte across backends for
every counter lifecycle (``tests/core/test_columnar_equivalence.py``).

The store interface deliberately mirrors how :class:`~repro.core.ecm_sketch.ECMSketch`
consumes the grid: scalar updates address one ``(row, column)`` cell, batched
updates hand over a whole hash row worth of column-grouped runs, and queries
either read one cell or gather many cells in one call.
"""

from __future__ import annotations

import abc
import sys
from collections.abc import Sequence
from typing import Any

import numpy as np

from ..windows.base import SlidingWindowCounter

__all__ = ["CounterStore", "ObjectCounterStore"]

#: Clock/value payload of a batched ingest: a NumPy array whose dtype
#: round-trips the original scalars exactly, or a plain list holding the
#: original Python objects (used for mixed int/float batches).
RunPayload = np.ndarray | Sequence[Any]

#: One hash row of a column-grouped batch:
#: ``(row, run_columns, run_starts, run_stops, clocks, values)``.
RowPayload = tuple[
    int, Sequence[int], Sequence[int], Sequence[int], RunPayload, RunPayload | None
]


class CounterStore(abc.ABC):
    """Backing storage for a ``depth x width`` grid of sliding-window counters.

    All mutating entry points must leave the store in exactly the state the
    reference per-cell counters would reach for the same arrival sequence;
    the query entry points must return exactly the reference estimates.
    """

    #: Identifier reported by :attr:`repro.core.ecm_sketch.ECMSketch.backend`.
    backend_name: str

    depth: int
    width: int

    # ------------------------------------------------------------ mutation
    @abc.abstractmethod
    def add_single(self, row: int, column: int, clock: float, count: int = 1) -> None:
        """Register ``count`` unit arrivals at one cell (scalar hot path)."""

    @abc.abstractmethod
    def ingest_sorted_row(
        self,
        row: int,
        run_columns: Sequence[int],
        run_starts: Sequence[int],
        run_stops: Sequence[int],
        clocks: RunPayload,
        values: RunPayload | None,
    ) -> None:
        """Ingest one hash row of a pre-validated, column-grouped batch.

        The caller (``ECMSketch.add_many``) has stably sorted the batch by
        column, so ``clocks[start:stop]`` is the in-stream-order arrival run
        of cell ``(row, run_columns[i])``.  ``clocks``/``values`` are either
        NumPy arrays whose dtype preserves the original scalars exactly, or
        plain Python lists carrying the original objects (mixed-type
        batches).  Zero values have already been dropped and clock order has
        been validated.
        """

    def ingest_sorted_rows(self, payloads: Sequence[RowPayload]) -> None:
        """Ingest every hash row of one batch.

        Rows address disjoint cells, so their order is immaterial; stores may
        override this to process all rows in one combined pass (the columnar
        store does).
        """
        for row, run_columns, run_starts, run_stops, clocks, values in payloads:
            self.ingest_sorted_row(row, run_columns, run_starts, run_stops, clocks, values)

    @abc.abstractmethod
    def expire_all(self, now: float) -> None:
        """Drop buckets/entries outside ``(now - window, now]`` in every cell."""

    # ------------------------------------------------------------- queries
    @abc.abstractmethod
    def estimate(
        self, row: int, column: int, range_length: float | None = None, now: float | None = None
    ) -> float:
        """Reference-identical estimate of one cell for a query range."""

    @abc.abstractmethod
    def estimate_cells(
        self, cells: np.ndarray, range_length: float | None, now: float
    ) -> np.ndarray:
        """Estimates for many cells (flat ``row * width + column`` ids).

        Returns a float64 array aligned with ``cells``; every element equals
        exactly what :meth:`estimate` would return for that cell.
        """

    @abc.abstractmethod
    def estimate_grid(self, range_length: float | None, now: float) -> list[list[float]]:
        """Estimates of every cell, as a ``depth x width`` nested list."""

    # ----------------------------------------------------- cell interchange
    @abc.abstractmethod
    def get_counter(self, row: int, column: int) -> SlidingWindowCounter:
        """The cell as a reference counter object.

        The object store returns the live counter; columnar stores
        materialise an equivalent counter on demand (mutating it does *not*
        write back — use :meth:`set_counter` for that).
        """

    @abc.abstractmethod
    def set_counter(self, row: int, column: int, counter: SlidingWindowCounter) -> None:
        """Replace one cell's state with that of ``counter``."""

    # ------------------------------------------------------------ accounting
    @abc.abstractmethod
    def memory_bytes(self) -> int:
        """Footprint of the backing storage, in bytes.

        Object store: the paper's analytical 32-bit synopsis model (the
        object graph *is* the synopsis in the reference implementation).
        Columnar store: the true allocation of the backing arrays.
        """

    @abc.abstractmethod
    def synopsis_bytes(self) -> int:
        """The paper's analytical 32-bit synopsis footprint, in bytes.

        Backend-independent: both stores report the same number for the same
        logical counter state.  This is what transfer-volume accounting and
        the paper-reproduction figures use.
        """

    @abc.abstractmethod
    def resident_bytes(self) -> int:
        """Estimated true resident memory of the store, in bytes.

        For the object store this walks the Python object graph (counter
        objects, level containers, per-bucket objects); for columnar stores
        it equals :meth:`memory_bytes`.
        """


def _resident_bytes_of_counter(counter: SlidingWindowCounter) -> int:
    """Estimated resident footprint of one reference counter object."""
    resident = getattr(counter, "resident_bytes", None)
    if resident is not None:
        return int(resident())
    # Fallback for counter types without a dedicated accounting method: the
    # shallow object size understates containers but keeps the comparison
    # conservative.
    return sys.getsizeof(counter)


class ObjectCounterStore(CounterStore):
    """Reference store: one Python counter object per grid cell."""

    backend_name = "object"

    def __init__(self, grid: list[list[SlidingWindowCounter]]) -> None:
        self._grid = grid
        self.depth = len(grid)
        self.width = len(grid[0]) if grid else 0

    # ------------------------------------------------------------ mutation
    def add_single(self, row: int, column: int, clock: float, count: int = 1) -> None:
        self._grid[row][column].add(clock, count)

    def ingest_sorted_row(
        self,
        row: int,
        run_columns: Sequence[int],
        run_starts: Sequence[int],
        run_stops: Sequence[int],
        clocks: RunPayload,
        values: RunPayload | None,
    ) -> None:
        clocks_list = clocks.tolist() if isinstance(clocks, np.ndarray) else clocks
        values_list = values.tolist() if isinstance(values, np.ndarray) else values
        row_counters = self._grid[row]
        for column, start, stop in zip(run_columns, run_starts, run_stops, strict=False):
            row_counters[column].add_batch(
                clocks_list[start:stop],
                None if values_list is None else values_list[start:stop],
                assume_ordered=True,
            )

    def expire_all(self, now: float) -> None:
        for row_counters in self._grid:
            for counter in row_counters:
                counter.expire(now)

    # ------------------------------------------------------------- queries
    def estimate(
        self, row: int, column: int, range_length: float | None = None, now: float | None = None
    ) -> float:
        return self._grid[row][column].estimate(range_length, now)

    def estimate_cells(
        self, cells: np.ndarray, range_length: float | None, now: float
    ) -> np.ndarray:
        width = self.width
        return np.array(
            [
                self._grid[cell // width][cell % width].estimate(range_length, now)
                for cell in cells.tolist()
            ],
            dtype=np.float64,
        )

    def estimate_grid(self, range_length: float | None, now: float) -> list[list[float]]:
        return [
            [counter.estimate(range_length, now) for counter in row_counters]
            for row_counters in self._grid
        ]

    # ----------------------------------------------------- cell interchange
    def get_counter(self, row: int, column: int) -> SlidingWindowCounter:
        return self._grid[row][column]

    def set_counter(self, row: int, column: int, counter: SlidingWindowCounter) -> None:
        self._grid[row][column] = counter

    # ------------------------------------------------------------ accounting
    def memory_bytes(self) -> int:
        return sum(counter.memory_bytes() for row in self._grid for counter in row)

    def synopsis_bytes(self) -> int:
        return self.memory_bytes()

    def resident_bytes(self) -> int:
        total = sys.getsizeof(self._grid)
        for row_counters in self._grid:
            total += sys.getsizeof(row_counters)
            for counter in row_counters:
                total += _resident_bytes_of_counter(counter)
        return total
