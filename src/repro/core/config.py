"""Error-budget configuration for ECM-sketches (paper Section 4.1 / 4.2.2).

An ECM-sketch has two error knobs: the Count-Min hashing error ``epsilon_cm``
(driven by the array width) and the sliding-window counter error
``epsilon_sw``.  For point queries the two combine as
``epsilon = epsilon_sw + epsilon_cm + epsilon_sw*epsilon_cm`` (Theorem 1);
for inner-product queries as
``epsilon = epsilon_sw**2 + 2*epsilon_sw + epsilon_cm*(1 + epsilon_sw)**2``
(Theorem 2).  For a user-facing total error budget the paper picks the split
that minimises the worst-case memory of the whole structure; this module
implements those optimal splits:

* point queries, deterministic counters (EH / deterministic waves):
  memory is proportional to ``1 / (epsilon_sw * epsilon_cm)`` and the optimum
  is ``epsilon_sw = epsilon_cm = sqrt(1 + epsilon) - 1``;
* point queries, randomized-wave counters: memory is proportional to
  ``1 / (epsilon_sw**2 * epsilon_cm)`` and the optimum is the closed form of
  Section 4.2.2;
* inner-product queries, deterministic counters: the optimum is the root of a
  cubic; we compute it numerically (and the closed form of the paper is the
  same root).

:class:`ECMConfig` packages a full, validated parameterisation of one
ECM-sketch, and is what :class:`repro.core.ecm_sketch.ECMSketch` consumes.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

from ..windows.base import WindowModel, validate_delta, validate_epsilon, validate_window
from .countmin import dimensions_for_error
from .errors import ConfigurationError

__all__ = [
    "CounterType",
    "split_point_query_deterministic",
    "split_point_query_randomized",
    "split_inner_product_deterministic",
    "point_query_error",
    "inner_product_error",
    "ECMConfig",
]


class CounterType(enum.Enum):
    """Which sliding-window algorithm implements the Count-Min counters."""

    EXPONENTIAL_HISTOGRAM = "eh"
    DETERMINISTIC_WAVE = "dw"
    RANDOMIZED_WAVE = "rw"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @property
    def is_deterministic(self) -> bool:
        """True for EH and deterministic waves, False for randomized waves."""
        return self is not CounterType.RANDOMIZED_WAVE


# ----------------------------------------------------------------- error maths
def point_query_error(epsilon_sw: float, epsilon_cm: float) -> float:
    """Total point-query error for a given split (Theorem 1)."""
    return epsilon_sw + epsilon_cm + epsilon_sw * epsilon_cm


def inner_product_error(epsilon_sw: float, epsilon_cm: float) -> float:
    """Total inner-product error for a given split (Theorem 2)."""
    return epsilon_sw ** 2 + 2.0 * epsilon_sw + epsilon_cm * (1.0 + epsilon_sw) ** 2


def split_point_query_deterministic(epsilon: float) -> tuple[float, float]:
    """Memory-optimal ``(epsilon_sw, epsilon_cm)`` for point queries, EH/DW counters.

    The memory bound ``~ 1/(epsilon_sw * epsilon_cm)`` under the constraint of
    Theorem 1 is minimised at ``epsilon_sw = epsilon_cm = sqrt(1+epsilon) - 1``.
    """
    validate_epsilon(epsilon)
    value = math.sqrt(1.0 + epsilon) - 1.0
    return value, value


def split_point_query_randomized(epsilon: float) -> tuple[float, float]:
    """Memory-optimal ``(epsilon_sw, epsilon_cm)`` for point queries, RW counters.

    Randomized-wave memory grows as ``1/epsilon_sw**2``, shifting the optimum
    toward a larger window error.  Closed form from Section 4.2.2::

        epsilon_sw = (sqrt(eps**2 + 10*eps + 9) + eps - 3) / 4
        epsilon_cm = (3*eps - sqrt(eps**2 + 10*eps + 9) + 3)
                     / (eps + sqrt(eps**2 + 10*eps + 9) + 1)
    """
    validate_epsilon(epsilon)
    root = math.sqrt(epsilon ** 2 + 10.0 * epsilon + 9.0)
    epsilon_sw = (root + epsilon - 3.0) / 4.0
    epsilon_cm = (3.0 * epsilon - root + 3.0) / (epsilon + root + 1.0)
    return epsilon_sw, epsilon_cm


def split_inner_product_deterministic(epsilon: float) -> tuple[float, float]:
    """Memory-optimal ``(epsilon_sw, epsilon_cm)`` for inner products, EH/DW counters.

    Minimises ``1/(epsilon_sw * epsilon_cm)`` subject to Theorem 2's constraint
    ``epsilon_sw**2 + 2*epsilon_sw + epsilon_cm*(1+epsilon_sw)**2 == epsilon``.
    The optimum is the root of a cubic; we locate it by ternary search over the
    feasible interval, which converges to the paper's closed form.
    """
    validate_epsilon(epsilon)
    upper = math.sqrt(1.0 + epsilon) - 1.0  # epsilon_cm -> 0 at this point

    def cm_for(sw: float) -> float:
        return (epsilon - sw ** 2 - 2.0 * sw) / (1.0 + sw) ** 2

    def cost(sw: float) -> float:
        cm = cm_for(sw)
        if cm <= 0 or sw <= 0:
            return float("inf")
        return 1.0 / (sw * cm)

    low, high = 1e-9, max(upper - 1e-9, 2e-9)
    for _ in range(200):
        third = (high - low) / 3.0
        mid_low = low + third
        mid_high = high - third
        if cost(mid_low) <= cost(mid_high):
            high = mid_high
        else:
            low = mid_low
    epsilon_sw = (low + high) / 2.0
    epsilon_cm = cm_for(epsilon_sw)
    return epsilon_sw, epsilon_cm


# -------------------------------------------------------------------- config
@dataclass
class ECMConfig:
    """A complete, validated parameterisation of one ECM-sketch.

    Attributes:
        epsilon_cm: Count-Min hashing error (drives the array width).
        epsilon_sw: Sliding-window counter error.
        delta: Failure probability of the Count-Min guarantee.
        window: Sliding-window length ``N`` (time units or arrivals).
        model: Time-based or count-based window model.
        counter_type: Which sliding-window algorithm backs the counters.
        max_arrivals: Upper bound ``u(N, S)`` on arrivals per window; required
            by wave-based counters, optional for exponential histograms.
        delta_sw: Failure probability of randomized-wave counters (ignored by
            deterministic counters).
        seed: Hash seed shared by all sketches that should be mergeable.
        width: Count-Min array width; derived from ``epsilon_cm`` if omitted.
        depth: Count-Min array depth; derived from ``delta`` if omitted.
        backend: Counter-grid storage backend, resolved through the backend
            registry (:func:`repro.core.counter_store.resolve_backend`).
            ``"auto"`` (the default) picks the highest-priority registered
            backend whose capability predicate accepts this configuration —
            ``"kernels"`` (compiled columnar hot paths, needs numba or an
            explicit ``REPRO_KERNELS=1`` override) over ``"columnar"``
            (structure-of-arrays NumPy buffers) over ``"object"`` (one
            Python counter per cell, any counter type).  Naming a backend
            explicitly either uses exactly that backend or raises
            :class:`~repro.core.errors.BackendUnavailableError` with the
            rejection reason; there is no silent demotion.  The backend is a
            storage detail: estimates and serialized state are
            byte-identical across backends, and the field never travels on
            the wire.
    """

    epsilon_cm: float
    epsilon_sw: float
    delta: float
    window: float
    model: WindowModel = WindowModel.TIME_BASED
    counter_type: CounterType = CounterType.EXPONENTIAL_HISTOGRAM
    max_arrivals: int | None = None
    delta_sw: float = 0.05
    seed: int = 0
    width: int = field(default=0)
    depth: int = field(default=0)
    backend: str = "auto"

    def __post_init__(self) -> None:
        validate_epsilon(self.epsilon_cm, "epsilon_cm")
        validate_epsilon(self.epsilon_sw, "epsilon_sw")
        validate_delta(self.delta, "delta")
        validate_delta(self.delta_sw, "delta_sw")
        validate_window(self.window)
        if not isinstance(self.model, WindowModel):
            raise ConfigurationError("model must be a WindowModel")
        if not isinstance(self.counter_type, CounterType):
            raise ConfigurationError("counter_type must be a CounterType")
        if self.backend != "auto":
            # Unknown names fail at construction time; whether the named
            # backend *supports* this configuration is checked at resolution
            # (it may depend on the environment, e.g. numba availability).
            from .counter_store import known_backend_names

            if self.backend not in known_backend_names():
                raise ConfigurationError(
                    "unknown backend %r; expected 'auto' or one of: %s"
                    % (self.backend, ", ".join(known_backend_names()))
                )
        derived_width, derived_depth = dimensions_for_error(self.epsilon_cm, self.delta)
        if self.width <= 0:
            self.width = derived_width
        if self.depth <= 0:
            self.depth = derived_depth
        if self.counter_type is not CounterType.EXPONENTIAL_HISTOGRAM and self.max_arrivals is None:
            raise ConfigurationError(
                "wave-based counters require max_arrivals (the u(N, S) bound of "
                "Section 4.2.2); exponential histograms do not"
            )
        if self.max_arrivals is None:
            # A loose default bound used only for memory reporting.
            self.max_arrivals = max(1, int(self.window))

    # --------------------------------------------------------------- factory
    @classmethod
    def for_point_queries(
        cls,
        epsilon: float,
        delta: float,
        window: float,
        model: WindowModel = WindowModel.TIME_BASED,
        counter_type: CounterType = CounterType.EXPONENTIAL_HISTOGRAM,
        max_arrivals: int | None = None,
        delta_sw: float = 0.05,
        seed: int = 0,
        backend: str = "auto",
    ) -> ECMConfig:
        """Configuration minimising memory for a total point-query error budget."""
        if counter_type is CounterType.RANDOMIZED_WAVE:
            epsilon_sw, epsilon_cm = split_point_query_randomized(epsilon)
        else:
            epsilon_sw, epsilon_cm = split_point_query_deterministic(epsilon)
        return cls(
            epsilon_cm=epsilon_cm,
            epsilon_sw=epsilon_sw,
            delta=delta,
            window=window,
            model=model,
            counter_type=counter_type,
            max_arrivals=max_arrivals,
            delta_sw=delta_sw,
            seed=seed,
            backend=backend,
        )

    @classmethod
    def for_inner_product_queries(
        cls,
        epsilon: float,
        delta: float,
        window: float,
        model: WindowModel = WindowModel.TIME_BASED,
        counter_type: CounterType = CounterType.EXPONENTIAL_HISTOGRAM,
        max_arrivals: int | None = None,
        delta_sw: float = 0.05,
        seed: int = 0,
        backend: str = "auto",
    ) -> ECMConfig:
        """Configuration minimising memory for a total inner-product error budget."""
        if counter_type is CounterType.RANDOMIZED_WAVE:
            raise ConfigurationError(
                "the paper does not provide inner-product guarantees for "
                "randomized-wave counters (Section 7.2); use a deterministic counter"
            )
        epsilon_sw, epsilon_cm = split_inner_product_deterministic(epsilon)
        return cls(
            epsilon_cm=epsilon_cm,
            epsilon_sw=epsilon_sw,
            delta=delta,
            window=window,
            model=model,
            counter_type=counter_type,
            max_arrivals=max_arrivals,
            delta_sw=delta_sw,
            seed=seed,
            backend=backend,
        )

    # ------------------------------------------------------------ summaries
    @property
    def resolved_backend(self) -> str:
        """Name of the storage backend the sketch will actually use.

        Delegates to the backend registry
        (:func:`repro.core.counter_store.resolve_backend`): ``"auto"``
        resolves to the highest-priority backend whose capability predicate
        accepts this configuration; an explicit name resolves to itself or
        raises :class:`~repro.core.errors.BackendUnavailableError` with the
        rejection reason.  Exponential-histogram grids resolve columnar at
        every epsilon — the lazily-grown slot axis removed the old
        tiny-epsilon (``COLUMNAR_MAX_PER_LIMIT``) escape hatch to the object
        layout — while wave counter types resolve to the object backend.
        """
        from .counter_store import resolve_backend

        return resolve_backend(self).name

    @property
    def total_point_error(self) -> float:
        """Worst-case point-query error implied by the split (Theorem 1)."""
        return point_query_error(self.epsilon_sw, self.epsilon_cm)

    @property
    def total_inner_product_error(self) -> float:
        """Worst-case inner-product error implied by the split (Theorem 2)."""
        return inner_product_error(self.epsilon_sw, self.epsilon_cm)

    @property
    def total_failure_probability(self) -> float:
        """Total failure probability (Theorem 3): delta_cm plus delta_sw for RW."""
        if self.counter_type is CounterType.RANDOMIZED_WAVE:
            return self.delta + self.delta_sw
        return self.delta

    def replaced(self, **overrides: object) -> ECMConfig:
        """A copy of the configuration with selected fields replaced."""
        data = {
            "epsilon_cm": self.epsilon_cm,
            "epsilon_sw": self.epsilon_sw,
            "delta": self.delta,
            "window": self.window,
            "model": self.model,
            "counter_type": self.counter_type,
            "max_arrivals": self.max_arrivals,
            "delta_sw": self.delta_sw,
            "seed": self.seed,
            "width": self.width,
            "depth": self.depth,
            "backend": self.backend,
        }
        data.update(overrides)
        return ECMConfig(**data)  # type: ignore[arg-type]
