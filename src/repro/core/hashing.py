"""Pairwise-independent hash families.

Count-Min sketches and randomized waves both need cheap hash functions drawn
from a pairwise-independent family.  We use the classic Carter–Wegman
construction ``h(x) = ((a*x + b) mod p) mod m`` over the Mersenne prime
``p = 2**61 - 1``, which is fast in pure Python (single multiplication on
machine integers) and provides the 2-universality required by the Count-Min
analysis of Cormode & Muthukrishnan.

Items may be arbitrary hashable Python objects; non-integers are first mapped
to 64-bit integers through a stable (seed-independent) fingerprint so that two
sketches built with the same seeds hash the same items identically — a
prerequisite for sketch composition.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from collections.abc import Hashable, Sequence

import numpy as np

from .errors import ConfigurationError

__all__ = [
    "MERSENNE_PRIME_61",
    "ItemBatch",
    "stable_fingerprint",
    "stable_fingerprints",
    "PairwiseHash",
    "HashFamily",
]

#: A batch of items for the vectorized APIs: any sequence of hashable values,
#: or a NumPy array (integer arrays take the dtype-cast fingerprint path).
ItemBatch = Sequence[Hashable] | np.ndarray

#: The Mersenne prime 2**61 - 1 used as the field size of the hash family.
MERSENNE_PRIME_61 = (1 << 61) - 1

#: NumPy constants for the vectorized Carter–Wegman evaluation.  The prime
#: doubles as the low-61-bit mask (``p = 2**61 - 1`` is all ones).
_NP_P = np.uint64(MERSENNE_PRIME_61)
_NP_MASK31 = np.uint64((1 << 31) - 1)
_NP_61 = np.uint64(61)
_NP_31 = np.uint64(31)
_NP_30 = np.uint64(30)
_NP_2 = np.uint64(2)


def _mod_mersenne61(values: np.ndarray) -> np.ndarray:
    """Reduce ``uint64`` values modulo ``2**61 - 1`` without Python-int math.

    Folding the top bits down (``(v & (2**61-1)) + (v >> 61)``) leaves a value
    in ``[0, p + 7]``; one conditional subtraction finishes the reduction.
    """
    folded = (values & _NP_P) + (values >> _NP_61)
    return np.where(folded >= _NP_P, folded - _NP_P, folded)


def stable_fingerprint(item: Hashable) -> int:
    """Map an arbitrary hashable item to a stable 64-bit integer.

    Python's built-in :func:`hash` is randomised per process for strings
    (``PYTHONHASHSEED``), which would break reproducibility and sketch
    composition across processes.  Integers are passed through unchanged
    (folded into 64 bits); everything else goes through blake2b of its
    ``repr``.

    Args:
        item: Any hashable value (int, str, tuple, ...).

    Returns:
        A non-negative integer fitting in 64 bits.
    """
    if isinstance(item, bool):
        # bool is a subclass of int; keep True/False distinct from 1/0 text
        # representations but still deterministic.
        return int(item)
    if isinstance(item, (int, np.integer)):
        # NumPy integers fingerprint like their Python values, so scalar and
        # vectorized (integer-array) ingestion agree item for item.
        return int(item) & 0xFFFFFFFFFFFFFFFF
    if isinstance(item, bytes):
        digest = hashlib.blake2b(item, digest_size=8).digest()
        return int.from_bytes(digest, "little")
    if isinstance(item, str):
        digest = hashlib.blake2b(item.encode("utf-8"), digest_size=8).digest()
        return int.from_bytes(digest, "little")
    digest = hashlib.blake2b(repr(item).encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


def stable_fingerprints(items: ItemBatch) -> np.ndarray:
    """Vectorized :func:`stable_fingerprint` over a batch of items.

    Integer-typed NumPy arrays are fingerprinted without touching Python
    objects; any other input falls back to the scalar fingerprint per item
    (the blake2b digest is inherently per-object).  The result always agrees
    element-wise with :func:`stable_fingerprint`.

    Args:
        items: A sequence (or NumPy array) of hashable values.

    Returns:
        A ``uint64`` array of fingerprints, one per item.
    """
    if isinstance(items, np.ndarray) and np.issubdtype(items.dtype, np.integer):
        return items.astype(np.uint64, copy=False)
    return np.fromiter(
        (stable_fingerprint(item) for item in items), dtype=np.uint64, count=len(items)
    )


@dataclass(frozen=True)
class PairwiseHash:
    """A single hash function from the Carter–Wegman pairwise family.

    Attributes:
        a: Multiplier, drawn uniformly from ``[1, p-1]``.
        b: Offset, drawn uniformly from ``[0, p-1]``.
        width: Output range; hashes land in ``[0, width)``.
    """

    a: int
    b: int
    width: int

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ConfigurationError("hash width must be positive, got %r" % (self.width,))
        if not (1 <= self.a < MERSENNE_PRIME_61):
            raise ConfigurationError("hash multiplier out of range")
        if not (0 <= self.b < MERSENNE_PRIME_61):
            raise ConfigurationError("hash offset out of range")

    def __call__(self, item: Hashable) -> int:
        """Hash ``item`` into ``[0, width)``."""
        x = stable_fingerprint(item)
        return ((self.a * x + self.b) % MERSENNE_PRIME_61) % self.width

    def hash_int(self, x: int) -> int:
        """Hash an already-fingerprinted integer into ``[0, width)``."""
        return ((self.a * x + self.b) % MERSENNE_PRIME_61) % self.width


class HashFamily:
    """A reproducible family of ``depth`` pairwise-independent hash functions.

    Two families constructed with the same ``depth``, ``width`` and ``seed``
    are identical, which is what allows Count-Min and ECM-sketches built on
    different nodes to be merged.

    Args:
        depth: Number of hash functions (rows of the sketch).
        width: Output range of each function (columns of the sketch).
        seed: Seed of the pseudo-random generator used to draw ``a`` and
            ``b`` coefficients.
    """

    def __init__(self, depth: int, width: int, seed: int = 0) -> None:
        if depth <= 0:
            raise ConfigurationError("hash family depth must be positive, got %r" % (depth,))
        if width <= 0:
            raise ConfigurationError("hash family width must be positive, got %r" % (width,))
        self.depth = depth
        self.width = width
        self.seed = seed
        rng = random.Random(seed)
        self._functions: list[PairwiseHash] = []
        for _ in range(depth):
            a = rng.randrange(1, MERSENNE_PRIME_61)
            b = rng.randrange(0, MERSENNE_PRIME_61)
            self._functions.append(PairwiseHash(a=a, b=b, width=width))
        # Pre-split coefficients into 31-bit halves (column vectors, so a batch
        # of fingerprints broadcasts to a (depth, n) result): 61-bit operands
        # would overflow uint64 products, the halves never do.
        a_column = np.array([[fn.a] for fn in self._functions], dtype=np.uint64)
        self._a_lo = a_column & _NP_MASK31
        self._a_hi = a_column >> _NP_31
        self._b = np.array([[fn.b] for fn in self._functions], dtype=np.uint64)
        self._np_width = np.uint64(width)

    @property
    def functions(self) -> Sequence[PairwiseHash]:
        """The individual hash functions, row by row."""
        return tuple(self._functions)

    def hash_all(self, item: Hashable) -> list[int]:
        """Hash ``item`` with every function of the family.

        Returns:
            A list of ``depth`` column indices, one per row.
        """
        x = stable_fingerprint(item)
        return [h.hash_int(x) for h in self._functions]

    def hash_many(self, items: ItemBatch) -> np.ndarray:
        """Hash a batch of items with every function of the family at once.

        The evaluation is NumPy-vectorized: fingerprints are reduced modulo the
        Mersenne prime, the 61-bit Carter–Wegman products are computed via
        31-bit limbs (``a*x = a_hi*x_hi*2**62 + (a_hi*x_lo + a_lo*x_hi)*2**31 +
        a_lo*x_lo``, with ``2**61 = 1 (mod p)`` turning the shifted terms into
        cheap rotations), and every row is processed in the same pass through
        broadcasting.  Results agree exactly with :meth:`hash_all` per item.

        Args:
            items: Batch of hashable values (or an integer NumPy array).

        Returns:
            A ``(depth, len(items))`` array of column indices (``uint64``).
        """
        fingerprints = stable_fingerprints(items)
        return self.hash_fingerprints(fingerprints)

    def hash_fingerprints(self, fingerprints: np.ndarray) -> np.ndarray:
        """Vectorized hashing of already-computed ``uint64`` fingerprints."""
        x = _mod_mersenne61(fingerprints.astype(np.uint64, copy=False))
        x_lo = x & _NP_MASK31  # < 2**31
        x_hi = x >> _NP_31  # < 2**30
        # a_hi*x_hi*2**62 mod p == 2*a_hi*x_hi mod p (2**61 == 1 mod p).
        high = _mod_mersenne61(self._a_hi * x_hi * _NP_2)
        # The middle term is multiplied by 2**31, i.e. rotated left by 31 bits
        # within the 61-bit field.
        mid = _mod_mersenne61(self._a_hi * x_lo + self._a_lo * x_hi)
        mid = _mod_mersenne61(((mid << _NP_31) & _NP_P) + (mid >> _NP_30))
        low = _mod_mersenne61(self._a_lo * x_lo)
        hashed = _mod_mersenne61(high + mid + low + self._b)
        return hashed % self._np_width

    def hash_row(self, item: Hashable, row: int) -> int:
        """Hash ``item`` with the function of a single ``row``."""
        return self._functions[row](item)

    def is_compatible_with(self, other: HashFamily) -> bool:
        """Return True when two families are interchangeable for merging."""
        return (
            self.depth == other.depth
            and self.width == other.width
            and self.seed == other.seed
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HashFamily):
            return NotImplemented
        return self.is_compatible_with(other)

    def __hash__(self) -> int:
        return hash((self.depth, self.width, self.seed))

    def __repr__(self) -> str:
        return "HashFamily(depth=%d, width=%d, seed=%d)" % (self.depth, self.width, self.seed)
