"""Pairwise-independent hash families.

Count-Min sketches and randomized waves both need cheap hash functions drawn
from a pairwise-independent family.  We use the classic Carter–Wegman
construction ``h(x) = ((a*x + b) mod p) mod m`` over the Mersenne prime
``p = 2**61 - 1``, which is fast in pure Python (single multiplication on
machine integers) and provides the 2-universality required by the Count-Min
analysis of Cormode & Muthukrishnan.

Items may be arbitrary hashable Python objects; non-integers are first mapped
to 64-bit integers through a stable (seed-independent) fingerprint so that two
sketches built with the same seeds hash the same items identically — a
prerequisite for sketch composition.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Hashable, List, Sequence

from .errors import ConfigurationError

__all__ = [
    "MERSENNE_PRIME_61",
    "stable_fingerprint",
    "PairwiseHash",
    "HashFamily",
]

#: The Mersenne prime 2**61 - 1 used as the field size of the hash family.
MERSENNE_PRIME_61 = (1 << 61) - 1


def stable_fingerprint(item: Hashable) -> int:
    """Map an arbitrary hashable item to a stable 64-bit integer.

    Python's built-in :func:`hash` is randomised per process for strings
    (``PYTHONHASHSEED``), which would break reproducibility and sketch
    composition across processes.  Integers are passed through unchanged
    (folded into 64 bits); everything else goes through blake2b of its
    ``repr``.

    Args:
        item: Any hashable value (int, str, tuple, ...).

    Returns:
        A non-negative integer fitting in 64 bits.
    """
    if isinstance(item, bool):
        # bool is a subclass of int; keep True/False distinct from 1/0 text
        # representations but still deterministic.
        return int(item)
    if isinstance(item, int):
        return item & 0xFFFFFFFFFFFFFFFF
    if isinstance(item, bytes):
        digest = hashlib.blake2b(item, digest_size=8).digest()
        return int.from_bytes(digest, "little")
    if isinstance(item, str):
        digest = hashlib.blake2b(item.encode("utf-8"), digest_size=8).digest()
        return int.from_bytes(digest, "little")
    digest = hashlib.blake2b(repr(item).encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


@dataclass(frozen=True)
class PairwiseHash:
    """A single hash function from the Carter–Wegman pairwise family.

    Attributes:
        a: Multiplier, drawn uniformly from ``[1, p-1]``.
        b: Offset, drawn uniformly from ``[0, p-1]``.
        width: Output range; hashes land in ``[0, width)``.
    """

    a: int
    b: int
    width: int

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ConfigurationError("hash width must be positive, got %r" % (self.width,))
        if not (1 <= self.a < MERSENNE_PRIME_61):
            raise ConfigurationError("hash multiplier out of range")
        if not (0 <= self.b < MERSENNE_PRIME_61):
            raise ConfigurationError("hash offset out of range")

    def __call__(self, item: Hashable) -> int:
        """Hash ``item`` into ``[0, width)``."""
        x = stable_fingerprint(item)
        return ((self.a * x + self.b) % MERSENNE_PRIME_61) % self.width

    def hash_int(self, x: int) -> int:
        """Hash an already-fingerprinted integer into ``[0, width)``."""
        return ((self.a * x + self.b) % MERSENNE_PRIME_61) % self.width


class HashFamily:
    """A reproducible family of ``depth`` pairwise-independent hash functions.

    Two families constructed with the same ``depth``, ``width`` and ``seed``
    are identical, which is what allows Count-Min and ECM-sketches built on
    different nodes to be merged.

    Args:
        depth: Number of hash functions (rows of the sketch).
        width: Output range of each function (columns of the sketch).
        seed: Seed of the pseudo-random generator used to draw ``a`` and
            ``b`` coefficients.
    """

    def __init__(self, depth: int, width: int, seed: int = 0) -> None:
        if depth <= 0:
            raise ConfigurationError("hash family depth must be positive, got %r" % (depth,))
        if width <= 0:
            raise ConfigurationError("hash family width must be positive, got %r" % (width,))
        self.depth = depth
        self.width = width
        self.seed = seed
        rng = random.Random(seed)
        self._functions: List[PairwiseHash] = []
        for _ in range(depth):
            a = rng.randrange(1, MERSENNE_PRIME_61)
            b = rng.randrange(0, MERSENNE_PRIME_61)
            self._functions.append(PairwiseHash(a=a, b=b, width=width))

    @property
    def functions(self) -> Sequence[PairwiseHash]:
        """The individual hash functions, row by row."""
        return tuple(self._functions)

    def hash_all(self, item: Hashable) -> List[int]:
        """Hash ``item`` with every function of the family.

        Returns:
            A list of ``depth`` column indices, one per row.
        """
        x = stable_fingerprint(item)
        return [h.hash_int(x) for h in self._functions]

    def hash_row(self, item: Hashable, row: int) -> int:
        """Hash ``item`` with the function of a single ``row``."""
        return self._functions[row](item)

    def is_compatible_with(self, other: "HashFamily") -> bool:
        """Return True when two families are interchangeable for merging."""
        return (
            self.depth == other.depth
            and self.width == other.width
            and self.seed == other.seed
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HashFamily):
            return NotImplemented
        return self.is_compatible_with(other)

    def __hash__(self) -> int:
        return hash((self.depth, self.width, self.seed))

    def __repr__(self) -> str:
        return "HashFamily(depth=%d, width=%d, seed=%d)" % (self.depth, self.width, self.seed)
