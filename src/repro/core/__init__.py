"""Core contribution of the paper: Count-Min sketches and ECM-sketches."""

from .config import (
    CounterType,
    ECMConfig,
    inner_product_error,
    point_query_error,
    split_inner_product_deterministic,
    split_point_query_deterministic,
    split_point_query_randomized,
)
from .counter_store import (
    BackendRegistration,
    CounterStore,
    ObjectCounterStore,
    known_backend_names,
    register_backend,
    registered_backends,
    resolve_backend,
    unregister_backend,
)
from .countmin import CountMinSketch, dimensions_for_error
from .ecm_sketch import ECMSketch
from .errors import (
    BackendUnavailableError,
    ConfigurationError,
    EmptyStructureError,
    IncompatibleSketchError,
    OutOfOrderArrivalError,
    ReproError,
    WindowModelError,
)
from .hashing import HashFamily, PairwiseHash, stable_fingerprint, stable_fingerprints

__all__ = [
    "CounterType",
    "ECMConfig",
    "ECMSketch",
    "CounterStore",
    "ObjectCounterStore",
    "BackendRegistration",
    "register_backend",
    "unregister_backend",
    "registered_backends",
    "known_backend_names",
    "resolve_backend",
    "CountMinSketch",
    "dimensions_for_error",
    "HashFamily",
    "PairwiseHash",
    "stable_fingerprint",
    "stable_fingerprints",
    "point_query_error",
    "inner_product_error",
    "split_point_query_deterministic",
    "split_point_query_randomized",
    "split_inner_product_deterministic",
    "ReproError",
    "ConfigurationError",
    "BackendUnavailableError",
    "IncompatibleSketchError",
    "WindowModelError",
    "OutOfOrderArrivalError",
    "EmptyStructureError",
]
