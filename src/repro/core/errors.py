"""Exception hierarchy for the ECM-sketch reproduction library.

All library-specific errors derive from :class:`ReproError` so that callers can
catch the whole family with a single ``except`` clause while still being able
to distinguish configuration problems from incompatible-merge problems.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "BackendUnavailableError",
    "IncompatibleSketchError",
    "WindowModelError",
    "OutOfOrderArrivalError",
    "EmptyStructureError",
]


class ReproError(Exception):
    """Base class for every exception raised by the ``repro`` library."""


class ConfigurationError(ReproError, ValueError):
    """Raised when a synopsis is constructed with invalid parameters.

    Examples include non-positive epsilon/delta, zero-length sliding windows,
    or a Count-Min array with zero width or depth.
    """


class BackendUnavailableError(ConfigurationError):
    """Raised when a requested counter-store backend cannot serve a config.

    An explicitly-named backend (``backend="kernels"`` without numba,
    ``backend="columnar"`` with wave counters) fails loudly with the
    registry's rejection reason instead of silently demoting; ``"auto"``
    raises only when *no* registered backend accepts the configuration.
    """


class IncompatibleSketchError(ReproError, ValueError):
    """Raised when two synopses cannot be combined.

    Merging requires identical dimensions, hash seeds, window lengths and
    window models; any mismatch raises this error rather than silently
    producing a meaningless aggregate.
    """


class WindowModelError(ReproError, ValueError):
    """Raised when an operation is not supported by the chosen window model.

    The canonical example is order-preserving aggregation of *count-based*
    sliding windows, which the paper proves impossible (Section 5.1,
    Figure 2): count-based synopses lose the ordering of the "false bits"
    interleaved between observed arrivals.
    """


class OutOfOrderArrivalError(ReproError, ValueError):
    """Raised when an item arrives with a timestamp older than the last one.

    The structures in this library follow the paper and assume in-order
    arrivals within each local stream (the cash-register model with
    non-decreasing timestamps).
    """


class EmptyStructureError(ReproError, RuntimeError):
    """Raised when a query requires data but the structure has seen none."""
