"""ECM-sketches: Exponential Count-Min sketches (paper Section 4).

An ECM-sketch is a Count-Min sketch whose integer counters are replaced by
sliding-window counters, so that every query — point, inner-product or
self-join — can be restricted to the most recent ``r`` time units (or
arrivals).  The default counter implementation is the exponential histogram
(ECM-EH); deterministic waves (ECM-DW) and randomized waves (ECM-RW) are
supported as drop-in alternatives exactly as in the paper's Section 4.2.2.

Guarantees (with ``||a_r||_1`` the number of arrivals in the query range):

* point queries: ``|est - true| <= (eps_sw + eps_cm + eps_sw*eps_cm) * ||a_r||_1``
  with probability ``1 - delta`` (Theorems 1 and 3);
* inner products: ``|est - true| <= (eps_sw**2 + 2*eps_sw + eps_cm*(1+eps_sw)**2)
  * ||a_r||_1 * ||b_r||_1`` with probability ``1 - delta`` (Theorem 2).

ECM-sketches built with identical configurations (dimensions, hash seed,
window, counter type) can be aggregated into a single sketch summarising the
order-preserving union of their streams (Section 5.3); for deterministic
counters the aggregation inflates the window error from ``eps_sw`` to
``eps_sw + eps'_sw + eps_sw*eps'_sw``, for randomized waves it is lossless.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Sequence

import numpy as np

from ..windows.base import SlidingWindowCounter, WindowModel
from ..windows.deterministic_wave import DeterministicWave
from ..windows.exponential_histogram import ExponentialHistogram
from ..windows.merge import (
    aggregated_error,
    bulk_merge_deterministic_waves,
    bulk_merge_exponential_histograms,
    merge_deterministic_waves,
    merge_exponential_histograms,
)
from ..windows.randomized_wave import RandomizedWave
from .config import CounterType, ECMConfig
from .counter_store import CounterStore, resolve_backend
from .countmin import CountMinSketch
from .errors import (
    ConfigurationError,
    IncompatibleSketchError,
    OutOfOrderArrivalError,
    WindowModelError,
)
from .hashing import HashFamily, ItemBatch, stable_fingerprint, stable_fingerprints

__all__ = ["ECMSketch"]

_FIELD_BITS = 32
#: Entry cap of the per-sketch item-fingerprint memo used by ``add_many``.
#: The memo is an ingestion accelerator, not synopsis state: it is excluded
#: from ``memory_bytes()`` (which models the paper's synopsis footprint) and
#: is wholesale-cleared when it outgrows this cap, trading a one-off
#: re-fingerprinting of the working set for bounded overhead on
#: high-cardinality streams.
_FINGERPRINT_CACHE_LIMIT = 1 << 17
#: Batch size below which ``point_query_many`` walks items one by one: the
#: NumPy dispatch and cell-dedup overheads of the vectorized pass only
#: amortize past a few dozen items.  Both paths return identical estimates.
_VECTORIZED_QUERY_CUTOFF = 32


class ECMSketch:
    """Sliding-window Count-Min sketch with pluggable window counters.

    Args:
        config: Full parameterisation (see :class:`~repro.core.config.ECMConfig`).
        stream_tag: Integer namespace for auto-generated arrival identifiers;
            give each distributed node a distinct tag so that randomized-wave
            counters merge losslessly.

    Example:
        >>> sketch = ECMSketch.for_point_queries(epsilon=0.1, delta=0.1, window=3600)
        >>> sketch.add("10.0.0.1", clock=100.0)
        >>> sketch.add("10.0.0.1", clock=200.0)
        >>> sketch.point_query("10.0.0.1", range_length=3600, now=200.0) >= 2
        True
    """

    def __init__(self, config: ECMConfig, stream_tag: int = 0) -> None:
        self.config = config
        self.stream_tag = stream_tag
        self.width = config.width
        self.depth = config.depth
        self.window = config.window
        self.model = config.model
        self.counter_type = config.counter_type
        self.hashes = HashFamily(depth=self.depth, width=self.width, seed=config.seed)
        # Capability-negotiated store selection: the registry resolves
        # config.backend ("auto" picks by priority, explicit names fail
        # loudly) and its factory builds the store.
        registration = resolve_backend(config)
        #: Name of the storage backend actually in use.
        self.backend = registration.name
        self._store: CounterStore = registration.factory(config, self._make_counter)
        self._total_arrivals = 0
        self._last_clock: float | None = None
        # Item -> stable fingerprint memo used by the batched ingestion path;
        # cleared when it exceeds _FINGERPRINT_CACHE_LIMIT entries.
        self._fingerprint_cache: dict[Hashable, int] = {}
        #: Error parameter carried by the sliding-window counters.  Aggregation
        #: inflates it (Theorem 4); queries report guarantees based on it.
        self.effective_epsilon_sw = config.epsilon_sw

    # ------------------------------------------------------------- factories
    @classmethod
    def for_point_queries(
        cls,
        epsilon: float,
        delta: float,
        window: float,
        model: WindowModel = WindowModel.TIME_BASED,
        counter_type: CounterType = CounterType.EXPONENTIAL_HISTOGRAM,
        max_arrivals: int | None = None,
        seed: int = 0,
        stream_tag: int = 0,
        backend: str = "auto",
    ) -> ECMSketch:
        """Sketch sized for a total point-query error of ``epsilon``."""
        config = ECMConfig.for_point_queries(
            epsilon=epsilon,
            delta=delta,
            window=window,
            model=model,
            counter_type=counter_type,
            max_arrivals=max_arrivals,
            seed=seed,
            backend=backend,
        )
        return cls(config, stream_tag=stream_tag)

    @classmethod
    def for_inner_product_queries(
        cls,
        epsilon: float,
        delta: float,
        window: float,
        model: WindowModel = WindowModel.TIME_BASED,
        counter_type: CounterType = CounterType.EXPONENTIAL_HISTOGRAM,
        max_arrivals: int | None = None,
        seed: int = 0,
        stream_tag: int = 0,
        backend: str = "auto",
    ) -> ECMSketch:
        """Sketch sized for a total inner-product error of ``epsilon``."""
        config = ECMConfig.for_inner_product_queries(
            epsilon=epsilon,
            delta=delta,
            window=window,
            model=model,
            counter_type=counter_type,
            max_arrivals=max_arrivals,
            seed=seed,
            backend=backend,
        )
        return cls(config, stream_tag=stream_tag)

    def _make_counter(self, row: int, column: int) -> SlidingWindowCounter:
        """Instantiate one sliding-window counter for cell ``(row, column)``."""
        config = self.config
        if config.counter_type is CounterType.EXPONENTIAL_HISTOGRAM:
            return ExponentialHistogram(
                epsilon=config.epsilon_sw, window=config.window, model=config.model
            )
        if config.counter_type is CounterType.DETERMINISTIC_WAVE:
            return DeterministicWave(
                epsilon=config.epsilon_sw,
                window=config.window,
                max_arrivals=int(config.max_arrivals or 1),
                model=config.model,
            )
        if config.counter_type is CounterType.RANDOMIZED_WAVE:
            return RandomizedWave(
                epsilon=config.epsilon_sw,
                delta=config.delta_sw,
                window=config.window,
                max_arrivals=int(config.max_arrivals or 1),
                model=config.model,
                seed=(config.seed * 1_000_003 + row * 1009 + column) & 0x7FFFFFFF,
                stream_tag=self.stream_tag,
            )
        raise ConfigurationError("unknown counter type %r" % (config.counter_type,))

    # ---------------------------------------------------------------- update
    def add(self, item: Hashable, clock: float, value: int = 1) -> None:
        """Register ``value`` arrivals of ``item`` at clock value ``clock``.

        For time-based windows ``clock`` is the arrival time; for count-based
        windows it is the global arrival index of the stream.
        """
        if value < 0:
            raise ConfigurationError("ECM-sketches operate in the cash-register model; value >= 0")
        if value == 0:
            return
        columns = self.hashes.hash_all(item)
        store = self._store
        for row, column in enumerate(columns):
            store.add_single(row, column, clock, value)
        self._total_arrivals += value
        self._last_clock = clock

    def add_many(
        self,
        items: ItemBatch,
        clocks: Sequence[float],
        values: Sequence[int] | None = None,
    ) -> None:
        """Batched :meth:`add`: ingest a whole chunk of arrivals in one call.

        The resulting sketch state is byte-for-byte identical to calling
        :meth:`add` once per arrival in order, but the work is organised for
        throughput: each distinct item is fingerprinted and hashed exactly
        once in a NumPy-vectorized pass, and each (row, column) cell receives
        its arrivals as one contiguous run through
        :meth:`~repro.windows.base.SlidingWindowCounter.add_batch`, which
        amortizes the per-arrival bookkeeping.  Grouping by cell is sound
        because a sliding-window counter's state depends only on its own
        arrival subsequence, which the stable grouping preserves in order.

        Unlike the scalar path, argument problems (length mismatch, negative
        value, out-of-order clocks) are detected *before* any state is
        mutated, so a failed call leaves the sketch untouched.

        Args:
            items: Batch of items, in stream order.
            clocks: Non-decreasing clock values, one per item.
            values: Optional per-item weights (defaults to 1 each).
        """
        n = len(items)
        if len(clocks) != n:
            raise ConfigurationError(
                "clocks length %d does not match items length %d" % (len(clocks), n)
            )
        if values is not None and len(values) != n:
            raise ConfigurationError(
                "values length %d does not match items length %d" % (len(values), n)
            )
        if n == 0:
            return
        if values is not None and any(v < 0 for v in values):
            raise ConfigurationError("ECM-sketches operate in the cash-register model; value >= 0")
        # Zero-weight arrivals are no-ops in the scalar path (they do not even
        # advance the clock), so drop them before validation and grouping.
        if values is not None and not all(values):
            kept = [i for i, v in enumerate(values) if v]
            if not kept:
                return
            if isinstance(items, np.ndarray):
                items = items[kept]
            else:
                items = [items[i] for i in kept]
            clocks = [clocks[i] for i in kept]
            values = [values[i] for i in kept]
            n = len(items)
        # All-unit weights take the counts-free path (it is both the common
        # case and the fastest); the type check keeps float weights like 1.0
        # on the weighted path so arrival totals accumulate exactly as the
        # scalar path would.
        if values is not None and all(type(v) is int and v == 1 for v in values):
            values = None
        # `asarray` without an explicit dtype keeps integer clocks integral
        # through the sort round-trip (count-based windows use arrival
        # indices), so counters store exactly the clock values the scalar
        # path would have stored.
        clocks_array = np.asarray(clocks)
        if (self._last_clock is not None and clocks_array[0] < self._last_clock) or (
            n > 1 and bool((clocks_array[1:] < clocks_array[:-1]).any())
        ):
            previous = self._last_clock
            for clock in clocks:
                if previous is not None and clock < previous:
                    raise OutOfOrderArrivalError(
                        "arrival clock %r is older than the previous arrival %r"
                        % (clock, previous)
                    )
                previous = clock

        # Fingerprint each item once.  Integer NumPy arrays (the hierarchical
        # stack's per-level prefixes) fingerprint as one dtype cast — a
        # non-negative integer's fingerprint is the integer itself, folded
        # into 64 bits exactly as the uint64 view does.  Everything else goes
        # through the per-item memo (blake2b is the expensive part; the
        # Carter–Wegman evaluation over all rows and arrivals is a handful of
        # vectorized passes and needs no dedup).  ``str``/``int`` keys are
        # safe cache keys as-is; other types are namespaced by class so that
        # `1`, `1.0` and `"1"` never alias.
        if isinstance(items, np.ndarray) and np.issubdtype(items.dtype, np.integer):
            fingerprint_array = stable_fingerprints(items)
        else:
            cache = self._fingerprint_cache
            if len(cache) > _FINGERPRINT_CACHE_LIMIT:
                cache.clear()
            cache_get = cache.get
            fingerprints: list[int] = []
            fingerprints_append = fingerprints.append
            for item in items:
                key = item if type(item) is str or type(item) is int else (item.__class__, item)
                fingerprint = cache_get(key)
                if fingerprint is None:
                    fingerprint = stable_fingerprint(item)
                    cache[key] = fingerprint
                fingerprints_append(fingerprint)
            fingerprint_array = np.fromiter(fingerprints, dtype=np.uint64, count=n)
        columns = self.hashes.hash_fingerprints(fingerprint_array)

        values_array = None if values is None else np.asarray(values)
        # A NumPy sort round-trip (`array[order].tolist()`) hands counters the
        # exact original clock/value objects only when the array dtype did not
        # coerce anything — all-int and all-float lists survive, a mixed list
        # is silently promoted to float64.  Fall back to Python indexing in
        # the mixed case so batched state stays byte-identical to scalar.
        # (`set(map(type, ...))` runs the scan at C speed; an ndarray input
        # cannot mix scalar types, so it skips the scan entirely.)
        clocks_exact = (
            clocks_array.dtype.kind != "f"
            or isinstance(clocks, np.ndarray)
            or set(map(type, clocks)) == {float}
        )
        values_exact = (
            values_array is None
            or values_array.dtype.kind != "f"
            or isinstance(values, np.ndarray)
            or set(map(type, values)) == {float}
        )
        store = self._store
        # The columnar store consumes the sorted clock/value arrays directly
        # (its vector path never materialises Python scalars); the object
        # store receives plain lists, exactly as the per-cell add_batch seam
        # always has.  Mixed-type batches stay Python lists for both.
        keep_arrays = store.prefers_arrays
        payloads = []
        for row in range(self.depth):
            arrival_columns = columns[row]
            # Stable sort by column: each cell's arrivals become one contiguous
            # slice, still in stream order, so a counter sees exactly the same
            # arrival subsequence as under per-item `add` calls.
            order = np.argsort(arrival_columns, kind="stable")
            sorted_columns = arrival_columns[order]
            if clocks_exact:
                sorted_clocks = clocks_array[order] if keep_arrays else clocks_array[order].tolist()
            else:
                sorted_clocks = [clocks[i] for i in order.tolist()]
            if values_array is None:
                sorted_values = None
            elif values_exact:
                sorted_values = values_array[order] if keep_arrays else values_array[order].tolist()
            else:
                sorted_values = [values[i] for i in order.tolist()]
            run_starts = [0] + (np.flatnonzero(np.diff(sorted_columns)) + 1).tolist()
            run_stops = run_starts[1:] + [n]
            column_of_run = sorted_columns[run_starts].tolist()
            payloads.append(
                (row, column_of_run, run_starts, run_stops, sorted_clocks, sorted_values)
            )
        # All rows in one store call: rows address disjoint cells, so the
        # columnar backend cascades the whole batch in a single pass.
        store.ingest_sorted_rows(payloads)
        if values is None:
            self._total_arrivals += n
        else:
            total_weight = sum(values)
            # A NumPy integer (ndarray values input) would poison the JSON
            # wire format downstream, like the last_clock guard below.
            self._total_arrivals += (
                total_weight.item() if isinstance(total_weight, np.generic) else total_weight
            )
        last_clock = clocks[-1]
        # A NumPy scalar here would poison the JSON wire format downstream.
        self._last_clock = last_clock.item() if isinstance(last_clock, np.generic) else last_clock

    # --------------------------------------------------------------- queries
    def _resolve_now(self, now: float | None) -> float:
        if now is not None:
            return now
        return self._last_clock if self._last_clock is not None else 0.0

    def counter_estimate(
        self, row: int, column: int, range_length: float | None = None, now: float | None = None
    ) -> float:
        """Estimated value ``E(row, column, r)`` of one counter for a query range."""
        return self._store.estimate(row, column, range_length, self._resolve_now(now))

    def point_query(
        self, item: Hashable, range_length: float | None = None, now: float | None = None
    ) -> float:
        """Estimated frequency of ``item`` within the query range (Theorem 1)."""
        now_value = self._resolve_now(now)
        columns = self.hashes.hash_all(item)
        store = self._store
        return min(
            store.estimate(row, column, range_length, now_value)
            for row, column in enumerate(columns)
        )

    def point_query_many(
        self,
        items: ItemBatch,
        range_length: float | None = None,
        now: float | None = None,
    ) -> list[float]:
        """Batched :meth:`point_query` over a whole chunk of items.

        Items are hashed in one vectorized pass (small batches, where NumPy
        dispatch overhead would dominate, fall back to per-item hashing with
        identical results) and every (row, column) cell is estimated at most
        once per call (estimates are deterministic for a fixed query range,
        so caching cannot change any answer).

        Returns:
            One estimate per input item, in order; each equals exactly what
            :meth:`point_query` would return for that item.
        """
        if not len(items):
            return []
        now_value = self._resolve_now(now)
        if len(items) <= _VECTORIZED_QUERY_CUTOFF:
            # Small batches: the scalar per-item walk.  Cell reuse is rare
            # below the cutoff, so the dedup bookkeeping of the vectorized
            # path costs more than the estimates it saves.
            return [self.point_query(item, range_length, now_value) for item in items]
        hashed = self.hashes.hash_many(items)
        if self._store.prefers_arrays:
            # One gathered pass over the deduplicated cells, reading the
            # estimates straight out of the columnar arrays.
            flat_cells = hashed.astype(np.int64) + (
                np.arange(self.depth, dtype=np.int64)[:, None] * np.int64(self.width)
            )
            unique_cells, inverse = np.unique(flat_cells, return_inverse=True)
            unique_estimates = self._store.estimate_cells(unique_cells, range_length, now_value)
            per_item = unique_estimates[inverse.reshape(flat_cells.shape)].min(axis=0)
            return per_item.tolist()
        columns = hashed.tolist()
        cache: dict[tuple[int, int], float] = {}
        results: list[float] = []
        store = self._store
        for position in range(len(items)):
            best: float | None = None
            for row in range(self.depth):
                column = columns[row][position]
                key = (row, column)
                estimate = cache.get(key)
                if estimate is None:
                    estimate = store.estimate(row, column, range_length, now_value)
                    cache[key] = estimate
                if best is None or estimate < best:
                    best = estimate
            results.append(best if best is not None else 0.0)
        return results

    def inner_product(
        self,
        other: ECMSketch,
        range_length: float | None = None,
        now: float | None = None,
    ) -> float:
        """Estimated sliding-window inner product of two streams (Theorem 2)."""
        self._require_compatible(other)
        now_value = self._resolve_now(now)
        other_now = other._resolve_now(now)
        mine = self._store.estimate_grid(range_length, now_value)
        best: float | None = None
        if other._store.prefers_arrays:
            theirs = other._store.estimate_grid(range_length, other_now)
            for row in range(self.depth):
                row_product = 0.0
                for a, b in zip(mine[row], theirs[row], strict=False):
                    if a == 0.0:
                        continue
                    row_product += a * b
                if best is None or row_product < best:
                    best = row_product
            return float(best if best is not None else 0.0)
        # Object backend (mandatory for wave counters, whose estimates are
        # expensive): keep the lazy skip — other's cell is only estimated
        # when this sketch's cell is non-zero.
        other_store = other._store
        for row in range(self.depth):
            row_product = 0.0
            for column, a in enumerate(mine[row]):
                if a == 0.0:
                    continue
                row_product += a * other_store.estimate(row, column, range_length, other_now)
            if best is None or row_product < best:
                best = row_product
        return float(best if best is not None else 0.0)

    def self_join(self, range_length: float | None = None, now: float | None = None) -> float:
        """Estimated second frequency moment ``F2`` within the query range."""
        now_value = self._resolve_now(now)
        matrix = self._store.estimate_grid(range_length, now_value)
        best: float | None = None
        for row in range(self.depth):
            row_product = 0.0
            for value in matrix[row]:
                row_product += value * value
            if best is None or row_product < best:
                best = row_product
        return float(best if best is not None else 0.0)

    def estimate_arrivals(
        self, range_length: float | None = None, now: float | None = None
    ) -> float:
        """Estimate ``||a_r||_1`` by averaging per-row counter sums (Section 6.1)."""
        now_value = self._resolve_now(now)
        matrix = self._store.estimate_grid(range_length, now_value)
        row_sums = [sum(row_estimates) for row_estimates in matrix]
        return sum(row_sums) / float(len(row_sums)) if row_sums else 0.0

    def total_arrivals(self) -> int:
        """Exact total weight added to the sketch since construction."""
        return self._total_arrivals

    @property
    def last_clock(self) -> float | None:
        """Clock value of the most recent arrival, or ``None`` if empty."""
        return self._last_clock

    # ---------------------------------------------------------------- expiry
    def expire(self, now: float) -> None:
        """Sweep every cell, dropping state outside the window ``(now - N, now]``.

        Counters normally expire lazily, on their own update path, so a cell
        whose stream went quiet retains dead buckets until its next arrival.
        This hook sweeps the whole grid in one call — a single vectorized
        pass over the shared arrays on the columnar backend, a per-cell loop
        on the object backend — and is what the periodic-aggregation
        coordinator runs before shipping sketches upstream.  Estimates for
        query ranges ending at or after ``now`` are unaffected.
        """
        self._store.expire_all(now)

    # ------------------------------------------------------------ extraction
    def counter_estimates_matrix(
        self, range_length: float | None = None, now: float | None = None
    ) -> list[list[float]]:
        """Estimates of every counter for a query range, as a depth x width matrix."""
        now_value = self._resolve_now(now)
        return self._store.estimate_grid(range_length, now_value)

    def to_countmin(
        self, range_length: float | None = None, now: float | None = None
    ) -> CountMinSketch:
        """Extract a plain Count-Min sketch of the query-range estimates.

        This is the extraction step used by the geometric method (Section 6.2):
        the sliding-window structure collapses into a fixed-size numeric vector
        that can be averaged, differenced and monitored.
        """
        matrix = self.counter_estimates_matrix(range_length, now)
        flat: list[float] = []
        for row in matrix:
            flat.extend(row)
        return CountMinSketch.from_vector(flat, width=self.width, depth=self.depth, seed=self.config.seed)

    # ----------------------------------------------------------------- merge
    def is_compatible_with(self, other: ECMSketch) -> bool:
        """True when the two sketches can be combined or compared cell-wise."""
        return (
            isinstance(other, ECMSketch)
            and self.width == other.width
            and self.depth == other.depth
            and self.config.seed == other.config.seed
            and self.window == other.window
            and self.model == other.model
            and self.counter_type == other.counter_type
        )

    def _require_compatible(self, other: ECMSketch) -> None:
        if not self.is_compatible_with(other):
            raise IncompatibleSketchError(
                "ECM-sketches must share dimensions, hash seed, window, window "
                "model and counter type to be combined"
            )

    @classmethod
    def aggregate(
        cls,
        sketches: Sequence[ECMSketch],
        epsilon_prime: float | None = None,
    ) -> ECMSketch:
        """Order-preserving aggregation of ECM-sketches (Section 5.3).

        Reference implementation: every cell is merged through the replay-
        based algorithms of :mod:`repro.windows.merge`.  The vectorized
        :meth:`merge_many` produces byte-identical state (enforced by the
        serialization-equality suite) and is what the distributed hot paths
        use.

        Args:
            sketches: Input sketches with identical configurations.
            epsilon_prime: Window-error parameter of the aggregate's counters;
                defaults to the inputs' window error (the ``2*eps + eps**2``
                special case of Theorem 4).  Ignored for randomized waves,
                whose aggregation is lossless.

        Returns:
            A new :class:`ECMSketch` summarising the order-preserving union of
            all input streams.

        Raises:
            WindowModelError: for count-based deterministic inputs, which the
                paper proves cannot be aggregated.
            IncompatibleSketchError: for mismatched configurations.
        """
        return cls._aggregate_with(sketches, epsilon_prime, cls._merge_cells)

    @classmethod
    def merge_many(
        cls,
        sketches: Sequence[ECMSketch],
        epsilon_prime: float | None = None,
    ) -> ECMSketch:
        """Vectorized order-preserving aggregation (state-identical to
        :meth:`aggregate`).

        Every cell's input counters are merged through the NumPy-batched bulk
        algorithms (deferred exponential-histogram cascade, arithmetic wave
        reconstruction, batched randomized-wave sample union), which walk the
        replay events as arrays instead of unit arrivals.  The aggregation
        semantics, guarantees and error accounting of :meth:`aggregate` apply
        unchanged; the serialized result is byte-for-byte the same.
        """
        return cls._aggregate_with(sketches, epsilon_prime, cls._bulk_merge_cells)

    @classmethod
    def _aggregate_with(
        cls,
        sketches: Sequence[ECMSketch],
        epsilon_prime: float | None,
        merge_cells: Callable[[CounterType, Sequence[SlidingWindowCounter], float], SlidingWindowCounter],
    ) -> ECMSketch:
        """Shared aggregation driver, parameterised by the per-cell merge."""
        if not sketches:
            raise ConfigurationError("cannot aggregate an empty list of ECM-sketches")
        base = sketches[0]
        for other in sketches[1:]:
            base._require_compatible(other)
        if base.counter_type.is_deterministic and base.model is not WindowModel.TIME_BASED:
            raise WindowModelError(
                "count-based ECM-sketches with deterministic counters cannot be "
                "aggregated in an order-preserving way (paper Section 5.1)"
            )
        if epsilon_prime is None:
            epsilon_prime = base.config.epsilon_sw

        if base.counter_type is CounterType.RANDOMIZED_WAVE:
            result_config = base.config.replaced()
        else:
            result_config = base.config.replaced(epsilon_sw=epsilon_prime)
        result = cls(result_config, stream_tag=base.stream_tag)

        for row in range(base.depth):
            for column in range(base.width):
                cells = [sketch._store.get_counter(row, column) for sketch in sketches]
                result._store.set_counter(
                    row, column, merge_cells(base.counter_type, cells, epsilon_prime)
                )
        result._total_arrivals = sum(sketch._total_arrivals for sketch in sketches)
        known_clocks = [s._last_clock for s in sketches if s._last_clock is not None]
        result._last_clock = max(known_clocks) if known_clocks else None
        if base.counter_type.is_deterministic:
            result.effective_epsilon_sw = aggregated_error(
                max(s.effective_epsilon_sw for s in sketches), epsilon_prime
            )
        else:
            result.effective_epsilon_sw = base.effective_epsilon_sw
        return result

    @staticmethod
    def _merge_cells(
        counter_type: CounterType,
        cells: Sequence[SlidingWindowCounter],
        epsilon_prime: float,
    ) -> SlidingWindowCounter:
        """Replay-based reference merge of one cell across input sketches."""
        if counter_type is CounterType.EXPONENTIAL_HISTOGRAM:
            return merge_exponential_histograms(list(cells), epsilon_prime=epsilon_prime)
        if counter_type is CounterType.DETERMINISTIC_WAVE:
            return merge_deterministic_waves(list(cells), epsilon_prime=epsilon_prime)
        return RandomizedWave.merged(list(cells), vectorized=False)

    @staticmethod
    def _bulk_merge_cells(
        counter_type: CounterType,
        cells: Sequence[SlidingWindowCounter],
        epsilon_prime: float,
    ) -> SlidingWindowCounter:
        """Vectorized merge of one cell across input sketches."""
        if counter_type is CounterType.EXPONENTIAL_HISTOGRAM:
            return bulk_merge_exponential_histograms(list(cells), epsilon_prime=epsilon_prime)
        if counter_type is CounterType.DETERMINISTIC_WAVE:
            return bulk_merge_deterministic_waves(list(cells), epsilon_prime=epsilon_prime)
        return RandomizedWave.merged(list(cells), vectorized=True)

    def merged_with(self, others: Sequence[ECMSketch], epsilon_prime: float | None = None) -> ECMSketch:
        """Convenience wrapper over :meth:`merge_many` including ``self``."""
        return ECMSketch.merge_many([self, *others], epsilon_prime=epsilon_prime)

    # ----------------------------------------------------- guarantees & size
    def point_error_bound(self, arrivals_in_range: float) -> float:
        """Absolute point-query error bound for a range with that many arrivals."""
        eps = self.effective_epsilon_sw + self.config.epsilon_cm + (
            self.effective_epsilon_sw * self.config.epsilon_cm
        )
        return eps * arrivals_in_range

    def inner_product_error_bound(self, arrivals_a: float, arrivals_b: float) -> float:
        """Absolute inner-product error bound for ranges with those arrival counts."""
        eps_sw = self.effective_epsilon_sw
        eps = eps_sw ** 2 + 2.0 * eps_sw + self.config.epsilon_cm * (1.0 + eps_sw) ** 2
        return eps * arrivals_a * arrivals_b

    def memory_bytes(self) -> int:
        """Footprint of the backing counter store plus the sketch overhead.

        On the object backend this is the paper's analytical 32-bit synopsis
        model (the per-cell object graphs *are* the synopsis in the reference
        implementation).  On the columnar backend it is the true allocation
        of the shared NumPy arrays — what the process actually holds
        resident.  Use :meth:`synopsis_bytes` for the backend-independent
        paper-model figure.
        """
        overhead = (self.depth * 2 * _FIELD_BITS + 8 * _FIELD_BITS) // 8
        return self._store.memory_bytes() + overhead

    def synopsis_bytes(self) -> int:
        """The paper's analytical 32-bit synopsis footprint, in bytes.

        Identical across storage backends for the same logical state; this is
        the quantity the paper's memory/communication figures are drawn in.
        """
        overhead = (self.depth * 2 * _FIELD_BITS + 8 * _FIELD_BITS) // 8
        return self._store.synopsis_bytes() + overhead

    def resident_memory_bytes(self) -> int:
        """Estimated true resident memory of the counter grid, in bytes.

        Object backend: a walk of the Python object graph (counter objects,
        level deques, per-bucket objects).  Columnar backend: the allocation
        of the backing arrays (equal to :meth:`memory_bytes`).
        """
        return self._store.resident_bytes()

    def counter(self, row: int, column: int) -> SlidingWindowCounter:
        """One cell as a sliding-window counter object (read-only use).

        The object backend returns the live counter; the columnar backend
        materialises an equivalent :class:`ExponentialHistogram` on demand
        (mutating it does not write back).
        """
        return self._store.get_counter(row, column)

    def _set_counter(self, row: int, column: int, counter: SlidingWindowCounter) -> None:
        """Replace one cell's state (merge drivers and deserialization)."""
        self._store.set_counter(row, column, counter)

    def serialized_bytes(self) -> int:
        """Bytes needed to ship this sketch over the network.

        Used by the distributed experiments to account transfer volume; equal
        to the analytical synopsis footprint (the synopsis is its own wire
        format under the paper's 32-bit accounting), regardless of how the
        grid is stored locally.
        """
        return self.synopsis_bytes()

    def __repr__(self) -> str:
        return (
            "ECMSketch(width=%d, depth=%d, counter=%s, window=%g, model=%s, arrivals=%d)"
            % (
                self.width,
                self.depth,
                self.counter_type.value,
                self.window,
                self.model.value,
                self._total_arrivals,
            )
        )
