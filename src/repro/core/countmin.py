"""Classic Count-Min sketch (Cormode & Muthukrishnan, J. Algorithms 2005).

The Count-Min sketch is both a building block of the ECM-sketch (it defines
the hashing layout and the query semantics) and a stand-alone baseline for
full-history streams.  It supports point queries, inner-product queries and
self-join (second frequency moment) queries over the cash-register model, and
it is linearly mergeable.

The ECM-sketch replaces each integer counter of this structure with a
sliding-window counter; see :mod:`repro.core.ecm_sketch`.
"""

from __future__ import annotations

import math
from collections.abc import Hashable, Iterable, Sequence

import numpy as np

from .errors import ConfigurationError, IncompatibleSketchError
from .hashing import HashFamily

__all__ = ["CountMinSketch", "dimensions_for_error"]

_COUNTER_BITS = 32


def dimensions_for_error(epsilon: float, delta: float) -> tuple[int, int]:
    """Width and depth of a Count-Min array for a target ``(epsilon, delta)``.

    Uses the standard sizing ``w = ceil(e / epsilon)`` and
    ``d = ceil(ln(1 / delta))``.
    """
    if not (0.0 < epsilon < 1.0):
        raise ConfigurationError("epsilon must be in (0, 1), got %r" % (epsilon,))
    if not (0.0 < delta < 1.0):
        raise ConfigurationError("delta must be in (0, 1), got %r" % (delta,))
    width = int(math.ceil(math.e / epsilon))
    depth = int(math.ceil(math.log(1.0 / delta)))
    return max(1, width), max(1, depth)


class CountMinSketch:
    """A ``depth x width`` array of counters with pairwise-independent hashing.

    Args:
        width: Number of counters per row (``w``).
        depth: Number of rows / hash functions (``d``).
        seed: Hash-family seed.  Sketches are mergeable only with equal seeds.

    Example:
        >>> cm = CountMinSketch.from_error(epsilon=0.01, delta=0.01)
        >>> for item in ["a", "b", "a"]:
        ...     cm.add(item)
        >>> cm.point_query("a") >= 2
        True
    """

    def __init__(self, width: int, depth: int, seed: int = 0) -> None:
        if width <= 0 or depth <= 0:
            raise ConfigurationError(
                "width and depth must be positive, got width=%r depth=%r" % (width, depth)
            )
        self.width = width
        self.depth = depth
        self.seed = seed
        self.hashes = HashFamily(depth=depth, width=width, seed=seed)
        self._counters: list[list[float]] = [[0.0] * width for _ in range(depth)]
        self._total = 0.0

    # --------------------------------------------------------------- factory
    @classmethod
    def from_error(cls, epsilon: float, delta: float, seed: int = 0) -> CountMinSketch:
        """Construct a sketch sized for a target error and failure probability."""
        width, depth = dimensions_for_error(epsilon, delta)
        return cls(width=width, depth=depth, seed=seed)

    # ----------------------------------------------------------------- adds
    def add(self, item: Hashable, value: float = 1.0) -> None:
        """Add ``value`` occurrences of ``item`` (cash-register model)."""
        if value < 0:
            raise ConfigurationError("Count-Min operates in the cash-register model; value >= 0")
        columns = self.hashes.hash_all(item)
        for row, column in enumerate(columns):
            self._counters[row][column] += value
        self._total += value

    def update_many(self, items: Iterable[Hashable]) -> None:
        """Add one occurrence of every item in ``items``."""
        for item in items:
            self.add(item)

    def add_many(self, items: Sequence[Hashable], values: Sequence[float] | None = None) -> None:
        """Batched :meth:`add`: ingest a whole chunk of arrivals in one call.

        Equivalent to ``for item, value in zip(items, values): self.add(item,
        value)`` — including the floating-point accumulation order per counter
        — but hashes the entire batch in one vectorized pass, so the per-item
        Python overhead is paid once per chunk instead of once per arrival.

        Args:
            items: Batch of items, in stream order.
            values: Optional per-item weights (defaults to 1 each).
        """
        if not len(items):
            return
        if values is not None:
            if len(values) != len(items):
                raise ConfigurationError(
                    "values length %d does not match items length %d"
                    % (len(values), len(items))
                )
            if any(v < 0 for v in values):
                raise ConfigurationError(
                    "Count-Min operates in the cash-register model; value >= 0"
                )
        columns = self.hashes.hash_many(items).tolist()
        for row, row_columns in enumerate(columns):
            counters = self._counters[row]
            if values is None:
                for column in row_columns:
                    counters[column] += 1.0
            else:
                for column, value in zip(row_columns, values, strict=False):
                    counters[column] += value
        # Sequential accumulation keeps _total bit-identical to the scalar path.
        total = self._total
        if values is None:
            for _ in range(len(items)):
                total += 1.0
        else:
            for value in values:
                total += value
        self._total = total

    # -------------------------------------------------------------- queries
    def point_query(self, item: Hashable) -> float:
        """Estimated frequency of ``item`` (never an underestimate)."""
        columns = self.hashes.hash_all(item)
        return min(self._counters[row][column] for row, column in enumerate(columns))

    def point_query_many(self, items: Sequence[Hashable]) -> list[float]:
        """Batched :meth:`point_query` over a whole chunk of items.

        Returns:
            One estimate per input item, in order; each equals exactly what
            :meth:`point_query` would return for that item.
        """
        if not len(items):
            return []
        columns = self.hashes.hash_many(items).tolist()
        estimates = [self._counters[0][column] for column in columns[0]]
        for row in range(1, self.depth):
            counters = self._counters[row]
            row_columns = columns[row]
            for index, column in enumerate(row_columns):
                value = counters[column]
                if value < estimates[index]:
                    estimates[index] = value
        return estimates

    def inner_product(self, other: CountMinSketch) -> float:
        """Estimated inner product of the two summarised frequency vectors."""
        self._require_compatible(other)
        best = None
        for row in range(self.depth):
            row_product = sum(
                a * b for a, b in zip(self._counters[row], other._counters[row], strict=False)
            )
            if best is None or row_product < best:
                best = row_product
        return float(best if best is not None else 0.0)

    def self_join(self) -> float:
        """Estimated second frequency moment ``F2`` of the summarised stream."""
        return self.inner_product(self)

    def total(self) -> float:
        """Total weight added to the sketch (the stream's L1 norm)."""
        return self._total

    # ---------------------------------------------------------------- merge
    def _require_compatible(self, other: CountMinSketch) -> None:
        if not isinstance(other, CountMinSketch):
            raise IncompatibleSketchError("expected a CountMinSketch, got %r" % (type(other),))
        if not self.hashes.is_compatible_with(other.hashes):
            raise IncompatibleSketchError(
                "Count-Min sketches must share width, depth and hash seed to be combined"
            )

    def merge_inplace(self, other: CountMinSketch) -> None:
        """Add another sketch's counters to this one (linear merge)."""
        self._require_compatible(other)
        for row in range(self.depth):
            mine = self._counters[row]
            theirs = other._counters[row]
            for column in range(self.width):
                mine[column] += theirs[column]
        self._total += other._total

    @classmethod
    def merged(cls, sketches: Sequence[CountMinSketch]) -> CountMinSketch:
        """Return a new sketch equal to the sum of ``sketches``.

        Reference implementation: iterated pairwise :meth:`merge_inplace`.
        The vectorized :meth:`merge_many` produces identical state and is
        what the distributed hot paths use.
        """
        if not sketches:
            raise ConfigurationError("cannot merge an empty list of sketches")
        base = sketches[0]
        result = cls(width=base.width, depth=base.depth, seed=base.seed)
        for sketch in sketches:
            result.merge_inplace(sketch)
        return result

    @classmethod
    def merge_many(cls, sketches: Sequence[CountMinSketch]) -> CountMinSketch:
        """NumPy-batched n-ary merge, state-identical to :meth:`merged`.

        Counters are accumulated as whole ``depth x width`` arrays, one
        vectorized add per input sketch.  The per-cell accumulation order is
        exactly the left-fold of the pairwise reference, so the resulting
        floating-point counters (and therefore the serialized state) are
        bit-identical.
        """
        if not sketches:
            raise ConfigurationError("cannot merge an empty list of sketches")
        base = sketches[0]
        for other in sketches:
            base._require_compatible(other)
        accumulator = np.zeros((base.depth, base.width), dtype=np.float64)
        total = 0.0
        for sketch in sketches:
            accumulator += np.asarray(sketch._counters, dtype=np.float64)
            total += sketch._total
        result = cls(width=base.width, depth=base.depth, seed=base.seed)
        result._counters = accumulator.tolist()
        result._total = total
        return result

    # ------------------------------------------------------------ internals
    def counters(self) -> list[list[float]]:
        """A copy of the counter array (row-major)."""
        return [list(row) for row in self._counters]

    def counter(self, row: int, column: int) -> float:
        """Value of a single counter."""
        return self._counters[row][column]

    def as_vector(self) -> list[float]:
        """The counter array flattened row-major (used by the geometric method)."""
        flat: list[float] = []
        for row in self._counters:
            flat.extend(row)
        return flat

    @classmethod
    def from_vector(
        cls, vector: Sequence[float], width: int, depth: int, seed: int = 0
    ) -> CountMinSketch:
        """Rebuild a sketch from a flattened counter vector."""
        if len(vector) != width * depth:
            raise ConfigurationError(
                "vector length %d does not match width*depth=%d" % (len(vector), width * depth)
            )
        sketch = cls(width=width, depth=depth, seed=seed)
        for row in range(depth):
            sketch._counters[row] = [float(v) for v in vector[row * width : (row + 1) * width]]
        sketch._total = sum(sketch._counters[0])
        return sketch

    # --------------------------------------------------------------- memory
    def memory_bytes(self) -> int:
        """Analytical footprint: one 32-bit counter per cell."""
        return (self.width * self.depth * _COUNTER_BITS + 4 * _COUNTER_BITS) // 8

    def __repr__(self) -> str:
        return "CountMinSketch(width=%d, depth=%d, total=%g)" % (self.width, self.depth, self._total)
