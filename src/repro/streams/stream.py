"""Stream abstractions shared by the examples, experiments and tests.

A *stream* is an ordered sequence of :class:`StreamRecord` items: each record
carries an arrival timestamp, a key (the high-dimensional attribute being
counted — a web-page URL, an IP address, a MAC address, ...) and the
identifier of the node that observed it.  The distributed experiments
partition one logical stream into per-node substreams, and the
order-preserving aggregation ``S_1 (+) ... (+) S_n`` is by definition the
original stream again — which is exactly what lets us measure the accuracy of
aggregated ECM-sketches against a single exact baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Hashable, Iterable, Iterator, Sequence

from ..core.errors import ConfigurationError

__all__ = ["StreamRecord", "Stream"]


@dataclass(frozen=True)
class StreamRecord:
    """A single arrival.

    Attributes:
        timestamp: Arrival time in seconds (monotone within a stream).
        key: The item identifier being counted.
        node: Identifier of the site that observed the arrival.
        value: Arrival weight (1 for plain arrivals, larger under the
            cash-register model).
    """

    timestamp: float
    key: Hashable
    node: int = 0
    value: int = 1


class Stream:
    """An immutable, time-ordered sequence of :class:`StreamRecord` items."""

    def __init__(self, records: Sequence[StreamRecord], name: str = "stream") -> None:
        self._records: list[StreamRecord] = sorted(records, key=lambda r: r.timestamp)
        self.name = name

    # ------------------------------------------------------------- sequence
    def __iter__(self) -> Iterator[StreamRecord]:
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __getitem__(self, index: int) -> StreamRecord:
        return self._records[index]

    @property
    def records(self) -> Sequence[StreamRecord]:
        """The underlying record list (time-ordered)."""
        return tuple(self._records)

    def is_empty(self) -> bool:
        """True when the stream carries no records."""
        return not self._records

    def iter_batches(self, batch_size: int) -> Iterator[Sequence[StreamRecord]]:
        """Iterate over the stream in contiguous chunks of ``batch_size`` records.

        The concatenation of the yielded chunks is exactly the stream, in
        order; the final chunk may be shorter.  This is the chunked-iteration
        seam used by the batched ingestion path
        (:meth:`repro.core.ecm_sketch.ECMSketch.add_many`).

        Args:
            batch_size: Maximum records per chunk (must be positive).
        """
        if batch_size <= 0:
            raise ConfigurationError("batch_size must be positive, got %r" % (batch_size,))
        records = self._records
        for start in range(0, len(records), batch_size):
            yield records[start : start + batch_size]

    def columns(self) -> tuple[list[Hashable], list[float], list[int]]:
        """The stream pivoted into parallel (keys, timestamps, values) lists.

        This is the layout the batch APIs consume (``add_many(keys,
        timestamps, values)``); building it once amortizes attribute access
        over the whole stream.
        """
        keys: list[Hashable] = []
        timestamps: list[float] = []
        values: list[int] = []
        for record in self._records:
            keys.append(record.key)
            timestamps.append(record.timestamp)
            values.append(record.value)
        return keys, timestamps, values

    # ------------------------------------------------------------- metadata
    def keys(self) -> list[Hashable]:
        """Distinct keys appearing anywhere in the stream."""
        seen = {}
        for record in self._records:
            seen.setdefault(record.key, None)
        return list(seen.keys())

    def nodes(self) -> list[int]:
        """Distinct node identifiers appearing in the stream."""
        seen = {}
        for record in self._records:
            seen.setdefault(record.node, None)
        return list(seen.keys())

    def start_time(self) -> float:
        """Timestamp of the first record."""
        if not self._records:
            raise ConfigurationError("empty stream has no start time")
        return self._records[0].timestamp

    def end_time(self) -> float:
        """Timestamp of the last record."""
        if not self._records:
            raise ConfigurationError("empty stream has no end time")
        return self._records[-1].timestamp

    def duration(self) -> float:
        """Time span covered by the stream."""
        return self.end_time() - self.start_time()

    def total_arrivals(self) -> int:
        """Sum of record values."""
        return sum(record.value for record in self._records)

    # ---------------------------------------------------------- partitioning
    def partition_by_node(self) -> dict[int, Stream]:
        """Split into per-node substreams keyed by node identifier."""
        groups: dict[int, list[StreamRecord]] = {}
        for record in self._records:
            groups.setdefault(record.node, []).append(record)
        return {
            node: Stream(records, name="%s[node=%d]" % (self.name, node))
            for node, records in groups.items()
        }

    def reassign_round_robin(self, num_nodes: int) -> Stream:
        """Return a copy whose records are spread uniformly over ``num_nodes``.

        Used by the artificial-network experiment (Figure 6), where the paper
        divides the requests uniformly across 1..256 nodes regardless of the
        original server assignment.
        """
        if num_nodes <= 0:
            raise ConfigurationError("num_nodes must be positive, got %r" % (num_nodes,))
        reassigned = [
            StreamRecord(
                timestamp=record.timestamp,
                key=record.key,
                node=index % num_nodes,
                value=record.value,
            )
            for index, record in enumerate(self._records)
        ]
        return Stream(reassigned, name="%s[rr%d]" % (self.name, num_nodes))

    def filter(self, predicate: Callable[[StreamRecord], bool]) -> Stream:
        """A new stream containing only the records matching ``predicate``."""
        return Stream([r for r in self._records if predicate(r)], name="%s[filtered]" % self.name)

    def tail(self, range_length: float, now: float | None = None) -> Stream:
        """Records within the last ``range_length`` seconds (a sliding-window view)."""
        if now is None:
            now = self.end_time()
        start = now - range_length
        return Stream(
            [r for r in self._records if start < r.timestamp <= now],
            name="%s[tail]" % self.name,
        )

    def head(self, count: int) -> Stream:
        """The first ``count`` records."""
        return Stream(self._records[:count], name="%s[head]" % self.name)

    # ----------------------------------------------------------- statistics
    def key_frequencies(self) -> dict[Hashable, int]:
        """Exact key frequencies over the whole stream."""
        frequencies: dict[Hashable, int] = {}
        for record in self._records:
            frequencies[record.key] = frequencies.get(record.key, 0) + record.value
        return frequencies

    @classmethod
    def concatenate(cls, streams: Iterable[Stream], name: str = "union") -> Stream:
        """Order-preserving union of several streams (the paper's ``(+)``)."""
        records: list[StreamRecord] = []
        for stream in streams:
            records.extend(stream.records)
        return cls(records, name=name)

    def __repr__(self) -> str:
        return "Stream(name=%r, records=%d)" % (self.name, len(self._records))
