"""Synthetic workload generators standing in for the paper's real traces.

The paper evaluates ECM-sketches on two real data sets we cannot ship:

* **WorldCup'98** — 1.089 billion HTTP requests to 33 mirrored web servers,
  keyed by web-page URL;
* **CRAWDAD SNMP Fall'03/04** — 134 million SNMP records from 535 wireless
  access points at Dartmouth, keyed by client MAC address.

What the experiments actually depend on is (a) heavy-tailed key popularity,
(b) in-order, roughly Poisson arrivals with mild diurnal modulation, and
(c) a partitioning of the arrivals across a known set of observation nodes.
The generators in this module reproduce those properties with configurable
scale; see DESIGN.md for the substitution rationale.
"""

from __future__ import annotations

import bisect
import math
import random
from collections.abc import Hashable

import numpy as np

from ..core.errors import ConfigurationError
from .stream import Stream, StreamRecord

__all__ = [
    "ZipfSampler",
    "generate_arrival_times",
    "SyntheticTraceConfig",
    "WorldCupSyntheticTrace",
    "SnmpSyntheticTrace",
    "IntegerZipfTrace",
    "UniformTrace",
    "make_trace",
]


class ZipfSampler:
    """Bounded Zipf(s) sampler over ``{0, ..., domain_size - 1}``.

    Rank ``r`` (1-based) is drawn with probability proportional to
    ``1 / r**exponent``.  The cumulative distribution is precomputed so each
    draw is a binary search — fast enough for multi-million record traces.
    """

    def __init__(self, domain_size: int, exponent: float, seed: int = 0) -> None:
        if domain_size <= 0:
            raise ConfigurationError("domain_size must be positive, got %r" % (domain_size,))
        if exponent < 0:
            raise ConfigurationError("exponent must be non-negative, got %r" % (exponent,))
        self.domain_size = domain_size
        self.exponent = exponent
        self._rng = random.Random(seed)
        weights = [1.0 / ((rank + 1) ** exponent) for rank in range(domain_size)]
        total = sum(weights)
        cumulative: list[float] = []
        running = 0.0
        for weight in weights:
            running += weight / total
            cumulative.append(running)
        cumulative[-1] = 1.0
        self._cumulative = cumulative

    def sample(self) -> int:
        """Draw one rank index in ``[0, domain_size)``."""
        u = self._rng.random()
        return bisect.bisect_left(self._cumulative, u)

    def sample_many(self, count: int) -> list[int]:
        """Draw ``count`` independent rank indices.

        Consumes exactly the same pseudo-random sequence as ``count`` calls
        to :meth:`sample` (and returns the same ranks), but resolves all
        draws against the cumulative distribution in one vectorized
        ``searchsorted`` pass.
        """
        if count <= 0:
            return []
        draws = [self._rng.random() for _ in range(count)]
        return np.searchsorted(self._cumulative, draws, side="left").tolist()

    def probability(self, rank_index: int) -> float:
        """Probability mass of rank ``rank_index`` (0-based)."""
        if rank_index < 0 or rank_index >= self.domain_size:
            return 0.0
        previous = self._cumulative[rank_index - 1] if rank_index > 0 else 0.0
        return self._cumulative[rank_index] - previous


def generate_arrival_times(
    num_records: int,
    duration: float,
    seed: int = 0,
    diurnal_amplitude: float = 0.6,
) -> list[float]:
    """Monotone arrival timestamps over ``[0, duration]`` with diurnal modulation.

    Arrivals follow a non-homogeneous Poisson-like process whose intensity is
    ``1 + diurnal_amplitude * sin(2*pi*t / 86400)``; times are drawn by
    inverse-transform sampling of the integrated intensity and then sorted, so
    the output is always in order regardless of the modulation.
    """
    if num_records < 0:
        raise ConfigurationError("num_records must be non-negative")
    if duration <= 0:
        raise ConfigurationError("duration must be positive")
    if not (0.0 <= diurnal_amplitude < 1.0):
        raise ConfigurationError("diurnal_amplitude must be in [0, 1)")
    rng = random.Random(seed)
    day = 86400.0
    times: list[float] = []
    for _ in range(num_records):
        # Rejection sampling against the diurnal intensity envelope.
        while True:
            candidate = rng.random() * duration
            intensity = 1.0 + diurnal_amplitude * math.sin(2.0 * math.pi * candidate / day)
            if rng.random() * (1.0 + diurnal_amplitude) <= intensity:
                times.append(candidate)
                break
    times.sort()
    return times


class SyntheticTraceConfig:
    """Shared knobs of the synthetic trace generators."""

    def __init__(
        self,
        num_records: int,
        num_nodes: int,
        domain_size: int,
        zipf_exponent: float,
        duration: float,
        seed: int = 0,
    ) -> None:
        if num_records < 0:
            raise ConfigurationError("num_records must be non-negative")
        if num_nodes <= 0:
            raise ConfigurationError("num_nodes must be positive")
        if domain_size <= 0:
            raise ConfigurationError("domain_size must be positive")
        if duration <= 0:
            raise ConfigurationError("duration must be positive")
        self.num_records = num_records
        self.num_nodes = num_nodes
        self.domain_size = domain_size
        self.zipf_exponent = zipf_exponent
        self.duration = duration
        self.seed = seed


class WorldCupSyntheticTrace:
    """Synthetic stand-in for the WorldCup'98 HTTP request trace.

    Keys are web-page identifiers (``"/page/<rank>"``) with Zipf(1.1)
    popularity; each request is served by one of ``num_nodes`` mirrors chosen
    with a mild skew (popular mirrors take more traffic, as in the real
    deployment).
    """

    def __init__(
        self,
        num_records: int = 50_000,
        num_nodes: int = 33,
        domain_size: int = 2_000,
        zipf_exponent: float = 1.1,
        duration: float = 1_000_000.0,
        seed: int = 7,
    ) -> None:
        self.config = SyntheticTraceConfig(
            num_records=num_records,
            num_nodes=num_nodes,
            domain_size=domain_size,
            zipf_exponent=zipf_exponent,
            duration=duration,
            seed=seed,
        )

    def key_for(self, rank_index: int) -> Hashable:
        """Key string of popularity rank ``rank_index``."""
        return "/page/%05d" % rank_index

    def generate(self) -> Stream:
        """Materialise the trace as a :class:`~repro.streams.stream.Stream`."""
        cfg = self.config
        key_sampler = ZipfSampler(cfg.domain_size, cfg.zipf_exponent, seed=cfg.seed)
        node_sampler = ZipfSampler(cfg.num_nodes, 0.3, seed=cfg.seed + 1)
        times = generate_arrival_times(cfg.num_records, cfg.duration, seed=cfg.seed + 2)
        records = [
            StreamRecord(
                timestamp=timestamp,
                key=self.key_for(key_sampler.sample()),
                node=node_sampler.sample(),
            )
            for timestamp in times
        ]
        return Stream(records, name="wc98-synthetic")


class SnmpSyntheticTrace:
    """Synthetic stand-in for the CRAWDAD SNMP Fall'03/04 trace.

    Keys are anonymised MAC addresses with Zipf(0.9) activity; each client has
    a "home" access point that observes most of its records (clients roam with
    probability ``roaming_probability``), matching the locality of the real
    wireless trace.
    """

    def __init__(
        self,
        num_records: int = 50_000,
        num_nodes: int = 535,
        domain_size: int = 3_000,
        zipf_exponent: float = 0.9,
        duration: float = 1_000_000.0,
        roaming_probability: float = 0.2,
        seed: int = 11,
    ) -> None:
        if not (0.0 <= roaming_probability <= 1.0):
            raise ConfigurationError("roaming_probability must be in [0, 1]")
        self.roaming_probability = roaming_probability
        self.config = SyntheticTraceConfig(
            num_records=num_records,
            num_nodes=num_nodes,
            domain_size=domain_size,
            zipf_exponent=zipf_exponent,
            duration=duration,
            seed=seed,
        )

    def key_for(self, rank_index: int) -> Hashable:
        """Pseudo MAC-address string for client of popularity rank ``rank_index``."""
        return "02:%02x:%02x:%02x:%02x:%02x" % (
            (rank_index >> 24) & 0xFF,
            (rank_index >> 16) & 0xFF,
            (rank_index >> 8) & 0xFF,
            rank_index & 0xFF,
            0xAB,
        )

    def generate(self) -> Stream:
        """Materialise the trace as a :class:`~repro.streams.stream.Stream`."""
        cfg = self.config
        rng = random.Random(cfg.seed + 3)
        key_sampler = ZipfSampler(cfg.domain_size, cfg.zipf_exponent, seed=cfg.seed)
        home_ap = {
            rank: rng.randrange(cfg.num_nodes) for rank in range(cfg.domain_size)
        }
        times = generate_arrival_times(cfg.num_records, cfg.duration, seed=cfg.seed + 2)
        records: list[StreamRecord] = []
        for timestamp in times:
            rank = key_sampler.sample()
            if rng.random() < self.roaming_probability:
                node = rng.randrange(cfg.num_nodes)
            else:
                node = home_ap[rank]
            records.append(
                StreamRecord(timestamp=timestamp, key=self.key_for(rank), node=node)
            )
        return Stream(records, name="snmp-synthetic")


class IntegerZipfTrace:
    """Zipf-popular *integer* keys over a bounded universe ``[0, 2**bits)``.

    The hierarchical query engine (and the sketch service's hierarchical
    mode) operates on integer keys of a known universe; this trace is the
    load generator for those paths.  Keys are popularity ranks shuffled over
    the universe with a fixed permutation seed, so popular keys are spread
    across the dyadic ranges instead of clustering at 0.
    """

    def __init__(
        self,
        num_records: int = 50_000,
        universe_bits: int = 12,
        num_nodes: int = 4,
        domain_size: int | None = None,
        zipf_exponent: float = 1.1,
        duration: float = 1_000_000.0,
        seed: int = 13,
    ) -> None:
        universe = 1 << universe_bits
        if domain_size is None:
            domain_size = min(universe, 4_096)
        if domain_size > universe:
            raise ConfigurationError(
                "domain_size %d exceeds the universe 2**%d" % (domain_size, universe_bits)
            )
        self.universe_bits = universe_bits
        self.config = SyntheticTraceConfig(
            num_records=num_records,
            num_nodes=num_nodes,
            domain_size=domain_size,
            zipf_exponent=zipf_exponent,
            duration=duration,
            seed=seed,
        )
        rng = random.Random(seed + 5)
        keys = rng.sample(range(universe), domain_size)
        self._rank_to_key = keys

    def key_for(self, rank_index: int) -> int:
        """Integer key of popularity rank ``rank_index``."""
        return self._rank_to_key[rank_index]

    def generate(self) -> Stream:
        """Materialise the trace as a :class:`~repro.streams.stream.Stream`."""
        cfg = self.config
        key_sampler = ZipfSampler(cfg.domain_size, cfg.zipf_exponent, seed=cfg.seed)
        node_sampler = ZipfSampler(cfg.num_nodes, 0.3, seed=cfg.seed + 1)
        times = generate_arrival_times(cfg.num_records, cfg.duration, seed=cfg.seed + 2)
        ranks = key_sampler.sample_many(len(times))
        records = [
            StreamRecord(
                timestamp=timestamp,
                key=self._rank_to_key[rank],
                node=node_sampler.sample(),
            )
            for timestamp, rank in zip(times, ranks, strict=False)
        ]
        return Stream(records, name="integer-zipf")


class UniformTrace:
    """Uniform-popularity trace used by property tests and micro-benchmarks."""

    def __init__(
        self,
        num_records: int = 10_000,
        num_nodes: int = 4,
        domain_size: int = 100,
        duration: float = 100_000.0,
        seed: int = 3,
    ) -> None:
        self.config = SyntheticTraceConfig(
            num_records=num_records,
            num_nodes=num_nodes,
            domain_size=domain_size,
            zipf_exponent=0.0,
            duration=duration,
            seed=seed,
        )

    def generate(self) -> Stream:
        """Materialise the trace as a :class:`~repro.streams.stream.Stream`."""
        cfg = self.config
        rng = random.Random(cfg.seed)
        times = generate_arrival_times(cfg.num_records, cfg.duration, seed=cfg.seed + 2,
                                       diurnal_amplitude=0.0)
        records = [
            StreamRecord(
                timestamp=timestamp,
                key="item-%d" % rng.randrange(cfg.domain_size),
                node=rng.randrange(cfg.num_nodes),
            )
            for timestamp in times
        ]
        return Stream(records, name="uniform")


def make_trace(name: str, **overrides: object) -> Stream:
    """Factory: build a named trace ("wc98", "snmp" or "uniform")."""
    name = name.lower()
    if name in ("wc98", "worldcup", "worldcup98"):
        return WorldCupSyntheticTrace(**overrides).generate()  # type: ignore[arg-type]
    if name == "snmp":
        return SnmpSyntheticTrace(**overrides).generate()  # type: ignore[arg-type]
    if name == "uniform":
        return UniformTrace(**overrides).generate()  # type: ignore[arg-type]
    raise ConfigurationError("unknown trace name %r" % (name,))
