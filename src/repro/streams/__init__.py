"""Stream abstractions and synthetic workload generators."""

from .generators import (
    IntegerZipfTrace,
    SnmpSyntheticTrace,
    SyntheticTraceConfig,
    UniformTrace,
    WorldCupSyntheticTrace,
    ZipfSampler,
    generate_arrival_times,
    make_trace,
)
from .stream import Stream, StreamRecord

__all__ = [
    "Stream",
    "StreamRecord",
    "ZipfSampler",
    "generate_arrival_times",
    "SyntheticTraceConfig",
    "WorldCupSyntheticTrace",
    "SnmpSyntheticTrace",
    "IntegerZipfTrace",
    "UniformTrace",
    "make_trace",
]
