"""Serialization of sketches and sliding-window synopses.

The distributed algorithms of the paper ship synopses over the network: local
ECM-sketches travel up the aggregation tree (Section 5.3), randomized waves
are unioned at the coordinator (Section 5.2), and the geometric method
broadcasts estimate vectors (Section 6.2).  This module provides an explicit,
versioned wire format for all of those structures so that deployments can
actually move them between processes:

* ``*_to_dict`` / ``*_from_dict`` — lossless conversion to plain Python
  dictionaries (JSON-compatible scalars, lists and dicts only);
* :func:`dumps` / :func:`loads` — JSON byte strings with a type tag, suitable
  for sockets, message queues or files.

Round-tripping is exact: a deserialized structure answers every query with the
same result as the original and can keep ingesting new arrivals.
"""

from __future__ import annotations

import dataclasses
import json
from collections import deque
from collections.abc import Callable
from typing import Any

from .core.config import CounterType, ECMConfig
from .core.countmin import CountMinSketch
from .core.ecm_sketch import ECMSketch
from .core.errors import ConfigurationError
from .queries.heavy_hitters import FrequentItemsTracker
from .queries.hierarchical import HierarchicalECMSketch
from .windows.base import WindowModel
from .windows.deterministic_wave import DeterministicWave, WaveCheckpoint
from .windows.exponential_histogram import Bucket, ExponentialHistogram
from .windows.randomized_wave import RandomizedWave, _Entry

__all__ = [
    "FORMAT_VERSION",
    "histogram_to_dict",
    "histogram_from_dict",
    "wave_to_dict",
    "wave_from_dict",
    "randomized_wave_to_dict",
    "randomized_wave_from_dict",
    "countmin_to_dict",
    "countmin_from_dict",
    "config_to_dict",
    "config_from_dict",
    "ecm_sketch_to_dict",
    "ecm_sketch_from_dict",
    "hierarchical_to_dict",
    "hierarchical_from_dict",
    "tracker_to_dict",
    "tracker_from_dict",
    "to_dict",
    "from_dict",
    "dumps",
    "loads",
]

#: Version tag embedded in every serialized payload.
FORMAT_VERSION = 1

Serializable = (
    ExponentialHistogram
    | DeterministicWave
    | RandomizedWave
    | CountMinSketch
    | ECMSketch
    | HierarchicalECMSketch
    | FrequentItemsTracker
)


def _require(payload: dict[str, Any], kind: str) -> None:
    if payload.get("kind") != kind:
        raise ConfigurationError(
            "expected a %r payload, got %r" % (kind, payload.get("kind"))
        )
    if payload.get("version") != FORMAT_VERSION:
        raise ConfigurationError(
            "unsupported serialization version %r (this build reads version %d)"
            % (payload.get("version"), FORMAT_VERSION)
        )


# -------------------------------------------------------- exponential histogram
def histogram_to_dict(histogram: ExponentialHistogram) -> dict[str, Any]:
    """Serialize an exponential histogram to a plain dictionary."""
    return {
        "kind": "exponential_histogram",
        "version": FORMAT_VERSION,
        "epsilon": histogram.epsilon,
        "window": histogram.window,
        "model": histogram.model.value,
        "total_arrivals": histogram.total_arrivals(),
        "last_clock": histogram.last_clock,
        "buckets": [
            [bucket.size, bucket.start, bucket.end]
            for bucket in histogram.buckets_oldest_first()
        ],
    }


def histogram_from_dict(payload: dict[str, Any]) -> ExponentialHistogram:
    """Rebuild an exponential histogram serialized by :func:`histogram_to_dict`."""
    _require(payload, "exponential_histogram")
    histogram = ExponentialHistogram(
        epsilon=payload["epsilon"],
        window=payload["window"],
        model=WindowModel(payload["model"]),
    )
    # Restore the bucket list verbatim instead of replaying arrivals: the
    # structure on the wire is already the structure we want in memory.
    for size, start, end in payload["buckets"]:
        level = max(0, int(size).bit_length() - 1)
        while len(histogram._levels) <= level:
            histogram._levels.append(deque())
        histogram._levels[level].append(Bucket(size=int(size), start=start, end=end))
        histogram._in_window_upper += int(size)
    histogram._total_arrivals = int(payload["total_arrivals"])
    histogram._last_clock = payload["last_clock"]
    return histogram


# ------------------------------------------------------------ deterministic wave
def wave_to_dict(wave: DeterministicWave) -> dict[str, Any]:
    """Serialize a deterministic wave to a plain dictionary."""
    return {
        "kind": "deterministic_wave",
        "version": FORMAT_VERSION,
        "epsilon": wave.epsilon,
        "window": wave.window,
        "model": wave.model.value,
        "max_arrivals": wave.max_arrivals,
        "total_arrivals": wave.total_arrivals(),
        "last_clock": wave.last_clock,
        "levels": [
            [[checkpoint.clock, checkpoint.rank] for checkpoint in level]
            for level in wave.levels_snapshot()
        ],
    }


def wave_from_dict(payload: dict[str, Any]) -> DeterministicWave:
    """Rebuild a deterministic wave serialized by :func:`wave_to_dict`."""
    _require(payload, "deterministic_wave")
    wave = DeterministicWave(
        epsilon=payload["epsilon"],
        window=payload["window"],
        max_arrivals=int(payload["max_arrivals"]),
        model=WindowModel(payload["model"]),
    )
    for index, level in enumerate(payload["levels"]):
        if index >= wave.num_levels:
            break
        wave._levels[index] = deque(
            WaveCheckpoint(clock=clock, rank=int(rank)) for clock, rank in level
        )
    wave._total_arrivals = int(payload["total_arrivals"])
    wave._last_clock = payload["last_clock"]
    return wave


# -------------------------------------------------------------- randomized wave
def randomized_wave_to_dict(wave: RandomizedWave) -> dict[str, Any]:
    """Serialize a randomized wave (including its sampled entries)."""
    copies = []
    for copy in wave._copies:
        copies.append(
            {
                "hash_a": copy.hash_a,
                "hash_b": copy.hash_b,
                "capacity_horizon": [
                    None if horizon == float("-inf") else horizon
                    for horizon in copy.capacity_horizon
                ],
                "levels": [
                    [[entry.clock, entry.uid_hash] for entry in level]
                    for level in copy.levels
                ],
            }
        )
    return {
        "kind": "randomized_wave",
        "version": FORMAT_VERSION,
        "epsilon": wave.epsilon,
        "delta": wave.delta,
        "window": wave.window,
        "model": wave.model.value,
        "max_arrivals": wave.max_arrivals,
        "seed": wave.seed,
        "stream_tag": wave.stream_tag,
        "capacity_constant": wave.capacity_constant,
        "total_arrivals": wave.total_arrivals(),
        "last_clock": wave.last_clock,
        "copies": copies,
    }


def randomized_wave_from_dict(payload: dict[str, Any]) -> RandomizedWave:
    """Rebuild a randomized wave serialized by :func:`randomized_wave_to_dict`."""
    _require(payload, "randomized_wave")
    wave = RandomizedWave(
        epsilon=payload["epsilon"],
        delta=payload["delta"],
        window=payload["window"],
        max_arrivals=int(payload["max_arrivals"]),
        model=WindowModel(payload["model"]),
        seed=int(payload["seed"]),
        stream_tag=int(payload["stream_tag"]),
        capacity_constant=payload["capacity_constant"],
    )
    if len(payload["copies"]) != len(wave._copies):
        raise ConfigurationError("copy count mismatch in randomized-wave payload")
    for copy, copy_payload in zip(wave._copies, payload["copies"], strict=False):
        copy.hash_a = int(copy_payload["hash_a"])
        copy.hash_b = int(copy_payload["hash_b"])
        copy.capacity_horizon = [
            float("-inf") if horizon is None else horizon
            for horizon in copy_payload["capacity_horizon"]
        ]
        for index, level in enumerate(copy_payload["levels"]):
            if not level or index >= copy.num_levels:
                continue
            copy._levels[index] = deque(
                _Entry(clock=clock, uid_hash=int(uid_hash)) for clock, uid_hash in level
            )
    wave._total_arrivals = int(payload["total_arrivals"])
    wave._last_clock = payload["last_clock"]
    return wave


# ------------------------------------------------------------------- Count-Min
def countmin_to_dict(sketch: CountMinSketch) -> dict[str, Any]:
    """Serialize a plain Count-Min sketch."""
    return {
        "kind": "countmin",
        "version": FORMAT_VERSION,
        "width": sketch.width,
        "depth": sketch.depth,
        "seed": sketch.seed,
        "total": sketch.total(),
        "counters": sketch.counters(),
    }


def countmin_from_dict(payload: dict[str, Any]) -> CountMinSketch:
    """Rebuild a Count-Min sketch serialized by :func:`countmin_to_dict`."""
    _require(payload, "countmin")
    sketch = CountMinSketch(
        width=int(payload["width"]), depth=int(payload["depth"]), seed=int(payload["seed"])
    )
    sketch._counters = [[float(v) for v in row] for row in payload["counters"]]
    sketch._total = float(payload["total"])
    return sketch


# ------------------------------------------------------------------ ECM config
def config_to_dict(config: ECMConfig) -> dict[str, Any]:
    """Serialize an :class:`ECMConfig`."""
    return {
        "kind": "ecm_config",
        "version": FORMAT_VERSION,
        "epsilon_cm": config.epsilon_cm,
        "epsilon_sw": config.epsilon_sw,
        "delta": config.delta,
        "delta_sw": config.delta_sw,
        "window": config.window,
        "model": config.model.value,
        "counter_type": config.counter_type.value,
        "max_arrivals": config.max_arrivals,
        "seed": config.seed,
        "width": config.width,
        "depth": config.depth,
    }


def config_from_dict(payload: dict[str, Any]) -> ECMConfig:
    """Rebuild an :class:`ECMConfig` serialized by :func:`config_to_dict`."""
    _require(payload, "ecm_config")
    return ECMConfig(
        epsilon_cm=payload["epsilon_cm"],
        epsilon_sw=payload["epsilon_sw"],
        delta=payload["delta"],
        delta_sw=payload["delta_sw"],
        window=payload["window"],
        model=WindowModel(payload["model"]),
        counter_type=CounterType(payload["counter_type"]),
        max_arrivals=payload["max_arrivals"],
        seed=int(payload["seed"]),
        width=int(payload["width"]),
        depth=int(payload["depth"]),
    )


# ------------------------------------------------------------------ ECM sketch
_COUNTER_SERIALIZERS: dict[
    CounterType,
    tuple[Callable[[Any], dict[str, Any]], Callable[[dict[str, Any]], Any]],
] = {
    CounterType.EXPONENTIAL_HISTOGRAM: (histogram_to_dict, histogram_from_dict),
    CounterType.DETERMINISTIC_WAVE: (wave_to_dict, wave_from_dict),
    CounterType.RANDOMIZED_WAVE: (randomized_wave_to_dict, randomized_wave_from_dict),
}


def ecm_sketch_to_dict(sketch: ECMSketch) -> dict[str, Any]:
    """Serialize a whole ECM-sketch (configuration plus every counter)."""
    serialize_counter, _ = _COUNTER_SERIALIZERS[sketch.counter_type]
    return {
        "kind": "ecm_sketch",
        "version": FORMAT_VERSION,
        "config": config_to_dict(sketch.config),
        "stream_tag": sketch.stream_tag,
        "total_arrivals": sketch.total_arrivals(),
        "last_clock": sketch.last_clock,
        "effective_epsilon_sw": sketch.effective_epsilon_sw,
        "counters": [
            [serialize_counter(sketch.counter(row, column)) for column in range(sketch.width)]
            for row in range(sketch.depth)
        ],
    }


def ecm_sketch_from_dict(payload: dict[str, Any], backend: str | None = None) -> ECMSketch:
    """Rebuild an ECM-sketch serialized by :func:`ecm_sketch_to_dict`.

    Args:
        payload: The tagged dictionary.
        backend: Optional storage-backend override for the rebuilt sketch.
            The backend is an in-memory layout choice that never travels on
            the wire (serialized state is byte-identical across backends);
            callers that know which layout the restored sketch should use —
            e.g. a service restoring a snapshot under ``backend="object"`` —
            pass it here instead of accepting the configuration default.
    """
    _require(payload, "ecm_sketch")
    config = config_from_dict(payload["config"])
    if backend is not None:
        config = dataclasses.replace(config, backend=backend)
    sketch = ECMSketch(config, stream_tag=int(payload["stream_tag"]))
    _, deserialize_counter = _COUNTER_SERIALIZERS[config.counter_type]
    counters = payload["counters"]
    if len(counters) != sketch.depth or any(len(row) != sketch.width for row in counters):
        raise ConfigurationError("counter grid shape does not match the configuration")
    for row in range(sketch.depth):
        for column in range(sketch.width):
            sketch._set_counter(row, column, deserialize_counter(counters[row][column]))
    sketch._total_arrivals = int(payload["total_arrivals"])
    sketch._last_clock = payload["last_clock"]
    sketch.effective_epsilon_sw = payload["effective_epsilon_sw"]
    return sketch


# -------------------------------------------------------- hierarchical stacks
def hierarchical_to_dict(stack: HierarchicalECMSketch) -> dict[str, Any]:
    """Serialize a hierarchical (dyadic) stack: one ECM-sketch per level."""
    return {
        "kind": "hierarchical_ecm_sketch",
        "version": FORMAT_VERSION,
        "universe_bits": stack.universe_bits,
        "window": stack.window,
        "model": stack.model.value,
        "counter_type": stack.counter_type.value,
        "seed": stack.seed,
        "stream_tag": stack.stream_tag,
        "total_arrivals": stack.total_arrivals(),
        "last_clock": stack._last_clock,
        "levels": [
            ecm_sketch_to_dict(stack.level_sketch(level))
            for level in range(stack.universe_bits)
        ],
    }


def hierarchical_from_dict(
    payload: dict[str, Any], backend: str | None = None
) -> HierarchicalECMSketch:
    """Rebuild a stack serialized by :func:`hierarchical_to_dict`.

    ``backend`` optionally overrides the storage layout of every level
    sketch, exactly as in :func:`ecm_sketch_from_dict`.
    """
    _require(payload, "hierarchical_ecm_sketch")
    universe_bits = int(payload["universe_bits"])
    levels = payload["levels"]
    if len(levels) != universe_bits:
        raise ConfigurationError(
            "level count %d does not match universe_bits %d"
            % (len(levels), universe_bits)
        )
    stack = HierarchicalECMSketch.__new__(HierarchicalECMSketch)
    stack.universe_bits = universe_bits
    stack.window = payload["window"]
    stack.model = WindowModel(payload["model"])
    stack.counter_type = CounterType(payload["counter_type"])
    stack.seed = int(payload["seed"])
    stack.stream_tag = int(payload["stream_tag"])
    stack._levels = [ecm_sketch_from_dict(level, backend=backend) for level in levels]
    stack._total_arrivals = int(payload["total_arrivals"])
    stack._last_clock = payload["last_clock"]
    return stack


# ------------------------------------------------------- frequent-items tracker
def tracker_to_dict(tracker: FrequentItemsTracker) -> dict[str, Any]:
    """Serialize a keyed frequent-items tracker (sketch stack + dictionary).

    The key dictionary travels as the decoding list (keys in code order), so
    only JSON-scalar keys — strings, integers, floats, booleans, ``None`` —
    round-trip losslessly.  Richer hashables (tuples, frozensets, ...) are
    rejected here, at serialize time, rather than producing a payload that
    can never be loaded back.
    """
    for key in tracker._decoding:
        if key is not None and not isinstance(key, (str, int, float)):
            raise ConfigurationError(
                "tracker keys must be JSON scalars (str/int/float/bool/None) "
                "to serialize; got %r" % (type(key).__name__,)
            )
    return {
        "kind": "frequent_items_tracker",
        "version": FORMAT_VERSION,
        "sketch": hierarchical_to_dict(tracker.sketch()),
        "keys": list(tracker._decoding),
    }


def tracker_from_dict(payload: dict[str, Any]) -> FrequentItemsTracker:
    """Rebuild a tracker serialized by :func:`tracker_to_dict`."""
    _require(payload, "frequent_items_tracker")
    tracker = FrequentItemsTracker.__new__(FrequentItemsTracker)
    tracker._sketch = hierarchical_from_dict(payload["sketch"])
    tracker._decoding = list(payload["keys"])
    try:
        tracker._encoding = {key: code for code, key in enumerate(tracker._decoding)}
    except TypeError as exc:
        raise ConfigurationError(
            "tracker payload contains unhashable keys: %s" % (exc,)
        ) from exc
    if len(tracker._encoding) != len(tracker._decoding):
        raise ConfigurationError("tracker payload contains duplicate keys")
    return tracker


# ------------------------------------------------------------------- JSON layer
_TO_DICT: dict[type, Callable[[Any], dict[str, Any]]] = {
    ExponentialHistogram: histogram_to_dict,
    DeterministicWave: wave_to_dict,
    RandomizedWave: randomized_wave_to_dict,
    CountMinSketch: countmin_to_dict,
    ECMSketch: ecm_sketch_to_dict,
    HierarchicalECMSketch: hierarchical_to_dict,
    FrequentItemsTracker: tracker_to_dict,
}

_FROM_DICT: dict[str, Callable[[dict[str, Any]], Any]] = {
    "exponential_histogram": histogram_from_dict,
    "deterministic_wave": wave_from_dict,
    "randomized_wave": randomized_wave_from_dict,
    "countmin": countmin_from_dict,
    "ecm_sketch": ecm_sketch_from_dict,
    "ecm_config": config_from_dict,
    "hierarchical_ecm_sketch": hierarchical_from_dict,
    "frequent_items_tracker": tracker_from_dict,
}


def to_dict(obj: Serializable | ECMConfig) -> dict[str, Any]:
    """Serialize any wire-format structure to its tagged dictionary form.

    Type-dispatching twin of :func:`dumps` without the JSON layer — callers
    that embed sketches inside larger documents (e.g. the sketch service's
    snapshots) compose payloads from this and encode once at the end.
    """
    if isinstance(obj, ECMConfig):
        return config_to_dict(obj)
    serializer = _TO_DICT.get(type(obj))
    if serializer is None:
        raise ConfigurationError("cannot serialize objects of type %r" % (type(obj),))
    return serializer(obj)


def from_dict(payload: dict[str, Any]) -> Serializable | ECMConfig:
    """Rebuild any structure from its tagged dictionary form (see :func:`to_dict`)."""
    if not isinstance(payload, dict) or "kind" not in payload:
        raise ConfigurationError("payload is missing the 'kind' tag")
    deserializer = _FROM_DICT.get(payload["kind"])
    if deserializer is None:
        raise ConfigurationError("unknown payload kind %r" % (payload["kind"],))
    return deserializer(payload)


def dumps(obj: Serializable | ECMConfig) -> bytes:
    """Serialize a sketch, synopsis or configuration to JSON bytes."""
    return json.dumps(to_dict(obj), separators=(",", ":")).encode("utf-8")


def loads(data: bytes) -> Serializable | ECMConfig:
    """Deserialize JSON bytes produced by :func:`dumps`."""
    try:
        payload = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ConfigurationError("payload is not valid JSON: %s" % (exc,)) from exc
    return from_dict(payload)
