"""Columnar (structure-of-arrays) storage for exponential-histogram grids.

The reference ECM-sketch layout keeps one
:class:`~repro.windows.exponential_histogram.ExponentialHistogram` object per
Count-Min cell: ``w x d`` independent object graphs of per-bucket
:class:`~repro.windows.exponential_histogram.Bucket` dataclasses in per-level
deques.  That layout is flexible but defeats vectorization — every batched
ingest still walks Python deques cell by cell — and its resident footprint is
dominated by per-bucket object headers.

:class:`ColumnarEHStore` stores *all* ``w x d`` histograms of one sketch in
shared NumPy arrays::

    starts     float64 (cells, levels, slots)   oldest-arrival clock per bucket
    ends       float64 (cells, levels, slots)   newest-arrival clock per bucket
    counts     int32   (cells, levels)          live buckets per level
    totals     int64   (cells,)                 arrivals ever, per cell
    uppers     int64   (cells,)                 sum of live bucket sizes
    oldest_end float64 (cells,)                 lower bound on the oldest live
                                                bucket end (+inf when empty)

``cells`` indexes the grid row-major (``row * width + column``); the level
and slot axes grow on demand.  Within one ``(cell, level)`` the live buckets
occupy ``slots[0:count]`` oldest-first — exactly the deque order of the
reference implementation — so cascaded merges pop from the left, appends go
at ``count``, and expiry is a prefix drop followed by a left shift.

Two structural invariants of organically-built exponential histograms keep
the layout this small (*canonical mode*):

* every bucket at level ``l`` holds exactly ``2**l`` arrivals, so sizes are
  implied by the level index and no per-bucket size array is needed;
* clocks of one stream are uniformly ints or uniformly floats, so the
  "serialize as JSON int" property is a store-wide mode rather than a
  per-bucket flag.

Both invariants hold for every state this codebase produces (inserts,
batched ingests, replay-based merges, serialization of those).  Loading a
state that violates them — e.g. a hand-crafted wire payload with odd bucket
sizes, or a stream mixing int and float clocks — *demotes* the store: the
explicit ``sizes``/``start_int``/``end_int`` arrays are materialised and
batched ingests route through the exact reference fallback
(materialise -> ``add_batch`` -> reload).  Demotion never loses precision;
it only gives up the vector fast paths.

Equivalence contract: every operation leaves the grid in a state whose
materialisation (:meth:`get_counter`) is bucket-for-bucket identical to the
reference object backend, including serialized byte equality.  The batched
ingest only takes the deferred-cascade vector path when no bucket can expire
during a run (the same gate as the reference ``add_batch``); runs that cross
the window boundary use the reference fallback, which is exact by
construction.
"""

from __future__ import annotations

import math
import numbers
import sys
from collections import deque
from collections.abc import Sequence
from typing import Any

import numpy as np

from ..core.counter_store import (
    CounterFactory,
    CounterStore,
    RowPayload,
    RunPayload,
    register_backend,
)
from ..core.errors import ConfigurationError, OutOfOrderArrivalError
from .base import SlidingWindowCounter, WindowModel, validate_epsilon, validate_window
from .exponential_histogram import _BULK_EXPANSION_LIMIT, Bucket, ExponentialHistogram

__all__ = ["ColumnarEHStore"]

#: Clock magnitude above which an integer does not round-trip float64 exactly.
_MAX_EXACT_INT = 1 << 53

#: Initial number of level planes; doubles on demand.
_INITIAL_LEVELS = 2

#: Initial slot capacity per (cell, level).  The slot axis grows on demand
#: toward ``max_per_level + 2``, so sparse grids (the tiny-epsilon
#: hierarchical stacks of Section 6.1) never pay for the worst-case per-level
#: bucket cap — the reason the old ``COLUMNAR_MAX_PER_LIMIT`` escape hatch to
#: the object backend is no longer needed.
_INITIAL_SLOTS = 8

#: Store-wide clock modes: every clock so far was an int / was a float; the
#: store is empty; or the stream mixed both and per-bucket flag arrays are
#: authoritative.
_MODE_FLOAT = 0
_MODE_INT = 1
_MODE_UNSET = 2
_MODE_MIXED = -1


def _is_int_clock(value: Any) -> bool:
    """True when ``value`` should serialize as a JSON integer (like the
    reference backend, which stores the original Python object verbatim)."""
    return isinstance(value, numbers.Integral) and not isinstance(value, bool)


class ColumnarEHStore(CounterStore):
    """All ``depth x width`` exponential histograms of one sketch, columnar.

    Args:
        depth: Count-Min depth (number of hash rows).
        width: Count-Min width (columns per row).
        epsilon: Relative-error parameter shared by every cell.
        window: Sliding-window length shared by every cell.
        model: Time-based or count-based window model.
    """

    backend_name = "columnar"
    prefers_arrays = True

    def __init__(
        self,
        depth: int,
        width: int,
        epsilon: float,
        window: float,
        model: WindowModel = WindowModel.TIME_BASED,
    ) -> None:
        if depth <= 0 or width <= 0:
            raise ConfigurationError("depth and width must be positive")
        self.depth = depth
        self.width = width
        self.cells = depth * width
        self.epsilon = validate_epsilon(epsilon)
        self.window = validate_window(window)
        if not isinstance(model, WindowModel):
            raise ConfigurationError("model must be a WindowModel, got %r" % (model,))
        self.model = model
        # Same derivation as ExponentialHistogram.__init__, so a materialised
        # cell cascades exactly like its object-backend twin.
        self.k = int(math.ceil(1.0 / self.epsilon))
        self._max_per = int(math.ceil(self.k / 2.0)) + 1
        # The slot axis starts small and grows on demand: a (cell, level)
        # only ever holds up to max_per live buckets, but near-empty grids
        # would waste ~max_per slots per level if allocated eagerly.
        self._slots = min(self._max_per + 2, _INITIAL_SLOTS)
        self._num_levels = _INITIAL_LEVELS
        cells, levels, slots = self.cells, self._num_levels, self._slots
        self._starts = np.zeros((cells, levels, slots), dtype=np.float64)
        self._ends = np.zeros((cells, levels, slots), dtype=np.float64)
        self._counts = np.zeros((cells, levels), dtype=np.int32)
        self._totals = np.zeros(cells, dtype=np.int64)
        self._uppers = np.zeros(cells, dtype=np.int64)
        self._oldest_end = np.full(cells, np.inf, dtype=np.float64)
        #: Exact clock of the most recent arrival per cell, kept as the
        #: original Python object so serialization emits it verbatim.
        self._last_clocks: list[float | None] = [None] * cells
        #: Canonical mode: sizes implied by level (2**l) and flags by the
        #: store-wide clock mode; the arrays below stay unallocated until a
        #: demoting load.
        self._sizes: np.ndarray | None = None
        self._start_int: np.ndarray | None = None
        self._end_int: np.ndarray | None = None
        self._flag_mode = _MODE_UNSET
        # Reusable index vectors for the cascade hot path (grown on demand;
        # slices of these are views, so no per-call allocations).
        self._lane_cache = np.arange(256, dtype=np.int64)
        self._row_cache = np.arange(256, dtype=np.int64)[:, None]

    def _lanes(self, n: int) -> np.ndarray:
        if n > self._lane_cache.shape[0]:
            self._lane_cache = np.arange(max(n, 2 * self._lane_cache.shape[0]), dtype=np.int64)
        return self._lane_cache[:n]

    def _row_index(self, n: int) -> np.ndarray:
        if n > self._row_cache.shape[0]:
            self._row_cache = np.arange(
                max(n, 2 * self._row_cache.shape[0]), dtype=np.int64
            )[:, None]
        return self._row_cache[:n]

    # ------------------------------------------------------------------ growth
    def _slot_arrays(self) -> list[np.ndarray]:
        """Every allocated ``(cells, levels, slots)`` array."""
        arrays = [self._starts, self._ends]
        if self._sizes is not None:
            arrays.append(self._sizes)
        if self._start_int is not None:
            arrays.append(self._start_int)
            assert self._end_int is not None
            arrays.append(self._end_int)
        return arrays

    def _reassign_slot_arrays(self, arrays: list[np.ndarray]) -> None:
        self._starts, self._ends = arrays[0], arrays[1]
        index = 2
        if self._sizes is not None:
            self._sizes = arrays[index]
            index += 1
        if self._start_int is not None:
            self._start_int = arrays[index]
            self._end_int = arrays[index + 1]

    def _ensure_level(self, level: int) -> None:
        if level < self._num_levels:
            return
        # Growing the level axis copies every allocated array, so overshoot
        # the demand generously: +8 planes of headroom means the next growth
        # needs ~256x more arrivals in the deepest cell (one level per
        # doubling), turning the doubling ladder a skewed stream would
        # otherwise climb (2 -> 4 -> 8 -> 16, each step copying the whole
        # store) into at most one or two small copies per store lifetime.
        new_levels = max(level + 8, self._num_levels * 2)
        pad = new_levels - self._num_levels
        cells, slots = self.cells, self._slots
        grown = [
            np.concatenate([array, np.zeros((cells, pad, slots), dtype=array.dtype)], axis=1)
            for array in self._slot_arrays()
        ]
        self._reassign_slot_arrays(grown)
        self._counts = np.concatenate(
            [self._counts, np.zeros((cells, pad), dtype=np.int32)], axis=1
        )
        if self._sizes is not None:
            # Demoted stores keep explicit sizes; newly-added planes are only
            # ever written before being read, so zero-fill is fine.
            pass
        self._num_levels = new_levels

    def _ensure_slots(self, needed: int) -> None:
        if needed <= self._slots:
            return
        # Double toward the canonical ceiling (max_per + 2 covers the scalar
        # cascade's transient max_per + 1 occupancy); only exotic loaded
        # states can demand more.
        new_slots = min(
            max(needed, self._slots * 2), max(self._max_per + 2, needed)
        )
        pad = new_slots - self._slots
        cells, levels = self.cells, self._num_levels
        grown = [
            np.concatenate([array, np.zeros((cells, levels, pad), dtype=array.dtype)], axis=2)
            for array in self._slot_arrays()
        ]
        self._reassign_slot_arrays(grown)
        self._slots = new_slots

    # --------------------------------------------------------------- demotions
    @property
    def _canonical_sizes(self) -> bool:
        return self._sizes is None

    def _level_size(self, level: int) -> int:
        return 1 << level

    def _demote_sizes(self) -> None:
        """Materialise the explicit per-bucket size array (exotic loads)."""
        if self._sizes is not None:
            return
        sizes = np.empty((self.cells, self._num_levels, self._slots), dtype=np.int64)
        for level in range(self._num_levels):
            sizes[:, level, :] = self._level_size(level)
        self._sizes = sizes

    def _demote_flags(self) -> None:
        """Materialise the per-bucket int/float flag arrays (mixed clocks)."""
        if self._start_int is not None:
            return
        fill = self._flag_mode == _MODE_INT
        shape = (self.cells, self._num_levels, self._slots)
        self._start_int = np.full(shape, fill, dtype=bool)
        self._end_int = np.full(shape, fill, dtype=bool)
        self._flag_mode = _MODE_MIXED

    def _note_clock_flag(self, is_int: bool) -> None:
        """Record one clock's int-ness in the store-wide mode."""
        if self._flag_mode == _MODE_UNSET:
            self._flag_mode = _MODE_INT if is_int else _MODE_FLOAT
        elif self._flag_mode == (_MODE_FLOAT if is_int else _MODE_INT):
            self._demote_flags()

    # ------------------------------------------------------------- clock maths
    def _clock_to_float(self, value: Any) -> float:
        """Exact float64 representation of a clock, or a clear error."""
        if type(value) is float:
            return value
        try:
            as_float = float(value)
        except OverflowError as exc:
            raise ConfigurationError(
                "the columnar backend requires clocks exactly representable "
                "as float64; got %r" % (value,)
            ) from exc
        if isinstance(value, numbers.Integral):
            if int(as_float) != int(value):
                raise ConfigurationError(
                    "the columnar backend requires clocks exactly representable "
                    "as float64; got %r" % (value,)
                )
        elif as_float != value:
            raise ConfigurationError(
                "the columnar backend requires clocks exactly representable "
                "as float64; got %r" % (value,)
            )
        return as_float

    @staticmethod
    def _require_exact_ints(clocks: np.ndarray) -> None:
        if clocks.size and int(np.abs(clocks).max()) > _MAX_EXACT_INT:
            raise ConfigurationError(
                "the columnar backend requires clocks exactly representable as "
                "float64 (|clock| <= 2**53)"
            )

    def _query_start(self, range_length: float | None, now: float) -> float:
        """Query start clock, mirroring ``resolve_query_bounds`` semantics."""
        if range_length is None or range_length > self.window:
            range_length = self.window
        if range_length <= 0:
            raise ConfigurationError("query range must be positive, got %r" % (range_length,))
        return now - range_length

    def _recompute_oldest_end(self, cell: int) -> None:
        counts = self._counts[cell]
        live = counts > 0
        if live.any():
            self._oldest_end[cell] = self._ends[cell][live, 0].min()
        else:
            self._oldest_end[cell] = np.inf

    # ---------------------------------------------------------------- mutation
    def add_single(self, row: int, column: int, clock: float, count: int = 1) -> None:
        if count < 0:
            raise ConfigurationError("count must be non-negative, got %r" % (count,))
        if count == 0:
            return
        cell = row * self.width + column
        last = self._last_clocks[cell]
        if last is not None and clock < last:
            raise OutOfOrderArrivalError(
                "arrival clock %r is older than the previous arrival %r" % (clock, last)
            )
        clock_f = self._clock_to_float(clock)
        is_int = _is_int_clock(clock)
        self._note_clock_flag(is_int)
        if not self._canonical_sizes:
            # Demoted store (exotic bucket sizes): replay through the
            # reference implementation, which is exact by construction.
            histogram = self._materialize(cell)
            histogram.add(clock, count)
            self._load_cell(cell, histogram)
            return
        self._last_clocks[cell] = clock
        self._totals[cell] += count
        for _ in range(count):
            self._insert_unit(cell, clock_f, is_int)
        self._expire_cell(cell, clock_f)

    def _insert_unit(self, cell: int, clock_f: float, is_int: bool) -> None:
        """Append one unit bucket at level 0 and cascade overflowing levels."""
        counts = self._counts
        level0_count = int(counts[cell, 0])
        self._ensure_slots(level0_count + 1)
        starts, ends = self._starts, self._ends
        starts[cell, 0, level0_count] = clock_f
        ends[cell, 0, level0_count] = clock_f
        start_flags, end_flags = self._start_int, self._end_int
        if start_flags is not None and end_flags is not None:
            start_flags[cell, 0, level0_count] = is_int
            end_flags[cell, 0, level0_count] = is_int
        live = level0_count + 1
        counts[cell, 0] = live
        self._uppers[cell] += 1
        if clock_f < self._oldest_end[cell]:
            self._oldest_end[cell] = clock_f
        max_per = self._max_per
        if live <= max_per:
            return
        level = 0
        shift_arrays = self._slot_arrays()
        while live > max_per:
            merged_start = starts[cell, level, 0]
            merged_end = ends[cell, level, 1]
            if start_flags is not None and end_flags is not None:
                merged_start_int = start_flags[cell, level, 0]
                merged_end_int = end_flags[cell, level, 1]
            for array in shift_arrays:
                view = array[cell, level]
                view[: live - 2] = view[2:live]
            counts[cell, level] = live - 2
            if level + 1 >= self._num_levels:
                self._ensure_level(level + 1)
                counts = self._counts
                starts, ends = self._starts, self._ends
                start_flags, end_flags = self._start_int, self._end_int
                shift_arrays = self._slot_arrays()
            next_count = int(counts[cell, level + 1])
            if next_count + 1 > self._slots:
                # Lazy slot growth (or an exotic loaded state); reallocation
                # invalidates every local alias.
                self._ensure_slots(next_count + 1)
                starts, ends = self._starts, self._ends
                start_flags, end_flags = self._start_int, self._end_int
                shift_arrays = self._slot_arrays()
            starts[cell, level + 1, next_count] = merged_start
            ends[cell, level + 1, next_count] = merged_end
            if start_flags is not None and end_flags is not None:
                start_flags[cell, level + 1, next_count] = merged_start_int
                end_flags[cell, level + 1, next_count] = merged_end_int
            live = next_count + 1
            counts[cell, level + 1] = live
            level += 1

    def _expire_cell(self, cell: int, now_f: float) -> None:
        threshold = now_f - self.window
        if self._oldest_end[cell] > threshold:
            # Nothing can have left the window: the scalar reference scan
            # would be a pure no-op.
            return
        counts = self._counts
        for level in range(self._num_levels):
            live = int(counts[cell, level])
            if not live:
                continue
            # Within-level buckets are time-ordered, so expired ones form a
            # prefix.
            expired = int((self._ends[cell, level, :live] <= threshold).sum())
            if not expired:
                continue
            if self._sizes is None:
                self._uppers[cell] -= expired * self._level_size(level)
            else:
                self._uppers[cell] -= int(self._sizes[cell, level, :expired].sum())
            for array in self._slot_arrays():
                view = array[cell, level]
                view[: live - expired] = view[expired:live]
            counts[cell, level] = live - expired
        self._recompute_oldest_end(cell)

    # ------------------------------------------------------------ batched adds
    def ingest_sorted_row(
        self,
        row: int,
        run_columns: Sequence[int],
        run_starts: Sequence[int],
        run_stops: Sequence[int],
        clocks: RunPayload,
        values: RunPayload | None,
    ) -> None:
        self.ingest_sorted_rows([(row, run_columns, run_starts, run_stops, clocks, values)])

    def ingest_sorted_rows(self, payloads: Sequence[RowPayload]) -> None:
        """All hash rows of one batch in a single vectorized cascade.

        Rows address disjoint cell ranges, so their column-grouped runs can
        be concatenated into one run list and cascaded together — this is
        where the columnar layout pays off: one pass over shared arrays
        instead of ``depth`` separate passes.
        """
        vector_rows: list[RowPayload] = []
        slow_rows: list[RowPayload] = []
        int_flag: bool | None = None
        for payload in payloads:
            clocks, values = payload[4], payload[5]
            vector_ready = (
                self._canonical_sizes
                and isinstance(clocks, np.ndarray)
                and clocks.dtype.kind in "iuf"
                and (
                    values is None
                    or (isinstance(values, np.ndarray) and values.dtype.kind in "iu")
                )
            )
            if vector_ready:
                assert isinstance(clocks, np.ndarray)
                flag = clocks.dtype.kind in "iu"
                if self._flag_mode not in (_MODE_UNSET, _MODE_INT if flag else _MODE_FLOAT):
                    vector_ready = False  # mixed-clock store: flags per bucket
                elif int_flag is None:
                    int_flag = flag
                elif int_flag != flag:
                    vector_ready = False  # rows of one batch share their dtype
            if vector_ready:
                vector_rows.append(payload)
            else:
                slow_rows.append(payload)
        for row, run_columns, run_starts, run_stops, clocks, values in slow_rows:
            base = row * self.width
            clocks_list = clocks.tolist() if isinstance(clocks, np.ndarray) else clocks
            values_list = values.tolist() if isinstance(values, np.ndarray) else values
            for column, start, stop in zip(run_columns, run_starts, run_stops, strict=False):
                self._fallback_run(
                    base + column,
                    clocks_list[start:stop],
                    None if values_list is None else values_list[start:stop],
                )
        if not vector_rows:
            return
        assert int_flag is not None
        first_clocks = vector_rows[0][4]
        assert isinstance(first_clocks, np.ndarray)
        if int_flag:
            self._require_exact_ints(first_clocks)
        self._note_clock_flag(int_flag)
        if len(vector_rows) == 1:
            row, run_columns, run_starts, run_stops, clocks, values = vector_rows[0]
            cells = row * self.width + np.asarray(run_columns, dtype=np.int64)
            offsets = np.empty(len(run_starts) + 1, dtype=np.int64)
            offsets[:-1] = run_starts
            offsets[-1] = run_stops[-1]
            values_array = None if values is None else np.asarray(values)
            self._ingest_runs(cells, np.asarray(clocks), offsets, int_flag, values_array)
            return
        cell_blocks = []
        offset_blocks = [np.zeros(1, dtype=np.int64)]
        clock_blocks = []
        value_blocks = [] if vector_rows[0][5] is not None else None
        shift = 0
        for row, run_columns, run_starts, run_stops, clocks, values in vector_rows:
            cell_blocks.append(row * self.width + np.asarray(run_columns, dtype=np.int64))
            block = np.asarray(list(run_starts[1:]) + [run_stops[-1]], dtype=np.int64)
            offset_blocks.append(block + shift)
            shift += int(run_stops[-1])
            clock_blocks.append(np.asarray(clocks))
            if value_blocks is not None:
                value_blocks.append(np.asarray(values))
        self._ingest_runs(
            np.concatenate(cell_blocks),
            np.concatenate(clock_blocks),
            np.concatenate(offset_blocks),
            int_flag,
            None if value_blocks is None else np.concatenate(value_blocks),
        )

    def _fallback_run(
        self, cell: int, clocks: Sequence[float], values: Sequence[int] | None
    ) -> None:
        """Exact-by-construction slow path: replay through the reference EH."""
        histogram = self._materialize(cell)
        histogram.add_batch(clocks, values, assume_ordered=True)
        self._load_cell(cell, histogram)

    def _ingest_runs(
        self,
        cells: np.ndarray,
        clocks: np.ndarray,
        offsets: np.ndarray,
        int_flag: bool,
        values: np.ndarray | None,
    ) -> None:
        """Column-grouped runs for distinct cells, vectorized across cells.

        ``clocks[offsets[i]:offsets[i+1]]`` is the arrival run of ``cells[i]``
        (cells are distinct — one run per Count-Min cell).  Runs that cannot
        expire anything mid-run take the deferred-cascade vector path; the
        rest replay through the reference implementation.
        """
        run_lengths = np.diff(offsets)
        if values is not None:
            unit_bounds = np.concatenate(([0], np.cumsum(values)))[offsets]
            unit_lengths = np.diff(unit_bounds)
        else:
            unit_lengths = run_lengths
        last_clock_idx = offsets[1:] - 1
        final_threshold = clocks[last_clock_idx] - self.window
        first_clocks = clocks[offsets[:-1]].astype(np.float64)
        # The cached oldest_end is a lower bound on the true oldest live
        # bucket end, so this gate is at least as strict as the reference
        # add_batch gate: passing it guarantees that replaying the run
        # unit-by-unit would never expire anything, which is exactly the
        # precondition under which the deferred cascade is state-identical.
        fast = (final_threshold < self._oldest_end[cells]) & (final_threshold < first_clocks)
        if values is not None:
            fast &= unit_lengths <= _BULK_EXPANSION_LIMIT
        if not fast.all():
            slow_runs = np.flatnonzero(~fast)
            for index in slow_runs.tolist():
                low, high = int(offsets[index]), int(offsets[index + 1])
                self._fallback_run(
                    int(cells[index]),
                    clocks[low:high].tolist(),
                    None if values is None else values[low:high].tolist(),
                )
            fast_runs = np.flatnonzero(fast)
            if not fast_runs.size:
                return
            element_fast = np.repeat(fast, run_lengths)
            if values is None:
                unit_clocks = clocks[element_fast].astype(np.float64)
            else:
                unit_clocks = np.repeat(
                    clocks[element_fast], values[element_fast]
                ).astype(np.float64)
            fast_cells = cells[fast_runs]
            fast_units = unit_lengths[fast_runs]
            fast_first = first_clocks[fast_runs]
            fast_last_idx = last_clock_idx[fast_runs]
        else:
            if values is None:
                unit_clocks = clocks.astype(np.float64)
            else:
                unit_clocks = np.repeat(clocks, values).astype(np.float64)
            fast_cells = cells
            fast_units = unit_lengths
            fast_first = first_clocks
            fast_last_idx = last_clock_idx
        unit_offsets = np.concatenate(([0], np.cumsum(fast_units)))
        self._deferred_cascade(fast_cells, unit_clocks, unit_offsets, fast_units)
        # Bookkeeping identical to the reference path.
        self._totals[fast_cells] += fast_units
        self._uppers[fast_cells] += fast_units
        self._oldest_end[fast_cells] = np.minimum(self._oldest_end[fast_cells], fast_first)
        last_values = clocks[fast_last_idx].tolist()
        last_clocks = self._last_clocks
        for cell, value in zip(fast_cells.tolist(), last_values, strict=False):
            last_clocks[cell] = value

    def _deferred_cascade(
        self,
        cells: np.ndarray,
        unit_clocks: np.ndarray,
        unit_offsets: np.ndarray,
        unit_counts: np.ndarray,
    ) -> None:
        """Append each cell's unit run at level 0 and cascade all levels.

        Equivalent to the reference ``_add_unit_run``: appending every unit
        bucket first and then merging each level's oldest pairs greedily
        yields the same final structure as interleaving merges after every
        insert, because arrivals only ever land at the newest end of a level
        while merges only ever consume the two oldest buckets.

        Canonical-mode specialisation: level-0 buckets are unit buckets
        (``start == end``, size 1), so level 0 cascades a single clock field;
        higher levels cascade ``(start, end)`` pairs and sizes stay implied
        by the level index throughout.
        """
        max_units = int(unit_counts.max())
        lane = self._lanes(max_units)[None, :]
        gather = np.minimum(unit_offsets[:-1, None] + lane, unit_clocks.size - 1)
        padded_units = unit_clocks[gather]
        # ---- level 0: one clock field ------------------------------------
        self._ensure_level(0)
        existing = self._counts[cells, 0].astype(np.int64)
        totals = existing + unit_counts
        sequence = self._compact_level(cells, 0, self._ends, padded_units, existing, totals)
        merges, retained = self._apply_level(cells, 0, sequence, sequence, existing, totals)
        if merges is None:
            return
        incoming_starts = sequence[:, 0 : 2 * int(merges.max()) : 2]
        incoming_ends = sequence[:, 1 : 2 * int(merges.max()) : 2]
        incoming_counts = merges
        active = cells
        level = 1
        while True:
            keep = incoming_counts > 0
            if not keep.all():
                if not keep.any():
                    return
                active = active[keep]
                incoming_starts = incoming_starts[keep]
                incoming_ends = incoming_ends[keep]
                incoming_counts = incoming_counts[keep]
            self._ensure_level(level)
            existing = self._counts[active, level].astype(np.int64)
            totals = existing + incoming_counts
            seq_starts = self._compact_level(
                active, level, self._starts, incoming_starts, existing, totals
            )
            seq_ends = self._compact_level(
                active, level, self._ends, incoming_ends, existing, totals
            )
            merges, retained = self._apply_level(
                active, level, seq_starts, seq_ends, existing, totals
            )
            if merges is None:
                return
            pair_stop = 2 * int(merges.max())
            incoming_starts = seq_starts[:, 0:pair_stop:2]
            incoming_ends = seq_ends[:, 1:pair_stop:2]
            incoming_counts = merges
            level += 1

    def _compact_level(
        self,
        cells: np.ndarray,
        level: int,
        slot_array: np.ndarray,
        incoming: np.ndarray,
        existing: np.ndarray,
        totals: np.ndarray,
    ) -> np.ndarray:
        """Per-cell ``[existing buckets | incoming buckets]`` as a padded matrix."""
        total_max = int(totals.max())
        num_cells = cells.shape[0]
        if not existing.any():
            if incoming.shape[1] == total_max:
                return incoming
            return incoming[:, :total_max]
        # Place the existing slots first, then scatter incoming at each
        # cell's own offset; one spare lane absorbs the clipped tails of
        # cells with fewer incoming buckets.
        slots = self._slots
        sequence = np.empty((num_cells, total_max + 1), dtype=np.float64)
        copy_width = min(slots, total_max + 1)
        sequence[:, :copy_width] = slot_array[cells, level, :copy_width]
        lane = self._lanes(incoming.shape[1])[None, :]
        scatter = np.minimum(existing[:, None] + lane, total_max)
        sequence[self._row_index(num_cells), scatter] = incoming
        return sequence[:, :total_max]

    def _apply_level(
        self,
        cells: np.ndarray,
        level: int,
        seq_starts: np.ndarray,
        seq_ends: np.ndarray,
        existing: np.ndarray,
        totals: np.ndarray,
    ) -> tuple[np.ndarray | None, np.ndarray]:
        """Write one level's retained buckets back; return the merge counts."""
        max_per = self._max_per
        # (totals - max_per + 1) // 2 clamped at zero: the arithmetic shift
        # floors negatives, so one maximum() replaces the where().
        merges = np.maximum((totals - (max_per - 1)) >> 1, 0)
        retained = totals - 2 * merges
        retained_max = int(retained.max())
        # Retained counts never exceed max_per, but the lazily-grown slot
        # axis may still be narrower than this level's write-back width.
        self._ensure_slots(retained_max)
        total_max = seq_ends.shape[1]
        merges_max = int(merges.max())
        if merges_max == 0:
            # Nothing overflows: the sequences are already final — append the
            # incoming region in place (the existing prefix is unchanged).
            width = retained_max
            self._starts[cells, level, :width] = seq_starts[:, :width]
            self._ends[cells, level, :width] = seq_ends[:, :width]
            self._counts[cells, level] = retained
            return None, retained
        retain_index = np.minimum(
            2 * merges[:, None] + self._lanes(retained_max)[None, :],
            max(total_max - 1, 0),
        )
        rows = self._row_index(cells.shape[0])
        self._starts[cells, level, :retained_max] = seq_starts[rows, retain_index]
        self._ends[cells, level, :retained_max] = seq_ends[rows, retain_index]
        self._counts[cells, level] = retained
        return merges, retained

    # ------------------------------------------------------------------ expiry
    def expire_all(self, now: float) -> None:
        threshold = now - self.window
        candidates = np.flatnonzero(self._oldest_end <= threshold)
        if not candidates.size:
            return
        counts = self._counts[candidates]
        live_levels = np.flatnonzero(counts.any(axis=0))
        if not live_levels.size:
            self._oldest_end[candidates] = np.inf
            return
        # Trim the working set to the occupied corner of the grid: levels
        # beyond the deepest live one and slots beyond the fullest level are
        # all dead weight for this sweep.
        used = int(live_levels[-1]) + 1
        counts = counts[:, :used]
        max_live = int(counts.max())
        lane = self._lanes(max_live)
        block = np.ix_(candidates, np.arange(used), lane)
        ends = self._ends[block]
        valid = lane[None, None, :] < counts[:, :, None]
        # Within-level buckets are time-ordered, so the expired set is a
        # per-level prefix and the sum directly gives the shift distance.
        expired_mask = valid & (ends <= threshold)
        drop = expired_mask.sum(axis=2, dtype=np.int64)
        if drop.any():
            if self._sizes is None:
                level_sizes = np.left_shift(np.int64(1), np.arange(used, dtype=np.int64))
                removed = (drop * level_sizes[None, :]).sum(axis=1)
            else:
                removed = (self._sizes[block] * expired_mask).sum(axis=(1, 2))
            self._uppers[candidates] -= removed
            # Only survivors of (cell, level) rows that dropped a prefix
            # move; gather/scatter exactly those buckets instead of
            # rewriting the whole candidate grid (the fancy-index gather on
            # the right evaluates before the assignment, so overlap between
            # source and target slots is safe).
            surviving = valid & ~expired_mask & (drop > 0)[:, :, None]
            cand_pos, level_idx, slot_idx = np.nonzero(surviving)
            cell_idx = candidates[cand_pos]
            target_idx = slot_idx - drop[cand_pos, level_idx]
            for array in self._slot_arrays():
                array[cell_idx, level_idx, target_idx] = array[cell_idx, level_idx, slot_idx]
            counts = (counts - drop).astype(np.int32)
            self._counts[candidates[:, None], np.arange(used)[None, :]] = counts
        # Exact refresh: the post-shift first end of each level is the
        # pre-shift end at index ``drop`` (clamped for fully-expired levels,
        # which the counts mask discards anyway).
        gather = np.minimum(drop, max_live - 1)[:, :, None]
        first_ends = np.take_along_axis(ends, gather, axis=2)[:, :, 0]
        self._oldest_end[candidates] = np.where(counts > 0, first_ends, np.inf).min(axis=1)

    # ----------------------------------------------------------------- queries
    def _cell_sizes(self, cell: int) -> np.ndarray:
        if self._sizes is not None:
            return self._sizes[cell]
        powers = np.left_shift(np.int64(1), np.arange(self._num_levels, dtype=np.int64))
        return np.broadcast_to(powers[:, None], (self._num_levels, self._slots))

    def estimate(
        self, row: int, column: int, range_length: float | None = None, now: float | None = None
    ) -> float:
        cell = row * self.width + column
        if now is None:
            last = self._last_clocks[cell]
            now = last if last is not None else 0.0
        start = self._query_start(range_length, now)
        counts = self._counts[cell]
        if not counts.any():
            return 0.0
        valid = np.arange(self._slots)[None, :] < counts[:, None]
        ends = self._ends[cell]
        in_window = valid & (ends > start)
        if not in_window.any():
            return 0.0
        sizes = self._cell_sizes(cell)
        total = float(sizes[in_window].sum())
        masked_ends = np.where(in_window, ends, np.inf)
        min_end = masked_ends.min()
        tie = in_window & (ends == min_end)
        masked_starts = np.where(tie, self._starts[cell], np.inf)
        flat = int(masked_starts.argmin())
        level, slot = divmod(flat, self._slots)
        bucket_start = self._starts[cell, level, slot]
        if bucket_start <= start:
            total -= float(sizes[level, slot]) / 2.0
        return total

    def estimate_cells(
        self, cells: np.ndarray, range_length: float | None, now: float
    ) -> np.ndarray:
        start = self._query_start(range_length, now)
        slots = self._slots
        levels = self._num_levels
        counts = self._counts[cells]
        valid = np.arange(slots)[None, None, :] < counts[:, :, None]
        ends = self._ends[cells]
        in_window = valid & (ends > start)
        if self._sizes is None:
            level_sizes = np.left_shift(np.int64(1), np.arange(levels, dtype=np.int64))
            totals = (in_window.sum(axis=2) * level_sizes[None, :]).sum(axis=1).astype(np.float64)
            sizes_flat = np.broadcast_to(
                level_sizes[None, :, None], (cells.shape[0], levels, slots)
            ).reshape(cells.shape[0], levels * slots)
        else:
            sizes = self._sizes[cells]
            totals = np.where(in_window, sizes, 0).sum(axis=(1, 2)).astype(np.float64)
            sizes_flat = sizes.reshape(cells.shape[0], levels * slots)
        num = cells.shape[0]
        flat_window = in_window.reshape(num, levels * slots)
        has_overlap = flat_window.any(axis=1)
        masked_ends = np.where(in_window, ends, np.inf).reshape(num, levels * slots)
        min_ends = masked_ends.min(axis=1)
        tie = flat_window & (masked_ends == min_ends[:, None])
        masked_starts = np.where(tie, self._starts[cells].reshape(num, levels * slots), np.inf)
        oldest = masked_starts.argmin(axis=1)
        rows = np.arange(num)
        oldest_starts = masked_starts[rows, oldest]
        oldest_sizes = sizes_flat[rows, oldest]
        partial = has_overlap & (oldest_starts <= start)
        return totals - np.where(partial, oldest_sizes / 2.0, 0.0)

    def estimate_grid(self, range_length: float | None, now: float) -> list[list[float]]:
        estimates = self.estimate_cells(np.arange(self.cells, dtype=np.int64), range_length, now)
        return estimates.reshape(self.depth, self.width).tolist()

    # --------------------------------------------------------- cell interchange
    def get_counter(self, row: int, column: int) -> SlidingWindowCounter:
        return self._materialize(row * self.width + column)

    def _materialize(self, cell: int) -> ExponentialHistogram:
        """An object-backend twin of one cell (bucket-for-bucket identical)."""
        histogram = ExponentialHistogram(
            epsilon=self.epsilon, window=self.window, model=self.model
        )
        counts = self._counts[cell]
        live_levels = np.flatnonzero(counts)
        used = int(live_levels[-1]) + 1 if live_levels.size else 0
        uniform_int = self._flag_mode == _MODE_INT
        levels: list[deque] = []
        for level in range(used):
            bucket_deque: deque = deque()
            live = int(counts[level])
            if live:
                starts = self._starts[cell, level, :live].tolist()
                ends = self._ends[cell, level, :live].tolist()
                if self._sizes is None:
                    sizes: list[int] = [self._level_size(level)] * live
                else:
                    sizes = self._sizes[cell, level, :live].tolist()
                if self._start_int is None:
                    start_ints = [uniform_int] * live
                    end_ints = start_ints
                else:
                    start_ints = self._start_int[cell, level, :live].tolist()
                    end_ints = self._end_int[cell, level, :live].tolist()
                for j in range(live):
                    start = int(starts[j]) if start_ints[j] else starts[j]
                    end = int(ends[j]) if end_ints[j] else ends[j]
                    bucket_deque.append(Bucket(sizes[j], start, end))
            levels.append(bucket_deque)
        histogram._levels = levels
        histogram._total_arrivals = int(self._totals[cell])
        histogram._in_window_upper = int(self._uppers[cell])
        histogram._last_clock = self._last_clocks[cell]
        return histogram

    def set_counter(self, row: int, column: int, counter: SlidingWindowCounter) -> None:
        if not isinstance(counter, ExponentialHistogram):
            raise ConfigurationError(
                "the columnar backend only stores exponential histograms; got %r"
                % (type(counter).__name__,)
            )
        if (
            counter.epsilon != self.epsilon
            or counter.window != self.window
            or counter.model is not self.model
        ):
            raise ConfigurationError(
                "cannot load a counter with different epsilon/window/model into "
                "a columnar store"
            )
        self._load_cell(row * self.width + column, counter)

    def _load_cell(self, cell: int, histogram: ExponentialHistogram) -> None:
        levels = histogram._levels
        # Detect whether this state preserves canonical mode before writing.
        if self._canonical_sizes:
            for level, bucket_deque in enumerate(levels):
                expected = 1 << level
                for bucket in bucket_deque:
                    if bucket.size != expected or (level == 0 and bucket.start != bucket.end):
                        self._demote_sizes()
                        break
                if not self._canonical_sizes:
                    break
        if self._start_int is None:
            for bucket_deque in levels:
                for bucket in bucket_deque:
                    self._note_clock_flag(_is_int_clock(bucket.start))
                    if self._start_int is not None:
                        break
                    self._note_clock_flag(_is_int_clock(bucket.end))
                    if self._start_int is not None:
                        break
                if self._start_int is not None:
                    break
        self._counts[cell, :] = 0
        if levels:
            self._ensure_level(len(levels) - 1)
            self._ensure_slots(max(len(level) for level in levels))
        sizes_array = self._sizes
        start_flags = self._start_int
        end_flags = self._end_int
        for level, bucket_deque in enumerate(levels):
            for slot, bucket in enumerate(bucket_deque):
                self._starts[cell, level, slot] = self._clock_to_float(bucket.start)
                self._ends[cell, level, slot] = self._clock_to_float(bucket.end)
                if sizes_array is not None:
                    sizes_array[cell, level, slot] = int(bucket.size)
                if start_flags is not None and end_flags is not None:
                    start_flags[cell, level, slot] = _is_int_clock(bucket.start)
                    end_flags[cell, level, slot] = _is_int_clock(bucket.end)
            self._counts[cell, level] = len(bucket_deque)
        if len(levels) < self._num_levels:
            self._counts[cell, len(levels):] = 0
        self._totals[cell] = int(histogram.total_arrivals())
        self._uppers[cell] = int(histogram.arrivals_in_window_upper_bound())
        self._last_clocks[cell] = histogram.last_clock
        self._recompute_oldest_end(cell)

    # -------------------------------------------------------------- accounting
    def bucket_count(self, row: int, column: int) -> int:
        """Live buckets of one cell (no materialisation needed)."""
        return int(self._counts[row * self.width + column].sum())

    def total_buckets(self) -> int:
        """Live buckets across the whole grid."""
        return int(self._counts.sum())

    def memory_bytes(self) -> int:
        """True allocation of the backing arrays plus per-cell metadata."""
        arrays = self._slot_arrays() + [
            self._counts,
            self._totals,
            self._uppers,
            self._oldest_end,
        ]
        array_bytes = sum(array.nbytes for array in arrays)
        return int(array_bytes) + sys.getsizeof(self._last_clocks)

    def synopsis_bytes(self) -> int:
        """Paper-model footprint: identical to the object backend's report."""
        # Per cell: 3 x 32 bits per bucket plus two 32-bit overhead fields,
        # floor-divided per cell — the exact ExponentialHistogram formula.
        return 12 * self.total_buckets() + 8 * self.cells

    def resident_bytes(self) -> int:
        return self.memory_bytes()


# ---------------------------------------------------------------- registration
def columnar_supports(config: Any) -> str | None:
    """Capability predicate shared by the columnar-family backends."""
    from ..core.config import CounterType

    if config.counter_type is not CounterType.EXPONENTIAL_HISTOGRAM:
        return (
            "the columnar layout only implements exponential-histogram "
            "counters; counter_type=%s needs the object backend" % (config.counter_type,)
        )
    return None


def _columnar_factory(config: Any, make_counter: CounterFactory) -> ColumnarEHStore:
    return ColumnarEHStore(
        depth=config.depth,
        width=config.width,
        epsilon=config.epsilon_sw,
        window=config.window,
        model=config.model,
    )


register_backend("columnar", _columnar_factory, columnar_supports, priority=10)
