"""Deterministic waves (Gibbons & Tirthapura; SPAA 2002).

A deterministic wave solves the same basic-counting problem as the exponential
histogram and with the same asymptotic space, but organises its state as
*levels of rank checkpoints* instead of buckets, which gives it a constant
worst-case (not only amortised) update cost.

Level ``i`` records the clock value of every arrival whose rank (1-based count
of arrivals since the beginning of the stream) is a multiple of ``2**i``.
Each level retains only its most recent ``ceil(2/epsilon) + 1`` checkpoints,
so the retained checkpoints of all levels together form the characteristic
"wave" shape.  A query for a range starting at clock ``s`` walks the levels
bottom-up and finds the retained checkpoint with the smallest rank whose clock
is newer than ``s``; the answer ``total_rank - rank + 1`` then over-counts by
less than ``2**i`` where ``i`` is the level that supplied the checkpoint,
which the retention policy keeps below ``epsilon`` times the true answer.

Unlike exponential histograms, waves must know an upper bound ``max_arrivals``
on the number of arrivals per window when they are created (to size the number
of levels) — exactly the ``u(N, S)`` requirement discussed in Section 4.2.2 of
the ECM-sketch paper.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from ..core.errors import ConfigurationError
from .base import SlidingWindowCounter, WindowModel, validate_epsilon

__all__ = ["WaveCheckpoint", "DeterministicWave"]

_FIELD_BITS = 32
#: Cap on the per-unit expansion of a counted bulk run (8 bytes per unit,
#: so 32 MiB of transient clock array); larger runs use the scalar path,
#: whose memory stays proportional to the structure.
_BULK_EXPANSION_LIMIT = 1 << 22


@dataclass(frozen=True)
class WaveCheckpoint:
    """A (clock, rank) checkpoint stored in one wave level."""

    clock: float
    rank: int


class DeterministicWave(SlidingWindowCounter):
    """Deterministic epsilon-approximate sliding-window counter.

    Args:
        epsilon: Target relative error, in ``(0, 1)``.
        window: Sliding-window length ``N``.
        max_arrivals: Upper bound ``u(N, S)`` on the number of arrivals that
            can fall inside one window.  Over-estimating it only grows the
            structure logarithmically; under-estimating it degrades accuracy
            for ranges that contain more arrivals than the bound.
        model: Time-based or count-based window model.
    """

    def __init__(
        self,
        epsilon: float,
        window: float,
        max_arrivals: int,
        model: WindowModel = WindowModel.TIME_BASED,
    ) -> None:
        super().__init__(window=window, model=model)
        self.epsilon = validate_epsilon(epsilon)
        if max_arrivals <= 0:
            raise ConfigurationError("max_arrivals must be positive, got %r" % (max_arrivals,))
        self.max_arrivals = int(max_arrivals)
        #: Checkpoints retained per level (2/epsilon + 1 gives the epsilon bound).
        self.per_level = int(math.ceil(2.0 / self.epsilon)) + 1
        #: Number of levels: enough for ranks up to epsilon * max_arrivals per step.
        self.num_levels = max(1, int(math.ceil(math.log2(max(2.0, self.epsilon * self.max_arrivals)))) + 1)
        self._levels: list[deque[WaveCheckpoint]] = [deque() for _ in range(self.num_levels)]
        self._total_arrivals = 0

    # ----------------------------------------------------------------- adds
    def add(self, clock: float, count: int = 1) -> None:
        """Register ``count`` unit arrivals at clock value ``clock``."""
        if count < 0:
            raise ConfigurationError("count must be non-negative, got %r" % (count,))
        if count == 0:
            return
        self._advance_clock(clock)
        for _ in range(count):
            self._total_arrivals += 1
            rank = self._total_arrivals
            self._record(clock, rank)
        self._expire(clock)

    def add_batch(
        self,
        clocks: Sequence[float],
        counts: Sequence[int] | None = None,
        *,
        assume_ordered: bool = False,
    ) -> None:
        """Bulk-insert a run of in-order arrivals (see the base-class contract).

        The wave's per-arrival work — checkpoint recording, capacity eviction
        and expiry — removes entries from the *front* of each level deque
        only, so the final retained set of a level is always a suffix of its
        full checkpoint sequence: the most recent ``per_level`` checkpoints
        that survive the final expiry threshold.  That makes the whole run
        computable arithmetically (checkpoint ranks are the multiples of the
        level stride), with NumPy supplying the rank grids and clock lookups;
        only the retained checkpoints are materialised.  The resulting state
        is identical to per-arrival :meth:`add` calls.
        """
        if not len(clocks):
            return
        self._validate_batch(clocks, counts, assume_ordered)
        unit_clocks = self._expand_run(clocks, counts)
        if unit_clocks is None:
            # Inexact NumPy round-trip (mixed clock types): scalar fallback.
            if counts is None:
                for clock in clocks:
                    self.add(clock)
            else:
                for clock, count in zip(clocks, counts, strict=False):
                    self.add(clock, count)
            return
        if unit_clocks.size:
            self._bulk_record(unit_clocks)

    def _expand_run(
        self, clocks: Sequence[float], counts: Sequence[int] | None
    ) -> np.ndarray | None:
        """Per-unit clock array for a validated run, or ``None`` if ineligible.

        Ineligible runs (handled by the scalar fallback): clock values that
        would not survive the NumPy round-trip exactly (mixed int/float
        lists, object-dtype clocks such as huge ints), and runs whose unit
        expansion would exceed :data:`_BULK_EXPANSION_LIMIT` (the expansion
        is O(total arrivals); the scalar path stays O(structure) in memory).
        """
        clocks_array = np.asarray(clocks)
        if clocks_array.dtype.kind == "f":
            if not all(type(c) is float for c in clocks):
                return None
        elif clocks_array.dtype.kind not in "iu":
            return None
        if counts is None:
            return clocks_array
        counts_array = np.asarray(counts)
        if counts_array.dtype.kind not in "iu":
            return None
        if int(counts_array.sum()) > _BULK_EXPANSION_LIMIT:
            return None
        return np.repeat(clocks_array, counts_array)

    def _bulk_record(self, unit_clocks: np.ndarray) -> None:
        """Apply a pre-expanded run of unit arrivals level by level."""
        total_new = int(unit_clocks.size)
        base_rank = self._total_arrivals
        last_clock = unit_clocks[-1].item()
        threshold = last_clock - self.window
        per_level = self.per_level
        for level in range(self.num_levels):
            stride = 1 << level
            # Checkpoint ranks this run contributes to the level: multiples of
            # the stride in (base_rank, base_rank + total_new].
            first = (base_rank // stride + 1) * stride
            if first > base_rank + total_new:
                new_ranks = np.empty(0, dtype=np.int64)
            else:
                new_ranks = np.arange(first, base_rank + total_new + 1, stride, dtype=np.int64)
            if not new_ranks.size and not self._levels[level]:
                continue
            keep_new = min(new_ranks.size, per_level)
            kept_ranks = new_ranks[new_ranks.size - keep_new :]
            kept_clocks = unit_clocks[kept_ranks - 1 - base_rank]
            existing = self._levels[level]
            retained: list[WaveCheckpoint] = []
            slots_left = per_level - keep_new
            if slots_left > 0 and existing:
                retained.extend(list(existing)[max(0, len(existing) - slots_left) :])
            retained.extend(
                WaveCheckpoint(clock=clock, rank=rank)
                for clock, rank in zip(kept_clocks.tolist(), kept_ranks.tolist(), strict=False)
            )
            # Final expiry: drop from the front while out of the window.
            drop = 0
            while drop < len(retained) and retained[drop].clock <= threshold:
                drop += 1
            self._levels[level] = deque(retained[drop:])
        self._total_arrivals = base_rank + total_new
        self._last_clock = last_clock

    def _record(self, clock: float, rank: int) -> None:
        """Store the checkpoint on every level whose stride divides the rank."""
        level = 0
        stride = 1
        while level < self.num_levels and rank % stride == 0:
            bucket = self._levels[level]
            bucket.append(WaveCheckpoint(clock=clock, rank=rank))
            if len(bucket) > self.per_level:
                bucket.popleft()
            level += 1
            stride <<= 1

    # --------------------------------------------------------------- expiry
    def _expire(self, now: float) -> None:
        threshold = now - self.window
        for level in self._levels:
            while level and level[0].clock <= threshold:
                level.popleft()

    def expire(self, now: float) -> None:
        """Drop checkpoints that have left the window ``(now - N, now]``."""
        self._expire(now)

    # -------------------------------------------------------------- queries
    def estimate(self, range_length: float | None = None, now: float | None = None) -> float:
        """Estimate the number of arrivals in the last ``range_length`` clock units."""
        start, _end = self.resolve_query_bounds(range_length, now)
        best_rank: int | None = None
        for level in self._levels:
            for checkpoint in level:
                if checkpoint.clock > start:
                    if best_rank is None or checkpoint.rank < best_rank:
                        best_rank = checkpoint.rank
                    break  # checkpoints are rank- and clock-ordered within a level
        if best_rank is None:
            return 0.0
        return float(self._total_arrivals - best_rank + 1)

    def total_arrivals(self) -> int:
        """Exact number of arrivals registered since construction."""
        return self._total_arrivals

    # ------------------------------------------------------------ structure
    def checkpoint_count(self) -> int:
        """Total number of retained checkpoints across all levels."""
        return sum(len(level) for level in self._levels)

    def levels_snapshot(self) -> list[list[WaveCheckpoint]]:
        """A copy of the retained checkpoints, level by level (oldest first)."""
        return [list(level) for level in self._levels]

    # --------------------------------------------------------------- memory
    def memory_bytes(self) -> int:
        """Analytical footprint: one clock and one rank per checkpoint."""
        per_checkpoint_bits = 2 * _FIELD_BITS
        overhead_bits = 3 * _FIELD_BITS  # window, arrival counter, level count
        return (self.checkpoint_count() * per_checkpoint_bits + overhead_bits) // 8

    def memory_bytes_worst_case(self) -> int:
        """Worst-case footprint with every level full (used for a-priori sizing)."""
        per_checkpoint_bits = 2 * _FIELD_BITS
        overhead_bits = 3 * _FIELD_BITS
        return (self.num_levels * self.per_level * per_checkpoint_bits + overhead_bits) // 8

    def __repr__(self) -> str:
        return (
            "DeterministicWave(epsilon=%g, window=%g, levels=%d, per_level=%d)"
            % (self.epsilon, self.window, self.num_levels, self.per_level)
        )
