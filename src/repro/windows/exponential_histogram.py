"""Exponential histograms (Datar, Gionis, Indyk, Motwani; SIAM J. Comput. 2002).

An exponential histogram (EH) answers the *basic counting* problem: how many
unit arrivals ("true bits") occurred within the most recent ``r`` clock units,
with a guaranteed relative error of at most ``epsilon``.

The structure keeps the arrivals grouped into *buckets* of exponentially
increasing sizes (1, 1, ..., 2, 2, ..., 4, 4, ...).  The key invariant
(invariant 1 in the ECM-sketch paper) is that the size of every bucket ``j``
is at most an ``epsilon`` fraction of twice the number of arrivals more recent
than ``j``::

    C_j / (2 * (1 + sum_{i<j} C_i)) <= epsilon

Queries sum the sizes of all buckets that are newer than the query start and
count only *half* of the oldest overlapping bucket; the invariant bounds the
resulting relative error by ``epsilon``.

This implementation follows the paper's own engineering notes (Section 7.1):
buckets are stored in per-size-class deques (level ``i`` holds only buckets of
size ``2**i``), which gives constant-time merges and random access to levels.
Both time-based and count-based windows are supported through the common
:class:`~repro.windows.base.SlidingWindowCounter` clock abstraction.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterator, List, Optional

from ..core.errors import ConfigurationError
from .base import SlidingWindowCounter, WindowModel, validate_epsilon

__all__ = ["Bucket", "ExponentialHistogram"]

#: Bits charged per stored field (size, timestamp) under the paper's 32-bit model.
_FIELD_BITS = 32


@dataclass
class Bucket:
    """A single exponential-histogram bucket.

    Attributes:
        size: Number of unit arrivals summarised by the bucket (a power of two
            for freshly created buckets; merged aggregation buckets may carry
            arbitrary sizes transiently).
        start: Clock value of the oldest arrival in the bucket.
        end: Clock value of the most recent arrival in the bucket.
    """

    size: int
    start: float
    end: float

    def merge_with_older(self, older: "Bucket") -> "Bucket":
        """Return the bucket obtained by merging this bucket with an older one."""
        return Bucket(size=self.size + older.size, start=older.start, end=self.end)


class ExponentialHistogram(SlidingWindowCounter):
    """Deterministic epsilon-approximate sliding-window counter.

    Args:
        epsilon: Target relative error of the estimates, in ``(0, 1)``.
        window: Sliding-window length ``N`` (time units or arrivals).
        model: Time-based or count-based window model.

    Example:
        >>> eh = ExponentialHistogram(epsilon=0.1, window=1000)
        >>> for t in range(500):
        ...     eh.add(t)
        >>> abs(eh.estimate(100, now=499) - 100) <= 0.1 * 100 + 1
        True
    """

    def __init__(
        self,
        epsilon: float,
        window: float,
        model: WindowModel = WindowModel.TIME_BASED,
    ) -> None:
        super().__init__(window=window, model=model)
        self.epsilon = validate_epsilon(epsilon)
        # k = ceil(1/epsilon); keeping between ceil(k/2) and ceil(k/2)+1 buckets
        # of every size class bounds the oldest bucket by the invariant above.
        self.k = int(math.ceil(1.0 / self.epsilon))
        self._max_per_level = int(math.ceil(self.k / 2.0)) + 1
        # Level i holds buckets of size 2**i, most recent at the right end.
        self._levels: List[Deque[Bucket]] = []
        self._total_arrivals = 0
        self._in_window_upper = 0  # sum of all bucket sizes currently stored

    # ----------------------------------------------------------------- adds
    def add(self, clock: float, count: int = 1) -> None:
        """Register ``count`` unit arrivals at clock value ``clock``."""
        if count < 0:
            raise ConfigurationError("count must be non-negative, got %r" % (count,))
        if count == 0:
            return
        self._advance_clock(clock)
        self._total_arrivals += count
        for _ in range(count):
            self._insert_unit(clock)
        self._expire(clock)

    def _insert_unit(self, clock: float) -> None:
        """Insert a single unit arrival as a fresh size-1 bucket and rebalance."""
        if not self._levels:
            self._levels.append(deque())
        self._levels[0].append(Bucket(size=1, start=clock, end=clock))
        self._in_window_upper += 1
        self._cascade_merges()

    def _cascade_merges(self) -> None:
        """Merge the two oldest buckets of any overfull size class, cascading up."""
        level = 0
        while level < len(self._levels) and len(self._levels[level]) > self._max_per_level:
            older = self._levels[level].popleft()
            newer = self._levels[level].popleft()
            merged = newer.merge_with_older(older)
            if level + 1 >= len(self._levels):
                self._levels.append(deque())
            self._levels[level + 1].append(merged)
            level += 1

    # --------------------------------------------------------------- expiry
    def _expire(self, now: float) -> None:
        """Drop buckets whose most recent arrival has left the window."""
        threshold = now - self.window
        for level in self._levels:
            while level and level[0].end <= threshold:
                expired = level.popleft()
                self._in_window_upper -= expired.size

    def expire(self, now: float) -> None:
        """Public expiry hook: drop buckets entirely outside ``(now - N, now]``."""
        self._expire(now)

    # -------------------------------------------------------------- queries
    def estimate(self, range_length: Optional[float] = None, now: Optional[float] = None) -> float:
        """Estimate the number of arrivals in the last ``range_length`` clock units."""
        start, _end = self.resolve_query_bounds(range_length, now)
        buckets = self.buckets_newest_first()
        if not buckets:
            return 0.0
        total = 0.0
        oldest_overlapping: Optional[Bucket] = None
        for bucket in buckets:
            if bucket.end <= start:
                break
            total += bucket.size
            oldest_overlapping = bucket
        if oldest_overlapping is None:
            return 0.0
        if oldest_overlapping.start <= start:
            # Partial overlap: the invariant bounds size/2 by epsilon times the
            # number of newer arrivals, which is exactly the paper's error term.
            total -= oldest_overlapping.size / 2.0
        return total

    def total_arrivals(self) -> int:
        """Exact number of arrivals registered since construction."""
        return self._total_arrivals

    def arrivals_in_window_upper_bound(self) -> int:
        """Sum of all stored bucket sizes (an upper bound on in-window arrivals)."""
        return self._in_window_upper

    # ------------------------------------------------------------ structure
    def buckets_newest_first(self) -> List[Bucket]:
        """All live buckets ordered from most recent to oldest."""
        collected: List[Bucket] = []
        for level in self._levels:
            collected.extend(level)
        collected.sort(key=lambda b: (b.end, b.start), reverse=True)
        return collected

    def buckets_oldest_first(self) -> List[Bucket]:
        """All live buckets ordered from oldest to most recent."""
        return list(reversed(self.buckets_newest_first()))

    def iter_buckets(self) -> Iterator[Bucket]:
        """Iterate over live buckets in no particular order."""
        for level in self._levels:
            yield from level

    def bucket_count(self) -> int:
        """Number of live buckets."""
        return sum(len(level) for level in self._levels)

    def check_invariant(self) -> bool:
        """Verify invariant 1 of the paper on the current bucket list.

        The paper's invariant bounds every bucket ``j`` (newest-first) by
        ``C_j <= 2 * epsilon * (1 + sum_{i<j} C_i)``.  Because buckets hold an
        integral number of arrivals, the bound can only be met up to the
        granularity of one arrival (the newest size-1 bucket already "violates"
        the literal inequality whenever ``epsilon < 0.5``); we therefore check
        ``C_j <= 2 * epsilon * (1 + sum_{i<j} C_i) + 1``, which is exactly the
        inequality that drives the ``epsilon * truth + O(1)`` estimate
        guarantee verified by the accuracy tests.
        """
        newer_sum = 0
        for bucket in self.buckets_newest_first():
            if bucket.size > 2.0 * self.epsilon * (1 + newer_sum) + 1.0 + 1e-9:
                return False
            newer_sum += bucket.size
        return True

    # --------------------------------------------------------------- memory
    def memory_bytes(self) -> int:
        """Analytical footprint: two timestamps and one size field per bucket."""
        per_bucket_bits = 3 * _FIELD_BITS
        overhead_bits = 2 * _FIELD_BITS  # window length + arrival counter
        return (self.bucket_count() * per_bucket_bits + overhead_bits) // 8

    # ----------------------------------------------------------------- misc
    def is_empty(self) -> bool:
        """True when no live bucket remains."""
        return self.bucket_count() == 0

    def __repr__(self) -> str:
        return (
            "ExponentialHistogram(epsilon=%g, window=%g, model=%s, buckets=%d)"
            % (self.epsilon, self.window, self.model, self.bucket_count())
        )
