"""Exponential histograms (Datar, Gionis, Indyk, Motwani; SIAM J. Comput. 2002).

An exponential histogram (EH) answers the *basic counting* problem: how many
unit arrivals ("true bits") occurred within the most recent ``r`` clock units,
with a guaranteed relative error of at most ``epsilon``.

The structure keeps the arrivals grouped into *buckets* of exponentially
increasing sizes (1, 1, ..., 2, 2, ..., 4, 4, ...).  The key invariant
(invariant 1 in the ECM-sketch paper) is that the size of every bucket ``j``
is at most an ``epsilon`` fraction of twice the number of arrivals more recent
than ``j``::

    C_j / (2 * (1 + sum_{i<j} C_i)) <= epsilon

Queries sum the sizes of all buckets that are newer than the query start and
count only *half* of the oldest overlapping bucket; the invariant bounds the
resulting relative error by ``epsilon``.

This implementation follows the paper's own engineering notes (Section 7.1):
buckets are stored in per-size-class deques (level ``i`` holds only buckets of
size ``2**i``), which gives constant-time merges and random access to levels.
Both time-based and count-based windows are supported through the common
:class:`~repro.windows.base.SlidingWindowCounter` clock abstraction.
"""

from __future__ import annotations

import math
import sys
from collections import deque
from dataclasses import dataclass
from collections.abc import Iterator, Sequence

import numpy as np

from ..core.errors import ConfigurationError
from .base import SlidingWindowCounter, WindowModel, validate_epsilon

__all__ = ["Bucket", "ExponentialHistogram"]

#: Bits charged per stored field (size, timestamp) under the paper's 32-bit model.
_FIELD_BITS = 32
#: Cap on the per-unit expansion of a counted bulk run (8 bytes per unit,
#: so 32 MiB of transient clock array); larger runs use the exact per-pair
#: path, whose memory stays proportional to the structure.
_BULK_EXPANSION_LIMIT = 1 << 22


@dataclass(slots=True)
class Bucket:
    """A single exponential-histogram bucket.

    Attributes:
        size: Number of unit arrivals summarised by the bucket (a power of two
            for freshly created buckets; merged aggregation buckets may carry
            arbitrary sizes transiently).
        start: Clock value of the oldest arrival in the bucket.
        end: Clock value of the most recent arrival in the bucket.
    """

    size: int
    start: float
    end: float

    def merge_with_older(self, older: Bucket) -> Bucket:
        """Return the bucket obtained by merging this bucket with an older one."""
        return Bucket(self.size + older.size, older.start, self.end)


class ExponentialHistogram(SlidingWindowCounter):
    """Deterministic epsilon-approximate sliding-window counter.

    Args:
        epsilon: Target relative error of the estimates, in ``(0, 1)``.
        window: Sliding-window length ``N`` (time units or arrivals).
        model: Time-based or count-based window model.

    Example:
        >>> eh = ExponentialHistogram(epsilon=0.1, window=1000)
        >>> for t in range(500):
        ...     eh.add(t)
        >>> abs(eh.estimate(100, now=499) - 100) <= 0.1 * 100 + 1
        True
    """

    def __init__(
        self,
        epsilon: float,
        window: float,
        model: WindowModel = WindowModel.TIME_BASED,
    ) -> None:
        super().__init__(window=window, model=model)
        self.epsilon = validate_epsilon(epsilon)
        # k = ceil(1/epsilon); keeping between ceil(k/2) and ceil(k/2)+1 buckets
        # of every size class bounds the oldest bucket by the invariant above.
        self.k = int(math.ceil(1.0 / self.epsilon))
        self._max_per_level = int(math.ceil(self.k / 2.0)) + 1
        # Level i holds buckets of size 2**i, most recent at the right end.
        self._levels: list[deque[Bucket]] = []
        self._total_arrivals = 0
        self._in_window_upper = 0  # sum of all bucket sizes currently stored
        # Memoized newest-first bucket view: every estimate() walks the
        # buckets in time order, and rebuilding + sorting that list per query
        # dominates the read path (heavy-hitter descents, ||a_r||_1 scans).
        # Any mutation drops the cache; queries rebuild it lazily.
        self._newest_first_cache: list[Bucket] | None = None

    # ----------------------------------------------------------------- adds
    def add(self, clock: float, count: int = 1) -> None:
        """Register ``count`` unit arrivals at clock value ``clock``."""
        if count < 0:
            raise ConfigurationError("count must be non-negative, got %r" % (count,))
        if count == 0:
            return
        self._newest_first_cache = None
        self._advance_clock(clock)
        self._total_arrivals += count
        for _ in range(count):
            self._insert_unit(clock)
        self._expire(clock)

    def add_batch(
        self,
        clocks: Sequence[float],
        counts: Sequence[int] | None = None,
        *,
        assume_ordered: bool = False,
    ) -> None:
        """Bulk-insert a run of in-order arrivals (see the base-class contract).

        Produces exactly the same bucket structure as per-arrival :meth:`add`
        calls, but pays the per-arrival overhead once per run: the run is
        validated upfront (so invalid input mutates nothing), attribute
        lookups are hoisted out of the loop, and the expiry scan only runs
        when the oldest retained bucket can actually have left the window (a
        skipped scan is a no-op in the scalar path, so skipping it cannot
        change state).
        """
        if not len(clocks):
            return
        self._validate_batch(clocks, counts, assume_ordered)
        self._newest_first_cache = None
        levels = self._levels
        max_per = self._max_per_level
        window = self.window
        last = self._last_clock
        total = self._total_arrivals
        upper = self._in_window_upper
        # Clock of the oldest retained bucket: expiry can only remove something
        # once `clock - window` reaches it.  Merges may strictly increase the
        # true minimum; keeping a stale lower value merely triggers a no-op
        # scan, never a missed expiry.
        oldest_end = math.inf
        for level in levels:
            if level:
                end = level[0].end
                if end < oldest_end:
                    oldest_end = end
        if counts is None:
            # When the whole run ends before anything can leave the window
            # (neither a pre-existing bucket nor one created during the run),
            # every expiry scan of the scalar path is a no-op and the
            # per-arrival loop collapses to its insert-and-cascade core.
            final_threshold = clocks[-1] - window
            if final_threshold < oldest_end and final_threshold < clocks[0]:
                self._add_unit_run(clocks)
                return
            pairs = [(clock, 1) for clock in clocks]
        else:
            expanded = self._expand_counted_run(clocks, counts)
            if expanded is not None:
                if expanded.size:
                    self._add_counted_run(expanded)
                # An all-zero run is a no-op in the scalar path as well.
                return
            pairs = list(zip(clocks, counts, strict=False))
        # Level 0 is created lazily exactly like the scalar path, so that an
        # all-zero or empty batch leaves the structure untouched.
        level0: deque[Bucket] | None = levels[0] if levels else None
        append0 = level0.append if level0 is not None else None
        try:
            # The run was validated above, so the loop only applies state.
            for clock, count in pairs:
                if count == 0:
                    continue
                last = clock
                total += count
                upper += count
                if append0 is None:
                    levels.append(deque())
                    level0 = levels[0]
                    append0 = level0.append
                for _ in range(count):
                    append0(Bucket(1, clock, clock))
                    if len(level0) > max_per:
                        level = 0
                        while level < len(levels) and len(levels[level]) > max_per:
                            bucket_deque = levels[level]
                            older = bucket_deque.popleft()
                            newer = bucket_deque.popleft()
                            if level + 1 >= len(levels):
                                levels.append(deque())
                            levels[level + 1].append(
                                Bucket(newer.size + older.size, older.start, newer.end)
                            )
                            level += 1
                if oldest_end > clock:
                    oldest_end = clock
                threshold = clock - window
                if oldest_end <= threshold:
                    for bucket_deque in levels:
                        while bucket_deque and bucket_deque[0].end <= threshold:
                            upper -= bucket_deque.popleft().size
                    oldest_end = math.inf
                    for bucket_deque in levels:
                        if bucket_deque:
                            end = bucket_deque[0].end
                            if end < oldest_end:
                                oldest_end = end
        finally:
            self._last_clock = last
            self._total_arrivals = total
            self._in_window_upper = upper

    def _add_unit_run(self, clocks: Sequence[float]) -> None:
        """Insert a pre-validated run of unit arrivals that triggers no expiry.

        The caller has established that no bucket can leave the window before
        the run's final clock, so the per-arrival machinery collapses: all
        unit buckets are appended in one C-speed ``extend`` and the cascade
        runs once at the end, level by level.  Deferring the cascade is exact:
        arrivals only ever land at the *newest* end of a level while merges
        only ever consume the two *oldest* buckets, so for a fixed arrival
        sequence the greedy left-to-right pairing — and therefore the final
        bucket structure — is identical whether merges are interleaved after
        every insert (the scalar path) or performed in one pass per level.
        The merged pair's newer bucket is reused in place (buckets are owned
        exclusively by the level deques), avoiding a transient allocation.
        """
        levels = self._levels
        max_per = self._max_per_level
        if not levels:
            levels.append(deque())
        levels[0].extend([Bucket(1, clock, clock) for clock in clocks])
        level = 0
        num_levels = len(levels)
        while level < num_levels and len(levels[level]) > max_per:
            bucket_deque = levels[level]
            if level + 1 >= num_levels:
                levels.append(deque())
                num_levels += 1
            append_next = levels[level + 1].append
            popleft = bucket_deque.popleft
            while len(bucket_deque) > max_per:
                older = popleft()
                newer = popleft()
                newer.size += older.size
                newer.start = older.start
                append_next(newer)
            level += 1
        self._last_clock = clocks[-1]
        self._total_arrivals += len(clocks)
        self._in_window_upper += len(clocks)

    def _expand_counted_run(
        self, clocks: Sequence[float], counts: Sequence[int]
    ) -> np.ndarray | None:
        """Expand a counted run into per-unit clocks when the bulk path applies.

        The deferred-cascade bulk insert (:meth:`_add_counted_run`) is only
        equivalent to the scalar path when (a) the histogram holds no live
        bucket, so every expiry decision during the run concerns run-created
        buckets only, and (b) nothing created by the run can expire before the
        run ends.  The expansion itself must also be *exact*: an integer clock
        that a NumPy round-trip would coerce to float would serialize
        differently, so mixed-type clock lists fall back to the scalar loop.

        Returns:
            The per-unit clock array (possibly empty, for an all-zero run), or
            ``None`` when the caller must use the exact per-pair path instead.
        """
        if self._in_window_upper != 0:
            return None
        counts_array = np.asarray(counts)
        if counts_array.dtype.kind not in "iu":
            return None
        if int(counts_array.sum()) > _BULK_EXPANSION_LIMIT:
            # The expansion is O(total arrivals); beyond this cap the exact
            # per-pair path keeps transient memory proportional to the
            # structure instead.
            return None
        clocks_array = np.asarray(clocks)
        if clocks_array.dtype.kind == "f":
            if not all(type(c) is float for c in clocks):
                return None
        elif clocks_array.dtype.kind not in "iu":
            # Object-dtype clocks (huge ints, Decimal, ...) would not survive
            # the array round-trip; the scalar path handles them.
            return None
        unit_clocks = np.repeat(clocks_array, counts_array)
        if unit_clocks.size:
            first = unit_clocks[0].item()
            last = unit_clocks[-1].item()
            # Same float arithmetic as the scalar path's `clock - window`.
            if last - self.window >= first:
                return None
        return unit_clocks

    def _add_counted_run(self, unit_clocks: np.ndarray) -> None:
        """Bulk-load pre-expanded unit arrivals with the cascade fully deferred.

        Requires the preconditions of :meth:`_expand_counted_run`: no live
        buckets and no expiry possible during the run.  Under those conditions
        the scalar path reduces to "append every unit bucket, then cascade" —
        the same argument as :meth:`_add_unit_run` — and the cascade itself is
        *arithmetic*: starting from unit buckets only, every level ``l`` holds
        buckets of exactly ``2**l`` arrivals, each covering a contiguous run
        of units, so the final structure is computed with NumPy slicing and
        only the retained buckets (at most ``max_per_level + 1`` per level)
        are ever materialised as Python objects.
        """
        cap = self._max_per_level
        total_new = int(unit_clocks.size)
        starts = unit_clocks
        ends = unit_clocks
        size = 1
        level = 0
        while starts.size > cap:
            # The scalar cascade pops the two oldest while the level overflows.
            merges = (starts.size - cap + 1) // 2
            self._materialize_level(level, size, starts[2 * merges :], ends[2 * merges :])
            starts = starts[0 : 2 * merges : 2]
            ends = ends[1 : 2 * merges : 2]
            size <<= 1
            level += 1
        self._materialize_level(level, size, starts, ends)
        self._last_clock = unit_clocks[-1].item()
        self._total_arrivals += total_new
        self._in_window_upper += total_new

    def _materialize_level(
        self, level: int, size: int, starts: np.ndarray, ends: np.ndarray
    ) -> None:
        """Append the retained buckets of one cascade level to the structure."""
        if not starts.size:
            return
        while len(self._levels) <= level:
            self._levels.append(deque())
        self._levels[level].extend(
            Bucket(size, start, end) for start, end in zip(starts.tolist(), ends.tolist(), strict=False)
        )

    def _insert_unit(self, clock: float) -> None:
        """Insert a single unit arrival as a fresh size-1 bucket and rebalance."""
        if not self._levels:
            self._levels.append(deque())
        self._levels[0].append(Bucket(1, clock, clock))
        self._in_window_upper += 1
        self._cascade_merges()

    def _cascade_merges(self) -> None:
        """Merge the two oldest buckets of any overfull size class, cascading up."""
        level = 0
        while level < len(self._levels) and len(self._levels[level]) > self._max_per_level:
            older = self._levels[level].popleft()
            newer = self._levels[level].popleft()
            merged = newer.merge_with_older(older)
            if level + 1 >= len(self._levels):
                self._levels.append(deque())
            self._levels[level + 1].append(merged)
            level += 1

    # --------------------------------------------------------------- expiry
    def _expire(self, now: float) -> None:
        """Drop buckets whose most recent arrival has left the window."""
        self._newest_first_cache = None
        threshold = now - self.window
        for level in self._levels:
            while level and level[0].end <= threshold:
                expired = level.popleft()
                self._in_window_upper -= expired.size

    def expire(self, now: float) -> None:
        """Public expiry hook: drop buckets entirely outside ``(now - N, now]``."""
        self._expire(now)

    # -------------------------------------------------------------- queries
    def estimate(self, range_length: float | None = None, now: float | None = None) -> float:
        """Estimate the number of arrivals in the last ``range_length`` clock units."""
        start, _end = self.resolve_query_bounds(range_length, now)
        buckets = self._newest_first_view()
        if not buckets:
            return 0.0
        total = 0.0
        oldest_overlapping: Bucket | None = None
        for bucket in buckets:
            if bucket.end <= start:
                break
            total += bucket.size
            oldest_overlapping = bucket
        if oldest_overlapping is None:
            return 0.0
        if oldest_overlapping.start <= start:
            # Partial overlap: the invariant bounds size/2 by epsilon times the
            # number of newer arrivals, which is exactly the paper's error term.
            total -= oldest_overlapping.size / 2.0
        return total

    def total_arrivals(self) -> int:
        """Exact number of arrivals registered since construction."""
        return self._total_arrivals

    def arrivals_in_window_upper_bound(self) -> int:
        """Sum of all stored bucket sizes (an upper bound on in-window arrivals)."""
        return self._in_window_upper

    # ------------------------------------------------------------ structure
    def _newest_first_view(self) -> list[Bucket]:
        """Memoized newest-first bucket list (internal: never mutate it)."""
        cached = self._newest_first_cache
        if cached is not None:
            return cached
        collected: list[Bucket] = []
        for level in self._levels:
            collected.extend(level)
        collected.sort(key=lambda b: (b.end, b.start), reverse=True)
        self._newest_first_cache = collected
        return collected

    def buckets_newest_first(self) -> list[Bucket]:
        """All live buckets ordered from most recent to oldest.

        Returns a fresh list (callers may mutate it freely); the ordering
        work is memoized between mutations.
        """
        return list(self._newest_first_view())

    def buckets_oldest_first(self) -> list[Bucket]:
        """All live buckets ordered from oldest to most recent."""
        return list(reversed(self._newest_first_view()))

    def iter_buckets(self) -> Iterator[Bucket]:
        """Iterate over live buckets in no particular order."""
        for level in self._levels:
            yield from level

    def bucket_count(self) -> int:
        """Number of live buckets."""
        return sum(len(level) for level in self._levels)

    def check_invariant(self) -> bool:
        """Verify invariant 1 of the paper on the current bucket list.

        The paper's invariant bounds every bucket ``j`` (newest-first) by
        ``C_j <= 2 * epsilon * (1 + sum_{i<j} C_i)``.  Because buckets hold an
        integral number of arrivals, the bound can only be met up to the
        granularity of one arrival (the newest size-1 bucket already "violates"
        the literal inequality whenever ``epsilon < 0.5``); we therefore check
        ``C_j <= 2 * epsilon * (1 + sum_{i<j} C_i) + 1``, which is exactly the
        inequality that drives the ``epsilon * truth + O(1)`` estimate
        guarantee verified by the accuracy tests.
        """
        newer_sum = 0
        for bucket in self._newest_first_view():
            if bucket.size > 2.0 * self.epsilon * (1 + newer_sum) + 1.0 + 1e-9:
                return False
            newer_sum += bucket.size
        return True

    # --------------------------------------------------------------- memory
    def memory_bytes(self) -> int:
        """Analytical footprint: two timestamps and one size field per bucket."""
        per_bucket_bits = 3 * _FIELD_BITS
        overhead_bits = 2 * _FIELD_BITS  # window length + arrival counter
        return (self.bucket_count() * per_bucket_bits + overhead_bits) // 8

    def resident_bytes(self) -> int:
        """Estimated true resident memory of the Python object graph.

        Unlike :meth:`memory_bytes` (the paper's 32-bit synopsis model), this
        walks what the process actually holds: the histogram object, the
        level deques, and one :class:`Bucket` object plus three boxed scalars
        per bucket.  It is what the columnar backend's array footprint should
        be compared against.
        """
        total = sys.getsizeof(self) + sys.getsizeof(self._levels)
        for level in self._levels:
            total += sys.getsizeof(level)
            for bucket in level:
                total += (
                    sys.getsizeof(bucket)
                    + sys.getsizeof(bucket.size)
                    + sys.getsizeof(bucket.start)
                    + sys.getsizeof(bucket.end)
                )
        return total

    # ----------------------------------------------------------------- misc
    def is_empty(self) -> bool:
        """True when no live bucket remains."""
        return self.bucket_count() == 0

    def __repr__(self) -> str:
        return (
            "ExponentialHistogram(epsilon=%g, window=%g, model=%s, buckets=%d)"
            % (self.epsilon, self.window, self.model, self.bucket_count())
        )
