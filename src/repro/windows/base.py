"""Common abstractions for sliding-window counters.

Every Count-Min counter inside an ECM-sketch is a *sliding-window counter*:
a structure that ingests unit arrivals ("true bits" in the basic-counting
terminology of Datar et al.) stamped with a clock value, and can estimate how
many arrivals happened within the most recent ``r`` clock units.

Two window models are supported, mirroring the paper:

* **time-based** — the clock is wall-clock time (any monotone numeric unit);
  the window covers the last ``N`` time units.
* **count-based** — the clock is the global arrival index of the *underlying
  stream*; the window covers the last ``N`` stream arrivals.

Both models share the same mechanics (expire everything whose clock value
falls out of ``(now - N, now]``), so concrete counters implement a single
clock-agnostic algorithm and carry a :class:`WindowModel` tag.  The tag
matters for composition: the paper proves (Section 5.1, Figure 2) that
count-based synopses cannot be aggregated in an order-preserving way, so
merge operations check the tag and refuse count-based inputs.
"""

from __future__ import annotations

import abc
import enum
from collections.abc import Iterable, Sequence

from ..core.errors import ConfigurationError, OutOfOrderArrivalError

__all__ = [
    "WindowModel",
    "SlidingWindowCounter",
    "validate_epsilon",
    "validate_delta",
    "validate_window",
]


class WindowModel(enum.Enum):
    """Which clock a sliding-window counter uses."""

    TIME_BASED = "time"
    COUNT_BASED = "count"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def validate_epsilon(epsilon: float, name: str = "epsilon") -> float:
    """Validate a relative-error parameter, returning it unchanged.

    Raises:
        ConfigurationError: if ``epsilon`` is not in ``(0, 1)``.
    """
    if not (0.0 < epsilon < 1.0):
        raise ConfigurationError("%s must be in (0, 1), got %r" % (name, epsilon))
    return float(epsilon)


def validate_delta(delta: float, name: str = "delta") -> float:
    """Validate a failure-probability parameter, returning it unchanged.

    Raises:
        ConfigurationError: if ``delta`` is not in ``(0, 1)``.
    """
    if not (0.0 < delta < 1.0):
        raise ConfigurationError("%s must be in (0, 1), got %r" % (name, delta))
    return float(delta)


def validate_window(window: float, name: str = "window") -> float:
    """Validate a sliding-window length, returning it unchanged.

    Raises:
        ConfigurationError: if ``window`` is not strictly positive.
    """
    if window <= 0:
        raise ConfigurationError("%s must be positive, got %r" % (name, window))
    return float(window)


class SlidingWindowCounter(abc.ABC):
    """Abstract base class for all sliding-window counters.

    Concrete subclasses: :class:`~repro.windows.exponential_histogram.ExponentialHistogram`,
    :class:`~repro.windows.deterministic_wave.DeterministicWave`,
    :class:`~repro.windows.randomized_wave.RandomizedWave` and the exact
    baseline :class:`~repro.windows.exact_window.ExactWindowCounter`.

    The interface is deliberately tiny: counters only need to support unit
    additions at a clock value, estimation over a suffix range, expiry, and a
    byte-accurate analytical memory report.
    """

    #: Sliding-window length (time units or arrivals, depending on the model).
    window: float
    #: The window model this counter was configured for.
    model: WindowModel

    def __init__(self, window: float, model: WindowModel) -> None:
        self.window = validate_window(window)
        if not isinstance(model, WindowModel):
            raise ConfigurationError("model must be a WindowModel, got %r" % (model,))
        self.model = model
        self._last_clock: float | None = None

    # ------------------------------------------------------------------ API
    @abc.abstractmethod
    def add(self, clock: float, count: int = 1) -> None:
        """Register ``count`` unit arrivals at clock value ``clock``.

        ``clock`` values must be non-decreasing across calls (cash-register
        model with in-order arrivals).
        """

    @abc.abstractmethod
    def estimate(self, range_length: float | None = None, now: float | None = None) -> float:
        """Estimate the number of arrivals within the last ``range_length`` clock units.

        Args:
            range_length: Query range ``r``.  ``None`` (or anything larger
                than the window) means "the whole sliding window".
            now: Clock value defining the right edge of the query.  ``None``
                means "the clock of the most recent arrival".

        Returns:
            The estimated count (possibly fractional due to bucket halving).
        """

    @abc.abstractmethod
    def memory_bytes(self) -> int:
        """Analytical memory footprint of the structure, in bytes.

        The accounting convention follows the paper's 32-bit implementation:
        32 bits per stored counter/size field and per stored timestamp.  This
        deliberately models the footprint of the *synopsis*, not of the Python
        object graph, so that memory comparisons between variants match the
        paper's.
        """

    @abc.abstractmethod
    def total_arrivals(self) -> int:
        """Exact number of arrivals ever registered (not only in the window)."""

    # --------------------------------------------------------------- helpers
    def _advance_clock(self, clock: float) -> None:
        """Record the arrival clock, enforcing in-order arrivals."""
        if self._last_clock is not None and clock < self._last_clock:
            raise OutOfOrderArrivalError(
                "arrival clock %r is older than the previous arrival %r"
                % (clock, self._last_clock)
            )
        self._last_clock = clock

    @property
    def last_clock(self) -> float | None:
        """Clock value of the most recent arrival, or ``None`` if empty."""
        return self._last_clock

    def resolve_query_bounds(
        self, range_length: float | None, now: float | None
    ) -> tuple[float, float]:
        """Resolve (query start, query end) clock values for an estimate call.

        The query covers the half-open interval ``(start, end]``: an arrival
        exactly at ``start`` is *outside* the query range, an arrival exactly
        at ``end`` is inside.  This matches the paper's convention where query
        ``q_i`` covers ``[t - 10^i, t]`` with ``t`` the last arrival time.
        """
        if now is None:
            now = self._last_clock if self._last_clock is not None else 0.0
        if range_length is None or range_length > self.window:
            range_length = self.window
        if range_length <= 0:
            raise ConfigurationError("query range must be positive, got %r" % (range_length,))
        return now - range_length, now

    # ------------------------------------------------------------ iteration
    def extend(self, clocks: Iterable[float]) -> None:
        """Convenience: add one unit arrival for every clock value in order."""
        for clock in clocks:
            self.add(clock)

    # -------------------------------------------------------------- batching
    def add_batch(
        self,
        clocks: Sequence[float],
        counts: Sequence[int] | None = None,
        *,
        assume_ordered: bool = False,
    ) -> None:
        """Register a run of in-order arrivals in one call.

        For a valid run the resulting counter state is byte-for-byte the same
        as calling :meth:`add` once per element, but concrete counters may
        override this to amortize per-arrival bookkeeping (clock validation,
        expiry scans, cascades) across the whole run.  This is the seam
        :meth:`repro.core.ecm_sketch.ECMSketch.add_many` uses after grouping a
        batch of arrivals per (row, column) cell.

        Unlike a sequence of scalar :meth:`add` calls (which commit every
        arrival before the offending one), an invalid run — negative count or
        out-of-order clock — raises *before any mutation*, leaving the
        counter untouched.

        Args:
            clocks: Non-decreasing clock values, one per arrival.
            counts: Optional per-arrival weights (defaults to 1 each).
            assume_ordered: Promise that ``clocks`` are non-decreasing and not
                older than the counter's last arrival, allowing overrides to
                skip per-arrival order validation.  Only set this when the
                caller has already validated the run (as ``add_many`` does);
                passing unordered clocks with this flag corrupts the counter.
        """
        self._validate_batch(clocks, counts, assume_ordered)
        if counts is None:
            for clock in clocks:
                self.add(clock)
        else:
            for clock, count in zip(clocks, counts, strict=False):
                self.add(clock, count)

    def _validate_batch(
        self,
        clocks: Sequence[float],
        counts: Sequence[int] | None,
        assume_ordered: bool,
    ) -> None:
        """Validate a whole run upfront so a failed batch mutates nothing.

        Zero-count arrivals are exempt from clock ordering, exactly as in the
        scalar path (a zero-count :meth:`add` returns before validation).
        """
        if counts is not None:
            if len(counts) != len(clocks):
                raise ConfigurationError(
                    "counts length %d does not match clocks length %d"
                    % (len(counts), len(clocks))
                )
            for count in counts:
                if count < 0:
                    raise ConfigurationError("count must be non-negative, got %r" % (count,))
        if assume_ordered:
            return
        previous = self._last_clock
        if counts is None:
            for clock in clocks:
                if previous is not None and clock < previous:
                    raise OutOfOrderArrivalError(
                        "arrival clock %r is older than the previous arrival %r"
                        % (clock, previous)
                    )
                previous = clock
        else:
            for clock, count in zip(clocks, counts, strict=False):
                if count == 0:
                    continue
                if previous is not None and clock < previous:
                    raise OutOfOrderArrivalError(
                        "arrival clock %r is older than the previous arrival %r"
                        % (clock, previous)
                    )
                previous = clock
