"""Order-preserving aggregation of sliding-window synopses (paper Section 5).

The paper's second major contribution is an algorithm that combines *n*
deterministic sliding-window synopses — each summarising one local stream —
into a single synopsis of the order-preserving union stream
``S_plus = S_1 (+) S_2 (+) ... (+) S_n``, something previously possible only
with randomized (and therefore much larger) structures.

For exponential histograms the algorithm treats every input bucket as a tiny
log: a bucket of size ``|b|`` spanning ``[s(b), e(b)]`` is replayed as
``|b|/2`` arrivals at ``s(b)`` and ``|b|/2`` arrivals at ``e(b)``.  Replaying
all buckets of all inputs in timestamp order into a fresh exponential
histogram with error parameter ``epsilon_prime`` produces an aggregate whose
relative error is at most ``epsilon + epsilon_prime + epsilon*epsilon_prime``
(Theorem 4).  The same replay idea extends to deterministic waves, whose
checkpoints delimit runs of arrivals with exactly known sizes.

Count-based synopses cannot be aggregated this way (the ordering of the
"false bits" between arrivals is lost — Figure 2 of the paper); attempting to
do so raises :class:`~repro.core.errors.WindowModelError`.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence

import numpy as np

from ..core.errors import ConfigurationError, IncompatibleSketchError, WindowModelError
from .base import WindowModel
from .deterministic_wave import DeterministicWave
from .exponential_histogram import ExponentialHistogram

__all__ = [
    "aggregated_error",
    "multi_level_error",
    "epsilon_for_levels",
    "bucket_replay_events",
    "wave_replay_events",
    "merge_exponential_histograms",
    "merge_deterministic_waves",
    "bulk_merge_exponential_histograms",
    "bulk_merge_deterministic_waves",
]

ReplayEvent = tuple[float, int]


# --------------------------------------------------------------------- errors
def aggregated_error(epsilon: float, epsilon_prime: float) -> float:
    """Worst-case relative error after one aggregation step (Theorem 4).

    ``epsilon`` is the error of the input synopses, ``epsilon_prime`` the
    error parameter of the aggregate synopsis.
    """
    return epsilon + epsilon_prime + epsilon * epsilon_prime


def multi_level_error(epsilon: float, levels: int) -> float:
    """Worst-case relative error after ``levels`` levels of aggregation.

    Follows the paper's hierarchical analysis: ``err <= h*eps*(1+eps) + eps``
    for a hierarchy of height ``h`` whose synopses all use error ``eps``.
    """
    if levels < 0:
        raise ConfigurationError("levels must be non-negative, got %r" % (levels,))
    return levels * epsilon * (1.0 + epsilon) + epsilon


def epsilon_for_levels(target_epsilon: float, levels: int) -> float:
    """Per-synopsis error so that ``levels`` aggregation levels meet a target.

    Inverts :func:`multi_level_error`; the closed form is the paper's
    ``(sqrt(1 + 2h + h**2 + 4*h*eps) - 1 - h) / (2h)`` expression.  With
    ``levels == 0`` the target itself is returned.
    """
    if target_epsilon <= 0:
        raise ConfigurationError("target_epsilon must be positive")
    if levels < 0:
        raise ConfigurationError("levels must be non-negative, got %r" % (levels,))
    if levels == 0:
        return target_epsilon
    h = float(levels)
    return (math.sqrt(1.0 + 2.0 * h + h * h + 4.0 * h * target_epsilon) - 1.0 - h) / (2.0 * h)


# --------------------------------------------------------------------- replay
def bucket_replay_events(histogram: ExponentialHistogram) -> list[ReplayEvent]:
    """Replay events for one exponential histogram.

    Every bucket of size ``c`` contributes ``floor(c/2)`` arrivals at its start
    timestamp and ``ceil(c/2)`` arrivals at its end timestamp, per the paper's
    aggregation algorithm.

    Returns:
        A list of ``(clock, count)`` events, not yet sorted.
    """
    events: list[ReplayEvent] = []
    for bucket in histogram.iter_buckets():
        half_low = bucket.size // 2
        half_high = bucket.size - half_low
        if half_low:
            events.append((bucket.start, half_low))
        if half_high:
            events.append((bucket.end, half_high))
    return events


def wave_replay_events(wave: DeterministicWave) -> list[ReplayEvent]:
    """Replay events for one deterministic wave.

    The retained checkpoints, ordered by rank, delimit runs of arrivals whose
    exact size is the rank difference; each run is replayed half at the clock
    of its older delimiter and half at the clock of its newer delimiter —
    the same halving strategy used for exponential-histogram buckets.
    """
    checkpoints = {}
    for level in wave.levels_snapshot():
        for checkpoint in level:
            checkpoints[checkpoint.rank] = checkpoint.clock
    if not checkpoints:
        return []
    ordered = sorted(checkpoints.items())
    events: list[ReplayEvent] = []
    first_rank, first_clock = ordered[0]
    # Arrivals up to and including the oldest retained checkpoint are replayed
    # at its clock; anything older has already left every window of interest.
    events.append((first_clock, 1))
    previous_rank, previous_clock = first_rank, first_clock
    for rank, clock in ordered[1:]:
        gap = rank - previous_rank
        half_low = gap // 2
        half_high = gap - half_low
        if half_low:
            events.append((previous_clock, half_low))
        if half_high:
            events.append((clock, half_high))
        previous_rank, previous_clock = rank, clock
    return events


def _validate_time_based(
    synopses: Sequence, expected_window: float | None = None
) -> float:
    """Shared validation for order-preserving aggregation inputs."""
    if not synopses:
        raise ConfigurationError("cannot aggregate an empty collection of synopses")
    window = expected_window
    for synopsis in synopses:
        if synopsis.model is not WindowModel.TIME_BASED:
            raise WindowModelError(
                "order-preserving aggregation is only defined for time-based "
                "sliding windows (paper Section 5.1, Figure 2)"
            )
        if window is None:
            window = synopsis.window
        elif synopsis.window != window:
            raise IncompatibleSketchError(
                "all synopses must cover the same window length; got %r and %r"
                % (window, synopsis.window)
            )
    assert window is not None
    return window


# ------------------------------------------------------------------ bulk sort
def _gather_sorted_events(
    sources: Sequence, event_fn: Callable[[object], list[ReplayEvent]]
) -> tuple[list[float], list[int]]:
    """Replay events of all sources, stably sorted by clock, as two lists.

    Produces exactly the event sequence the replay-based merges build —
    source by source, then ``sort(key=clock)`` — but orders it with one
    stable NumPy argsort.  Stability makes the permutation unique, so as long
    as the clock keys survive the NumPy round-trip exactly the result matches
    the Python sort; mixed-type clock lists (where a float64 coercion could
    alias distinct keys) fall back to the keyed Python sort.
    """
    clocks: list[float] = []
    counts: list[int] = []
    for source in sources:
        for clock, count in event_fn(source):
            clocks.append(clock)
            counts.append(count)
    if len(clocks) < 32:
        # Tiny cells: the keyed Python sort is cheaper than a NumPy round-trip.
        events = sorted(zip(clocks, counts, strict=False), key=lambda event: event[0])
        return [event[0] for event in events], [event[1] for event in events]
    clocks_array = np.asarray(clocks)
    if clocks_array.dtype.kind == "f" and not all(type(c) is float for c in clocks):
        events = sorted(zip(clocks, counts, strict=False), key=lambda event: event[0])
        return [event[0] for event in events], [event[1] for event in events]
    order = np.argsort(clocks_array, kind="stable")
    return (
        clocks_array[order].tolist(),
        np.asarray(counts, dtype=np.int64)[order].tolist(),
    )


# ---------------------------------------------------------------------- merge
def merge_exponential_histograms(
    histograms: Sequence[ExponentialHistogram],
    epsilon_prime: float | None = None,
) -> ExponentialHistogram:
    """Aggregate time-based exponential histograms into one (paper Section 5.1).

    Args:
        histograms: The input histograms.  They must all be time-based and
            cover the same window length.
        epsilon_prime: Error parameter of the aggregate histogram.  Defaults
            to the error parameter of the first input, which yields the
            ``2*eps + eps**2`` special case of Theorem 4.

    Returns:
        A new :class:`ExponentialHistogram` summarising the order-preserving
        union of the input streams.
    """
    window = _validate_time_based(histograms)
    if epsilon_prime is None:
        epsilon_prime = histograms[0].epsilon
    merged = ExponentialHistogram(
        epsilon=epsilon_prime, window=window, model=WindowModel.TIME_BASED
    )
    events: list[ReplayEvent] = []
    for histogram in histograms:
        events.extend(bucket_replay_events(histogram))
    events.sort(key=lambda event: event[0])
    for clock, count in events:
        merged.add(clock, count)
    return merged


def merge_deterministic_waves(
    waves: Sequence[DeterministicWave],
    epsilon_prime: float | None = None,
    max_arrivals: int | None = None,
) -> DeterministicWave:
    """Aggregate time-based deterministic waves into one wave.

    Mirrors :func:`merge_exponential_histograms` using checkpoint-delimited
    replay events.  ``max_arrivals`` of the aggregate defaults to the sum of
    the inputs' bounds (the union stream can carry at most that many arrivals
    per window).
    """
    window = _validate_time_based(waves)
    if epsilon_prime is None:
        epsilon_prime = waves[0].epsilon
    if max_arrivals is None:
        max_arrivals = sum(wave.max_arrivals for wave in waves)
    merged = DeterministicWave(
        epsilon=epsilon_prime,
        window=window,
        max_arrivals=max_arrivals,
        model=WindowModel.TIME_BASED,
    )
    events: list[ReplayEvent] = []
    for wave in waves:
        events.extend(wave_replay_events(wave))
    events.sort(key=lambda event: event[0])
    for clock, count in events:
        merged.add(clock, count)
    return merged


# ----------------------------------------------------------------- bulk merge
def bulk_merge_exponential_histograms(
    histograms: Sequence[ExponentialHistogram],
    epsilon_prime: float | None = None,
) -> ExponentialHistogram:
    """Vectorized :func:`merge_exponential_histograms` (identical state).

    The replay-based reference merge walks every unit arrival of the union
    stream through the scalar insert-and-cascade machinery.  This variant
    gathers all replay events into NumPy arrays, orders them with one stable
    argsort, and hands the whole run to
    :meth:`~repro.windows.exponential_histogram.ExponentialHistogram.add_batch`,
    whose deferred-cascade bulk path materialises only the retained buckets.
    The merged histogram serializes byte-for-byte the same as the reference
    (enforced by ``tests/windows/test_bulk_merge_equivalence.py``).
    """
    window = _validate_time_based(histograms)
    if epsilon_prime is None:
        epsilon_prime = histograms[0].epsilon
    merged = ExponentialHistogram(
        epsilon=epsilon_prime, window=window, model=WindowModel.TIME_BASED
    )
    clocks, counts = _gather_sorted_events(histograms, bucket_replay_events)
    if clocks:
        merged.add_batch(clocks, counts, assume_ordered=True)
    return merged


def bulk_merge_deterministic_waves(
    waves: Sequence[DeterministicWave],
    epsilon_prime: float | None = None,
    max_arrivals: int | None = None,
) -> DeterministicWave:
    """Vectorized :func:`merge_deterministic_waves` (identical state).

    Mirrors :func:`bulk_merge_exponential_histograms`: one stable NumPy sort
    of all checkpoint-delimited replay events, then a single
    :meth:`~repro.windows.deterministic_wave.DeterministicWave.add_batch`
    call, whose arithmetic bulk path materialises only the retained
    checkpoints of each level.
    """
    window = _validate_time_based(waves)
    if epsilon_prime is None:
        epsilon_prime = waves[0].epsilon
    if max_arrivals is None:
        max_arrivals = sum(wave.max_arrivals for wave in waves)
    merged = DeterministicWave(
        epsilon=epsilon_prime,
        window=window,
        max_arrivals=max_arrivals,
        model=WindowModel.TIME_BASED,
    )
    clocks, counts = _gather_sorted_events(waves, wave_replay_events)
    if clocks:
        merged.add_batch(clocks, counts, assume_ordered=True)
    return merged
