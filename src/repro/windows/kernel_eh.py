"""Kernel-accelerated columnar store: compiled hot paths, NumPy everywhere else.

:class:`KernelEHStore` is :class:`~repro.windows.columnar_eh.ColumnarEHStore`
with its three hot paths — the deferred ingest cascade, the expire/compaction
sweep and the multi-cell point-query walk — routed through the
``numba``-compilable kernels of :mod:`repro.windows._eh_kernels`.  Everything
else (growth, demotions, serialization interchange, scalar updates) is
inherited unchanged, and so is the equivalence contract: the serialized state
after any operation is byte-identical to both the NumPy columnar store and
the object reference backend.

The kernels only understand canonical mode (sizes implied by the level index,
clock int-ness a store-wide mode).  A demoting load — exotic bucket sizes or
mixed int/float clocks — materialises the side arrays, and every overridden
method then defers to the NumPy implementation, which handles demoted state
exactly.  The batched-ingest gate in ``ingest_sorted_rows`` already routes
non-canonical rows to the reference fallback, so ``_deferred_cascade`` only
ever sees canonical state.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core.counter_store import CounterFactory, register_backend
from ._eh_kernels import (
    cascade_runs,
    estimate_cells_canonical,
    expire_cells,
    kernels_compiled,
    kernels_disabled,
    kernels_enabled,
)
from .columnar_eh import ColumnarEHStore, columnar_supports

__all__ = ["KernelEHStore"]


class KernelEHStore(ColumnarEHStore):
    """Columnar EH store with compiled cascade/expiry/query kernels."""

    backend_name = "kernels"

    #: Whether the kernels are machine code (numba) or interpreted Python
    #: (``REPRO_KERNELS=1`` without numba; equivalence testing only).
    compiled = property(lambda self: kernels_compiled())

    # ------------------------------------------------------------ ingest path
    def _deferred_cascade(
        self,
        cells: np.ndarray,
        unit_clocks: np.ndarray,
        unit_offsets: np.ndarray,
        unit_counts: np.ndarray,
    ) -> None:
        # Pre-size the level and slot axes: merge counts per level follow from
        # the bucket counts alone (totals -> merges -> carried pairs), so the
        # kernel's exact demand is a handful of vectorized passes here and the
        # nopython loop never needs to reallocate.
        max_per = self._max_per
        counts = self._counts
        num_levels = self._num_levels
        incoming = unit_counts.astype(np.int64)
        active = cells
        level = 0
        need_slots = 0
        while True:
            if level < num_levels:
                existing = counts[active, level].astype(np.int64)
                totals = existing + incoming
            else:
                totals = incoming
            merges = np.maximum((totals - (max_per - 1)) >> 1, 0)
            retained = totals - 2 * merges
            peak = int(retained.max())
            if peak > need_slots:
                need_slots = peak
            if not merges.any():
                break
            keep = merges > 0
            active = active[keep]
            incoming = merges[keep]
            level += 1
        self._ensure_level(level)
        self._ensure_slots(need_slots)
        cascade_runs(
            self._starts,
            self._ends,
            self._counts,
            cells,
            unit_clocks,
            np.ascontiguousarray(unit_offsets, dtype=np.int64),
            max_per,
        )

    # ----------------------------------------------------------------- expiry
    def expire_all(self, now: float) -> None:
        if self._sizes is not None or self._start_int is not None:
            # Demoted state: explicit size/flag planes must shift alongside
            # the clock planes; the NumPy sweep handles them all.
            super().expire_all(now)
            return
        threshold = now - self.window
        candidates = np.flatnonzero(self._oldest_end <= threshold)
        if not candidates.size:
            return
        expire_cells(
            self._starts,
            self._ends,
            self._counts,
            self._uppers,
            self._oldest_end,
            candidates,
            threshold,
        )

    # ---------------------------------------------------------------- queries
    def estimate_cells(
        self, cells: np.ndarray, range_length: float | None, now: float
    ) -> np.ndarray:
        if self._sizes is not None:
            # Demoted sizes change both the totals and the straddling-bucket
            # subtraction; only the NumPy walk reads the explicit size plane.
            return super().estimate_cells(cells, range_length, now)
        start = self._query_start(range_length, now)
        cell_ids = np.ascontiguousarray(cells, dtype=np.int64)
        out = np.empty(cell_ids.shape[0], dtype=np.float64)
        estimate_cells_canonical(
            self._starts, self._ends, self._counts, cell_ids, start, out
        )
        return out


# ---------------------------------------------------------------- registration
def _kernels_supports(config: Any) -> str | None:
    reason = columnar_supports(config)
    if reason is not None:
        return reason
    if kernels_disabled():
        return "disabled by REPRO_KERNELS=0"
    if not kernels_enabled():
        return (
            "numba is not installed (pip install 'repro[kernels]') and "
            "REPRO_KERNELS=1 does not force the interpreted kernels"
        )
    return None


def _kernels_factory(config: Any, make_counter: CounterFactory) -> KernelEHStore:
    return KernelEHStore(
        depth=config.depth,
        width=config.width,
        epsilon=config.epsilon_sw,
        window=config.window,
        model=config.model,
    )


register_backend("kernels", _kernels_factory, _kernels_supports, priority=20)
