"""Exact sliding-window counter used as ground truth in tests and experiments.

The exact counter simply stores every arrival clock in a deque and answers
queries by counting.  Its purpose is purely evaluative: every observed-error
figure in the paper's experiments compares a synopsis estimate against the
exact count of the same range, and this class provides that reference answer.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import deque

from ..core.errors import ConfigurationError
from .base import SlidingWindowCounter, WindowModel

__all__ = ["ExactWindowCounter"]

_FIELD_BITS = 32


class ExactWindowCounter(SlidingWindowCounter):
    """Stores every in-window arrival clock and answers queries exactly.

    Args:
        window: Sliding-window length ``N``.
        model: Time-based or count-based window model (only affects metadata).
    """

    def __init__(self, window: float, model: WindowModel = WindowModel.TIME_BASED) -> None:
        super().__init__(window=window, model=model)
        self._clocks: deque[float] = deque()
        self._total_arrivals = 0

    def add(self, clock: float, count: int = 1) -> None:
        """Register ``count`` unit arrivals at clock value ``clock``."""
        if count < 0:
            raise ConfigurationError("count must be non-negative, got %r" % (count,))
        if count == 0:
            return
        self._advance_clock(clock)
        self._total_arrivals += count
        for _ in range(count):
            self._clocks.append(clock)
        self._expire(clock)

    def _expire(self, now: float) -> None:
        threshold = now - self.window
        while self._clocks and self._clocks[0] <= threshold:
            self._clocks.popleft()

    def expire(self, now: float) -> None:
        """Drop arrivals that have left the window ``(now - N, now]``."""
        self._expire(now)

    def estimate(self, range_length: float | None = None, now: float | None = None) -> float:
        """Exact number of arrivals within the last ``range_length`` clock units."""
        start, _end = self.resolve_query_bounds(range_length, now)
        # The deque is sorted (in-order arrivals), so binary search the start.
        clocks = list(self._clocks)
        idx = bisect_right(clocks, start)
        return float(len(clocks) - idx)

    def total_arrivals(self) -> int:
        """Exact number of arrivals registered since construction."""
        return self._total_arrivals

    def in_window_count(self) -> int:
        """Number of arrivals currently retained (i.e. inside the window)."""
        return len(self._clocks)

    def memory_bytes(self) -> int:
        """Analytical footprint: one clock per retained arrival."""
        return (len(self._clocks) * _FIELD_BITS + 2 * _FIELD_BITS) // 8

    def __repr__(self) -> str:
        return "ExactWindowCounter(window=%g, retained=%d)" % (self.window, len(self._clocks))
