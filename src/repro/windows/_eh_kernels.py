"""Compiled kernels for the columnar exponential-histogram hot paths.

The three hot loops of :class:`~repro.windows.columnar_eh.ColumnarEHStore` —
the deferred per-level cascade of a batched ingest, the expire/compaction
sweep, and the point-query grid walk — are pure array arithmetic over the
store's structure-of-arrays buffers (``starts``/``ends`` float64 planes,
``counts`` int32, ``totals``/``uppers`` int64, ``oldest_end`` float64).  This
module expresses them as ``numba.njit``-compilable functions operating
directly on those arrays.

Compilation is strictly optional:

* when numba is importable (the ``repro[kernels]`` extra), every kernel is
  compiled in ``nopython`` mode at import time and runs at machine speed;
* when numba is absent, the identical function bodies run as interpreted
  Python.  The algorithms are byte-for-byte equivalent to the NumPy
  implementations in ``columnar_eh.py`` (the equivalence suite runs both
  ways), so the interpreted form is only used when explicitly forced —
  production configs without numba resolve to the NumPy-vectorized
  ``columnar`` backend instead.

Selection is env-overridable via ``REPRO_KERNELS``:

* ``REPRO_KERNELS=0`` — disable the ``kernels`` backend even when numba is
  installed (the registry then auto-selects ``columnar``);
* ``REPRO_KERNELS=1`` — force-enable the ``kernels`` backend even without
  numba (interpreted; used by the equivalence suite to prove the kernel
  algorithms themselves, not just their compiled forms, match the reference).

``nopython`` constraints shaped these functions: no ``None``, no Python
objects, fixed-dtype arrays only, and per-cell scratch buffers allocated with
``np.empty`` inside the loop (numba supports allocation in nopython mode).
That is exactly why ``ColumnarEHStore`` keeps demoted state (explicit sizes,
per-bucket int/float flags) out of the canonical arrays: the kernels handle
only canonical mode, and the store falls back to its NumPy paths the moment a
demoting load materialises the side arrays.
"""

from __future__ import annotations

import os
from collections.abc import Callable
from typing import Any, TypeVar

import numpy as np

__all__ = [
    "HAVE_NUMBA",
    "kernels_compiled",
    "kernels_enabled",
    "kernels_disabled",
    "cascade_runs",
    "expire_cells",
    "estimate_cells_canonical",
]

_F = TypeVar("_F", bound=Callable[..., Any])

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit as _njit

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the container default
    HAVE_NUMBA = False

    def _njit(*args: Any, **kwargs: Any) -> Any:
        """Identity decorator standing in for ``numba.njit``."""
        if args and callable(args[0]):
            return args[0]

        def wrap(function: _F) -> _F:
            return function

        return wrap


def _env_setting() -> str:
    return os.environ.get("REPRO_KERNELS", "").strip().lower()


def kernels_disabled() -> bool:
    """True when ``REPRO_KERNELS=0`` explicitly vetoes the kernels backend."""
    return _env_setting() in ("0", "off", "false")


def kernels_forced() -> bool:
    """True when ``REPRO_KERNELS=1`` force-enables the (possibly interpreted)
    kernels backend."""
    return _env_setting() in ("1", "on", "true", "force")


def kernels_enabled() -> bool:
    """Whether the ``kernels`` backend is eligible for selection.

    Compiled kernels require numba; the interpreted forms are only eligible
    under an explicit ``REPRO_KERNELS=1`` override (they are algorithmically
    identical but slower than the NumPy ``columnar`` paths).
    """
    if kernels_disabled():
        return False
    return HAVE_NUMBA or kernels_forced()


def kernels_compiled() -> bool:
    """True when the kernels below are actual machine code (numba present)."""
    return HAVE_NUMBA


@_njit(cache=True)
def cascade_runs(  # pragma: no cover - measured via the equivalence suite
    starts: np.ndarray,
    ends: np.ndarray,
    counts: np.ndarray,
    cells: np.ndarray,
    unit_clocks: np.ndarray,
    unit_offsets: np.ndarray,
    max_per: int,
) -> None:
    """Deferred per-level cascade of unit runs, one cell at a time.

    ``unit_clocks[unit_offsets[i]:unit_offsets[i+1]]`` is the (expanded,
    non-decreasing) unit-arrival run of ``cells[i]``.  For each level the
    virtual sequence ``existing buckets ++ incoming buckets`` is split into
    ``merges`` leading pairs (carried one level up) and a retained tail of at
    most ``max_per`` buckets — the same arithmetic as the NumPy
    ``_deferred_cascade``/``_apply_level`` pair, so the resulting bucket
    structure is identical bucket-for-bucket.

    Preconditions (established by the caller): canonical mode, level and slot
    axes pre-grown to the cascade's precomputed demand, no expiry possible
    mid-run.
    """
    for i in range(cells.shape[0]):
        cell = cells[i]
        low = unit_offsets[i]
        n_in = unit_offsets[i + 1] - low
        # ---- level 0: unit buckets, start == end == the arrival clock ----
        c0 = counts[cell, 0]
        total = c0 + n_in
        merges = (total - (max_per - 1)) >> 1
        if merges < 0:
            merges = 0
        retained = total - 2 * merges
        if merges == 0:
            for j in range(n_in):
                clock = unit_clocks[low + j]
                starts[cell, 0, c0 + j] = clock
                ends[cell, 0, c0 + j] = clock
            counts[cell, 0] = retained
            continue
        carry_starts = np.empty(merges, np.float64)
        carry_ends = np.empty(merges, np.float64)
        for m in range(merges):
            k = 2 * m
            if k < c0:
                carry_starts[m] = starts[cell, 0, k]
            else:
                carry_starts[m] = unit_clocks[low + (k - c0)]
            k += 1
            if k < c0:
                carry_ends[m] = ends[cell, 0, k]
            else:
                carry_ends[m] = unit_clocks[low + (k - c0)]
        # Retained tail, shifted left in place (source index 2*merges + r is
        # always strictly ahead of destination r, so ascending order is safe).
        for r in range(retained):
            k = 2 * merges + r
            if k < c0:
                starts[cell, 0, r] = starts[cell, 0, k]
                ends[cell, 0, r] = ends[cell, 0, k]
            else:
                clock = unit_clocks[low + (k - c0)]
                starts[cell, 0, r] = clock
                ends[cell, 0, r] = clock
        counts[cell, 0] = retained
        # ---- higher levels: cascade (start, end) pairs ----
        incoming_starts = carry_starts
        incoming_ends = carry_ends
        n_incoming = merges
        level = 1
        while n_incoming > 0:
            live = counts[cell, level]
            total = live + n_incoming
            merges = (total - (max_per - 1)) >> 1
            if merges < 0:
                merges = 0
            retained = total - 2 * merges
            if merges == 0:
                for j in range(n_incoming):
                    starts[cell, level, live + j] = incoming_starts[j]
                    ends[cell, level, live + j] = incoming_ends[j]
                counts[cell, level] = retained
                break
            carry_starts = np.empty(merges, np.float64)
            carry_ends = np.empty(merges, np.float64)
            for m in range(merges):
                k = 2 * m
                if k < live:
                    carry_starts[m] = starts[cell, level, k]
                else:
                    carry_starts[m] = incoming_starts[k - live]
                k += 1
                if k < live:
                    carry_ends[m] = ends[cell, level, k]
                else:
                    carry_ends[m] = incoming_ends[k - live]
            for r in range(retained):
                k = 2 * merges + r
                if k < live:
                    starts[cell, level, r] = starts[cell, level, k]
                    ends[cell, level, r] = ends[cell, level, k]
                else:
                    starts[cell, level, r] = incoming_starts[k - live]
                    ends[cell, level, r] = incoming_ends[k - live]
            counts[cell, level] = retained
            incoming_starts = carry_starts
            incoming_ends = carry_ends
            n_incoming = merges
            level += 1


@_njit(cache=True)
def expire_cells(  # pragma: no cover - measured via the equivalence suite
    starts: np.ndarray,
    ends: np.ndarray,
    counts: np.ndarray,
    uppers: np.ndarray,
    oldest_end: np.ndarray,
    candidates: np.ndarray,
    threshold: float,
) -> None:
    """Prefix-drop expiry sweep over candidate cells (canonical mode).

    Within one ``(cell, level)`` the buckets are time-ordered, so the expired
    set is a prefix; survivors shift left and the per-cell ``oldest_end``
    cache is refreshed exactly.
    """
    num_levels = counts.shape[1]
    for i in range(candidates.shape[0]):
        cell = candidates[i]
        removed = np.int64(0)
        new_oldest = np.inf
        for level in range(num_levels):
            live = counts[cell, level]
            if live == 0:
                continue
            expired = 0
            while expired < live and ends[cell, level, expired] <= threshold:
                expired += 1
            if expired:
                removed += np.int64(expired) << level
                for slot in range(live - expired):
                    starts[cell, level, slot] = starts[cell, level, slot + expired]
                    ends[cell, level, slot] = ends[cell, level, slot + expired]
                live -= expired
                counts[cell, level] = live
            if live > 0 and ends[cell, level, 0] < new_oldest:
                new_oldest = ends[cell, level, 0]
        uppers[cell] -= removed
        oldest_end[cell] = new_oldest


@_njit(cache=True)
def estimate_cells_canonical(  # pragma: no cover - measured via the suite
    starts: np.ndarray,
    ends: np.ndarray,
    counts: np.ndarray,
    cells: np.ndarray,
    start: float,
    out: np.ndarray,
) -> None:
    """Point-query grid walk for many cells (canonical mode).

    Sums the implied sizes (``2**level``) of in-window buckets, then halves
    the oldest in-window bucket when it straddles the window boundary.  The
    oldest bucket is the minimum-end one, ties broken by minimum start, first
    occurrence in (level, slot) order — the same bucket ``argmin`` picks in
    the NumPy ``estimate_cells``.  Every addend is an integer below 2**53, so
    float64 accumulation is exact and the result matches bit-for-bit.
    """
    num_levels = counts.shape[1]
    for i in range(cells.shape[0]):
        cell = cells[i]
        total = 0.0
        min_end = np.inf
        oldest_start = np.inf
        oldest_size = 0.0
        for level in range(num_levels):
            live = counts[cell, level]
            if live == 0:
                continue
            size = float(np.int64(1) << level)
            for slot in range(live):
                end = ends[cell, level, slot]
                if end > start:
                    total += size
                    bucket_start = starts[cell, level, slot]
                    if end < min_end or (end == min_end and bucket_start < oldest_start):
                        min_end = end
                        oldest_start = bucket_start
                        oldest_size = size
        if total > 0.0 and oldest_start <= start:
            total -= oldest_size / 2.0
        out[i] = total
