"""Sliding-window counter substrates used inside ECM-sketches.

This package provides the three sliding-window counting algorithms the paper
evaluates as ECM-sketch counter implementations — exponential histograms,
deterministic waves and randomized waves — plus an exact baseline counter and
the order-preserving aggregation algorithms of Section 5.
"""

from .base import SlidingWindowCounter, WindowModel
from .columnar_eh import ColumnarEHStore
from .deterministic_wave import DeterministicWave, WaveCheckpoint
from .kernel_eh import KernelEHStore
from .exact_window import ExactWindowCounter
from .exponential_histogram import Bucket, ExponentialHistogram
from .merge import (
    aggregated_error,
    bucket_replay_events,
    bulk_merge_deterministic_waves,
    bulk_merge_exponential_histograms,
    epsilon_for_levels,
    merge_deterministic_waves,
    merge_exponential_histograms,
    multi_level_error,
    wave_replay_events,
)
from .randomized_wave import RandomizedWave

__all__ = [
    "SlidingWindowCounter",
    "WindowModel",
    "Bucket",
    "ColumnarEHStore",
    "KernelEHStore",
    "ExponentialHistogram",
    "DeterministicWave",
    "WaveCheckpoint",
    "RandomizedWave",
    "ExactWindowCounter",
    "aggregated_error",
    "multi_level_error",
    "epsilon_for_levels",
    "bucket_replay_events",
    "wave_replay_events",
    "merge_exponential_histograms",
    "merge_deterministic_waves",
    "bulk_merge_exponential_histograms",
    "bulk_merge_deterministic_waves",
]
